"""Repo-level pytest configuration.

* Registers the ``slow`` marker and applies it to everything under
  ``benchmarks/`` — each bench regenerates a full paper figure at
  ``REPRO_SCALE``, minutes of work at default scale — so a quick CI lane
  can run ``pytest -m "not slow"`` while the bench lane runs
  ``pytest benchmarks``.
* Adds the sweep-runner knobs ``--jobs`` / ``--no-cache`` /
  ``--cache-dir`` consumed by the ``bench_runner`` fixture in
  ``benchmarks/conftest.py`` (mirroring the ``repro-rlir`` CLI flags).
* Registers the ``reprolint`` marker and the ``--reprolint`` flag: tests
  marked ``reprolint`` (the full-tree invariant lint and the mypy gate
  in ``tests/test_reprolint.py``) are skipped unless ``--reprolint`` is
  passed, so ``pytest --reprolint`` is the local one-command lint lane
  while plain ``pytest`` stays fast.  ``tools/`` is put on ``sys.path``
  here so those tests can ``import reprolint`` without an env tweak.
"""

import pathlib
import sys

# make `import reprolint` work for the linter's own test suite (the
# package is pure-stdlib AST analysis; it never imports repro)
_TOOLS_DIR = str(pathlib.Path(__file__).resolve().parent / "tools")
if _TOOLS_DIR not in sys.path:
    sys.path.insert(0, _TOOLS_DIR)


# mirrors repro.cli._positive_int — kept separate because conftest must not
# require src/ on sys.path at collection time
def _positive_int(raw):
    value = int(raw)
    if value < 1:
        raise ValueError(f"must be a positive integer: {raw}")
    return value


def pytest_addoption(parser):
    group = parser.getgroup("repro sweep runner")
    group.addoption("--jobs", type=_positive_int, default=1,
                    help="worker processes for experiment sweeps (default 1)")
    group.addoption("--no-cache", action="store_true", default=False,
                    help="disable the on-disk sweep result cache")
    group.addoption("--cache-dir", default=None,
                    help="sweep result cache directory (default: .repro-cache)")
    group.addoption("--shards", type=_positive_int, default=1,
                    help="flow shards per condition for benches whose "
                         "studies support within-condition sharding")
    group.addoption("--reprolint", action="store_true", default=False,
                    help="also run the reprolint/mypy gate tests "
                         "(marked 'reprolint', skipped by default)")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: full-scale paper benchmark (deselect with -m 'not slow')",
    )
    config.addinivalue_line(
        "markers",
        "reprolint: whole-tree lint/type gate (enable with --reprolint)",
    )


def pytest_collection_modifyitems(config, items):
    import pytest

    root = pathlib.Path(str(config.rootpath))
    run_lint = config.getoption("--reprolint")
    skip_lint = pytest.mark.skip(
        reason="lint gate runs only with --reprolint")
    for item in items:
        if "reprolint" in item.keywords and not run_lint:
            item.add_marker(skip_lint)
        try:
            rel = pathlib.Path(str(item.fspath)).relative_to(root)
        except ValueError:
            continue
        if rel.parts and rel.parts[0] == "benchmarks":
            item.add_marker(pytest.mark.slow)
