"""Parallel sweep execution with cached, order-preserving results.

:class:`ParallelRunner` takes a :class:`~repro.runner.spec.SweepSpec` (or an
explicit job list), satisfies whatever it can from the
:class:`~repro.runner.cache.ResultCache`, fans the remaining jobs out over a
``multiprocessing`` pool, and returns results in job order.

Determinism
-----------
Jobs carry their own seeds (trace seed inside the frozen config, cross-
traffic selection seed in ``run_seed``), and the simulator consumes no
global randomness, so a job's result is a pure function of its descriptor.
The serial fallback (``jobs=1``) calls the *same* job function in-process —
its results are byte-identical to the parallel path's, which the
determinism suite asserts.

Worker strategy
---------------
With the (default, where available) ``fork`` start method the runner first
*prewarms* each distinct workload in the parent — generating the packet
traces once — so forked children inherit them copy-on-write instead of
regenerating ~10⁶ packets per process.  Under ``spawn`` the prewarm is
skipped and each worker builds its own traces on first use.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro import obs

from .cache import ResultCache
from .spec import SweepSpec

__all__ = ["ParallelRunner"]


def _execute(job: Any) -> Any:
    """Top-level worker entry point (must be picklable)."""
    with obs.span("runner.job"):
        return job.run()


def _execute_indexed(indexed_job: Tuple[int, Any]) -> Tuple[int, Any]:
    """Worker entry point carrying the job's index through the pool."""
    index, job = indexed_job
    return index, job.run()


def _execute_indexed_obs(
    indexed_job: Tuple[int, Any]
) -> Tuple[int, Any, Dict[str, Any]]:
    """Obs-aware pool entry: also ships the worker's drained obs buffers.

    Selected only when obs is enabled, so the default pool path carries
    no extra payload per result.  Draining after every job keeps the
    per-process ``seq`` counter monotonic across payloads, which is what
    makes the driver-side ``(process, seq)`` merge a total order.

    Fork-started pool workers inherit the driver's pinned process label
    (``obs.enable(process="driver")`` sets a module-level override that
    survives the fork), so the first call here re-pins the label to this
    worker's own pid — buffers from two processes must never share a
    merge key.
    """
    if obs.process_label() == os.environ.get("REPRO_OBS_PROCESS"):
        obs.set_process_label(f"pool-{os.getpid()}")
    index, job = indexed_job
    with obs.span("runner.job"):
        result = job.run()
    return index, result, obs.drain_payload()


def _prepare_key(job: Any) -> Any:
    """The identity of the shared artifact a job's prepare() would build.

    Jobs sharing an expensive artifact beyond their workload traces (e.g. a
    recorded observation log) advertise it via ``prepare_key``; plain
    condition jobs fall back to their frozen config.
    """
    key = getattr(job, "prepare_key", None)
    return key if key is not None else getattr(job, "config", None)


class ParallelRunner:
    """Run sweep jobs over *jobs* worker processes with result caching.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` (default) runs everything serially
        in-process with identical results.
    cache:
        Optional :class:`ResultCache`; hits skip execution entirely and
        fresh results are persisted, so interrupted sweeps resume where
        they stopped.
    mp_context:
        ``multiprocessing`` start method (``"fork"``/``"spawn"``/
        ``"forkserver"``); defaults to ``fork`` where available.

    The job protocol
    ----------------
    A *job* is any picklable object with:

    * ``run() -> result`` — execute; the result must be picklable and a
      pure function of the job's fields (all seeds live in the job);
    * ``cache_token() -> dict`` — a stable, JSON-serializable identity
      (hashed with the code fingerprint into the cache key), required
      only when a cache is attached.

    Optional extensions the runner and the distributed backend exploit:

    * ``prepare()`` / ``release_prepared()`` with a hashable
      ``prepare_key`` — build (and later drop) an expensive artifact
      shared by every job with the same key; under ``fork`` the runner
      prewarms it once in the parent so children inherit it
      copy-on-write;
    * ``run_chunk(jobs) -> [result, ...]`` — execute several same-key
      jobs in one pass (e.g. one replay sweep over a shared observation
      log); used by the distributed workers' chunk dispatch.

    Shipped implementations: :class:`~repro.runner.spec.JobSpec`
    (pipeline conditions) and the study jobs in
    :mod:`repro.experiments.extension_jobs` — see those for worked
    ``cache_token``/``prepare_key`` examples, including how the
    ``batch`` (columnar fast path) knob stays part of every identity.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1: {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.mp_context = mp_context
        self.executed = 0
        self.cache_hits = 0

    @property
    def backend(self) -> str:
        """Which execution backend this runner is (see runner.backends)."""
        return "serial" if self.jobs == 1 else "process"

    # ------------------------------------------------------------------

    def run(self, spec_or_jobs: Union[SweepSpec, Sequence]) -> List[Any]:
        """Execute a sweep; returns one result per job, in job order."""
        if isinstance(spec_or_jobs, SweepSpec):
            job_list = spec_or_jobs.jobs()
        else:
            job_list = list(spec_or_jobs)
        obs.reset_notes()
        obs.count("runner.sweeps")
        obs.count("runner.jobs", len(job_list))
        results: List[Any] = [None] * len(job_list)
        keys: List[Optional[str]] = [None] * len(job_list)
        pending: List[int] = []
        with obs.span("runner.cache_lookup"):
            for i, job in enumerate(job_list):
                if self.cache is not None:
                    key = self.cache.key(job.cache_token())
                    keys[i] = key
                    hit, value = self.cache.get(key)
                    if hit:
                        results[i] = value
                        self.cache_hits += 1
                        continue
                pending.append(i)

        if pending:
            # persist each result the moment it completes (completion
            # order, not job order), so an interrupted sweep loses only
            # its in-flight jobs; the returned list is still job-ordered
            pending_jobs = [job_list[i] for i in pending]
            with obs.span("runner.sweep"):
                for local_i, value in self._iter_execute(pending_jobs):
                    i = pending[local_i]
                    results[i] = value
                    key = keys[i]
                    if self.cache is not None and key is not None:
                        self.cache.put(key, value)
                    self.executed += 1
        return results

    def run_one(self, job: Any) -> Any:
        """Convenience: run a single job through the same cache path."""
        return self.run([job])[0]

    # ------------------------------------------------------------------

    def _iter_execute(self, jobs: Sequence) -> Iterator[Tuple[int, Any]]:
        """Yield ``(index, result)`` pairs as each job completes.

        Serial execution yields in job order; parallel execution yields in
        *completion* order (``imap_unordered``) so a slow or crashed job
        can't hold finished results back from the cache.
        """
        if self.jobs <= 1 or len(jobs) <= 1:
            for index, job in enumerate(jobs):
                yield index, _execute(job)
            return
        method = self.mp_context
        if method is None:
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        ctx = multiprocessing.get_context(method)
        processes = min(self.jobs, len(jobs))
        prepared: dict = {}
        if method == "fork":
            # Build shared artifacts pre-fork so children inherit them
            # copy-on-write — but only when that wins.  Prewarming runs the
            # builds serially in the parent, so it pays off exactly when
            # the distinct artifacts are too few to keep every worker busy
            # on their own (the one-huge-condition case sharding exists
            # for); with at least as many artifacts as workers, each
            # worker builds its own in parallel instead.  Single-consumer
            # artifacts are never worth building up front.
            consumers: dict = {}
            for job in jobs:
                key = _prepare_key(job)
                if key is not None and getattr(job, "prepare", None) is not None:
                    consumers[key] = consumers.get(key, 0) + 1
            if len(consumers) < processes:
                for job in jobs:
                    prepare = getattr(job, "prepare", None)
                    key = _prepare_key(job)
                    if (prepare is not None and consumers.get(key, 0) >= 2
                            and key not in prepared):
                        with obs.span("runner.prepare"):
                            prepare()
                        prepared[key] = job
        try:
            with ctx.Pool(processes=processes) as pool:
                if obs.enabled():
                    # obs-aware entry: each completion also carries the
                    # worker's drained span/metric buffers, folded here so
                    # the run artifact sees every process
                    for index, value, payload in pool.imap_unordered(
                        _execute_indexed_obs, list(enumerate(jobs)), chunksize=1
                    ):
                        obs.fold_payload(payload)
                        yield index, value
                else:
                    yield from pool.imap_unordered(
                        _execute_indexed, list(enumerate(jobs)), chunksize=1
                    )
        finally:
            # children inherited the prewarmed artifacts at fork time; the
            # parent's copies are dead once the pool is done, so let jobs
            # that pin memory release it
            for job in prepared.values():
                release = getattr(job, "release_prepared", None)
                if release is not None:
                    release()

    def __repr__(self) -> str:
        return (
            f"ParallelRunner(jobs={self.jobs}, cache={self.cache!r}, "
            f"executed={self.executed}, cache_hits={self.cache_hits})"
        )
