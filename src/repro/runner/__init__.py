"""Sweep orchestration: declarative condition grids, parallel execution,
and a content-addressed on-disk result cache.

The paper's evaluation is a set of embarrassingly parallel grids —
(injection scheme × cross-traffic model × utilization × seed) conditions
that share nothing but read-only traces.  This package turns each grid into
picklable :class:`~repro.runner.spec.JobSpec` descriptors
(:class:`~repro.runner.spec.SweepSpec` enumerates them declaratively), fans
them out over worker processes
(:class:`~repro.runner.runner.ParallelRunner`), and memoizes every result
on disk keyed by (configuration, code version, seeds)
(:class:`~repro.runner.cache.ResultCache`), so re-runs and interrupted
sweeps resume instantly.

Typical use::

    from repro.experiments import ExperimentConfig, run_fig4ab
    from repro.runner import ParallelRunner, ResultCache

    runner = ParallelRunner(jobs=4, cache=ResultCache())
    curves = run_fig4ab(ExperimentConfig(), runner=runner)

Results are independent of worker count: the serial path (``jobs=1``) and
any parallel fan-out produce byte-identical summaries (see
``tests/test_runner_determinism.py``).

:func:`~repro.runner.backends.make_runner` maps a backend name —
``serial | process | distributed`` — to a runner object; the distributed
backend (:mod:`repro.distrib`) executes the same jobs on a broker/worker
cluster with the same byte-identical guarantee.
"""

from .backends import BACKENDS, make_runner
from .cache import CACHE_VERSION, DEFAULT_CACHE_DIR, ResultCache, code_fingerprint
from .runner import ParallelRunner
from .spec import JobSpec, SweepSpec

__all__ = [
    "BACKENDS",
    "CACHE_VERSION",
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "code_fingerprint",
    "make_runner",
    "ParallelRunner",
    "JobSpec",
    "SweepSpec",
]
