"""Content-addressed on-disk result cache for sweep jobs.

Every cache entry is keyed by a SHA-256 over the *canonical JSON* of three
things: the job's ``cache_token()`` (full experiment configuration plus the
condition axes and seeds), a fingerprint of the ``repro`` package's source
code, and the cache format version.  Any change to the configuration, the
seeds, or the simulator source therefore produces a different key — stale
results can never be served after a refactor.

Layout (under ``.repro-cache/`` by default)::

    .repro-cache/
        ab/ab12cd…ef.pkl     # pickled job result, sharded by key prefix

Entries are written atomically (private temp file, then an ``os.link``
publish — O_EXCL semantics) so a crashed or interrupted sweep never leaves
a truncated pickle behind under the final name, and concurrent writers —
including distributed sweep workers sharing one cache directory over NFS —
can never corrupt or double-write an entry: the first publish wins and
later identical copies are discarded.  A corrupted entry (e.g. hand-edited
or damaged out-of-band) is treated as a miss and deleted.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Iterator, Optional, Tuple

from repro.obs import metrics as obs_metrics

__all__ = ["ResultCache", "code_fingerprint", "CACHE_VERSION", "DEFAULT_CACHE_DIR"]

CACHE_VERSION = 1
DEFAULT_CACHE_DIR = ".repro-cache"

_MISSING = object()
_code_fingerprint: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over the ``repro`` package's source files (memoized).

    Hashes the *contents* (not mtimes) of every ``.py`` file under the
    installed package directory, in sorted relative-path order, so the
    fingerprint is stable across checkouts and machines but changes whenever
    any simulator/experiment code changes.
    """
    global _code_fingerprint
    if _code_fingerprint is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(path.relative_to(package_root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _code_fingerprint = digest.hexdigest()
    return _code_fingerprint


def canonical_json(obj: Any) -> str:
    """Deterministic, collision-free JSON encoding used for cache keys.

    Container types are tagged (``["__tuple__", ...]`` etc.) so values that
    Python distinguishes but JSON would conflate — ``(1, 2)`` vs ``[1, 2]``,
    or a set vs the sorted list of its members — can never alias one cache
    key.  Sets (including mixed-type sets, which ``sorted`` cannot order)
    are canonicalized by sorting their members' own encodings.
    """
    return json.dumps(_canonicalize(obj), sort_keys=True, separators=(",", ":"))


def _canonicalize(obj: Any) -> Any:
    if isinstance(obj, tuple):
        return ["__tuple__", [_canonicalize(x) for x in obj]]
    if isinstance(obj, list):
        return ["__list__", [_canonicalize(x) for x in obj]]
    if isinstance(obj, (set, frozenset)):
        members = [_canonicalize(x) for x in obj]
        members.sort(key=lambda m: json.dumps(m, sort_keys=True, separators=(",", ":")))
        return ["__set__", members]
    if isinstance(obj, dict):
        keys = list(obj)
        if any(not isinstance(k, str) for k in keys):
            raise TypeError(f"cache-key dicts need str keys: {keys!r}")
        return {k: _canonicalize(v) for k, v in obj.items()}
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    raise TypeError(f"not cache-key serializable: {obj!r}")


class ResultCache:
    """Pickle store under *root*, content-addressed by job token.

    Parameters
    ----------
    root:
        Cache directory; created lazily on first write.
    fingerprint:
        Code-version component of every key.  Defaults to
        :func:`code_fingerprint`; tests override it to simulate a code
        change invalidating the cache.
    """

    def __init__(self, root: str = DEFAULT_CACHE_DIR,
                 fingerprint: Optional[str] = None) -> None:
        self.root = Path(root)
        self.fingerprint = fingerprint if fingerprint is not None else code_fingerprint()
        self.hits = 0
        self.misses = 0
        self.errors = 0

    # ------------------------------------------------------------------

    def key(self, token: dict) -> str:
        """Content hash of (*token*, code fingerprint, format version)."""
        payload = canonical_json(
            {"token": token, "code": self.fingerprint, "version": CACHE_VERSION}
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; a corrupted entry is a miss and is removed."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            obs_metrics.count("cache.miss")
            return False, None
        except Exception:
            # truncated/garbled entry: drop it so the slot can be rebuilt
            self.errors += 1
            self.misses += 1
            obs_metrics.count("cache.error")
            obs_metrics.count("cache.miss")
            try:
                path.unlink()
            except OSError:
                pass
            return False, None
        self.hits += 1
        obs_metrics.count("cache.hit")
        return True, value

    def put(self, key: str, value: Any) -> None:
        """Atomically persist *value* under *key*; safe under concurrency.

        The entry is written to a private temp file and *published* with
        ``os.link`` — an O_EXCL operation, atomic even on shared (NFS)
        filesystems — so any number of concurrent writers (sweep workers
        on one host or many) race harmlessly: the first publish wins and
        every later writer quietly discards its own copy.  Keys are
        content addresses, so all racers carry byte-identical payloads and
        "first" is indistinguishable from "only".  A reader can never see
        a half-written entry under the final name.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        obs_metrics.count("cache.put")
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            try:
                os.link(tmp, path)
            except FileExistsError:
                pass  # a concurrent writer already published this key
            except OSError:
                # filesystem without hard links: fall back to the plain
                # atomic replace (still torn-write-safe, last writer wins)
                os.replace(tmp, path)
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def _entries(self) -> Iterator[Path]:
        """Paths of all persisted results (layout knowledge lives here)."""
        return self.root.glob("*/*.pkl") if self.root.is_dir() else iter(())

    def _orphans(self) -> Iterator[Path]:
        """``*.tmp`` droppings a hard-killed writer may have left behind."""
        return self.root.glob("*/*.tmp") if self.root.is_dir() else iter(())

    def stats(self) -> dict:
        """``{"entries", "orphans", "bytes"}`` counts for the cache dir.

        Tolerates files vanishing between the listing and the ``stat`` —
        a concurrent sweep replaces its temp files and ``cache clear``
        unlinks entries while this walks.
        """
        entries = list(self._entries())
        orphans = list(self._orphans())
        total = 0
        for p in entries + orphans:
            try:
                total += p.stat().st_size
            except OSError:
                pass
        return {"entries": len(entries), "orphans": len(orphans), "bytes": total}

    def clear(self) -> int:
        """Delete every entry; returns the number of results removed.

        Also sweeps orphaned temp files (those don't count toward the
        return value).
        """
        removed = 0
        for entry in self._entries():
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        for orphan in self._orphans():
            try:
                orphan.unlink()
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:
        return (
            f"ResultCache(root={str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses}, errors={self.errors})"
        )
