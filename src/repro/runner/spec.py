"""Declarative sweep specifications: picklable job descriptors.

A :class:`JobSpec` freezes *everything* one pipeline condition depends on —
the full :class:`~repro.experiments.config.ExperimentConfig` state plus the
condition axes (injection scheme, cross-traffic model, target utilization,
estimator, per-run seed and any ablation overrides).  Because the descriptor
is a frozen dataclass of plain values it is picklable (so it can cross a
``multiprocessing`` boundary) and hashable into a stable cache token (so the
:class:`~repro.runner.cache.ResultCache` can content-address its result).

:class:`SweepSpec` enumerates a cartesian grid of conditions in a
deterministic, declared nesting order — the declarative form of the loops
the experiment drivers used to write by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

__all__ = ["JobSpec", "SweepSpec"]

ConfigItems = Tuple[Tuple[str, object], ...]

# grid axes a SweepSpec can nest over, in their default nesting order
_AXES = ("utilization", "scheme", "model", "estimator", "run_seed")


def _freeze(value: object) -> object:
    """Tuples for lists so config items stay hashable."""
    if isinstance(value, list):
        return tuple(value)
    return value


def config_items(cfg: Any) -> ConfigItems:
    """The full, ordered (name, value) state of an ExperimentConfig."""
    return tuple(sorted((k, _freeze(v)) for k, v in vars(cfg).items()))


@dataclass(frozen=True)
class JobSpec:
    """One self-contained pipeline condition, ready to run anywhere.

    ``scheme=None`` means no reference injection (Figure 5's baselines).
    ``static_n`` overrides the static scheme's 1-and-n gap (injection-gap
    ablation); ``clock_offset`` desynchronizes the receiver clock by that
    many seconds (sync-error ablation); ``max_flows`` bounds the receiver's
    flow tables (memory ablation); ``quantiles`` turns on streaming P²
    per-flow quantile tracking (tail-accuracy study); ``aqm="red"`` swaps
    the tail-drop bottleneck queues for RED (AQM study, drop-decision seed
    derived from ``run_seed``); ``batch`` selects the columnar pipeline
    fast path (bitwise-identical results; part of the cache identity so
    timings stay honest per path).
    """

    config: ConfigItems
    scheme: Optional[str]
    model: str
    target_util: float
    estimator: str = "linear"
    run_seed: int = 0
    static_n: Optional[int] = None
    clock_offset: float = 0.0
    max_flows: Optional[int] = None
    quantiles: Tuple[float, ...] = ()
    aqm: Optional[str] = None
    batch: bool = False

    @classmethod
    def from_config(cls, cfg: Any, scheme: Optional[str], model: str,
                    target_util: float, **overrides: Any) -> "JobSpec":
        """Build a spec from a live ExperimentConfig plus condition axes."""
        return cls(
            config=config_items(cfg),
            scheme=scheme,
            model=model,
            target_util=target_util,
            **overrides,
        )

    def experiment_config(self) -> Any:
        """Reconstruct the ExperimentConfig this job was frozen from."""
        from ..experiments.config import config_from_items

        return config_from_items(self.config)

    def cache_token(self) -> dict:
        """Stable, JSON-serializable identity for content addressing."""
        return {
            "kind": "condition",
            "config": {k: list(v) if isinstance(v, tuple) else v for k, v in self.config},
            "scheme": self.scheme,
            "model": self.model,
            "target_util": self.target_util,
            "estimator": self.estimator,
            "run_seed": self.run_seed,
            "static_n": self.static_n,
            "clock_offset": self.clock_offset,
            "max_flows": self.max_flows,
            "quantiles": self.quantiles,
            "aqm": self.aqm,
            "batch": self.batch,
        }

    def prepare(self) -> None:
        """Pre-build the shared workload (traces) in the parent process.

        Called by the runner before forking workers so children inherit the
        generated traces instead of regenerating them per process.  Object-
        path jobs additionally materialize the per-object packet lists here
        (traces are lazily columnar now) so that work is also done once,
        pre-fork, instead of per child; batch jobs leave the traces
        columnar — they never touch the objects.
        """
        from ..experiments.workloads import workload_for

        workload = workload_for(self.config)
        if not self.batch:
            workload.regular.packets
            workload.cross.packets

    def run(self) -> Any:
        """Execute the condition; returns a picklable ConditionSummary."""
        from ..experiments.workloads import run_condition_job

        return run_condition_job(self)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative cartesian grid of pipeline conditions.

    ``axis_order`` controls loop nesting (outermost first) so drivers can
    reproduce their historical enumeration order exactly — e.g. Figure 4(a)
    nests utilization-major/scheme-minor while Figure 4(c) is model-major.
    """

    config: ConfigItems
    schemes: Tuple[Optional[str], ...] = ("adaptive",)
    models: Tuple[str, ...] = ("random",)
    utilizations: Tuple[float, ...] = (0.93,)
    estimators: Tuple[str, ...] = ("linear",)
    run_seeds: Tuple[int, ...] = (0,)
    axis_order: Tuple[str, ...] = _AXES
    static_n: Optional[int] = None
    clock_offset: float = 0.0
    batch: bool = False

    @classmethod
    def from_config(cls, cfg: Any, **axes: Any) -> "SweepSpec":
        return cls(config=config_items(cfg), **axes)

    def __post_init__(self) -> None:
        if sorted(self.axis_order) != sorted(_AXES):
            raise ValueError(
                f"axis_order must be a permutation of {_AXES}: {self.axis_order}"
            )

    def _axis_values(self, axis: str) -> Sequence:
        return {
            "utilization": self.utilizations,
            "scheme": self.schemes,
            "model": self.models,
            "estimator": self.estimators,
            "run_seed": self.run_seeds,
        }[axis]

    def jobs(self) -> List[JobSpec]:
        """Enumerate the grid in ``axis_order`` nesting (outermost first)."""
        assignments: List[dict] = [{}]
        for axis in self.axis_order:
            assignments = [
                {**partial, axis: value}
                for partial in assignments
                for value in self._axis_values(axis)
            ]
        return [
            JobSpec(
                config=self.config,
                scheme=a["scheme"],
                model=a["model"],
                target_util=a["utilization"],
                estimator=a["estimator"],
                run_seed=a["run_seed"],
                static_n=self.static_n,
                clock_offset=self.clock_offset,
                batch=self.batch,
            )
            for a in assignments
        ]

    def __len__(self) -> int:
        return (
            len(self.schemes)
            * len(self.models)
            * len(self.utilizations)
            * len(self.estimators)
            * len(self.run_seeds)
        )
