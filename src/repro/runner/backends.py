"""Execution-backend selection: ``serial | process | distributed``.

Every experiment driver takes a ``runner=`` object with the
:class:`~repro.runner.runner.ParallelRunner` interface; this module is the
one place that maps a backend *name* (CLI flag, config value) to such an
object.  ``auto`` keeps the historical behavior: serial for ``jobs=1``, a
local process pool otherwise.
"""

from __future__ import annotations

from typing import Any, Optional

from .cache import ResultCache
from .runner import ParallelRunner

__all__ = ["BACKENDS", "make_runner", "validate_backend_options"]

BACKENDS = ("auto", "serial", "process", "distributed")


def validate_backend_options(backend: str, broker: Optional[str]) -> None:
    """Reject option combinations no backend accepts (one rule, shared by
    the CLI's early check and :func:`make_runner`)."""
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    if broker is not None and backend not in ("auto", "distributed"):
        raise ValueError(
            f"a broker address only applies to the distributed backend, "
            f"not {backend!r}"
        )


def make_runner(
    backend: str = "auto",
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    broker: Optional[str] = None,
    progress: Optional[Any] = None,
    **distrib_options: Any,
) -> ParallelRunner:
    """Build the sweep runner for *backend*.

    ``jobs`` means worker processes for the ``process`` backend and
    spawned local workers for an embedded ``distributed`` cluster (it is
    ignored when *broker* names an external one, whose workers already
    exist).  Extra keyword options go to
    :class:`~repro.distrib.runner.DistributedRunner` verbatim.
    """
    validate_backend_options(backend, broker)
    if backend == "auto":
        if broker is not None:
            backend = "distributed"
        else:
            backend = "process" if jobs > 1 else "serial"
    if backend != "distributed" and distrib_options:
        raise ValueError(
            f"options {sorted(distrib_options)} only apply to the "
            f"distributed backend, not {backend!r}"
        )
    if backend == "serial":
        return ParallelRunner(jobs=1, cache=cache)
    if backend == "process":
        return ParallelRunner(jobs=jobs, cache=cache)
    from ..distrib.runner import DistributedRunner  # deferred: optional heavyweight

    return DistributedRunner(
        workers=jobs, cache=cache, broker=broker, progress=progress,
        **distrib_options,
    )
