"""Packet model.

A :class:`Packet` is the unit that flows through the simulator and through
RLI/RLIR measurement instances.  Three kinds exist:

* ``REGULAR`` — application traffic whose latency we want to estimate.  The
  paper's premise is that regular packets *cannot* carry timestamps ("that
  would require intrusive changes to router forwarding paths"), so the only
  measurement-relevant state a regular packet carries in a real deployment is
  its header (addresses, ports, ToS byte).
* ``REFERENCE`` — packets injected by an RLI sender.  They carry the sender's
  hardware transmit timestamp and a sender ID so that RLIR receivers can
  demultiplex reference streams from many senders (paper Section 3.1).
* ``CROSS`` — cross traffic that shares queues with regular traffic but is
  not measured (paper Section 3.2 / Figure 3).

For simulation bookkeeping only (never consulted by the estimators), packets
also record ground-truth information: the time they passed each measurement
tap (``tap_time``) and drop status.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Optional, Tuple

__all__ = ["PacketKind", "Packet", "FIVE_TUPLE_FIELDS"]

FIVE_TUPLE_FIELDS = ("src", "dst", "sport", "dport", "proto")


class PacketKind(IntEnum):
    """Role a packet plays in the measurement architecture."""

    REGULAR = 0
    REFERENCE = 1
    CROSS = 2


class Packet:
    """A simulated network packet.

    Parameters
    ----------
    src, dst:
        IPv4 addresses as 32-bit integers (see :mod:`repro.net.addressing`).
    sport, dport:
        Transport ports; part of the ECMP hash key.
    proto:
        IP protocol number (6 = TCP by default).
    size:
        Wire size in bytes, including headers.
    ts:
        Creation (trace) time in seconds.
    kind:
        One of :class:`PacketKind`.
    sender_id:
        For REFERENCE packets, the ID of the RLI sender instance that
        injected this packet; ``None`` otherwise.
    ref_timestamp:
        For REFERENCE packets, the hardware transmit timestamp written by
        the sender (in the *sender's clock domain*).
    tos:
        The IP type-of-service byte; RLIR's packet-marking demultiplexer
        stores a path mark here (paper Section 3.1, "Downstream").
    """

    __slots__ = (
        "src",
        "dst",
        "sport",
        "dport",
        "proto",
        "size",
        "ts",
        "kind",
        "sender_id",
        "ref_timestamp",
        "tos",
        "tap_time",
        "dropped",
        "hops",
        "path",
        "_flow_key",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        sport: int = 0,
        dport: int = 0,
        proto: int = 6,
        size: int = 64,
        ts: float = 0.0,
        kind: PacketKind = PacketKind.REGULAR,
        sender_id: Optional[int] = None,
        ref_timestamp: Optional[float] = None,
        tos: int = 0,
    ):
        self.src = src
        self.dst = dst
        self.sport = sport
        self.dport = dport
        self.proto = proto
        self.size = size
        self.ts = ts
        self.kind = kind
        self.sender_id = sender_id
        self.ref_timestamp = ref_timestamp
        self.tos = tos
        # --- simulation bookkeeping (ground truth; estimators never read) ---
        self.tap_time: Optional[float] = None  # time the packet passed the
        # upstream measurement tap of the segment under study
        self.dropped = False
        self.hops = 0  # queues traversed so far
        self.path: Tuple[int, ...] = ()  # node ids traversed (event engine)
        self._flow_key: Optional[Tuple[int, int, int, int, int]] = None

    # ------------------------------------------------------------------

    @property
    def flow_key(self) -> Tuple[int, int, int, int, int]:
        """The 5-tuple identifying this packet's flow (computed once).

        The tuple is cached on first access — demux, receiver and flow-stats
        hot loops read it several times per packet.  Header fields must not
        be mutated after the first read; transformations that rewrite
        headers (e.g. ``Trace.remap_addresses``) operate on fresh clones,
        whose cache starts empty.
        """
        key = self._flow_key
        if key is None:
            key = self._flow_key = (self.src, self.dst, self.sport, self.dport, self.proto)
        return key

    @property
    def is_reference(self) -> bool:
        return self.kind == PacketKind.REFERENCE

    @property
    def is_regular(self) -> bool:
        return self.kind == PacketKind.REGULAR

    @property
    def is_cross(self) -> bool:
        return self.kind == PacketKind.CROSS

    def clone(self) -> "Packet":
        """Return a fresh copy with identical header fields and trace time.

        Bookkeeping fields (taps, drops, hops, path) are reset: a clone is a
        new packet on the wire, not a copy of the simulation history.
        """
        return Packet(
            src=self.src,
            dst=self.dst,
            sport=self.sport,
            dport=self.dport,
            proto=self.proto,
            size=self.size,
            ts=self.ts,
            kind=self.kind,
            sender_id=self.sender_id,
            ref_timestamp=self.ref_timestamp,
            tos=self.tos,
        )

    def __repr__(self) -> str:
        from .addressing import int_to_ip

        return (
            f"Packet({self.kind.name} {int_to_ip(self.src)}:{self.sport}->"
            f"{int_to_ip(self.dst)}:{self.dport} proto={self.proto} "
            f"size={self.size} ts={self.ts:.6f})"
        )
