"""Packet, flow and addressing substrate shared by the simulator and RLIR."""

from .addressing import Prefix, PrefixTrie, int_to_ip, ip_to_int
from .flow import FlowKey, count_flows, flow_key_of, group_by_flow
from .headers import MAX_MARK, MARK_UNSET, clear_mark, decode_mark, encode_mark
from .packet import Packet, PacketKind

__all__ = [
    "Prefix",
    "PrefixTrie",
    "int_to_ip",
    "ip_to_int",
    "FlowKey",
    "count_flows",
    "flow_key_of",
    "group_by_flow",
    "MAX_MARK",
    "MARK_UNSET",
    "clear_mark",
    "decode_mark",
    "encode_mark",
    "Packet",
    "PacketKind",
]
