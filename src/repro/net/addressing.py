"""IPv4 addressing utilities and longest-prefix matching.

RLIR receivers identify the origin ToR switch of a regular packet by matching
its source address against the address blocks assigned to each ToR (paper,
Section 3.1: "the origin of regular packets can be easily identified by IP
address block assigned for hosts in each ToR switch. Thus, upstream RLI
receivers need to perform simple IP prefix matching").

Addresses are represented as plain ``int`` (host byte order) throughout the
library for speed; this module provides parsing, formatting, the
:class:`Prefix` value type and a binary-trie longest-prefix-match table
(:class:`PrefixTrie`).
"""

from __future__ import annotations

from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

__all__ = [
    "ip_to_int",
    "int_to_ip",
    "Prefix",
    "PrefixTrie",
]

_MAX_IPV4 = (1 << 32) - 1

V = TypeVar("V")


def ip_to_int(dotted: str) -> int:
    """Parse a dotted-quad IPv4 address into an integer.

    >>> ip_to_int("10.0.0.1")
    167772161
    """
    parts = dotted.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted-quad IPv4 address: {dotted!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {dotted!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Format an integer as a dotted-quad IPv4 address.

    >>> int_to_ip(167772161)
    '10.0.0.1'
    """
    if not 0 <= value <= _MAX_IPV4:
        raise ValueError(f"not a 32-bit value: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


class Prefix:
    """An IPv4 prefix (network address + mask length).

    The network address is canonicalized: host bits below the mask are
    cleared.  Instances are immutable, hashable and ordered by
    (network, length).
    """

    __slots__ = ("network", "length")

    def __init__(self, network: int, length: int):
        if not 0 <= length <= 32:
            raise ValueError(f"prefix length out of range: {length}")
        if not 0 <= network <= _MAX_IPV4:
            raise ValueError(f"network address not 32-bit: {network}")
        self.network = network & _mask(length)
        self.length = length

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` (a bare address means /32)."""
        if "/" in text:
            addr, _, length = text.partition("/")
            return cls(ip_to_int(addr), int(length))
        return cls(ip_to_int(text), 32)

    @property
    def mask(self) -> int:
        return _mask(self.length)

    def contains(self, address: int) -> bool:
        """Return True if *address* falls inside this prefix."""
        return (address & self.mask) == self.network

    def overlaps(self, other: "Prefix") -> bool:
        """Return True if the two prefixes share any address."""
        short = min(self.length, other.length)
        mask = _mask(short)
        return (self.network & mask) == (other.network & mask)

    def subprefixes(self) -> Tuple["Prefix", "Prefix"]:
        """Split into the two child prefixes one bit longer."""
        if self.length >= 32:
            raise ValueError("cannot split a /32")
        child_len = self.length + 1
        low = Prefix(self.network, child_len)
        high = Prefix(self.network | (1 << (32 - child_len)), child_len)
        return low, high

    def __contains__(self, address: int) -> bool:
        return self.contains(address)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Prefix)
            and self.network == other.network
            and self.length == other.length
        )

    def __lt__(self, other: "Prefix") -> bool:
        return (self.network, self.length) < (other.network, other.length)

    def __hash__(self) -> int:
        return hash((self.network, self.length))

    def __repr__(self) -> str:
        return f"Prefix({int_to_ip(self.network)}/{self.length})"

    def __str__(self) -> str:
        return f"{int_to_ip(self.network)}/{self.length}"


def _mask(length: int) -> int:
    return (_MAX_IPV4 << (32 - length)) & _MAX_IPV4 if length else 0


class _TrieNode(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: List[Optional["_TrieNode[V]"]] = [None, None]
        self.value: Optional[V] = None
        self.has_value = False


class PrefixTrie(Generic[V]):
    """Binary trie mapping IPv4 prefixes to values with longest-prefix match.

    This is the routing/classification table used both by simulated switches
    (downward routing in the fat-tree) and by RLIR receivers (identifying the
    origin ToR of a regular packet).

    >>> trie = PrefixTrie()
    >>> trie.insert(Prefix.parse("10.1.0.0/16"), "pod1")
    >>> trie.insert(Prefix.parse("10.1.2.0/24"), "tor2")
    >>> trie.lookup(ip_to_int("10.1.2.9"))
    'tor2'
    >>> trie.lookup(ip_to_int("10.1.9.9"))
    'pod1'
    """

    def __init__(self) -> None:
        self._root: _TrieNode[V] = _TrieNode()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert or replace the value for *prefix*."""
        node = self._root
        for bit in _bits(prefix.network, prefix.length):
            child = node.children[bit]
            if child is None:
                child = _TrieNode()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def lookup(self, address: int) -> Optional[V]:
        """Return the value of the longest matching prefix, or None."""
        node = self._root
        best: Optional[V] = node.value if node.has_value else None
        shift = 31
        while shift >= 0:
            node = node.children[(address >> shift) & 1]  # type: ignore[index]
            if node is None:
                break
            if node.has_value:
                best = node.value
            shift -= 1
        return best

    def lookup_exact(self, prefix: Prefix) -> Optional[V]:
        """Return the value stored at exactly *prefix*, or None."""
        node: Optional[_TrieNode[V]] = self._root
        for bit in _bits(prefix.network, prefix.length):
            if node is None:
                return None
            node = node.children[bit]
        if node is not None and node.has_value:
            return node.value
        return None

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        """Yield (prefix, value) pairs in trie order."""
        stack: List[Tuple[_TrieNode[V], int, int]] = [(self._root, 0, 0)]
        while stack:
            node, network, depth = stack.pop()
            if node.has_value:
                yield Prefix(network << (32 - depth) if depth else 0, depth), node.value  # type: ignore[misc]
            for bit in (1, 0):
                child = node.children[bit]
                if child is not None:
                    stack.append((child, (network << 1) | bit, depth + 1))


def _bits(network: int, length: int) -> Iterator[int]:
    for shift in range(31, 31 - length, -1):
        yield (network >> shift) & 1
