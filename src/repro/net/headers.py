"""Header-field encodings used by RLIR.

Packet marking (paper Section 3.1, "Downstream"): core/intermediate routers
stamp an identifier into the IP type-of-service (ToS) byte so that a
downstream RLIR receiver can tell which intermediate router a regular packet
traversed — "the type-of-service (ToS) field in the IP header could be used
to mark packets, similar to prior solutions for IP traceback".

The ToS byte is 8 bits.  We reserve the low two bits (the old ECN field) and
use the upper six bits (the DSCP field) to carry a small mark value, exactly
as a DSCP-remarking deployment would.  ``MARK_UNSET`` (0) means "not marked".
"""

from __future__ import annotations

__all__ = [
    "MARK_BITS",
    "MARK_UNSET",
    "MAX_MARK",
    "encode_mark",
    "decode_mark",
    "clear_mark",
]

MARK_BITS = 6
_MARK_SHIFT = 2  # DSCP occupies ToS bits 2..7
MARK_UNSET = 0
MAX_MARK = (1 << MARK_BITS) - 1  # 63 distinct marks; mark 0 = unset


def encode_mark(tos: int, mark: int) -> int:
    """Return *tos* with its DSCP bits replaced by *mark*.

    ``mark`` must be in ``[1, MAX_MARK]`` (0 is reserved for "unmarked").
    The ECN bits of *tos* are preserved.
    """
    if not 1 <= mark <= MAX_MARK:
        raise ValueError(f"mark out of range [1, {MAX_MARK}]: {mark}")
    return (tos & 0b11) | (mark << _MARK_SHIFT)


def decode_mark(tos: int) -> int:
    """Extract the mark from a ToS byte (``MARK_UNSET`` if unmarked)."""
    return (tos >> _MARK_SHIFT) & MAX_MARK


def clear_mark(tos: int) -> int:
    """Return *tos* with the mark bits cleared (ECN preserved)."""
    return tos & 0b11
