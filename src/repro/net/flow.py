"""Flow identification helpers.

A *flow* is the set of packets sharing a 5-tuple key, as in NetFlow/YAF.
Per-flow latency measurement (the whole point of RLI over LDA) aggregates
per-packet latency estimates across packets sharing a flow key (paper,
Section 2: "Obtaining per-flow measurements now is just a matter of
aggregating latency estimates across packets that share a given flow key").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, NamedTuple, Tuple

from .packet import Packet

__all__ = ["FlowKey", "flow_key_of", "group_by_flow", "count_flows"]


class FlowKey(NamedTuple):
    """5-tuple flow identifier (hashable, ordered)."""

    src: int
    dst: int
    sport: int
    dport: int
    proto: int

    @classmethod
    def of(cls, packet: Packet) -> "FlowKey":
        return cls(packet.src, packet.dst, packet.sport, packet.dport, packet.proto)

    def reversed(self) -> "FlowKey":
        """The key of the opposite direction of the same conversation."""
        return FlowKey(self.dst, self.src, self.dport, self.sport, self.proto)


def flow_key_of(packet: Packet) -> Tuple[int, int, int, int, int]:
    """Return the raw 5-tuple of *packet* (cheaper than FlowKey.of)."""
    return packet.flow_key


def group_by_flow(packets: Iterable[Packet]) -> Dict[Tuple[int, int, int, int, int], List[Packet]]:
    """Group packets by 5-tuple, preserving arrival order within each flow."""
    flows: Dict[Tuple[int, int, int, int, int], List[Packet]] = {}
    for packet in packets:
        flows.setdefault(packet.flow_key, []).append(packet)
    return flows


def count_flows(packets: Iterable[Packet]) -> int:
    """Number of distinct 5-tuples in *packets*."""
    return len({p.flow_key for p in packets})
