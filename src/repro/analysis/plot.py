"""ASCII plotting for terminal-first reporting.

The paper presents its results as CDF plots (Figure 4) and an x-y series
(Figure 5); the benches print the raw rows, and these helpers render the
same data as terminal plots so the *shape* — who dominates whom, where the
curves cross — is visible without leaving the console.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from .cdf import Ecdf

__all__ = ["ascii_cdf", "ascii_series"]

_MARKERS = "*o+x#@%&"


def _log_ticks(lo: float, hi: float, width: int) -> List[float]:
    lo = max(lo, 1e-12)
    hi = max(hi, lo * 10)
    llo, lhi = math.log10(lo), math.log10(hi)
    return [10 ** (llo + (lhi - llo) * i / (width - 1)) for i in range(width)]


def ascii_cdf(
    curves: Dict[str, Ecdf],
    width: int = 64,
    height: int = 16,
    x_lo: float = None,
    x_hi: float = None,
) -> str:
    """Render CDF curves on a log-x grid (the paper's Figure-4 style).

    Each series gets a marker; the legend maps markers to labels.
    """
    if not curves:
        raise ValueError("at least one curve required")
    if width < 8 or height < 4:
        raise ValueError("grid too small to plot")
    lo = x_lo if x_lo is not None else min(max(c.quantile(0.02), 1e-6) for c in curves.values())
    hi = x_hi if x_hi is not None else max(c.quantile(0.999) for c in curves.values())
    xs = _log_ticks(lo, hi, width)
    grid = [[" "] * width for _ in range(height)]
    for (label, curve), marker in zip(curves.items(), _MARKERS):
        for col, x in enumerate(xs):
            frac = curve.fraction_below(x)
            row = height - 1 - min(height - 1, int(frac * (height - 1) + 0.5))
            if grid[row][col] == " ":
                grid[row][col] = marker
    lines = []
    for i, row in enumerate(grid):
        frac = 1.0 - i / (height - 1)
        lines.append(f"{frac:4.2f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      {xs[0]:<12.3g}{'relative error (log)':^{max(0, width - 24)}}{xs[-1]:>12.3g}")
    for (label, _), marker in zip(curves.items(), _MARKERS):
        lines.append(f"      {marker} = {label}")
    return "\n".join(lines)


def ascii_series(
    points: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 14,
    x_label: str = "x",
) -> str:
    """Render x-y series on a linear grid (the paper's Figure-5 style)."""
    if not points:
        raise ValueError("at least one series required")
    if width < 8 or height < 4:
        raise ValueError("grid too small to plot")
    all_pts = [p for series in points.values() for p in series]
    if not all_pts:
        raise ValueError("series are empty")
    x_lo = min(x for x, _ in all_pts)
    x_hi = max(x for x, _ in all_pts)
    y_lo = min(y for _, y in all_pts)
    y_hi = max(y for _, y in all_pts)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for (label, series), marker in zip(points.items(), _MARKERS):
        for x, y in series:
            col = min(width - 1, int((x - x_lo) / (x_hi - x_lo) * (width - 1) + 0.5))
            row = height - 1 - min(height - 1, int((y - y_lo) / (y_hi - y_lo) * (height - 1) + 0.5))
            grid[row][col] = marker
    lines = []
    for i, row in enumerate(grid):
        y = y_hi - (y_hi - y_lo) * i / (height - 1)
        lines.append(f"{y:10.3g} |" + "".join(row))
    lines.append("           +" + "-" * width)
    lines.append(f"            {x_lo:<12.3g}{x_label:^{max(0, width - 24)}}{x_hi:>12.3g}")
    for (label, _), marker in zip(points.items(), _MARKERS):
        lines.append(f"            {marker} = {label}")
    return "\n".join(lines)
