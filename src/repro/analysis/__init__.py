"""Metrics, CDFs and text reporting used by tests, examples and benches."""

from .cdf import Ecdf
from .metrics import FlowErrorJoin, flow_mean_errors, flow_std_errors, relative_error
from .plot import ascii_cdf, ascii_series
from .report import format_cdf_series, format_table, pct, us

__all__ = [
    "ascii_cdf",
    "ascii_series",
    "Ecdf",
    "FlowErrorJoin",
    "flow_mean_errors",
    "flow_std_errors",
    "relative_error",
    "format_cdf_series",
    "format_table",
    "pct",
    "us",
]
