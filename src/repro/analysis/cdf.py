"""Empirical CDFs — the paper's Figure 4 presents error distributions as
CDFs over flows ("70% of flows have less than 10% relative errors...")."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

__all__ = ["Ecdf"]


class Ecdf:
    """Empirical cumulative distribution over a sample of values."""

    def __init__(self, values: Iterable[float]):
        self._values = np.sort(np.asarray(list(values), dtype=float))
        if self._values.size == 0:
            raise ValueError("cannot build a CDF from an empty sample")

    def __len__(self) -> int:
        return int(self._values.size)

    @property
    def values(self) -> np.ndarray:
        return self._values

    def fraction_below(self, x: float) -> float:
        """P(X <= x) — e.g. 'fraction of flows with relative error < 10%'."""
        return float(np.searchsorted(self._values, x, side="right")) / self._values.size

    def quantile(self, q: float) -> float:
        """Inverse CDF at q in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]: {q}")
        return float(np.quantile(self._values, q))

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    @property
    def mean(self) -> float:
        return float(self._values.mean())

    def curve(self, points: int = 50, log_x: bool = True) -> List[Tuple[float, float]]:
        """(x, CDF(x)) pairs for plotting/printing the Figure-4 style curve.

        With ``log_x`` the x grid is logarithmic between the 1st and 99.9th
        percentiles, matching the paper's log-scale error axes.
        """
        lo = max(self.quantile(0.01), 1e-9)
        hi = max(self.quantile(0.999), lo * 10)
        if log_x:
            xs = np.logspace(np.log10(lo), np.log10(hi), points)
        else:
            xs = np.linspace(lo, hi, points)
        return [(float(x), self.fraction_below(float(x))) for x in xs]

    def summary(self) -> dict:
        """Headline numbers used in the paper's prose."""
        return {
            "n": len(self),
            "median": self.median,
            "mean": self.mean,
            "p25": self.quantile(0.25),
            "p75": self.quantile(0.75),
            "p90": self.quantile(0.90),
            "frac_below_10pct": self.fraction_below(0.10),
        }
