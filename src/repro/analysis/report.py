"""Fixed-width text reporting for the benches.

The benches print the same rows/series the paper's figures plot; these
helpers keep the output uniform and diff-able (EXPERIMENTS.md records them).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_cdf_series", "pct", "us"]


def pct(x: float) -> str:
    """Format a fraction as a percentage."""
    return f"{100.0 * x:.1f}%"


def us(seconds: float) -> str:
    """Format seconds as microseconds."""
    return f"{seconds * 1e6:.1f}us"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width table with a header rule."""
    materialized: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_cdf_series(name: str, curve: Sequence[tuple], max_points: int = 12) -> str:
    """Render one CDF curve as a compact '(x -> F)' series line."""
    step = max(1, len(curve) // max_points)
    points = curve[::step]
    body = "  ".join(f"{x:.3g}->{f:.2f}" for x, f in points)
    return f"{name}: {body}"
