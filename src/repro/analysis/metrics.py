"""Error metrics joining estimated and true per-flow statistics.

"A performance metric is the relative error" (paper Section 4): for each
flow, |estimate − truth| / truth, computed over per-flow means
(Figure 4(a,c)) and standard deviations (Figure 4(b)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..core.flowstats import FlowStatsTable, StreamingStats

__all__ = [
    "relative_error",
    "flow_mean_errors",
    "flow_std_errors",
    "FlowErrorJoin",
]


def relative_error(estimate: float, truth: float) -> float:
    """|estimate − truth| / truth (truth must be positive)."""
    if truth <= 0:
        raise ValueError(f"relative error undefined for truth={truth}")
    return abs(estimate - truth) / truth


@dataclass
class FlowErrorJoin:
    """Join of estimated and true tables with coverage accounting.

    A plain value object (picklable, comparable by value) so condition
    summaries carrying it can cross process boundaries and be asserted
    byte-identical by the determinism suite.
    """

    errors: List[float]
    joined: int
    skipped_missing: int  # flows with no estimate
    skipped_zero: int  # flows where truth makes RE undefined

    def __repr__(self) -> str:
        return (
            f"FlowErrorJoin(joined={self.joined}, missing={self.skipped_missing}, "
            f"undefined={self.skipped_zero})"
        )


def _flow_errors(
    estimated: FlowStatsTable,
    true: FlowStatsTable,
    value_of: Callable[[StreamingStats], float],
    min_count: int = 1,
) -> FlowErrorJoin:
    errors: List[float] = []
    missing = 0
    zero = 0
    joined = 0
    for key, truth in true.items():
        if truth.count < min_count:
            continue
        est = estimated.get(key)
        if est is None:
            missing += 1
            continue
        t = value_of(truth)
        if t <= 0:
            zero += 1
            continue
        joined += 1
        errors.append(abs(value_of(est) - t) / t)
    return FlowErrorJoin(errors, joined, missing, zero)


def flow_mean_errors(estimated: FlowStatsTable, true: FlowStatsTable) -> FlowErrorJoin:
    """Per-flow relative errors of mean latency (Figure 4(a,c) metric)."""
    return _flow_errors(estimated, true, lambda s: s.mean)


def flow_std_errors(estimated: FlowStatsTable, true: FlowStatsTable) -> FlowErrorJoin:
    """Per-flow relative errors of latency standard deviation
    (Figure 4(b) metric).  Restricted to flows with >= 2 packets and
    positive true deviation, where the metric is defined."""
    return _flow_errors(estimated, true, lambda s: s.std, min_count=2)
