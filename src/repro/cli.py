"""Command-line interface: ``repro-rlir``.

Operator-facing entry points for the library's main workflows:

    repro-rlir generate-trace --packets 50000 --out regular.npz
    repro-rlir trace-info regular.npz
    repro-rlir convert regular.npz regular.csv
    repro-rlir fig4a [--scale 0.1] [--jobs 4] [--batch]   # likewise fig4b/fig4c/fig5
    repro-rlir fig4a --backend distributed --jobs 2       # embedded cluster
    repro-rlir placement --k 4 8 16
    repro-rlir extensions [multihop granularity ...] [--jobs 4 --shards 4 --batch]
    repro-rlir localize [--demux reverse-ecmp] [--jobs 4 --shards 4 --batch]
    repro-rlir cache info|clear
    repro-rlir fig4a --obs [--obs-trace] [--verbose]      # telemetry artifact
    repro-rlir obs artifacts/obs/run-*.json               # summarize one
    repro-rlir broker --listen 0.0.0.0:7077               # standing cluster…
    repro-rlir worker --connect HOST:7077                 # …one per machine
    repro-rlir fig4a --broker HOST:7077                   # …drive it
    repro-rlir broker-stats --connect HOST:7077           # live counters
    repro-rlir shape --listen :7177 --upstream HOST:7077 --latency-ms 500 \\
        --jitter-ms 200 --seed 1                          # degraded-link relay

Experiment subcommands print the same rows/series the paper's figures plot
(and the benches assert on), plus terminal CDF plots.  Their condition
sweeps run through :mod:`repro.runner`: ``--jobs N`` fans conditions out
over N worker processes, and results are memoized under ``.repro-cache/``
(keyed by config, code version, and seeds) unless ``--no-cache`` is given —
a repeated invocation answers from the cache in milliseconds.  For the
``extensions`` and ``localize`` studies ``--shards S`` additionally splits
each condition's per-flow estimation over S flow shards with bitwise
identical output (see ``repro.core.replay``).

``--backend`` picks the execution backend explicitly: ``serial``,
``process`` (the multiprocessing pool ``--jobs`` implies), or
``distributed`` — a broker/worker cluster (see ``repro.distrib``) that is
either embedded (spawning ``--jobs`` local workers) or external
(``--broker HOST:PORT``, pointing at a ``repro-rlir broker`` with
``repro-rlir worker`` processes attached from any number of machines).
Every backend prints byte-identical experiment output.

``--obs`` records zero-perturbation telemetry (``repro.obs``): spans,
counters, and histograms across the runner, cache, batch kernels, and —
on the distributed backend — the broker and workers, written as a JSON
artifact under ``artifacts/obs/`` when the command finishes
(``--obs-trace`` additionally emits a Perfetto-loadable Chrome trace).
Experiment stdout is byte-identical with ``--obs`` on: everything the
flag adds goes to stderr or the artifact file.  ``--verbose`` surfaces
once-per-sweep stderr notes when a ``--batch`` run silently falls back
to the object path (see ``docs/observability.md``).

``--batch`` runs each simulation on the columnar fast path — pipeline,
multihop chain, or layered fat-tree driver as the study demands — again
with byte-identical output (``docs/internals-batch.md``); the full
operator guide lives in ``docs/running.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the repro-rlir argument parser (see module docstring)."""
    parser = argparse.ArgumentParser(
        prog="repro-rlir",
        description="RLIR: flow-level latency measurements across routers "
                    "(Singh et al., HotICE 2011) — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate-trace", help="synthesize an OC-192-like trace")
    gen.add_argument("--packets", type=int, default=50_000)
    gen.add_argument("--duration", type=float, default=2.0)
    gen.add_argument("--mean-flow-pkts", type=float, default=15.0)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--src-base", default="10.1.0.0")
    gen.add_argument("--dst-base", default="10.2.0.0")
    gen.add_argument("--out", required=True, help=".npz or .csv path")

    info = sub.add_parser("trace-info", help="summarize a saved trace")
    info.add_argument("path")

    conv = sub.add_parser("convert", help="convert a trace between npz and csv")
    conv.add_argument("src")
    conv.add_argument("dst")

    for fig, description in (
        ("fig4a", "per-flow mean-latency accuracy CDFs"),
        ("fig4b", "per-flow std-dev accuracy CDFs"),
        ("fig4c", "bursty vs random cross-traffic accuracy"),
        ("fig5", "reference-packet loss interference sweep"),
    ):
        p = sub.add_parser(fig, help=f"reproduce {description}")
        p.add_argument("--scale", type=float, default=None,
                       help="workload scale (default: REPRO_SCALE or 1.0)")
        p.add_argument("--seed", type=int, default=42)
        p.add_argument("--no-plot", action="store_true")
        _add_batch_flags(p)
        _add_runner_flags(p)
        if fig == "fig5":
            p.add_argument("--seeds", type=int, default=3,
                           help="cross-traffic selections averaged per point")

    plc = sub.add_parser("placement", help="deployment-complexity table")
    plc.add_argument("--k", type=int, nargs="+", default=[4, 8, 16, 32, 48])
    plc.add_argument("--enumerate-up-to", type=int, default=16)
    _add_runner_flags(plc)

    cache = sub.add_parser("cache", help="inspect or clear the sweep result cache")
    cache.add_argument("action", choices=["info", "clear"])
    cache.add_argument("--cache-dir", default=None,
                       help="cache directory (default: .repro-cache)")
    cache.add_argument("--obs-dir", default=None, metavar="DIR",
                       help="obs artifact directory for the lifetime "
                            "hit/miss/put totals (default: artifacts/obs)")

    obsp = sub.add_parser("obs", help="summarize a recorded obs run artifact")
    obsp.add_argument("artifact", help="path to an artifacts/obs/run-*.json")
    obsp.add_argument("--no-validate", action="store_true",
                      help="skip schema validation of the artifact")

    bst = sub.add_parser("broker-stats",
                         help="query a running broker's metrics snapshot")
    bst.add_argument("--connect", required=True, metavar="HOST:PORT",
                     help="broker address to query")
    bst.add_argument("--authkey", default=None,
                     help="cluster auth secret (default: REPRO_DISTRIB_AUTHKEY "
                          "env or built-in)")
    bst.add_argument("--timeout", type=float, default=10.0,
                     help="seconds to wait for the stats reply (default 10)")
    bst.add_argument("--json", action="store_true",
                     help="print the raw snapshot as JSON")

    wrk = sub.add_parser("worker", help="run one distributed-sweep worker")
    wrk.add_argument("--connect", required=True, metavar="HOST:PORT",
                     help="broker address to join")
    wrk.add_argument("--cache-dir", default=None,
                     help="shared result cache to consult/publish (optional)")
    wrk.add_argument("--heartbeat", type=float, default=2.0,
                     help="seconds between liveness heartbeats (default 2)")
    wrk.add_argument("--authkey", default=None,
                     help="cluster auth secret (default: REPRO_DISTRIB_AUTHKEY "
                          "env or built-in)")
    wrk.add_argument("--reconnects", type=int, default=5,
                     help="consecutive failed reconnect attempts before "
                          "giving the broker up for dead (default 5)")

    brk = sub.add_parser("broker", help="run a standalone sweep broker")
    brk.add_argument("--listen", default="127.0.0.1:0", metavar="HOST:PORT",
                     help="bind address; port 0 picks one (default 127.0.0.1:0)")
    brk.add_argument("--heartbeat-timeout", type=float, default=10.0,
                     help="seconds of worker silence before requeueing its "
                          "jobs (default 10)")
    brk.add_argument("--max-retries", type=int, default=2,
                     help="chunk retry budget before structured failure "
                          "(default 2)")
    brk.add_argument("--authkey", default=None,
                     help="cluster auth secret (default: REPRO_DISTRIB_AUTHKEY "
                          "env or built-in)")
    brk.add_argument("--journal-dir", default=None, metavar="DIR",
                     help="persist queue state here so a restarted broker "
                          "resumes unfinished sweeps (restart with the same "
                          "port and the same DIR)")
    brk.add_argument("--max-hedges-per-chunk", type=int, default=1,
                     help="duplicate dispatches allowed per tail chunk stuck "
                          "on a slow worker; 0 disables hedging (default 1)")

    shp = sub.add_parser(
        "shape", help="run a degraded-link relay in front of a broker")
    shp.add_argument("--listen", default="127.0.0.1:0", metavar="HOST:PORT",
                     help="bind address; port 0 picks one (default 127.0.0.1:0)")
    shp.add_argument("--upstream", required=True, metavar="HOST:PORT",
                     help="broker (or other peer) to relay to")
    shp.add_argument("--latency-ms", type=float, default=0.0,
                     help="one-way delay added to every message (default 0)")
    shp.add_argument("--jitter-ms", type=float, default=0.0,
                     help="uniform ±jitter around the base latency (default 0)")
    shp.add_argument("--bandwidth-kbps", type=float, default=None,
                     help="throttle to this many kilobits/s (default: none)")
    shp.add_argument("--reorder-window", type=int, default=0,
                     help="messages may overtake at most this many others "
                          "(default 0: in-order)")
    shp.add_argument("--stutter-rate", type=float, default=0.0,
                     help="probability a message freezes the link (default 0)")
    shp.add_argument("--stutter-ms", type=float, default=0.0,
                     help="length of each stutter freeze (default 0)")
    shp.add_argument("--seed", type=int, default=0,
                     help="seed for jitter/reorder/stutter draws; same seed "
                          "and traffic replays the same degradation "
                          "(default 0)")

    ext = sub.add_parser("extensions", help="run the extension studies")
    ext.add_argument("studies", nargs="*", default=[], metavar="STUDY",
                     help=f"studies to run (default: all of "
                          f"{', '.join(EXTENSION_STUDIES)})")
    ext.add_argument("--scale", type=float, default=None,
                     help="workload scale (default: REPRO_SCALE or 1.0)")
    ext.add_argument("--seed", type=int, default=42,
                     help="trace seed for pipeline-based studies")
    ext.add_argument("--run-seed", type=int, default=0,
                     help="base seed for per-run random streams")
    _add_batch_flags(ext)
    _add_runner_flags(ext, shards=True)

    loc = sub.add_parser("localize", help="run the RLIR localization demo")
    loc.add_argument("--demux", choices=["marking", "reverse-ecmp"],
                     default="reverse-ecmp")
    loc.add_argument("--packets", type=int, default=20_000)
    loc.add_argument("--run-seed", type=int, default=0,
                     help="base seed for the scenario's traces")
    _add_batch_flags(loc)
    _add_runner_flags(loc, shards=True)

    return parser


def _positive_int(raw: str) -> int:
    value = int(raw)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer: {raw}")
    return value


# selectable study names; per-study dispatch lives in _cmd_extensions
EXTENSION_STUDIES = ("multihop", "granularity", "memory", "ptp", "tail",
                     "mesh", "aqm")


def _add_batch_flags(p: argparse.ArgumentParser) -> None:
    """The columnar fast-path toggle shared by every simulation subcommand."""
    p.add_argument("--batch", dest="batch", action="store_true",
                   help="columnar fast path (identical numbers, several "
                        "times the throughput)")
    p.add_argument("--no-batch", dest="batch", action="store_false",
                   help="per-object reference path (default)")
    p.set_defaults(batch=False)


def _add_runner_flags(p: argparse.ArgumentParser, shards: bool = False) -> None:
    """Sweep-runner knobs shared by every experiment subcommand."""
    p.add_argument("--jobs", type=_positive_int, default=1,
                   help="worker processes for the condition sweep (default 1)")
    p.add_argument("--backend", choices=("auto", "serial", "process", "distributed"),
                   default="auto",
                   help="execution backend (default auto: serial for --jobs 1, "
                        "a process pool otherwise; distributed runs a "
                        "broker/worker cluster)")
    p.add_argument("--broker", default=None, metavar="HOST:PORT",
                   help="drive an external distributed broker instead of "
                        "embedding one (implies --backend distributed)")
    p.add_argument("--no-cache", action="store_true",
                   help="skip the on-disk result cache")
    p.add_argument("--cache-dir", default=None,
                   help="result cache directory (default: .repro-cache)")
    if shards:
        p.add_argument("--shards", type=_positive_int, default=1,
                       help="flow shards per condition for the studies that "
                            "support within-condition sharding (default 1)")
    p.add_argument("--obs", action="store_true",
                   help="record spans/counters and write a run artifact "
                        "under artifacts/obs/ (stdout stays byte-identical)")
    p.add_argument("--obs-dir", default=None, metavar="DIR",
                   help="artifact directory for --obs (default: artifacts/obs)")
    p.add_argument("--obs-trace", action="store_true",
                   help="with --obs, also write a Chrome trace-event file "
                        "(Perfetto-loadable)")
    p.add_argument("--verbose", action="store_true",
                   help="stderr notes when a --batch sweep falls back to "
                        "the object path (once per site+reason per sweep)")


# ----------------------------------------------------------------------
# subcommand implementations (imports are local so --help stays instant)


def _cmd_generate_trace(args) -> int:
    from .traffic.csvio import save_csv
    from .traffic.synthetic import TraceConfig, generate_trace

    cfg = TraceConfig(
        duration=args.duration,
        n_packets=args.packets,
        mean_flow_pkts=args.mean_flow_pkts,
        src_base=args.src_base,
        dst_base=args.dst_base,
    )
    trace = generate_trace(cfg, seed=args.seed)
    if args.out.endswith(".csv"):
        save_csv(trace, args.out)
    else:
        trace.save(args.out)
    print(f"wrote {trace!r} -> {args.out}")
    return 0


def _load_any(path: str):
    from .traffic.csvio import load_csv
    from .traffic.trace import Trace

    return load_csv(path) if path.endswith(".csv") else Trace.load(path)


def _cmd_trace_info(args) -> int:
    trace = _load_any(args.path)
    print(f"name:      {trace.name}")
    print(f"packets:   {len(trace)}")
    print(f"flows:     {trace.n_flows}")
    print(f"duration:  {trace.duration:.3f}s")
    print(f"bytes:     {trace.total_bytes}")
    print(f"mean rate: {trace.mean_rate_bps() / 1e6:.2f} Mb/s")
    return 0


def _cmd_convert(args) -> int:
    from .traffic.csvio import save_csv

    trace = _load_any(args.src)
    if args.dst.endswith(".csv"):
        save_csv(trace, args.dst)
    else:
        trace.save(args.dst)
    print(f"converted {args.src} -> {args.dst} ({len(trace)} packets)")
    return 0


def _fig_config(args):
    from .experiments.config import ExperimentConfig

    return ExperimentConfig(scale=args.scale, seed=args.seed)


def _make_runner(args):
    from .runner import DEFAULT_CACHE_DIR, ResultCache, make_runner

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)
    backend = getattr(args, "backend", "auto")
    broker = getattr(args, "broker", None)
    progress = None
    if backend == "distributed" or broker is not None:
        from .distrib.progress import ProgressPrinter

        progress = ProgressPrinter()  # stderr only: stdout stays diffable
    return make_runner(backend=backend, jobs=args.jobs, cache=cache,
                       broker=broker, progress=progress)


def _print_fig4(curves, show_plot: bool, std: bool = False) -> None:
    from .analysis.plot import ascii_cdf
    from .analysis.report import format_table

    headers = ["series", "util", "true mean (us)", "median RE(mean)",
               "flows RE<10%", "median RE(std)", "refs"]
    print(format_table(headers, [c.summary_row() for c in curves]))
    if show_plot:
        curves_by_label = {
            c.label: (c.std_ecdf if std else c.mean_ecdf)
            for c in curves
            if (c.std_ecdf if std else c.mean_ecdf) is not None
        }
        print()
        print(ascii_cdf(curves_by_label))


def _cmd_fig4a(args) -> int:
    from .experiments.fig4 import run_fig4ab

    _print_fig4(run_fig4ab(_fig_config(args), runner=_make_runner(args),
                           batch=args.batch),
                not args.no_plot)
    return 0


def _cmd_fig4b(args) -> int:
    from .experiments.fig4 import run_fig4ab

    _print_fig4(run_fig4ab(_fig_config(args), runner=_make_runner(args),
                           batch=args.batch),
                not args.no_plot, std=True)
    return 0


def _cmd_fig4c(args) -> int:
    from .experiments.fig4 import run_fig4c

    _print_fig4(run_fig4c(_fig_config(args), runner=_make_runner(args),
                          batch=args.batch),
                not args.no_plot)
    return 0


def _cmd_fig5(args) -> int:
    from .analysis.plot import ascii_series
    from .analysis.report import format_table
    from .experiments.fig5 import run_fig5

    rows = run_fig5(_fig_config(args), n_seeds=args.seeds,
                    runner=_make_runner(args), batch=args.batch)
    print(format_table(
        ["target util", "measured util", "baseline loss", "static diff", "adaptive diff"],
        [[f"{r.target_util:.2f}", f"{r.measured_util:.3f}", f"{r.baseline_loss:.6f}",
          f"{r.static_diff:+.6f}", f"{r.adaptive_diff:+.6f}"] for r in rows],
    ))
    if not args.no_plot:
        print()
        print(ascii_series(
            {
                "static": [(r.measured_util, r.static_diff) for r in rows],
                "adaptive": [(r.measured_util, r.adaptive_diff) for r in rows],
            },
            x_label="bottleneck utilization",
        ))
    return 0


def _cmd_placement(args) -> int:
    from .analysis.report import format_table
    from .experiments.placement import run_placement

    rows = run_placement(ks=tuple(args.k), enumerate_up_to=args.enumerate_up_to,
                         runner=_make_runner(args))
    print(format_table(
        ["k", "iface pair", "ToR pair", "all pairs (paper)",
         "all pairs (enum)", "full deploy", "RLIR/full"],
        [r.as_list() for r in rows],
    ))
    return 0


def _cmd_localize(args) -> int:
    from .analysis.report import format_table, us
    from .experiments.extensions import run_localization_study

    report = run_localization_study(
        n_packets=args.packets,
        demux_method=args.demux,
        runner=_make_runner(args),
        shards=args.shards,
        run_seed=args.run_seed,
        batch=args.batch,
    )
    print(format_table(
        ["segment", "mean latency", "flows", "anomalous?"],
        [[s.name, us(s.mean), s.n_flows,
          "YES" if s.name in report.anomalous else ""] for s in report.summaries],
    ))
    print(f"\nculprit: {report.culprit}")
    return 0


def _cmd_extensions(args) -> int:
    from .analysis.report import format_table
    from .experiments.config import ExperimentConfig
    from .experiments import extensions as ext

    studies = list(args.studies) or list(EXTENSION_STUDIES)
    unknown = sorted(set(studies) - set(EXTENSION_STUDIES))
    if unknown:
        print(f"unknown studies: {', '.join(unknown)} "
              f"(choose from {', '.join(EXTENSION_STUDIES)})", file=sys.stderr)
        return 2
    cfg = ExperimentConfig(scale=args.scale, seed=args.seed)
    scale = cfg.scale
    runner = _make_runner(args)
    seed = args.run_seed
    batch = args.batch

    def banner(title):
        print(f"\n== {title} ==")

    if "multihop" in studies:
        rows = ext.run_multihop_ablation(cfg, runner=runner,
                                         shards=args.shards, run_seed=seed,
                                         batch=batch)
        banner("multihop: accuracy vs measured-segment length")
        print(format_table(
            ["hops", "median RE(mean)", "true mean (us)"],
            [[h, f"{m:.4f}", f"{lat * 1e6:.1f}"] for h, m, lat in rows]))
    if "granularity" in studies:
        rows = ext.run_granularity_comparison(
            n_packets=max(4000, int(20_000 * scale)), runner=runner,
            shards=args.shards, batch=batch)
        banner("granularity: full RLI vs RLIR")
        print(format_table(
            ["deployment", "instances", "segments", "culprit", "granularity"],
            [[r.name, r.instances, r.n_segments, r.culprit,
              "single queue" if r.pinned_to_single_queue else "segment"]
             for r in rows]))
    if "memory" in studies:
        rows = ext.run_memory_ablation(cfg, runner=runner, run_seed=seed,
                                       batch=batch)
        banner("memory: receiver flow-table bound")
        print(format_table(
            ["max flows", "retained", "evicted samples", "median RE"],
            [[b if b is not None else "unbounded", kept, ev, f"{m:.4f}"]
             for b, kept, ev, m in rows]))
    if "ptp" in studies:
        rows = ext.run_ptp_study(runner=runner, run_seed=seed)
        banner("ptp: residual sync error vs path jitter")
        print(format_table(
            ["jitter (us)", "mean |residual| (us)"],
            [[f"{j * 1e6:.1f}", f"{r * 1e6:.3f}"] for j, r in rows]))
    if "tail" in studies:
        results = ext.run_tail_accuracy(cfg, runner=runner, run_seed=seed,
                                        batch=batch)
        banner("tail: per-flow quantile accuracy")
        print(format_table(
            ["quantile", "flows", "median RE"],
            [[f"p{int(q * 100)}", len(e), f"{e.median:.4f}"]
             for q, e in sorted(results.items())]))
    if "mesh" in studies:
        rows = ext.run_mesh_study(
            n_packets_per_pair=max(5000, int(15_000 * scale)),
            runner=runner, run_seed=seed, batch=batch)
        banner("mesh: shared-core RLIR, three ToR pairs")
        print(format_table(
            ["pair", "flows (seg2)", "seg2 median RE", "e2e median RE"],
            [[pair, flows, f"{s2:.4f}", f"{e2:.4f}"]
             for pair, flows, s2, e2 in rows]))
    if "aqm" in studies:
        rows = ext.run_aqm_comparison(cfg, runner=runner, run_seed=seed,
                                      batch=batch)
        banner("aqm: tail-drop vs RED bottleneck")
        print(format_table(
            ["discipline", "regular loss", "median RE", "ref drops"],
            [[n, f"{loss:.5f}", f"{m:.4f}", d] for n, loss, m, d in rows]))
    return 0


def _obs_lifetime_totals(obs_dir: Optional[str]) -> dict:
    """Sum cache counters across every persisted obs run artifact.

    Unreadable or non-artifact files are skipped — the totals are a
    convenience aggregate, not a source of truth.
    """
    import glob
    import json
    import os

    from .obs import ARTIFACT_DIR

    totals = {"runs": 0, "cache.hit": 0.0, "cache.miss": 0.0, "cache.put": 0.0}
    pattern = os.path.join(obs_dir or ARTIFACT_DIR, "run-*.json")
    for path in sorted(glob.glob(pattern)):
        if path.endswith(".trace.json"):
            continue
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
            counters = doc["counters"]
        except (OSError, ValueError, KeyError, TypeError):
            continue
        if not isinstance(counters, dict):
            continue
        totals["runs"] += 1
        for key in ("cache.hit", "cache.miss", "cache.put"):
            value = counters.get(key, 0)
            if isinstance(value, (int, float)):
                totals[key] += value
    return totals


def _cmd_cache(args) -> int:
    from .runner import DEFAULT_CACHE_DIR, ResultCache

    cache = ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached results from {cache.root}")
        return 0
    stats = cache.stats()
    print(f"cache dir: {cache.root}")
    print(f"entries:   {stats['entries']}")
    if stats["orphans"]:
        print(f"orphans:   {stats['orphans']} interrupted writes (cache clear removes)")
    print(f"bytes:     {stats['bytes']}")
    print(f"code:      {cache.fingerprint[:16]}…")
    totals = _obs_lifetime_totals(args.obs_dir)
    if totals["runs"]:
        hits = int(totals["cache.hit"])
        misses = int(totals["cache.miss"])
        puts = int(totals["cache.put"])
        looked = hits + misses
        rate = f" ({hits / looked:.0%} hit rate)" if looked else ""
        print(f"lifetime:  {hits} hits / {misses} misses / {puts} puts "
              f"across {totals['runs']} recorded run(s){rate}")
    return 0


def _cmd_obs(args) -> int:
    import json

    from .analysis.report import format_table
    from .obs import span_summary, validate_artifact

    try:
        with open(args.artifact, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"repro-rlir obs: cannot read {args.artifact}: {exc}",
              file=sys.stderr)
        return 2
    if not args.no_validate:
        errors = validate_artifact(doc)
        if errors:
            print(f"repro-rlir obs: {args.artifact} fails schema validation:",
                  file=sys.stderr)
            for err in errors[:20]:
                print(f"  {err}", file=sys.stderr)
            return 1
    meta = doc.get("meta", {})
    spans = doc.get("spans", [])
    processes = sorted({rec["process"] for rec in spans})
    print(f"artifact:  {args.artifact}")
    print(f"schema:    {doc.get('schema')}")
    print(f"created:   {meta.get('created')}")
    print(f"command:   {' '.join(meta.get('argv', []))}")
    print(f"processes: {len(processes)} ({', '.join(processes)})"
          if processes else "processes: 0")
    summary = span_summary(spans)
    if summary:
        print()
        print(format_table(
            ["span", "count", "total (s)", "max (s)"],
            [[name, int(stat["count"]), f"{stat['total_s']:.4f}",
              f"{stat['max_s']:.4f}"] for name, stat in summary.items()],
        ))
    counters = doc.get("counters", {})
    if counters:
        print()
        print(format_table(
            ["counter", "value"],
            [[key, f"{value:g}"] for key, value in sorted(counters.items())],
        ))
    gauges = doc.get("gauges", {})
    if gauges:
        print()
        print(format_table(
            ["gauge", "value"],
            [[key, f"{value:g}"] for key, value in sorted(gauges.items())],
        ))
    hists = doc.get("histograms", {})
    if hists:
        print()
        print(format_table(
            ["histogram", "count", "mean", "min", "max"],
            [[key, int(h["count"]),
              f"{h['total'] / h['count']:.4g}" if h["count"] else "-",
              f"{h['min']:.4g}", f"{h['max']:.4g}"]
             for key, h in sorted(hists.items())],
        ))
    return 0


def _cmd_broker_stats(args) -> int:
    import json
    import time as _time
    from multiprocessing.connection import Client

    from .analysis.report import format_table
    from .distrib.protocol import authkey_from_env, parse_address
    from .runner.cache import code_fingerprint

    try:
        address = parse_address(args.connect)
    except ValueError as exc:
        print(f"repro-rlir broker-stats: error: {exc}", file=sys.stderr)
        return 2
    try:
        conn = Client(address, authkey=authkey_from_env(args.authkey))
    except (OSError, EOFError) as exc:
        print(f"repro-rlir broker-stats: cannot connect to {args.connect}: "
              f"{exc}", file=sys.stderr)
        return 1
    try:
        conn.send(("hello", "driver", code_fingerprint(), {"stats_only": True}))
        reply = conn.recv()
        if reply[0] == "reject":
            print(f"repro-rlir broker-stats: rejected: {reply[1]}",
                  file=sys.stderr)
            return 1
        conn.send(("stats",))
        deadline = _time.monotonic() + args.timeout
        snapshot = None
        while _time.monotonic() < deadline:
            if not conn.poll(0.2):
                continue
            message = conn.recv()
            if message[0] == "stats":
                snapshot = message[1]
                break
        try:
            conn.send(("bye",))
        except (OSError, ValueError):
            pass
    except (EOFError, ConnectionError, OSError) as exc:
        print(f"repro-rlir broker-stats: connection lost: {exc}",
              file=sys.stderr)
        return 1
    finally:
        conn.close()
    if snapshot is None:
        print(f"repro-rlir broker-stats: no stats reply within "
              f"{args.timeout}s (is the broker protocol 4+?)", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    print(f"broker:  {args.connect}")
    for section in ("counters", "gauges"):
        entries = snapshot.get(section, {})
        if entries:
            print()
            print(format_table(
                [section[:-1], "value"],
                [[key, f"{value:g}"]
                 for key, value in sorted(entries.items())],
            ))
    hists = snapshot.get("histograms", {})
    if hists:
        print()
        print(format_table(
            ["histogram", "count", "mean", "min", "max"],
            [[key, int(h["count"]),
              f"{h['total'] / h['count']:.4g}" if h["count"] else "-",
              f"{h['min']:.4g}", f"{h['max']:.4g}"]
             for key, h in sorted(hists.items())],
        ))
    return 0


def _cmd_worker(args) -> int:
    from .distrib.protocol import parse_address
    from .distrib.worker import worker_main

    try:
        parse_address(args.connect)
    except ValueError as exc:
        print(f"repro-rlir worker: error: {exc}", file=sys.stderr)
        return 2
    return worker_main(
        connect=args.connect,
        cache_dir=args.cache_dir,
        heartbeat=args.heartbeat,
        authkey=args.authkey,
        reconnects=args.reconnects,
    )


def _cmd_broker(args) -> int:
    from .distrib.broker import Broker
    from .distrib.protocol import authkey_from_env, format_address, parse_address
    from .runner.cache import code_fingerprint

    broker = Broker(
        address=parse_address(args.listen),
        authkey=authkey_from_env(args.authkey),
        heartbeat_timeout=args.heartbeat_timeout,
        max_retries=args.max_retries,
        journal_dir=args.journal_dir,
        max_hedges_per_chunk=args.max_hedges_per_chunk,
    )
    resumed = broker.sweep_count()
    print(f"broker listening on {format_address(broker.address)} "
          f"(code {code_fingerprint()[:12]}…)"
          + (f", resumed {resumed} journaled sweep(s)" if resumed else ""),
          flush=True)
    try:
        broker.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        broker.close()
    return 0


def _cmd_shape(args) -> int:
    from .distrib.protocol import format_address, parse_address
    from .distrib.shaping import LinkShape, ShapingProxy

    shape = LinkShape(
        latency=args.latency_ms / 1000.0,
        jitter=args.jitter_ms / 1000.0,
        # kilobits/s -> bytes/s
        bandwidth=(args.bandwidth_kbps * 125.0
                   if args.bandwidth_kbps else None),
        reorder_window=max(0, args.reorder_window),
        stutter_rate=args.stutter_rate,
        stutter_duration=args.stutter_ms / 1000.0,
    )
    proxy = ShapingProxy(
        upstream=parse_address(args.upstream),
        shape=shape,
        listen=parse_address(args.listen),
        seed=args.seed,
    )
    proxy.start()
    print(f"shaping {format_address(proxy.address)} -> {args.upstream} "
          f"({shape!r}, seed {args.seed})", flush=True)
    try:
        proxy.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        proxy.close()
    return 0


_COMMANDS = {
    "generate-trace": _cmd_generate_trace,
    "trace-info": _cmd_trace_info,
    "convert": _cmd_convert,
    "fig4a": _cmd_fig4a,
    "fig4b": _cmd_fig4b,
    "fig4c": _cmd_fig4c,
    "fig5": _cmd_fig5,
    "placement": _cmd_placement,
    "extensions": _cmd_extensions,
    "localize": _cmd_localize,
    "cache": _cmd_cache,
    "obs": _cmd_obs,
    "broker-stats": _cmd_broker_stats,
    "worker": _cmd_worker,
    "broker": _cmd_broker,
    "shape": _cmd_shape,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    broker = getattr(args, "broker", None)
    if broker is not None:
        from .distrib.protocol import parse_address
        from .runner.backends import validate_backend_options

        try:
            validate_backend_options(getattr(args, "backend", "auto"), broker)
            parse_address(broker)
        except ValueError as exc:
            parser.error(str(exc))
    obs_on = bool(getattr(args, "obs", False))
    if obs_on or getattr(args, "verbose", False):
        from repro import obs

        if obs_on:
            obs.enable(process="driver")
        if getattr(args, "verbose", False):
            obs.set_verbose(True)
    code = _COMMANDS[args.command](args)
    if obs_on:
        # after the command so the artifact sees the whole run; the path
        # note goes to stderr — experiment stdout must stay byte-identical
        # with --obs on (the obs-smoke CI lane diffs it)
        from repro import obs

        path = obs.write_artifact(
            meta={"command": args.command},
            out_dir=getattr(args, "obs_dir", None),
            chrome_trace=bool(getattr(args, "obs_trace", False)),
        )
        print(f"[repro.obs] wrote {path}", file=sys.stderr)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
