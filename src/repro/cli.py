"""Command-line interface: ``repro-rlir``.

Operator-facing entry points for the library's main workflows:

    repro-rlir generate-trace --packets 50000 --out regular.npz
    repro-rlir trace-info regular.npz
    repro-rlir convert regular.npz regular.csv
    repro-rlir fig4a [--scale 0.1] [--jobs 4]   # likewise fig4b/fig4c/fig5
    repro-rlir placement --k 4 8 16
    repro-rlir localize [--demux reverse-ecmp]
    repro-rlir cache info|clear

Experiment subcommands print the same rows/series the paper's figures plot
(and the benches assert on), plus terminal CDF plots.  Their condition
sweeps run through :mod:`repro.runner`: ``--jobs N`` fans conditions out
over N worker processes, and results are memoized under ``.repro-cache/``
(keyed by config, code version, and seeds) unless ``--no-cache`` is given —
a repeated invocation answers from the cache in milliseconds.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the repro-rlir argument parser (see module docstring)."""
    parser = argparse.ArgumentParser(
        prog="repro-rlir",
        description="RLIR: flow-level latency measurements across routers "
                    "(Singh et al., HotICE 2011) — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate-trace", help="synthesize an OC-192-like trace")
    gen.add_argument("--packets", type=int, default=50_000)
    gen.add_argument("--duration", type=float, default=2.0)
    gen.add_argument("--mean-flow-pkts", type=float, default=15.0)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--src-base", default="10.1.0.0")
    gen.add_argument("--dst-base", default="10.2.0.0")
    gen.add_argument("--out", required=True, help=".npz or .csv path")

    info = sub.add_parser("trace-info", help="summarize a saved trace")
    info.add_argument("path")

    conv = sub.add_parser("convert", help="convert a trace between npz and csv")
    conv.add_argument("src")
    conv.add_argument("dst")

    for fig, description in (
        ("fig4a", "per-flow mean-latency accuracy CDFs"),
        ("fig4b", "per-flow std-dev accuracy CDFs"),
        ("fig4c", "bursty vs random cross-traffic accuracy"),
        ("fig5", "reference-packet loss interference sweep"),
    ):
        p = sub.add_parser(fig, help=f"reproduce {description}")
        p.add_argument("--scale", type=float, default=None,
                       help="workload scale (default: REPRO_SCALE or 1.0)")
        p.add_argument("--seed", type=int, default=42)
        p.add_argument("--no-plot", action="store_true")
        _add_runner_flags(p)
        if fig == "fig5":
            p.add_argument("--seeds", type=int, default=3,
                           help="cross-traffic selections averaged per point")

    plc = sub.add_parser("placement", help="deployment-complexity table")
    plc.add_argument("--k", type=int, nargs="+", default=[4, 8, 16, 32, 48])
    plc.add_argument("--enumerate-up-to", type=int, default=16)
    _add_runner_flags(plc)

    cache = sub.add_parser("cache", help="inspect or clear the sweep result cache")
    cache.add_argument("action", choices=["info", "clear"])
    cache.add_argument("--cache-dir", default=None,
                       help="cache directory (default: .repro-cache)")

    loc = sub.add_parser("localize", help="run the RLIR localization demo")
    loc.add_argument("--demux", choices=["marking", "reverse-ecmp"],
                     default="reverse-ecmp")
    loc.add_argument("--packets", type=int, default=20_000)

    return parser


def _positive_int(raw: str) -> int:
    value = int(raw)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer: {raw}")
    return value


def _add_runner_flags(p: argparse.ArgumentParser) -> None:
    """Sweep-runner knobs shared by every experiment subcommand."""
    p.add_argument("--jobs", type=_positive_int, default=1,
                   help="worker processes for the condition sweep (default 1)")
    p.add_argument("--no-cache", action="store_true",
                   help="skip the on-disk result cache")
    p.add_argument("--cache-dir", default=None,
                   help="result cache directory (default: .repro-cache)")


# ----------------------------------------------------------------------
# subcommand implementations (imports are local so --help stays instant)


def _cmd_generate_trace(args) -> int:
    from .traffic.csvio import save_csv
    from .traffic.synthetic import TraceConfig, generate_trace

    cfg = TraceConfig(
        duration=args.duration,
        n_packets=args.packets,
        mean_flow_pkts=args.mean_flow_pkts,
        src_base=args.src_base,
        dst_base=args.dst_base,
    )
    trace = generate_trace(cfg, seed=args.seed)
    if args.out.endswith(".csv"):
        save_csv(trace, args.out)
    else:
        trace.save(args.out)
    print(f"wrote {trace!r} -> {args.out}")
    return 0


def _load_any(path: str):
    from .traffic.csvio import load_csv
    from .traffic.trace import Trace

    return load_csv(path) if path.endswith(".csv") else Trace.load(path)


def _cmd_trace_info(args) -> int:
    trace = _load_any(args.path)
    print(f"name:      {trace.name}")
    print(f"packets:   {len(trace)}")
    print(f"flows:     {trace.n_flows}")
    print(f"duration:  {trace.duration:.3f}s")
    print(f"bytes:     {trace.total_bytes}")
    print(f"mean rate: {trace.mean_rate_bps() / 1e6:.2f} Mb/s")
    return 0


def _cmd_convert(args) -> int:
    from .traffic.csvio import save_csv

    trace = _load_any(args.src)
    if args.dst.endswith(".csv"):
        save_csv(trace, args.dst)
    else:
        trace.save(args.dst)
    print(f"converted {args.src} -> {args.dst} ({len(trace)} packets)")
    return 0


def _fig_config(args):
    from .experiments.config import ExperimentConfig

    return ExperimentConfig(scale=args.scale, seed=args.seed)


def _make_runner(args):
    from .runner import DEFAULT_CACHE_DIR, ParallelRunner, ResultCache

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)
    return ParallelRunner(jobs=args.jobs, cache=cache)


def _print_fig4(curves, show_plot: bool, std: bool = False) -> None:
    from .analysis.plot import ascii_cdf
    from .analysis.report import format_table

    headers = ["series", "util", "true mean (us)", "median RE(mean)",
               "flows RE<10%", "median RE(std)", "refs"]
    print(format_table(headers, [c.summary_row() for c in curves]))
    if show_plot:
        curves_by_label = {
            c.label: (c.std_ecdf if std else c.mean_ecdf)
            for c in curves
            if (c.std_ecdf if std else c.mean_ecdf) is not None
        }
        print()
        print(ascii_cdf(curves_by_label))


def _cmd_fig4a(args) -> int:
    from .experiments.fig4 import run_fig4ab

    _print_fig4(run_fig4ab(_fig_config(args), runner=_make_runner(args)),
                not args.no_plot)
    return 0


def _cmd_fig4b(args) -> int:
    from .experiments.fig4 import run_fig4ab

    _print_fig4(run_fig4ab(_fig_config(args), runner=_make_runner(args)),
                not args.no_plot, std=True)
    return 0


def _cmd_fig4c(args) -> int:
    from .experiments.fig4 import run_fig4c

    _print_fig4(run_fig4c(_fig_config(args), runner=_make_runner(args)),
                not args.no_plot)
    return 0


def _cmd_fig5(args) -> int:
    from .analysis.plot import ascii_series
    from .analysis.report import format_table
    from .experiments.fig5 import run_fig5

    rows = run_fig5(_fig_config(args), n_seeds=args.seeds,
                    runner=_make_runner(args))
    print(format_table(
        ["target util", "measured util", "baseline loss", "static diff", "adaptive diff"],
        [[f"{r.target_util:.2f}", f"{r.measured_util:.3f}", f"{r.baseline_loss:.6f}",
          f"{r.static_diff:+.6f}", f"{r.adaptive_diff:+.6f}"] for r in rows],
    ))
    if not args.no_plot:
        print()
        print(ascii_series(
            {
                "static": [(r.measured_util, r.static_diff) for r in rows],
                "adaptive": [(r.measured_util, r.adaptive_diff) for r in rows],
            },
            x_label="bottleneck utilization",
        ))
    return 0


def _cmd_placement(args) -> int:
    from .analysis.report import format_table
    from .experiments.placement import run_placement

    rows = run_placement(ks=tuple(args.k), enumerate_up_to=args.enumerate_up_to,
                         runner=_make_runner(args))
    print(format_table(
        ["k", "iface pair", "ToR pair", "all pairs (paper)",
         "all pairs (enum)", "full deploy", "RLIR/full"],
        [r.as_list() for r in rows],
    ))
    return 0


def _cmd_localize(args) -> int:
    from .analysis.report import format_table, us
    from .core.injection import StaticInjection
    from .core.localization import localize
    from .core.rlir import RlirDeployment
    from .sim.topology import FatTree, LinkParams
    from .traffic.synthetic import TraceConfig, generate_fattree_trace

    ft = FatTree(4, LinkParams(rate_bps=100e6, buffer_bytes=256 * 1024))
    measured_pairs = [(ft.host_address(0, 0, h), ft.host_address(1, 0, g))
                      for h in range(2) for g in range(2)]
    incast_pairs = [(ft.host_address(p, e, h), ft.host_address(1, 0, g))
                    for p in (2, 3) for e in range(2) for h in range(2)
                    for g in range(2)]
    measured = generate_fattree_trace(
        TraceConfig(duration=1.0, n_packets=args.packets), measured_pairs, seed=1)
    incast = generate_fattree_trace(
        TraceConfig(duration=1.0, n_packets=3 * args.packets), incast_pairs, seed=2)
    deployment = RlirDeployment(ft, src=(0, 0), dst=(1, 0),
                                policy_factory=lambda: StaticInjection(50),
                                demux_method=args.demux)
    result = deployment.run([measured, incast])
    report = localize(result.segments(), factor=3.0, floor=5e-6, min_samples=20)
    print(format_table(
        ["segment", "mean latency", "flows", "anomalous?"],
        [[s.name, us(s.mean), s.n_flows,
          "YES" if s.name in report.anomalous else ""] for s in report.summaries],
    ))
    print(f"\nculprit: {report.culprit}")
    return 0


def _cmd_cache(args) -> int:
    from .runner import DEFAULT_CACHE_DIR, ResultCache

    cache = ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached results from {cache.root}")
        return 0
    stats = cache.stats()
    print(f"cache dir: {cache.root}")
    print(f"entries:   {stats['entries']}")
    if stats["orphans"]:
        print(f"orphans:   {stats['orphans']} interrupted writes (cache clear removes)")
    print(f"bytes:     {stats['bytes']}")
    print(f"code:      {cache.fingerprint[:16]}…")
    return 0


_COMMANDS = {
    "generate-trace": _cmd_generate_trace,
    "trace-info": _cmd_trace_info,
    "convert": _cmd_convert,
    "fig4a": _cmd_fig4a,
    "fig4b": _cmd_fig4b,
    "fig4c": _cmd_fig4c,
    "fig5": _cmd_fig5,
    "placement": _cmd_placement,
    "localize": _cmd_localize,
    "cache": _cmd_cache,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
