"""Context-manager spans with a one-attribute-check disabled fast path.

    from repro import obs

    with obs.span("stage1.scan"):
        ...

Spans record wall time via ``time.perf_counter`` into a thread-safe
per-process buffer.  When recording is disabled, :func:`span` returns a
shared no-op singleton after a single attribute check — no allocation,
no clock read, no lock.

This module is the *clock-bearing* surface of the observability layer:
reprolint's OBS001/OBS002 rules ban it from kernel scope
(``repro/sim``, ``repro/core``) so telemetry can never perturb
simulation state or float order.  Kernel code may only use the counter
surface in :mod:`repro.obs.metrics`.
"""

from __future__ import annotations

import threading
import time
from types import TracebackType
from typing import Any, Dict, List, Optional, Type

from repro.obs._state import _STATE


class _NoopSpan:
    """Shared do-nothing span handed out while recording is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        return False


_NOOP = _NoopSpan()

# Buffered span records for this process.  Guarded by ``_STATE.lock``;
# each record carries the per-process monotonic ``seq`` that makes the
# driver-side merge deterministic.
_SPANS: List[Dict[str, Any]] = []


class _Span:
    """Live span: reads the clock on enter/exit and buffers the record."""

    __slots__ = ("name", "_start")

    def __init__(self, name: str) -> None:
        self.name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        end = time.perf_counter()
        with _STATE.lock:
            _SPANS.append(
                {
                    "name": self.name,
                    "start": self._start,
                    "end": end,
                    "thread": threading.get_ident(),
                    "seq": _STATE.next_seq(),
                }
            )
        return False


def span(name: str) -> Any:
    """Open a wall-clock span; a no-op singleton when obs is disabled."""
    if not _STATE.enabled:
        return _NOOP
    return _Span(name)


def spans_snapshot() -> List[Dict[str, Any]]:
    """Copy of the buffered span records (telemetry-order, not merged)."""
    with _STATE.lock:
        return [dict(s) for s in _SPANS]


def drain_spans() -> List[Dict[str, Any]]:
    """Remove and return all buffered spans.

    The per-process ``seq`` counter is *not* reset, so records drained
    in separate batches from the same process still merge into a single
    total order by ``(process, seq)``.
    """
    with _STATE.lock:
        out = list(_SPANS)
        _SPANS.clear()
        return out


def reset_spans() -> None:
    """Drop buffered spans and restart the sequence counter (tests only)."""
    with _STATE.lock:
        _SPANS.clear()
        _STATE.seq = 0
