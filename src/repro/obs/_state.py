"""Process-wide observability state shared by trace/metrics/export.

The entire layer hangs off one module-level ``_ObsState`` instance so
that the *disabled* fast path costs a single attribute check
(``_STATE.enabled``) at every span/counter call site — the hard budget
ISSUE 9 sets for telemetry left compiled into hot paths.

Enablement is process-wide and inherited by children two ways:

* fork-based pool workers copy the module state directly;
* spawn-based distrib workers re-import this module and read the
  ``REPRO_OBS`` / ``REPRO_OBS_VERBOSE`` / ``REPRO_OBS_PROCESS``
  environment variables, which :func:`enable` keeps in sync.

Nothing in this module touches simulation state: the reprolint OBS
rules additionally guarantee that kernel scope (``repro/sim``,
``repro/core``) can only ever reach the counter surface
(:mod:`repro.obs.metrics`), never the clock-bearing span surface.
"""

from __future__ import annotations

import os
import threading

_TRUTHY = ("1", "true", "yes", "on")


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in _TRUTHY


class _ObsState:
    """Singleton holding the enabled/verbose flags and the span clock seq."""

    __slots__ = ("enabled", "verbose", "process_override", "lock", "seq")

    def __init__(self) -> None:
        self.enabled: bool = _env_flag("REPRO_OBS")
        self.verbose: bool = _env_flag("REPRO_OBS_VERBOSE")
        # Fixed label for this process's buffers; empty means "derive
        # from the live pid at drain time" so fork children do not
        # inherit the parent's label.
        self.process_override: str = os.environ.get("REPRO_OBS_PROCESS", "")
        self.lock: threading.Lock = threading.Lock()
        self.seq: int = 0

    def next_seq(self) -> int:
        """Monotonic per-process sequence number.  Caller holds ``lock``."""
        self.seq += 1
        return self.seq


_STATE = _ObsState()


def enabled() -> bool:
    """Whether the observability layer is recording in this process."""
    return _STATE.enabled


def verbose() -> bool:
    """Whether once-per-sweep fallback notes go to stderr."""
    return _STATE.verbose


def enable(*, process: str | None = None) -> None:
    """Turn recording on and propagate the flag to future child processes."""
    _STATE.enabled = True
    os.environ["REPRO_OBS"] = "1"
    if process is not None:
        set_process_label(process)


def disable() -> None:
    """Turn recording off (buffers are kept; drain them explicitly)."""
    _STATE.enabled = False
    os.environ.pop("REPRO_OBS", None)


def set_verbose(flag: bool = True) -> None:
    """Toggle the stderr fallback notes independently of recording."""
    _STATE.verbose = flag
    if flag:
        os.environ["REPRO_OBS_VERBOSE"] = "1"
    else:
        os.environ.pop("REPRO_OBS_VERBOSE", None)


def set_process_label(label: str) -> None:
    """Pin this process's buffer label (e.g. ``worker-3`` in distrib)."""
    _STATE.process_override = label
    os.environ["REPRO_OBS_PROCESS"] = label


def process_label() -> str:
    """Label stamped on this process's drained buffers.

    Computed live (not cached at import) so a forked pool worker labels
    its payloads with its own pid rather than the parent's.
    """
    return _STATE.process_override or f"pid-{os.getpid()}"
