"""repro.obs — zero-perturbation tracing, metrics, and run artifacts.

Stdlib-only observability layer (ISSUE 9).  Three surfaces:

* :mod:`repro.obs.trace` — ``with span("name"):`` wall-clock spans with
  a one-attribute-check no-op fast path when disabled;
* :mod:`repro.obs.metrics` — named counters/gauges/histograms plus the
  batch fast-path ``fallback(site, reason)`` helper;
* :mod:`repro.obs.export` — per-run JSON artifacts under
  ``artifacts/obs/``, Chrome trace-event export, and the deterministic
  ``(process, seq)`` merge of worker-process buffers.

Kernel scope (``repro/sim``, ``repro/core``) may import only
``repro.obs.metrics`` — enforced by reprolint's OBS rule family — so
telemetry can never touch simulation state, float order, or a clock
inside a kernel.  Everything else may import this package directly.

Enable with ``--obs`` on the CLI, ``REPRO_OBS=1`` in the environment,
or :func:`enable` programmatically.
"""

from repro.obs._state import (
    disable,
    enable,
    enabled,
    process_label,
    set_process_label,
    set_verbose,
    verbose,
)
from repro.obs.export import (
    ARTIFACT_DIR,
    SCHEMA_ID,
    build_artifact,
    drain_payload,
    fold_metrics,
    fold_payload,
    load_schema,
    merged_spans,
    reset_foreign,
    span_summary,
    validate_artifact,
    write_artifact,
    write_chrome_trace,
)
from repro.obs.metrics import (
    MetricsRegistry,
    count,
    drain_registry,
    fallback,
    gauge,
    merge_snapshot,
    observe,
    registry_snapshot,
    reset_metrics,
    reset_notes,
    taken,
)
from repro.obs.trace import drain_spans, reset_spans, span, spans_snapshot

__all__ = [
    "ARTIFACT_DIR",
    "SCHEMA_ID",
    "MetricsRegistry",
    "build_artifact",
    "count",
    "disable",
    "drain_payload",
    "drain_registry",
    "drain_spans",
    "enable",
    "enabled",
    "fallback",
    "fold_metrics",
    "fold_payload",
    "gauge",
    "load_schema",
    "merge_snapshot",
    "merged_spans",
    "observe",
    "process_label",
    "registry_snapshot",
    "reset_foreign",
    "reset_metrics",
    "reset_notes",
    "reset_spans",
    "set_process_label",
    "set_verbose",
    "span",
    "span_summary",
    "spans_snapshot",
    "taken",
    "validate_artifact",
    "verbose",
    "write_artifact",
    "write_chrome_trace",
]
