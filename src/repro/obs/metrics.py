"""Counters, gauges, and histograms — the clock-free metric surface.

This is the only observability module kernel scope (``repro/sim``,
``repro/core``) is allowed to import (reprolint OBS002): nothing here
reads a clock, allocates per-call when disabled, or returns a value the
caller could feed back into simulation control flow (OBS003 requires
kernel-scope call sites to be bare statements; every public function
here returns ``None``).

Counter naming: a label is folded into the flat key as ``name[label]``
so snapshots stay plain string→number dicts that merge by summation and
export to JSON without a nesting scheme.
"""

from __future__ import annotations

import sys
import threading
from typing import Dict, List, Optional, Set, Tuple

from repro.obs._state import _STATE

Snapshot = Dict[str, Dict[str, float]]


def _key(name: str, label: Optional[str]) -> str:
    return name if label is None else f"{name}[{label}]"


class MetricsRegistry:
    """Thread-safe named counters/gauges/histograms with merge support."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        # name -> [count, total, min, max]
        self._hists: Dict[str, List[float]] = {}

    def count(self, name: str, n: float = 1, *, label: Optional[str] = None) -> None:
        key = _key(name, label)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + n

    def gauge(self, name: str, value: float, *, label: Optional[str] = None) -> None:
        with self._lock:
            self._gauges[_key(name, label)] = value

    def observe(self, name: str, value: float, *, label: Optional[str] = None) -> None:
        key = _key(name, label)
        with self._lock:
            hist = self._hists.get(key)
            if hist is None:
                self._hists[key] = [1, value, value, value]
            else:
                hist[0] += 1
                hist[1] += value
                hist[2] = min(hist[2], value)
                hist[3] = max(hist[3], value)

    def snapshot(self) -> Snapshot:
        """JSON-ready copy: sorted keys, histograms as stat dicts."""
        with self._lock:
            return {
                "counters": {k: self._counters[k] for k in sorted(self._counters)},
                "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
                "histograms": {
                    k: {
                        "count": h[0],
                        "total": h[1],
                        "min": h[2],
                        "max": h[3],
                    }
                    for k, h in sorted(self._hists.items())
                },
            }

    def merge(self, snap: Snapshot, *, prefix: str = "") -> None:
        """Fold another registry's snapshot into this one.

        Counters and histogram stats combine; gauges are last-write-wins
        (the incoming snapshot overwrites).  ``prefix`` namespaces the
        incoming keys, e.g. ``prefix="broker."`` for a broker stats
        reply folded into the driver registry.
        """
        counters = snap.get("counters", {})
        gauges = snap.get("gauges", {})
        hists = snap.get("histograms", {})
        with self._lock:
            for key, val in counters.items():
                pkey = prefix + key
                self._counters[pkey] = self._counters.get(pkey, 0) + val
            for key, val in gauges.items():
                self._gauges[prefix + key] = val
            for key, stats in hists.items():
                pkey = prefix + key
                hist = self._hists.get(pkey)
                if hist is None:
                    self._hists[pkey] = [
                        stats["count"],
                        stats["total"],
                        stats["min"],
                        stats["max"],
                    ]
                else:
                    hist[0] += stats["count"]
                    hist[1] += stats["total"]
                    hist[2] = min(hist[2], stats["min"])
                    hist[3] = max(hist[3], stats["max"])

    def drain(self) -> Snapshot:
        """Snapshot then clear, for shipping worker buffers to the driver."""
        with self._lock:
            snap_counters = {k: self._counters[k] for k in sorted(self._counters)}
            snap_gauges = {k: self._gauges[k] for k in sorted(self._gauges)}
            snap_hists = {
                k: {"count": h[0], "total": h[1], "min": h[2], "max": h[3]}
                for k, h in sorted(self._hists.items())
            }
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()
        return {
            "counters": snap_counters,
            "gauges": snap_gauges,
            "histograms": snap_hists,
        }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()


# Default per-process registry behind the module-level gated functions.
_REGISTRY = MetricsRegistry()

# (site, reason) pairs already surfaced on stderr this sweep; cleared by
# reset_notes() at sweep start so each distinct fallback prints once
# per sweep, not once per job.
_SEEN_NOTES: Set[Tuple[str, str]] = set()


def count(name: str, n: float = 1, *, label: Optional[str] = None) -> None:
    """Increment a counter on the default registry (no-op when disabled)."""
    if not _STATE.enabled:
        return
    _REGISTRY.count(name, n, label=label)


def gauge(name: str, value: float, *, label: Optional[str] = None) -> None:
    """Set a gauge on the default registry (no-op when disabled)."""
    if not _STATE.enabled:
        return
    _REGISTRY.gauge(name, value, label=label)


def observe(name: str, value: float, *, label: Optional[str] = None) -> None:
    """Record a histogram sample on the default registry (no-op when disabled)."""
    if not _STATE.enabled:
        return
    _REGISTRY.observe(name, value, label=label)


def taken(site: str) -> None:
    """Count a batch fast-path success at ``site``."""
    if not _STATE.enabled:
        return
    _REGISTRY.count("batch.fastpath", label=site)


def fallback(site: str, reason: str) -> None:
    """Count a batch fast-path fallback at ``site`` with its reason.

    Under ``--verbose`` also emits a once-per-sweep stderr note so a
    user can tell that a nominally fast-path run was actually falling
    back to the object path.  stderr only — stdout is diffed by the
    determinism suites and must stay byte-identical with obs on.
    """
    state = _STATE
    if not (state.enabled or state.verbose):
        return
    if state.enabled:
        _REGISTRY.count("batch.fallback", label=f"{site}:{reason}")
    if state.verbose:
        note = (site, reason)
        if note not in _SEEN_NOTES:
            _SEEN_NOTES.add(note)
            print(
                f"[repro.obs] batch fast path fell back at {site}: {reason}",
                file=sys.stderr,
            )


def reset_notes() -> None:
    """Forget which fallback notes were printed (called at sweep start)."""
    _SEEN_NOTES.clear()


def registry_snapshot() -> Snapshot:
    """Snapshot of the default registry."""
    return _REGISTRY.snapshot()


def drain_registry() -> Snapshot:
    """Drain the default registry (ships worker buffers to the driver)."""
    return _REGISTRY.drain()


def merge_snapshot(snap: Snapshot, *, prefix: str = "") -> None:
    """Fold a foreign snapshot into the default registry."""
    _REGISTRY.merge(snap, prefix=prefix)


def reset_metrics() -> None:
    """Clear the default registry (tests only)."""
    _REGISTRY.reset()
    _SEEN_NOTES.clear()
