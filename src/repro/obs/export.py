"""Per-run JSON artifacts, Chrome trace export, and worker-buffer merge.

The driver process owns the artifact.  Worker processes (pool forks or
distrib workers) periodically *drain* their span/metric buffers into a
payload dict that travels back over the existing result channel; the
driver *folds* each payload, and at export time all buffers are merged
deterministically by ``(process, seq)`` — the per-process monotonic
sequence number stamped on every span record.

Artifacts land under ``artifacts/obs/run-*.json`` and validate against
the committed schema (``src/repro/obs/schema.json``) via the small
stdlib validator in this module.  ``write_chrome_trace`` emits the same
spans in Chrome trace-event form, loadable in Perfetto / chrome://tracing.

This module reads wall clocks and the filesystem, so like
:mod:`repro.obs.trace` it is banned from kernel scope (reprolint OBS002).
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

from repro.obs import metrics, trace
from repro.obs._state import _STATE, process_label

SCHEMA_ID = "repro.obs/v1"
ARTIFACT_DIR = os.path.join("artifacts", "obs")

# Payloads folded from other processes, guarded by the obs state lock.
_FOREIGN: List[Dict[str, Any]] = []


# -- worker-buffer shipping --------------------------------------------


def drain_payload() -> Dict[str, Any]:
    """Drain this process's buffers into a channel-ready payload dict."""
    return {
        "process": process_label(),
        "spans": trace.drain_spans(),
        "metrics": metrics.drain_registry(),
    }


def fold_payload(payload: Optional[Dict[str, Any]]) -> None:
    """Accept a payload drained in another process (driver side).

    ``None`` and malformed payloads are ignored — telemetry must never
    turn a healthy run into a failed one.
    """
    if not isinstance(payload, dict) or "process" not in payload:
        return
    with _STATE.lock:
        _FOREIGN.append(payload)


def fold_metrics(snap: Dict[str, Any], *, prefix: str = "") -> None:
    """Fold a bare metrics snapshot (e.g. a broker stats reply)."""
    if isinstance(snap, dict):
        metrics.merge_snapshot(snap, prefix=prefix)


def reset_foreign() -> None:
    """Drop folded payloads (tests only)."""
    with _STATE.lock:
        _FOREIGN.clear()


# -- deterministic merge ------------------------------------------------


def merged_spans() -> List[Dict[str, Any]]:
    """All spans — local and folded — ordered by ``(process, seq)``."""
    local = trace.spans_snapshot()
    label = process_label()
    out: List[Dict[str, Any]] = []
    for rec in local:
        rec = dict(rec)
        rec.setdefault("process", label)
        out.append(rec)
    with _STATE.lock:
        foreign = [dict(p) for p in _FOREIGN]
    for payload in foreign:
        proc = str(payload.get("process", "?"))
        for rec in payload.get("spans", []):
            rec = dict(rec)
            rec["process"] = proc
            out.append(rec)
    out.sort(key=lambda r: (r["process"], r["seq"]))
    return out


def merged_metrics() -> Dict[str, Any]:
    """Default-registry snapshot with all folded payload metrics summed in."""
    combined = metrics.MetricsRegistry()
    combined.merge(metrics.registry_snapshot())
    with _STATE.lock:
        foreign = list(_FOREIGN)
    for payload in foreign:
        snap = payload.get("metrics")
        if isinstance(snap, dict):
            combined.merge(snap)
    return combined.snapshot()


# -- artifact build / write --------------------------------------------


def build_artifact(meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Assemble the schema-shaped artifact document for this run."""
    doc_meta: Dict[str, Any] = {
        "created": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "argv": list(sys.argv),
        "pid": os.getpid(),
        "python": sys.version.split()[0],
    }
    if meta:
        doc_meta.update(meta)
    snap = merged_metrics()
    return {
        "schema": SCHEMA_ID,
        "meta": doc_meta,
        "spans": merged_spans(),
        "counters": snap["counters"],
        "gauges": snap["gauges"],
        "histograms": snap["histograms"],
    }


def write_artifact(
    meta: Optional[Dict[str, Any]] = None,
    *,
    out_dir: Optional[str] = None,
    chrome_trace: bool = False,
) -> str:
    """Write ``run-<stamp>-<pid>.json`` (and optionally its Chrome trace).

    Returns the artifact path.
    """
    target = out_dir or ARTIFACT_DIR
    os.makedirs(target, exist_ok=True)
    doc = build_artifact(meta)
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    path = os.path.join(target, f"run-{stamp}-{os.getpid()}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    if chrome_trace:
        write_chrome_trace(path[: -len(".json")] + ".trace.json", doc)
    return path


def write_chrome_trace(path: str, doc: Optional[Dict[str, Any]] = None) -> str:
    """Export spans as Chrome trace events (Perfetto-loadable).

    Each obs process becomes a trace pid with a ``process_name``
    metadata record.  Timestamps are each process's own
    ``perf_counter`` microseconds — cross-process offsets are not
    aligned, which Perfetto tolerates (tracks are still readable
    per-process).
    """
    if doc is None:
        doc = build_artifact()
    procs = sorted({rec["process"] for rec in doc["spans"]})
    pid_of = {proc: i + 1 for i, proc in enumerate(procs)}
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid_of[proc],
            "tid": 0,
            "args": {"name": proc},
        }
        for proc in procs
    ]
    for rec in doc["spans"]:
        events.append(
            {
                "ph": "X",
                "name": rec["name"],
                "pid": pid_of[rec["process"]],
                "tid": rec["thread"] % 100000,
                "ts": rec["start"] * 1e6,
                "dur": (rec["end"] - rec["start"]) * 1e6,
                "args": {"seq": rec["seq"]},
            }
        )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fh)
        fh.write("\n")
    return path


# -- summaries ----------------------------------------------------------


def span_summary(spans: Optional[List[Dict[str, Any]]] = None) -> Dict[str, Dict[str, float]]:
    """Per-stage totals: span name → {count, total_s, max_s}."""
    if spans is None:
        spans = merged_spans()
    out: Dict[str, Dict[str, float]] = {}
    for rec in spans:
        dur = rec["end"] - rec["start"]
        stat = out.get(rec["name"])
        if stat is None:
            out[rec["name"]] = {"count": 1, "total_s": dur, "max_s": dur}
        else:
            stat["count"] += 1
            stat["total_s"] += dur
            stat["max_s"] = max(stat["max_s"], dur)
    return {name: out[name] for name in sorted(out)}


# -- schema validation --------------------------------------------------


def load_schema() -> Dict[str, Any]:
    """The committed artifact schema shipped next to this module."""
    path = os.path.join(os.path.dirname(__file__), "schema.json")
    with open(path, encoding="utf-8") as fh:
        schema: Dict[str, Any] = json.load(fh)
    return schema


_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "integer": int,
    "number": (int, float),
}


def validate_artifact(
    doc: Any, schema: Optional[Dict[str, Any]] = None, _path: str = "$"
) -> List[str]:
    """Check ``doc`` against the (subset) JSON Schema; return error strings.

    Supports the keywords the committed schema uses — ``type``,
    ``const``, ``enum``, ``required``, ``properties``,
    ``additionalProperties`` (as a value schema), ``items`` — which
    keeps validation stdlib-only per the repo's no-new-deps rule.
    """
    if schema is None:
        schema = load_schema()
    errors: List[str] = []

    expected = schema.get("type")
    if expected is not None:
        pytype = _TYPES[expected]
        ok = isinstance(doc, pytype)
        # bool is an int subclass; a gauge of True is still wrong.
        if ok and expected in ("integer", "number") and isinstance(doc, bool):
            ok = False
        if not ok:
            return [f"{_path}: expected {expected}, got {type(doc).__name__}"]

    if "const" in schema and doc != schema["const"]:
        errors.append(f"{_path}: expected {schema['const']!r}, got {doc!r}")
    if "enum" in schema and doc not in schema["enum"]:
        errors.append(f"{_path}: {doc!r} not in {schema['enum']!r}")

    if isinstance(doc, dict):
        for req in schema.get("required", []):
            if req not in doc:
                errors.append(f"{_path}: missing required key {req!r}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, val in doc.items():
            if key in props:
                errors.extend(validate_artifact(val, props[key], f"{_path}.{key}"))
            elif isinstance(extra, dict):
                errors.extend(validate_artifact(val, extra, f"{_path}.{key}"))

    if isinstance(doc, list):
        items = schema.get("items")
        if isinstance(items, dict):
            for i, val in enumerate(doc):
                errors.extend(validate_artifact(val, items, f"{_path}[{i}]"))

    return errors
