"""N-switch chain pipeline: the Figure-3 environment across multiple hops.

The paper's simulator "lets packets from the trace experience processing and
queueing delays across multiple queues (equivalently, multiple
routers/switches)" and evaluates RLIR "in the presence of cross traffic
across multiple hops".  :class:`SwitchChain` generalizes
:class:`~repro.sim.pipeline.TwoSwitchPipeline` to a chain of N switches with
independent per-hop cross traffic: cross traffic for hop i joins just before
switch i's queue and leaves after it (classic single-hop interfering load),
while regular traffic (and the RLI reference stream) rides the whole chain.

The RLI sender taps the entry of switch 1; the receiver observes departures
from switch N.  The measured segment therefore spans all N queues — the
multi-router segment an RLIR deployment measures between two instrumented
interfaces.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..net.packet import Packet, PacketKind
from .queue import FifoQueue

__all__ = ["ChainConfig", "ChainResult", "SwitchChain"]


class ChainConfig:
    """Physical parameters of an N-switch chain (uniform by default)."""

    def __init__(
        self,
        n_hops: int = 3,
        rate_bps: float = 1e9,
        buffer_bytes: Optional[int] = 256 * 1024,
        proc_delay: float = 1e-6,
        rates_bps: Optional[Sequence[float]] = None,
    ):
        if n_hops < 1:
            raise ValueError(f"need at least one hop: {n_hops}")
        self.n_hops = n_hops
        self.rates_bps = list(rates_bps) if rates_bps is not None else [rate_bps] * n_hops
        if len(self.rates_bps) != n_hops:
            raise ValueError(
                f"rates_bps has {len(self.rates_bps)} entries for {n_hops} hops"
            )
        self.buffer_bytes = buffer_bytes
        self.proc_delay = proc_delay


class ChainResult:
    """Counters and per-hop queue statistics from one chain run."""

    def __init__(self, queues: List[FifoQueue], duration: float):
        self.queues = queues
        self.duration = duration
        self.refs_injected = 0
        self.regular_in = 0
        self.regular_out = 0

    def utilization(self, hop: int) -> float:
        return self.queues[hop].utilization(self.duration)

    @property
    def regular_loss_rate(self) -> float:
        return 1.0 - self.regular_out / self.regular_in if self.regular_in else 0.0


class SwitchChain:
    """Drive one run of the N-hop environment.

    ``cross_per_hop`` maps hop index → sorted ``(arrival, packet)`` cross
    arrivals for that hop (missing hops get none).  Sender and receiver
    follow the same protocols as :class:`TwoSwitchPipeline`.
    """

    def __init__(self, config: ChainConfig):
        self.config = config

    def run(
        self,
        regular: Iterable[Packet],
        cross_per_hop: Optional[Dict[int, List[Tuple[float, Packet]]]] = None,
        sender=None,
        receiver=None,
        duration: Optional[float] = None,
    ) -> ChainResult:
        cfg = self.config
        cross_per_hop = cross_per_hop or {}
        unknown = set(cross_per_hop) - set(range(cfg.n_hops))
        if unknown:
            raise ValueError(f"cross traffic for nonexistent hops: {sorted(unknown)}")
        queues = [
            FifoQueue(cfg.rates_bps[i], cfg.buffer_bytes, cfg.proc_delay, name=f"hop{i}")
            for i in range(cfg.n_hops)
        ]
        result = ChainResult(queues, duration or 0.0)

        # hop 0: regular traffic + sender tap + hop-0 cross traffic
        stream = self._first_hop(regular, queues[0], sender, cross_per_hop.get(0, []), result)

        # hops 1..N-1: merge the surviving through-stream with local cross
        for hop in range(1, cfg.n_hops):
            stream = self._middle_hop(stream, queues[hop], cross_per_hop.get(hop, []))

        last = 0.0
        for arrival, packet in stream:
            last = arrival
            if packet.kind == PacketKind.CROSS:
                continue
            if packet.is_regular:
                result.regular_out += 1
            if receiver is not None:
                receiver.observe(packet, arrival)
        if duration is None:
            result.duration = max(last, max(q.stats.last_departure for q in queues))
        return result

    # ------------------------------------------------------------------

    def _first_hop(self, regular, queue, sender, cross, result) -> List[Tuple[float, Packet]]:
        through: List[Tuple[float, Packet]] = []

        def regular_stream():
            for packet in regular:
                result.regular_in += 1
                yield packet.ts, packet

        out: List[Tuple[float, Packet]] = []
        merged = heapq.merge(regular_stream(), cross, key=lambda item: item[0])
        for arrival, packet in merged:
            departure = queue.offer(packet, arrival)
            if departure is None:
                continue
            if packet.kind == PacketKind.CROSS:
                continue  # hop-local cross exits after its hop
            packet.tap_time = arrival
            out.append((departure, packet))
            if sender is not None and packet.is_regular:
                refs = sender.on_regular(packet, arrival)
                if refs:
                    for ref in refs:
                        result.refs_injected += 1
                        ref_departure = queue.offer(ref, arrival)
                        if ref_departure is not None:
                            out.append((ref_departure, ref))
        out.sort(key=lambda item: item[0])  # refs interleave with regulars
        return out

    def _middle_hop(self, stream, queue, cross) -> List[Tuple[float, Packet]]:
        out: List[Tuple[float, Packet]] = []
        merged = heapq.merge(stream, cross, key=lambda item: item[0])
        for arrival, packet in merged:
            departure = queue.offer(packet, arrival)
            if departure is None or packet.kind == PacketKind.CROSS:
                continue
            out.append((departure, packet))
        return out
