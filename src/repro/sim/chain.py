"""N-switch chain pipeline: the Figure-3 environment across multiple hops.

The paper's simulator "lets packets from the trace experience processing and
queueing delays across multiple queues (equivalently, multiple
routers/switches)" and evaluates RLIR "in the presence of cross traffic
across multiple hops".  :class:`SwitchChain` generalizes
:class:`~repro.sim.pipeline.TwoSwitchPipeline` to a chain of N switches with
independent per-hop cross traffic: cross traffic for hop i joins just before
switch i's queue and leaves after it (classic single-hop interfering load),
while regular traffic (and the RLI reference stream) rides the whole chain.

The RLI sender taps the entry of switch 1; the receiver observes departures
from switch N.  The measured segment therefore spans all N queues — the
multi-router segment an RLIR deployment measures between two instrumented
interfaces.

Like the two-switch pipeline, the chain has a columnar fast path
(``ChainConfig(batch=True)`` / :meth:`SwitchChain.run_batch`): every hop is
driven by the exact running-``free_at`` queue scan
(:meth:`~repro.sim.queue.FifoQueue.offer_batch`), the first hop inlines the
sender's EWMA/1-and-n algebra (the
:meth:`~repro.core.sender.RliSender.fast_scan_state` contract) with the
hop's cross traffic interleaved into the same scan, and the receiver
consumes the final departure stream through
:meth:`~repro.core.receiver.RliReceiver.observe_batch` — **bitwise
identical** to the per-object path, with transparent fallback when a
component cannot be driven columnar.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..net.packet import Packet, PacketKind
from ..obs import metrics as obs_metrics
from ..traffic.batch import PacketBatch
from .queue import FifoQueue, _drop_free_threshold, _scatter_merge

__all__ = ["ChainConfig", "ChainResult", "SwitchChain"]


class ChainConfig:
    """Physical parameters of an N-switch chain (uniform by default).

    ``batch=True`` selects the columnar fast path: :meth:`SwitchChain.run`
    dispatches to :meth:`SwitchChain.run_batch` whenever the regular trace
    and every hop's cross traffic carry (or are)
    :class:`~repro.traffic.batch.PacketBatch` columns.  Results are
    bitwise-identical either way; non-batchable senders/receivers fall back
    to the per-object path inside ``run_batch``.
    """

    def __init__(
        self,
        n_hops: int = 3,
        rate_bps: float = 1e9,
        buffer_bytes: Optional[int] = 256 * 1024,
        proc_delay: float = 1e-6,
        rates_bps: Optional[Sequence[float]] = None,
        batch: bool = False,
    ):
        if n_hops < 1:
            raise ValueError(f"need at least one hop: {n_hops}")
        self.n_hops = n_hops
        self.rates_bps = list(rates_bps) if rates_bps is not None else [rate_bps] * n_hops
        if len(self.rates_bps) != n_hops:
            raise ValueError(
                f"rates_bps has {len(self.rates_bps)} entries for {n_hops} hops"
            )
        self.buffer_bytes = buffer_bytes
        self.proc_delay = proc_delay
        self.batch = batch


class ChainResult:
    """Counters and per-hop queue statistics from one chain run."""

    def __init__(self, queues: List[FifoQueue], duration: float):
        self.queues = queues
        self.duration = duration
        self.refs_injected = 0
        self.regular_in = 0
        self.regular_out = 0

    def utilization(self, hop: int) -> float:
        return self.queues[hop].utilization(self.duration)

    @property
    def regular_loss_rate(self) -> float:
        return 1.0 - self.regular_out / self.regular_in if self.regular_in else 0.0


class SwitchChain:
    """Drive one run of the N-hop environment.

    ``cross_per_hop`` maps hop index → sorted ``(arrival, packet)`` cross
    arrivals for that hop (missing hops get none).  Sender and receiver
    follow the same protocols as :class:`TwoSwitchPipeline`.  On the
    columnar path, ``cross_per_hop`` values are
    :class:`~repro.traffic.batch.PacketBatch` columns instead (``ts`` is
    the hop arrival time — the output of a cross model's
    ``arrivals_batch``).
    """

    def __init__(self, config: ChainConfig):
        self.config = config

    def run(
        self,
        regular: Iterable[Packet],
        cross_per_hop: Optional[Dict[int, List[Tuple[float, Packet]]]] = None,
        sender=None,
        receiver=None,
        duration: Optional[float] = None,
    ) -> ChainResult:
        if self.config.batch:
            reg_b = PacketBatch.coerce(regular)
            cross_b = self._coerce_cross(cross_per_hop)
            if reg_b is not None and cross_b is not None:
                return self.run_batch(reg_b, cross_b, sender=sender,
                                      receiver=receiver, duration=duration)
            if reg_b is None:
                obs_metrics.fallback("chain.run", "regular-not-columnar")
            else:
                obs_metrics.fallback("chain.run", "cross-not-columnar")
        cfg = self.config
        cross_per_hop = cross_per_hop or {}
        unknown = set(cross_per_hop) - set(range(cfg.n_hops))
        if unknown:
            raise ValueError(f"cross traffic for nonexistent hops: {sorted(unknown)}")
        queues = [
            FifoQueue(cfg.rates_bps[i], cfg.buffer_bytes, cfg.proc_delay, name=f"hop{i}")
            for i in range(cfg.n_hops)
        ]
        result = ChainResult(queues, duration or 0.0)

        # hop 0: regular traffic + sender tap + hop-0 cross traffic
        stream = self._first_hop(regular, queues[0], sender, cross_per_hop.get(0, []), result)

        # hops 1..N-1: merge the surviving through-stream with local cross
        for hop in range(1, cfg.n_hops):
            stream = self._middle_hop(stream, queues[hop], cross_per_hop.get(hop, []))

        last = 0.0
        for arrival, packet in stream:
            last = arrival
            if packet.kind == PacketKind.CROSS:
                continue
            if packet.is_regular:
                result.regular_out += 1
            if receiver is not None:
                receiver.observe(packet, arrival)
        if duration is None:
            result.duration = max(last, max(q.stats.last_departure for q in queues))
        return result

    # ------------------------------------------------------------------

    def _first_hop(self, regular, queue, sender, cross, result) -> List[Tuple[float, Packet]]:
        through: List[Tuple[float, Packet]] = []

        def regular_stream():
            for packet in regular:
                result.regular_in += 1
                yield packet.ts, packet

        out: List[Tuple[float, Packet]] = []
        merged = heapq.merge(regular_stream(), cross, key=lambda item: item[0])
        for arrival, packet in merged:
            departure = queue.offer(packet, arrival)
            if departure is None:
                continue
            if packet.kind == PacketKind.CROSS:
                continue  # hop-local cross exits after its hop
            packet.tap_time = arrival
            out.append((departure, packet))
            if sender is not None and packet.is_regular:
                refs = sender.on_regular(packet, arrival)
                if refs:
                    for ref in refs:
                        result.refs_injected += 1
                        ref_departure = queue.offer(ref, arrival)
                        if ref_departure is not None:
                            out.append((ref_departure, ref))
        out.sort(key=lambda item: item[0])  # refs interleave with regulars
        return out

    def _middle_hop(self, stream, queue, cross) -> List[Tuple[float, Packet]]:
        out: List[Tuple[float, Packet]] = []
        merged = heapq.merge(stream, cross, key=lambda item: item[0])
        for arrival, packet in merged:
            departure = queue.offer(packet, arrival)
            if departure is None or packet.kind == PacketKind.CROSS:
                continue
            out.append((departure, packet))
        return out

    # ------------------------------------------------------------------
    # columnar fast path

    def _coerce_cross(self, cross_per_hop) -> Optional[Dict[int, PacketBatch]]:
        """Per-hop cross traffic as batches, or None if any hop cannot."""
        out: Dict[int, PacketBatch] = {}
        for hop, cross in (cross_per_hop or {}).items():
            if cross is None or (isinstance(cross, (list, tuple)) and not cross):
                out[hop] = PacketBatch.empty()
                continue
            batch = PacketBatch.coerce(cross)
            if batch is None:
                return None
            out[hop] = batch
        return out

    def run_batch(
        self,
        regular,
        cross_per_hop=None,
        sender=None,
        receiver=None,
        duration: Optional[float] = None,
    ) -> ChainResult:
        """Run the chain on columnar packet batches.

        Accepts a time-sorted :class:`~repro.traffic.batch.PacketBatch` (or
        batch-backed :class:`~repro.traffic.trace.Trace`) of regular
        traffic and a ``hop -> PacketBatch`` map of cross traffic whose
        ``ts`` column is the hop arrival time.  Results are
        **bitwise-identical** to :meth:`run` on the materialized packets:
        every hop applies the same per-packet float operations in the same
        order (the first hop's scan interleaves cross arrivals and the
        inlined sender algebra exactly as the object path's sorted merge
        does), and the receiver folds the final departure stream with
        identical estimates, tables, counters and observation-log events.

        The fast path needs a batch-capable sender (or none) and receiver
        (or none); anything else falls back to the per-object reference
        path with identical numbers.
        """
        reg = PacketBatch.coerce(regular)
        if reg is None:
            raise TypeError(
                f"run_batch needs a PacketBatch or batch-backed Trace, got "
                f"{type(regular).__name__}")
        cross = self._coerce_cross(cross_per_hop)
        if cross is None:
            raise TypeError("cross_per_hop values must be PacketBatch columns")
        cfg = self.config
        unknown = set(cross) - set(range(cfg.n_hops))
        if unknown:
            raise ValueError(f"cross traffic for nonexistent hops: {sorted(unknown)}")
        blocker = self._fast_path_blocker(sender, receiver, reg, cross)
        if blocker is not None:
            obs_metrics.fallback("chain.run_batch", blocker)
            cross_pairs = {
                hop: [(p.ts, p) for p in batch.to_packets()]
                for hop, batch in cross.items()
            }
            config = ChainConfig(cfg.n_hops, buffer_bytes=cfg.buffer_bytes,
                                 proc_delay=cfg.proc_delay,
                                 rates_bps=cfg.rates_bps, batch=False)
            return SwitchChain(config).run(
                reg.to_packets(), cross_pairs, sender=sender,
                receiver=receiver, duration=duration)
        obs_metrics.taken("chain.run_batch")

        queues = [
            FifoQueue(cfg.rates_bps[i], cfg.buffer_bytes, cfg.proc_delay, name=f"hop{i}")
            for i in range(cfg.n_hops)
        ]
        result = ChainResult(queues, duration or 0.0)
        result.regular_in = len(reg)

        stream = self._first_hop_batch(reg, cross.get(0), queues[0], sender,
                                       result)
        for hop in range(1, cfg.n_hops):
            stream = self._middle_hop_batch(stream, cross.get(hop),
                                            queues[hop])
        time_s, size_s, kind_s, hidx_s, refslot_s, ref_objs = stream

        result.regular_out = int(np.count_nonzero(
            kind_s == int(PacketKind.REGULAR)))
        last = float(time_s[-1]) if len(time_s) else 0.0
        if receiver is not None:
            out_refs = [ref_objs[s] for s in refslot_s[refslot_s >= 0].tolist()]
            receiver.observe_batch(time_s, kind_s, reg, hidx_s, None, out_refs)
        if duration is None:
            result.duration = max(last, max(q.stats.last_departure for q in queues))
        return result

    def _fast_path_blocker(self, sender, receiver, reg, cross) -> Optional[str]:
        """Why the run can't be driven columnar — ``None`` when it can.

        The reason string feeds the ``batch.fallback`` counter and the
        ``--verbose`` once-per-sweep note.
        """
        if sender is not None and not (
            getattr(sender, "batch_capable", False)
            and hasattr(sender, "fast_scan_state")
        ):
            return "sender-not-batch-capable"
        if receiver is not None and not (
            getattr(receiver, "batch_capable", False)
            and hasattr(receiver, "observe_batch")
        ):
            return "receiver-not-batch-capable"
        # the fast path hard-codes kinds: regular stream all REGULAR,
        # cross streams all CROSS (anything else would reach the receiver)
        if len(reg) and not np.all(reg.kind == int(PacketKind.REGULAR)):
            return "mixed-regular-kinds"
        for batch in cross.values():
            if len(batch) and not np.all(batch.kind == int(PacketKind.CROSS)):
                return "mixed-cross-kinds"
        return None

    def _merge_with_cross(self, time_s, size_s, kind_s, hidx_s, refslot_s,
                          crs: Optional[PacketBatch]):
        """Sorted-merge a through-stream with one hop's cross columns.

        Both inputs are time-sorted; two ``searchsorted`` passes give each
        element its merged position with ``heapq.merge``'s tie rule (the
        through-stream is the earlier iterable, so its entries precede
        coincident cross arrivals; original order within each stream).
        """
        if crs is None or not len(crs):
            return time_s, size_s, kind_s, hidx_s, refslot_s
        n = len(time_s)
        m = len(crs)
        pos_s = np.arange(n) + np.searchsorted(crs.ts, time_s, side="left")
        pos_c = np.arange(m) + np.searchsorted(time_s, crs.ts, side="right")
        time_m = _scatter_merge(time_s, crs.ts, pos_s, pos_c, np.float64)
        size_m = _scatter_merge(size_s, crs.size, pos_s, pos_c, np.int64)
        total = n + m
        kind_m = np.full(total, int(PacketKind.CROSS), dtype=np.int64)
        kind_m[pos_s] = kind_s
        hidx_m = np.full(total, -1, dtype=np.int64)
        hidx_m[pos_s] = hidx_s
        refslot_m = np.full(total, -1, dtype=np.int64)
        refslot_m[pos_s] = refslot_s
        return time_m, size_m, kind_m, hidx_m, refslot_m

    def _first_hop_batch(self, reg: PacketBatch, crs: Optional[PacketBatch],
                         queue: FifoQueue, sender, result):
        """Columnar first hop: queue scan + inline reference injection.

        The scan walks the sorted merge of the regular and cross columns,
        applying the exact float-op sequence of :meth:`FifoQueue.offer` per
        row — with the sender's EWMA/1-and-n algebra inlined for regular
        rows only, exactly like per-packet ``on_regular`` calls — and folds
        the same queue statistics in the same interleaved order, so
        ``queue`` ends bitwise-identical to the per-object hop.  Returns
        the through-stream (departure-time-sorted parallel arrays) with
        cross rows removed.
        """
        n = len(reg)
        hidx0 = np.arange(n, dtype=np.int64)
        refslot0 = np.full(n, -1, dtype=np.int64)
        kind0 = np.full(n, int(PacketKind.REGULAR), dtype=np.int64)
        time_m, size_m, kind_m, hidx_m, refslot_m = self._merge_with_cross(
            reg.ts, reg.size, kind0, hidx0, refslot0, crs)
        total_m = len(time_m)

        if sender is None:
            departures, accepted = queue.offer_batch(time_m, size_m)
            keep = accepted & (kind_m != int(PacketKind.CROSS))
            return (departures[keep], size_m[keep], kind_m[keep],
                    hidx_m[keep], refslot_m[keep], [])

        proc = queue.proc_delay
        rate_Bps = queue.rate_Bps
        buffer_bytes = queue.buffer_bytes
        ts_l = time_m.tolist()
        t_l = (time_m + proc).tolist()
        svc_l = (size_m / rate_Bps).tolist()
        size_l = size_m.tolist()
        iscross_l = (kind_m == int(PacketKind.CROSS)).tolist()

        # scan state: the free_at recurrence + the inlined sender scalars
        # (see TwoSwitchPipeline._stage1_batch — same contract, plus the
        # interleaved cross rows that advance the queue but not the sender)
        fa = queue._free_at
        ref_dropped = 0
        bytes_drop = 0
        ref_arrivals = 0
        ref_bytes_in = 0
        refs_injected = 0

        drop_idx: List[int] = []
        acc_dep: List[float] = []
        n_acc = 0
        ref_pos: List[int] = []
        ref_dep: List[float] = []
        ref_objs: List[Packet] = []
        dep_append = acc_dep.append

        utilization = sender.utilization
        seen_any, wstart, wbytes, estimate, count, has_class0 = sender.fast_scan_state()
        window = utilization.window
        alpha = utilization.alpha
        capacity = utilization._capacity_per_window
        policy_gap = sender.policy.gap
        make_reference = sender.make_reference
        gap = policy_gap(estimate)
        regulars_seen = 0

        if buffer_bytes is None:
            threshold = math.inf  # no tail drop: every arrival is safe
        else:
            threshold = _drop_free_threshold(
                buffer_bytes, int(size_m.max()) if total_m else 0, rate_Bps)
        for i, (now, t, svc, size) in enumerate(zip(ts_l, t_l, svc_l, size_l)):
            # same float ops as FifoQueue.offer (see offer_batch's arms)
            backlog = fa - t
            if backlog > threshold:
                clamped = backlog * rate_Bps if backlog > 0.0 else 0.0
                if clamped + size > buffer_bytes:
                    drop_idx.append(i)
                    bytes_drop += size
                    continue
                fa = (t if t > fa else fa) + svc
            elif backlog > 0.0:
                fa = fa + svc
            else:
                fa = t + svc
            n_acc += 1
            dep_append(fa)
            if iscross_l[i]:
                continue  # cross advances the queue but not the sender
            # --- inlined sender observation (utilization EWMA + 1-and-n)
            if not seen_any:
                wstart = now - (now % window)
                seen_any = True
            wend = wstart + window
            if now >= wend:
                while True:
                    sample = wbytes / capacity
                    if sample > 1.0:
                        sample = 1.0  # min(1.0, sample)
                    estimate += alpha * (sample - estimate)
                    wbytes = 0
                    wstart = wend
                    wend = wstart + window
                    if now < wend:
                        break
                gap = policy_gap(estimate)
            wbytes += size
            if not has_class0:
                continue
            regulars_seen += 1
            count += 1
            if count < gap:
                continue
            count = 0
            ref = make_reference(0, now)
            # inject right behind the trigger: same queue float ops
            refs_injected += 1
            rsize = ref.size
            ref_arrivals += 1
            ref_bytes_in += rsize
            rt = now + proc
            if buffer_bytes is not None:
                backlog = fa - rt
                backlog = backlog * rate_Bps if backlog > 0.0 else 0.0
                if backlog + rsize > buffer_bytes:
                    ref_dropped += 1
                    bytes_drop += rsize
                    ref.dropped = True
                    continue
            fa = (rt if rt > fa else fa) + rsize / rate_Bps
            ref.hops += 1
            ref_pos.append(n_acc + len(ref_objs))
            ref_dep.append(fa)
            ref_objs.append(ref)

        sender.fast_scan_commit(seen_any, wstart, wbytes, estimate, count,
                                regulars_seen)
        result.refs_injected = refs_injected
        queue._free_at = fa
        stats = queue.stats
        dropped = len(drop_idx) + ref_dropped
        bytes_in = (int(size_m.sum()) if total_m else 0) + ref_bytes_in  # reprolint: disable=BATCH003 -- int64 byte counter; integer addition is exact in any order
        arrivals = total_m + ref_arrivals
        stats.arrivals += arrivals
        stats.bytes_in += bytes_in
        stats.accepted += arrivals - dropped
        stats.dropped += dropped
        stats.bytes_accepted += bytes_in - bytes_drop
        stats.bytes_dropped += bytes_drop

        # assemble the acceptance-order arrays (merged survivors with the
        # accepted references spliced in at their recorded positions)
        n_ref = len(ref_objs)
        total = n_acc + n_ref
        is_ref = np.zeros(total, dtype=bool)
        if n_ref:
            is_ref[np.asarray(ref_pos, dtype=np.intp)] = True
        is_row = ~is_ref
        if drop_idx:
            acc_rows = np.delete(np.arange(total_m, dtype=np.int64), drop_idx)
        else:
            acc_rows = np.arange(total_m, dtype=np.int64)
        time_a = np.empty(total, dtype=np.float64)
        size_a = np.empty(total, dtype=np.int64)
        kind_a = np.empty(total, dtype=np.int64)
        hidx_a = np.full(total, -1, dtype=np.int64)
        refslot_a = np.full(total, -1, dtype=np.int64)
        time_a[is_row] = acc_dep
        size_a[is_row] = size_m[acc_rows]
        kind_a[is_row] = kind_m[acc_rows]
        hidx_a[is_row] = hidx_m[acc_rows]
        if n_ref:
            time_a[is_ref] = ref_dep
            size_a[is_ref] = [r.size for r in ref_objs]
            kind_a[is_ref] = int(PacketKind.REFERENCE)
            refslot_a[is_ref] = np.arange(n_ref, dtype=np.int64)

        # fold the delay statistics in acceptance order, exactly as
        # per-packet offers would have (explicit loop: see offer_batch)
        if total:
            arr_a = np.empty(total, dtype=np.float64)
            arr_a[is_row] = time_m[acc_rows]
            if n_ref:
                arr_a[is_ref] = [r.ts for r in ref_objs]
            delay_l = (time_a - arr_a).tolist()
            total_delay = stats.total_delay
            for delay in delay_l:
                total_delay += delay
            stats.total_delay = total_delay
            peak = max(delay_l)
            if peak > stats.max_delay:
                stats.max_delay = peak
            stats.last_departure = float(time_a[-1])

        keep = kind_a != int(PacketKind.CROSS)
        return (time_a[keep], size_a[keep], kind_a[keep], hidx_a[keep],
                refslot_a[keep], ref_objs)

    def _middle_hop_batch(self, stream, crs: Optional[PacketBatch],
                          queue: FifoQueue):
        """Columnar middle hop: merge with local cross, scan, strip cross.

        ``offer_batch`` applies the identical per-row float ops and stats
        folds, so each hop's queue ends bitwise-identical to per-packet
        offers; reference-packet bookkeeping (``hops``/``dropped``) is
        applied to the few reference objects from the acceptance mask.
        """
        time_s, size_s, kind_s, hidx_s, refslot_s, ref_objs = stream
        time_m, size_m, kind_m, hidx_m, refslot_m = self._merge_with_cross(
            time_s, size_s, kind_s, hidx_s, refslot_s, crs)
        departures, accepted = queue.offer_batch(time_m, size_m)
        if ref_objs:
            ref_rows = np.flatnonzero(refslot_m >= 0)
            for slot, ok in zip(refslot_m[ref_rows].tolist(),
                                accepted[ref_rows].tolist()):
                if ok:
                    ref_objs[slot].hops += 1
                else:
                    ref_objs[slot].dropped = True
        keep = accepted & (kind_m != int(PacketKind.CROSS))
        return (departures[keep], size_m[keep], kind_m[keep], hidx_m[keep],
                refslot_m[keep], ref_objs)
