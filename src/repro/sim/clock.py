"""Clock models for measurement instances.

RLI requires time synchronization between sender and receiver instances,
"achieved by GPS-based clock synchronization or IEEE 1588" (paper Section 2).
The estimator computes a reference packet's true one-way delay as

    delay = receiver_clock.now(arrival) - tx_timestamp

where ``tx_timestamp`` was written by the sender's clock.  Any residual
synchronization error between the two clocks leaks directly into every delay
sample, so we model it explicitly:

* :class:`PerfectClock` — ideal sync (the paper's operating assumption).
* :class:`OffsetClock` — constant offset from true time (residual PTP offset).
* :class:`DriftingClock` — offset + frequency error (ppm drift) + optional
  white jitter, the standard disciplined-oscillator model.

Clocks map true simulation time to local readings on demand ("what does
this instance's clock read at true time t?"), so no per-clock state machines
run alongside the simulation.  All models are deterministic given their
parameters; the jittered clock draws from its own seeded stream, so reads
are reproducible in call order.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["Clock", "PerfectClock", "OffsetClock", "DriftingClock"]


class Clock:
    """Base class: maps true simulation time to this instance's local time."""

    def now(self, true_time: float) -> float:
        """Local clock reading at *true_time* (seconds)."""
        raise NotImplementedError


class PerfectClock(Clock):
    """Ideal clock: local time equals true time."""

    def now(self, true_time: float) -> float:
        return true_time

    def __repr__(self) -> str:
        return "PerfectClock()"


class OffsetClock(Clock):
    """Clock with a constant offset from true time.

    A positive offset means this clock runs *ahead* of true time.  A pair of
    instances with offsets o_s (sender) and o_r (receiver) biases every delay
    sample by (o_r - o_s).
    """

    def __init__(self, offset: float):
        self.offset = float(offset)

    def now(self, true_time: float) -> float:
        return true_time + self.offset

    def __repr__(self) -> str:
        return f"OffsetClock(offset={self.offset!r})"


class DriftingClock(Clock):
    """Clock with offset, frequency error, and optional white jitter.

    local(t) = t + offset + drift_ppm * 1e-6 * t + jitter

    Parameters
    ----------
    offset:
        Constant offset in seconds.
    drift_ppm:
        Frequency error in parts per million.  1 ppm accumulates 1 µs of
        error per second of simulated time — large against the tens-of-µs
        delays the paper measures, which is why RLI needs IEEE 1588/GPS.
    jitter_std:
        Standard deviation of zero-mean Gaussian read jitter (seconds).
        Deterministic given the seed and call order.
    seed:
        Seed for the jitter stream.
    """

    def __init__(
        self,
        offset: float = 0.0,
        drift_ppm: float = 0.0,
        jitter_std: float = 0.0,
        seed: Optional[int] = None,
    ):
        self.offset = float(offset)
        self.drift_ppm = float(drift_ppm)
        self.jitter_std = float(jitter_std)
        self._rng = np.random.default_rng(seed)

    def now(self, true_time: float) -> float:
        local = true_time + self.offset + self.drift_ppm * 1e-6 * true_time
        if self.jitter_std > 0.0:
            local += self._rng.normal(0.0, self.jitter_std)
        return local

    def __repr__(self) -> str:
        return (
            f"DriftingClock(offset={self.offset!r}, drift_ppm={self.drift_ppm!r}, "
            f"jitter_std={self.jitter_std!r})"
        )
