"""Layered columnar execution of instrumented fat-tree runs.

The event engine (:mod:`repro.sim.engine`) drives a fat-tree one packet
arrival at a time: heap pop, tap fan-out, LPM + ECMP route, analytic queue
offer, heap push.  At the 10^5–10^6 packets of the mesh and localization
studies the heap and the per-packet Python dispatch dominate the runtime,
exactly as the per-object two-switch pipeline did before PR 3's columnar
fast path.

A three-tier fat-tree is *feed-forward*: every packet's queue sequence is

    edge uplink  →  agg up-port  →  core down-port  →  agg down-port

(truncated for intra-pod / intra-ToR traffic), and each queue's state
depends only on its own arrival stream.  :class:`FatTreeFastPath` exploits
this to replace the event calendar with one pass per *layer*: routing
choices are recomputed vectorized (the switches' own
:meth:`~repro.sim.ecmp.EcmpHasher.choose_batch`), each queue is driven by
the exact running-``free_at`` scan of
:meth:`~repro.sim.queue.FifoQueue.offer_batch` (tapped queues inline the
sender's EWMA/1-and-n algebra via the
:meth:`~repro.core.sender.RliSender.fast_scan_state_classes` contract), and
each receiver consumes its complete merged observation stream through
:meth:`~repro.core.receiver.RliReceiver.observe_batch` — **bitwise
identical** to the engine, with the same float-op order at every step.

Event-order fidelity
--------------------
The engine processes events in ``(time, insertion seq)`` order.  Within one
queue's output, departure order *is* insertion order, so per-stream order is
free; order between streams only matters where streams contend — a shared
queue, or a shared receiver.  The driver therefore merges streams exactly at
contention points, by arrival time — and recovers the engine's
insertion-sequence tie-break *exactly* from event provenance: a scheduled
event's seq order equals its parent event's processing order, so recursing
down the ancestry, engine order is lexicographic on the reversed chain of
ancestor event times, bottoming out at trace-injection order (initial
events, scheduled before the run starts, precede every scheduled event —
their missing ancestors are ``-inf``).  A three-tier fat-tree path touches
at most five switches, so four ancestor levels plus the injection index
make the merge key ``(time, t⁻¹, t⁻², t⁻³, t⁻⁴, origin)`` a *total* order
identical to the calendar's — no tie can force a fallback (see
:func:`_merged_order`).  The compute phase is side-effect-free — queues are
scanned as fresh clones, sender state advances in locals, and reference
packets are built without touching the sender — so a pre-flight fallback
leaves every simulation object exactly as wired.

What the fast path does not reproduce (by design, same as the pipeline's):
per-``Packet`` bookkeeping for regular traffic (``hops``, ``path``,
``tap_time`` on the objects — ground-truth taps ride a column instead),
``Switch.local_sink`` contents, and the engine's ``delivered`` /
``processed_events`` counters.  Everything a study reads — receiver tables
and counters, observation logs, queue statistics — is bit-exact, which
``tests/test_batch_equivalence_multihop.py`` asserts.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..net.packet import Packet, PacketKind
from ..obs import metrics as obs_metrics
from ..traffic.batch import PacketBatch
from .clock import DriftingClock, OffsetClock, PerfectClock
from .queue import FifoQueue, _drop_free_threshold
from .topology import FatTree

__all__ = ["FastPathUnavailable", "FatTreeFastPath", "try_fast_path"]

_REGULAR = int(PacketKind.REGULAR)
_REFERENCE = int(PacketKind.REFERENCE)


class FastPathUnavailable(Exception):
    """The layered columnar pass cannot reproduce this run bit-exactly.

    Raised during pre-flight — a non-batchable component (exotic queue or
    observation log, custom policy, jittered clock), prior queue state, or
    a trace outside the fabric's host blocks.  The compute phase mutates
    nothing, so catching this and re-running on the event engine is always
    safe.

    ``reason`` is a short stable slug for the ``batch.fallback`` counter
    (the human-readable detail stays in the exception message).
    """

    def __init__(self, message: str, reason: str = "unavailable") -> None:
        super().__init__(message)
        self.reason = reason


def try_fast_path(fattree: FatTree, sender_taps: Dict, receiver_taps: Dict,
                  traces: Sequence, until: Optional[float] = None) -> bool:
    """Attempt one layered columnar run of *traces*; ``True`` on success.

    The deployments' shared dispatch (``RlirDeployment.run`` /
    ``RlirMesh.run``): refuses a truncated run (``until`` needs the
    calendar), coerces every trace to columns (any failure → ``False``),
    and treats :class:`FastPathUnavailable` as a clean miss — the compute
    phase mutates nothing, so the caller simply proceeds with the event
    engine against untouched simulation objects.
    """
    if until is not None:
        obs_metrics.fallback("fatpath", "until-unsupported")
        return False
    batches = [PacketBatch.coerce(t) for t in traces]
    if any(b is None for b in batches):
        obs_metrics.fallback("fatpath", "trace-not-columnar")
        return False
    try:
        FatTreeFastPath(fattree, sender_taps, receiver_taps).run(batches)
    except FastPathUnavailable as exc:
        obs_metrics.fallback("fatpath", exc.reason)
        return False
    obs_metrics.taken("fatpath")
    return True


def _clock_is_pure(clock) -> bool:
    """True when ``clock.now`` is a pure function of its argument."""
    if type(clock) in (PerfectClock, OffsetClock):
        return True
    return type(clock) is DriftingClock and clock.jitter_std == 0.0


def _clone_queue(queue: FifoQueue) -> FifoQueue:
    """A fresh scan target with *queue*'s physical parameters."""
    clone = FifoQueue(8.0, queue.buffer_bytes, queue.proc_delay, queue.name)
    clone.rate_Bps = queue.rate_Bps  # honors set_rate() exactly
    return clone


#: Ancestor event-time levels carried per packet.  A three-tier fat-tree
#: path visits at most five switches (edge → agg → core → agg → edge), so
#: an event has at most four ancestors — depth 4 makes the merge key exact
#: for every event the driver can produce.
_PROV_DEPTH = 4


def _merged_order(times: List[np.ndarray], provs: List[np.ndarray],
                  origins: List[np.ndarray]) -> np.ndarray:
    """Sort permutation merging per-stream events into exact engine order.

    The engine processes events in ``(time, insertion seq)`` order.
    Within one stream, time order *is* seq order (``lexsort`` is stable).
    Across streams, a coincident event time is resolved by seq — which the
    layered pass reconstructs from provenance: a scheduled event's seq
    order equals its *parent* event's processing order, so recursing down
    the ancestry, engine order is lexicographic on
    ``(time, t⁻¹, …, t⁻⁴, origin)`` where ``t⁻ᵏ`` is the k-th ancestor
    event's time (``-inf`` past the injection — initial events, scheduled
    before the run starts, hold the lowest seqs, which is exactly what
    ``-inf`` encodes at a coincident time) and ``origin`` is the
    trace-injection order, the seq order of the initial events themselves.
    Two distinct packets cannot share the whole key, so this is a total
    order — bit-identical to the calendar's, with no fallback case.
    """
    time = np.concatenate(times)
    prov = np.concatenate(provs)
    origin = np.concatenate(origins)
    return np.lexsort((origin,) + tuple(
        prov[:, level] for level in range(_PROV_DEPTH - 1, -1, -1)
    ) + (time,))


class _Stream:
    """Packets arriving somewhere, as parallel time-sorted arrays.

    ``hidx`` indexes the global header batch (-1 on reference rows);
    ``refslot`` indexes the driver's reference list (-1 on regular rows);
    ``prov`` is the ``(n, _PROV_DEPTH)`` ancestor-event-time matrix —
    column k holds the packet's arrival time k+1 switches ago, ``-inf``
    past its injection — and ``origin`` the trace-injection order (a
    reference inherits its trigger's), which together recover the engine's
    exact tie-break order (see :func:`_merged_order`).
    """

    __slots__ = ("time", "size", "kind", "hidx", "refslot", "prov", "origin")

    def __init__(self, time, size, kind, hidx, refslot, prov, origin):
        self.time = time
        self.size = size
        self.kind = kind
        self.hidx = hidx
        self.refslot = refslot
        self.prov = prov
        self.origin = origin

    @classmethod
    def regular(cls, time, size, hidx) -> "_Stream":
        """An initial-injection stream: no ancestors, origin = heap order."""
        n = len(time)
        return cls(time, size, np.full(n, _REGULAR, dtype=np.int64), hidx,
                   np.full(n, -1, dtype=np.int64),
                   np.full((n, _PROV_DEPTH), -np.inf), hidx)

    def __len__(self) -> int:
        return len(self.time)

    def take(self, rows) -> "_Stream":
        return _Stream(self.time[rows], self.size[rows], self.kind[rows],
                       self.hidx[rows], self.refslot[rows], self.prov[rows],
                       self.origin[rows])

    @staticmethod
    def merge(streams: List["_Stream"]) -> "_Stream":
        streams = [s for s in streams if len(s)]
        if not streams:
            zi = np.empty(0, dtype=np.int64)
            return _Stream(np.empty(0), zi, zi, zi, zi,
                           np.empty((0, _PROV_DEPTH)), zi)
        if len(streams) == 1:
            return streams[0]
        order = _merged_order([s.time for s in streams],
                              [s.prov for s in streams],
                              [s.origin for s in streams])
        return _Stream(*(
            np.concatenate([getattr(s, name) for s in streams])[order]
            for name in _Stream.__slots__
        ))


class _SenderScan:
    """Deferred state advanced by one tapped queue's inlined scan."""

    __slots__ = ("sender", "seen_any", "wstart", "wbytes", "estimate",
                 "counters", "regulars_seen", "refs_built")

    def __init__(self, sender):
        self.sender = sender
        (self.seen_any, self.wstart, self.wbytes, self.estimate,
         self.counters) = sender.fast_scan_state_classes()
        self.regulars_seen = 0
        self.refs_built = 0

    def commit(self) -> None:
        self.sender.fast_scan_commit_classes(
            self.seen_any, self.wstart, self.wbytes, self.estimate,
            self.counters, self.regulars_seen)
        self.sender.refs_injected += self.refs_built


def _build_reference(sender, path_class: int, now: float) -> Packet:
    """:meth:`RliSender.make_reference` without mutating the sender.

    Field-for-field the same construction (the sender's counters move in
    the scan's locals; ``refs_injected`` is committed afterwards), so the
    emitted packet is identical to the object path's.
    """
    template = sender.templates[path_class]
    ref = Packet(
        src=template.src,
        dst=template.dst,
        sport=template.sport,
        dport=template.dport,
        proto=template.proto,
        size=template.size,
        ts=now,
        kind=PacketKind.REFERENCE,
        sender_id=sender.sender_id,
        ref_timestamp=sender.clock.now(now),
    )
    ref.tap_time = now
    return ref


class FatTreeFastPath:
    """One-shot layered columnar run of an instrumented fat-tree.

    Parameters
    ----------
    fattree:
        The fabric.  Queues must be untouched (fresh or reset) — the scan
        clones continue from zero backlog, exactly like a fresh run.
    sender_taps:
        ``(switch, port_index) -> (sender, classify_spec)`` for every
        enqueue-tapped port.  ``classify_spec`` is the declarative,
        vectorizable description of the closure the deployment wired as
        the sender's ``classify``:

        * ``("hash", hasher, n)`` — path class = ``hasher.choose`` of the
          packet 5-tuple over *n* ports (the ToR uplink senders: the
          aggregation switch's core choice);
        * ``("tor_map", ((pod, edge, class), ...))`` — first ToR /24
          prefix containing ``dst`` wins, no match = no class (the core
          egress senders).
    receiver_taps:
        ``switch -> receiver`` for every arrival-tapped switch (cores and
        destination ToRs).
    """

    def __init__(self, fattree: FatTree, sender_taps: Dict, receiver_taps: Dict):
        self.ft = fattree
        self.sender_taps = {
            (switch.node_id, port): tap
            for (switch, port), tap in sender_taps.items()
        }
        self.receiver_taps = {
            switch.node_id: rx for switch, rx in receiver_taps.items()
        }
        self._ref_objs: List[Packet] = []
        self._ref_rj: List[int] = []  # ToR refs: the agg's core choice
        self._ref_re: List[int] = []  # core refs: destination edge index
        self._scans: List[_SenderScan] = []
        self._clones: List[Tuple[FifoQueue, FifoQueue]] = []

    # ------------------------------------------------------------------
    # pre-flight

    def _check(self) -> None:
        for rx in self.receiver_taps.values():
            if rx._finalized:
                raise FastPathUnavailable(
                    f"receiver {rx!r} already finalized",
                    reason="receiver-finalized")
            if not rx.batch_capable:
                raise FastPathUnavailable(
                    f"receiver {rx!r} is not batch-capable (demux or "
                    f"observation-log representation)",
                    reason="receiver-not-batch-capable")
        for tx, _spec in self.sender_taps.values():
            if not tx.policy_pure:
                raise FastPathUnavailable(
                    f"sender {tx.sender_id}: custom injection policy",
                    reason="custom-policy")
            if not _clock_is_pure(tx.clock):
                raise FastPathUnavailable(
                    f"sender {tx.sender_id}: stateful (jittered) clock",
                    reason="stateful-clock")

    def _queue(self, switch, port_index: int) -> Tuple[FifoQueue, float]:
        """A fresh scan clone (and prop delay) for one egress port."""
        port = switch.ports[port_index]
        q = port.queue
        if type(q) is not FifoQueue:
            raise FastPathUnavailable(
                f"{q!r} is not a plain tail-drop FifoQueue",
                reason="custom-queue")
        if q._free_at != 0.0 or q.stats.arrivals:
            raise FastPathUnavailable(f"{q!r} carries prior traffic",
                                      reason="queue-prior-traffic")
        clone = _clone_queue(q)
        self._clones.append((q, clone))
        return clone, port.prop_delay

    # ------------------------------------------------------------------

    def run(self, batches: Sequence[PacketBatch]) -> None:
        """Execute the run; commits results only if the whole pass succeeds.

        Raises :class:`FastPathUnavailable` (mutating nothing) when
        pre-flight finds a non-batchable component or an out-of-model
        trace; the caller then re-runs on the event engine.
        """
        self._check()
        ft = self.ft
        k = ft.k
        half = k // 2

        # ---- global header batch in the engine's initial heap order ----
        gb = PacketBatch.concat(batches)
        if len(gb):
            gb = gb.take(np.argsort(gb.ts, kind="stable"))
        if len(gb) and not np.all(gb.kind == _REGULAR):
            raise FastPathUnavailable("trace contains non-regular packets",
                                      reason="mixed-regular-kinds")
        src = gb.src
        dst = gb.dst
        spod = (src >> 16) & 0xFF
        sedge = (src >> 8) & 0xFF
        dpod = (dst >> 16) & 0xFF
        dedge = (dst >> 8) & 0xFF
        ok = (
            ((src >> 24) == 10) & ((dst >> 24) == 10)
            & (spod < k) & (sedge < half) & (dpod < k) & (dedge < half)
        )
        if not np.all(ok):
            raise FastPathUnavailable("trace packets outside the host blocks",
                                      reason="trace-outside-fabric")
        self._dpod, self._dedge = dpod, dedge

        cols = (gb.src, gb.dst, gb.sport, gb.dport, gb.proto)
        local = (spod == dpod) & (sedge == dedge)  # intra-ToR: no queue
        n = len(gb)
        # routing recomputation, vectorized with the switches' own hashes:
        # a = the source edge's uplink (ECMP over half aggs), j = the agg's
        # core choice — also the ToR senders' path class
        a_choice = np.zeros(n, dtype=np.int64)
        j_choice = np.zeros(n, dtype=np.int64)
        rows_by_edge: Dict[Tuple[int, int], np.ndarray] = {}
        for p in range(k):
            for e in range(half):
                rows = np.flatnonzero((spod == p) & (sedge == e))
                if not len(rows):
                    continue
                rows_by_edge[(p, e)] = rows
                up = rows[~local[rows]]
                if len(up):
                    a_choice[up] = ft.edges[p][e].hasher.choose_batch(
                        *(c[up] for c in cols), half)
        for p in range(k):
            for a in range(half):
                rows = np.flatnonzero((spod == p) & ~local & (a_choice == a))
                if len(rows):
                    j_choice[rows] = ft.aggs[p][a].hasher.choose_batch(
                        *(c[rows] for c in cols), half)

        # ground-truth tap column (the object path's packet.tap_time);
        # snapshots are taken as each receiver segment forms, so a segment
        # sees exactly the stamps that preceded it
        tap_col = np.full(n, np.nan)
        rx_segments: Dict[int, List[Tuple[_Stream, np.ndarray]]] = {
            node: [] for node in self.receiver_taps
        }

        def snapshot(node_id: int, stream: _Stream) -> None:
            taps = np.where(stream.hidx >= 0,
                            tap_col[np.maximum(stream.hidx, 0)], np.nan)
            rx_segments[node_id].append((stream, taps))

        # ---- layer 1: edge switches (origination + uplink queues) ----
        edge_up_out: Dict[Tuple[int, int, int], _Stream] = {}
        for (p, e), rows in sorted(rows_by_edge.items()):
            edge = ft.edges[p][e]
            if edge.node_id in rx_segments:
                # arrival taps fire for locally-originating packets too,
                # before any tap could stamp them: all-NaN tap snapshot
                l0 = _Stream.regular(gb.ts[rows], gb.size[rows], rows)
                rx_segments[edge.node_id].append(
                    (l0, np.full(len(l0), np.nan)))
            up_rows = ~local[rows]
            for a in range(half):
                sub = rows[up_rows & (a_choice[rows] == a)]
                if not len(sub):
                    continue
                port_index = ft.port_toward(edge, ft.aggs[p][a])
                stream = _Stream.regular(gb.ts[sub], gb.size[sub], sub)
                edge_up_out[(p, e, a)] = self._drive_queue(
                    edge, port_index, stream, cols, tap_col)

        # ---- layer 2: aggregation up-ports (toward the cores) ----
        core_in: Dict[Tuple[int, int, int], List[_Stream]] = {}
        down_in: Dict[Tuple[int, int, int], List[_Stream]] = {}
        for (p, e, a), stream in sorted(edge_up_out.items()):
            is_ref = stream.refslot >= 0
            inter = np.array(is_ref)  # refs (dst = a core) always climb
            reg = ~is_ref
            inter[reg] = dpod[stream.hidx[reg]] != p
            # intra-pod regulars turn down at the agg; their queue offers
            # contend with core down-traffic, so they join layer 4's merge
            intra = stream.take(np.flatnonzero(reg & ~inter))
            if len(intra):
                for e2 in np.unique(dedge[intra.hidx]).tolist():
                    down_in.setdefault((p, a, int(e2)), []).append(
                        intra.take(np.flatnonzero(dedge[intra.hidx] == e2)))
            up = stream.take(np.flatnonzero(inter))
            if not len(up):
                continue
            jcol = self._route_col(up, j_choice, self._ref_rj)
            for j in np.unique(jcol).tolist():
                j = int(j)
                core_in.setdefault((a, j, p), []).append(
                    up.take(np.flatnonzero(jcol == j)))

        agg_up_out: Dict[Tuple[int, int, int], _Stream] = {}
        for (i, j, p), pieces in sorted(core_in.items()):
            agg = ft.aggs[p][i]
            core = ft.cores[i][j]
            merged = _Stream.merge(pieces)
            agg_up_out[(i, j, p)] = self._drive_queue(
                agg, ft.port_toward(agg, core), merged, cols, tap_col)

        # ---- layer 3: cores (receivers + egress toward the dst pods) ----
        coredown_out: Dict[Tuple[int, int, int], _Stream] = {}
        for i in range(half):
            for j in range(half):
                core = ft.cores[i][j]
                pieces = [agg_up_out[(i, j, p)] for p in range(k)
                          if (i, j, p) in agg_up_out]
                if not pieces:
                    continue
                stream = _Stream.merge(pieces)
                if core.node_id in rx_segments:
                    snapshot(core.node_id, stream)
                # references terminate here; regulars route down by pod
                reg = stream.take(np.flatnonzero(stream.refslot < 0))
                if not len(reg):
                    continue
                pods = dpod[reg.hidx]
                for p in np.unique(pods).tolist():
                    p = int(p)
                    piece = reg.take(np.flatnonzero(pods == p))
                    port_index = ft.port_toward(core, ft.aggs[p][i])
                    coredown_out[(i, j, p)] = self._drive_queue(
                        core, port_index, piece, cols, tap_col)

        # ---- layer 4: aggregation down-ports (toward the edges) ----
        for (i, j, p), stream in sorted(coredown_out.items()):
            ecol = self._route_col(stream, dedge, self._ref_re)
            for e in np.unique(ecol).tolist():
                e = int(e)
                down_in.setdefault((p, i, e), []).append(
                    stream.take(np.flatnonzero(ecol == e)))
        edge_in: Dict[Tuple[int, int, int], _Stream] = {}
        for (p, i, e), pieces in sorted(down_in.items()):
            agg = ft.aggs[p][i]
            edge = ft.edges[p][e]
            merged = _Stream.merge(pieces)
            edge_in[(p, e, i)] = self._drive_queue(
                agg, ft.port_toward(agg, edge), merged, cols, tap_col)

        # ---- layer 5: destination edges (arrival taps only) ----
        for (p, e, i), stream in sorted(edge_in.items()):
            edge = ft.edges[p][e]
            if edge.node_id in rx_segments:
                snapshot(edge.node_id, stream)

        # ---- merge each receiver's segments into engine arrival order ----
        observations: List[Tuple[object, _Stream, np.ndarray]] = []
        for node_id, segments in sorted(rx_segments.items()):
            segments = [(s, t) for s, t in segments if len(s)]
            if not segments:
                continue
            receiver = self.receiver_taps[node_id]
            if len(segments) == 1:
                stream, taps = segments[0]
            else:
                order = _merged_order([s.time for s, _ in segments],
                                      [s.prov for s, _ in segments],
                                      [s.origin for s, _ in segments])
                stream = _Stream(*(
                    np.concatenate([getattr(s, name) for s, _ in segments])[order]
                    for name in _Stream.__slots__
                ))
                taps = np.concatenate([t for _, t in segments])[order]
            observations.append((receiver, stream, taps))

        # ---- everything computed and tie-free: commit ----
        for real, clone in self._clones:
            real._free_at = clone._free_at
            real.stats = clone.stats
        for scan in self._scans:
            scan.commit()
        for receiver, stream, taps in observations:
            refs = [self._ref_objs[s]
                    for s in stream.refslot[stream.refslot >= 0].tolist()]
            receiver.observe_batch(stream.time, stream.kind, gb, stream.hidx,
                                   taps, refs)

    def _route_col(self, stream: _Stream, table: np.ndarray,
                   ref_table: List[int]) -> np.ndarray:
        """Per-row routing value: *table[hidx]* for regulars, the stored
        per-reference value for reference rows."""
        out = np.where(stream.hidx >= 0,
                       table[np.maximum(stream.hidx, 0)], -1)
        ref_rows = np.flatnonzero(stream.refslot >= 0)
        if len(ref_rows):
            refs = np.asarray(ref_table, dtype=np.int64)
            out[ref_rows] = refs[stream.refslot[ref_rows]]
        return out

    # ------------------------------------------------------------------
    # queue scans

    def _drive_queue(self, switch, port_index: int, stream: _Stream,
                     cols, tap_col) -> _Stream:
        """Offer *stream* to one egress queue; return the next-hop arrivals.

        Dispatches to the plain clone scan or, when the port carries an
        RLI sender tap, the inlined multi-class sender scan.  Output times
        are ``departure + prop_delay`` — the same float op the engine's
        ``schedule_arrival(departure + port.prop_delay, …)`` applies.
        """
        tap = self.sender_taps.get((switch.node_id, port_index))
        clone, prop = self._queue(switch, port_index)
        if tap is None:
            departures, accepted = clone.offer_batch(stream.time, stream.size)
            out = stream.take(np.flatnonzero(accepted))
            # the next hop's parent event is this packet's arrival here:
            # shift the ancestry one level down, prepending this arrival
            prov = np.column_stack([out.time, out.prov[:, :-1]])
            return _Stream(departures[accepted] + prop, out.size, out.kind,
                           out.hidx, out.refslot, prov, out.origin)
        sender, spec = tap
        return self._sender_scan(clone, prop, stream, sender, spec, cols,
                                 tap_col)

    def _classes(self, spec, rows: np.ndarray, cols) -> np.ndarray:
        """Vectorized path classes for *rows* under a classify spec (-1 = None)."""
        if spec[0] == "hash":
            _tag, hasher, n_ports = spec
            return hasher.choose_batch(*(c[rows] for c in cols), n_ports)
        if spec[0] == "tor_map":
            out = np.full(len(rows), -1, dtype=np.int64)
            for pod, e, cls in reversed(spec[1]):  # first match wins
                out[(self._dpod[rows] == pod) & (self._dedge[rows] == e)] = cls
            return out
        raise FastPathUnavailable(f"unknown classify spec {spec[0]!r}",
                                  reason="unknown-classify-spec")

    def _sender_scan(self, queue: FifoQueue, prop: float, stream: _Stream,
                     sender, spec, cols, tap_col) -> _Stream:
        """Columnar tapped queue: offer scan + inlined sender observation.

        Applies, per row, exactly the float-op sequence of
        :meth:`FifoQueue.offer` with the sender's EWMA/1-and-n algebra
        interleaved as per-packet ``on_regular`` calls would be (enqueue
        taps fire on acceptance; references are offered immediately behind
        their trigger with the same queue arithmetic) — the multi-class
        generalization of the chain's first-hop scan, following the
        :meth:`~repro.core.sender.RliSender.fast_scan_state_classes`
        contract.
        """
        n_in = len(stream)
        cls_l = self._classes(spec, stream.hidx, cols).tolist()
        ts_l = stream.time.tolist()
        t_l = (stream.time + queue.proc_delay).tolist()
        svc_l = (stream.size / queue.rate_Bps).tolist()
        size_l = stream.size.tolist()

        proc = queue.proc_delay
        rate_Bps = queue.rate_Bps
        buffer_bytes = queue.buffer_bytes
        fa = queue._free_at
        scan = _SenderScan(sender)
        seen_any, wstart, wbytes = scan.seen_any, scan.wstart, scan.wbytes
        estimate, counters = scan.estimate, scan.counters
        regulars_seen = 0

        utilization = sender.utilization
        window = utilization.window
        alpha = utilization.alpha
        capacity = utilization._capacity_per_window
        policy_gap = sender.policy.gap
        gap = policy_gap(estimate)

        is_uplink = spec[0] == "hash"
        ref_meta_rj: List[int] = []
        ref_meta_re: List[int] = []

        ref_dropped = 0
        bytes_drop = 0
        ref_arrivals = 0
        ref_bytes_in = 0
        drop_idx: List[int] = []
        acc_dep: List[float] = []
        n_acc = 0
        ref_pos: List[int] = []
        ref_dep: List[float] = []
        ref_trig: List[int] = []  # trigger's input row: ancestry donor
        new_refs: List[Packet] = []
        dep_append = acc_dep.append
        tap_rows: List[int] = []
        tap_times: List[float] = []

        if buffer_bytes is None:
            threshold = math.inf
        else:
            threshold = _drop_free_threshold(
                buffer_bytes, int(stream.size.max()) if n_in else 0, rate_Bps)
        for i, (now, t, svc, size) in enumerate(zip(ts_l, t_l, svc_l, size_l)):
            # same float ops as FifoQueue.offer (see offer_batch's arms)
            backlog = fa - t
            if backlog > threshold:
                clamped = backlog * rate_Bps if backlog > 0.0 else 0.0
                if clamped + size > buffer_bytes:
                    drop_idx.append(i)
                    bytes_drop += size
                    continue
                fa = (t if t > fa else fa) + svc
            elif backlog > 0.0:
                fa = fa + svc
            else:
                fa = t + svc
            n_acc += 1
            dep_append(fa)
            # --- enqueue tap on acceptance: ground-truth stamp + sender ---
            tap_rows.append(i)
            tap_times.append(now)
            # inlined RliSender.on_regular: utilization first, always
            if not seen_any:
                wstart = now - (now % window)
                seen_any = True
            wend = wstart + window
            if now >= wend:
                while True:
                    sample = wbytes / capacity
                    if sample > 1.0:
                        sample = 1.0  # min(1.0, sample)
                    estimate += alpha * (sample - estimate)
                    wbytes = 0
                    wstart = wend
                    wend = wstart + window
                    if now < wend:
                        break
                gap = policy_gap(estimate)
            wbytes += size
            c = cls_l[i]
            if c < 0 or c not in counters:
                continue
            regulars_seen += 1
            count = counters[c] + 1
            if count < gap:
                counters[c] = count
                continue
            counters[c] = 0
            ref = _build_reference(sender, c, now)
            scan.refs_built += 1
            # inject right behind the trigger: same queue float ops
            rsize = ref.size
            ref_arrivals += 1
            ref_bytes_in += rsize
            rt = now + proc
            if buffer_bytes is not None:
                backlog = fa - rt
                backlog = backlog * rate_Bps if backlog > 0.0 else 0.0
                if backlog + rsize > buffer_bytes:
                    ref_dropped += 1
                    bytes_drop += rsize
                    ref.dropped = True
                    continue
            fa = (rt if rt > fa else fa) + rsize / rate_Bps
            ref_pos.append(n_acc + len(new_refs))
            ref_dep.append(fa)
            ref_trig.append(i)
            new_refs.append(ref)
            if is_uplink:
                # the ref climbs at the agg by its own 5-tuple hash (the
                # template's crafted dport steers it to the class's core)
                ref_meta_rj.append(spec[1].choose(ref.flow_key, spec[2]))
                ref_meta_re.append(-1)
            else:
                ref_meta_rj.append(-1)
                ref_meta_re.append((ref.dst >> 8) & 0xFF)

        scan.seen_any, scan.wstart, scan.wbytes = seen_any, wstart, wbytes
        scan.estimate, scan.counters = estimate, counters
        scan.regulars_seen = regulars_seen
        self._scans.append(scan)
        if tap_rows:
            tap_col[stream.hidx[np.asarray(tap_rows, dtype=np.intp)]] = tap_times

        queue._free_at = fa
        stats = queue.stats
        dropped = len(drop_idx) + ref_dropped
        bytes_in = (int(stream.size.sum()) if n_in else 0) + ref_bytes_in  # reprolint: disable=BATCH003 -- int64 byte counter; integer addition is exact in any order
        arrivals = n_in + ref_arrivals
        stats.arrivals += arrivals
        stats.bytes_in += bytes_in
        stats.accepted += arrivals - dropped
        stats.dropped += dropped
        stats.bytes_accepted += bytes_in - bytes_drop
        stats.bytes_dropped += bytes_drop

        # assemble the acceptance-order output with references spliced in
        slot0 = len(self._ref_objs)
        self._ref_objs.extend(new_refs)
        self._ref_rj.extend(ref_meta_rj)
        self._ref_re.extend(ref_meta_re)
        n_ref = len(new_refs)
        total = n_acc + n_ref
        is_ref = np.zeros(total, dtype=bool)
        if n_ref:
            is_ref[np.asarray(ref_pos, dtype=np.intp)] = True
        is_row = ~is_ref
        if drop_idx:
            acc_rows = np.delete(np.arange(n_in, dtype=np.int64), drop_idx)
        else:
            acc_rows = np.arange(n_in, dtype=np.int64)
        time_a = np.empty(total)
        size_a = np.empty(total, dtype=np.int64)
        kind_a = np.full(total, _REGULAR, dtype=np.int64)
        hidx_a = np.full(total, -1, dtype=np.int64)
        refslot_a = np.full(total, -1, dtype=np.int64)
        time_a[is_row] = acc_dep
        size_a[is_row] = stream.size[acc_rows]
        hidx_a[is_row] = stream.hidx[acc_rows]
        if n_ref:
            time_a[is_ref] = ref_dep
            size_a[is_ref] = [r.size for r in new_refs]
            kind_a[is_ref] = _REFERENCE
            refslot_a[is_ref] = np.arange(slot0, slot0 + n_ref, dtype=np.int64)

        # arrival-at-this-switch per output row: the queue-delay base and
        # the next hop's parent event time (a reference's parent is its
        # trigger's arrival event, which is when it was built: ref.ts);
        # deeper ancestry and origin come from the input row — a reference
        # inherits its trigger's, sharing the trigger event's seq ancestry
        arr_a = np.empty(total)
        arr_a[is_row] = stream.time[acc_rows]
        prov_in = np.empty((total, stream.prov.shape[1]))
        prov_in[is_row] = stream.prov[acc_rows]
        origin_a = np.empty(total, dtype=np.int64)
        origin_a[is_row] = stream.origin[acc_rows]
        if n_ref:
            arr_a[is_ref] = [r.ts for r in new_refs]
            trig = np.asarray(ref_trig, dtype=np.intp)
            prov_in[is_ref] = stream.prov[trig]
            origin_a[is_ref] = stream.origin[trig]

        # fold the delay statistics in acceptance order, exactly as
        # per-packet offers would have (explicit accumulation loop)
        if total:
            delay_l = (time_a - arr_a).tolist()
            total_delay = stats.total_delay
            for delay in delay_l:
                total_delay += delay
            stats.total_delay = total_delay
            peak = max(delay_l)
            if peak > stats.max_delay:
                stats.max_delay = peak
            stats.last_departure = float(time_a[-1])

        return _Stream(time_a + prop, size_a, kind_a, hidx_a, refslot_a,
                       np.column_stack([arr_a, prov_in[:, :-1]]), origin_a)
