"""Discrete-event network simulation substrate.

Provides the queues, switches, clocks, ECMP hashing, topologies and drivers
on which the RLI/RLIR measurement architecture is evaluated: the two-switch
pipeline of the paper's Figure 3 and full k-ary fat-trees for the
across-routers experiments.
"""

from .chain import ChainConfig, ChainResult, SwitchChain
from .clock import Clock, DriftingClock, OffsetClock, PerfectClock
from .ecmp import EcmpHasher, craft_dport_for_port
from .engine import Engine
from .link import Port
from .pipeline import PipelineConfig, PipelineResult, TwoSwitchPipeline
from .ptp import PtpExchange, PtpSession
from .queue import FifoQueue, QueueStats
from .red import RedQueue
from .routing import RoutingError, trace_route
from .switch import EcmpGroup, LOCAL_DELIVERY, Switch
from .topology import FatTree, LinkParams, Topology

__all__ = [
    "ChainConfig",
    "ChainResult",
    "SwitchChain",
    "PtpExchange",
    "PtpSession",
    "Clock",
    "DriftingClock",
    "OffsetClock",
    "PerfectClock",
    "EcmpHasher",
    "craft_dport_for_port",
    "Engine",
    "Port",
    "PipelineConfig",
    "PipelineResult",
    "TwoSwitchPipeline",
    "FifoQueue",
    "QueueStats",
    "RedQueue",
    "RoutingError",
    "trace_route",
    "EcmpGroup",
    "LOCAL_DELIVERY",
    "Switch",
    "FatTree",
    "LinkParams",
    "Topology",
]
