"""Analytic work-conserving FIFO queue with a finite buffer.

This is the core of the paper's simulator: packets "experience processing and
queueing delays across multiple queues (equivalently, multiple
routers/switches)" (Section 4.1), where delays "are governed by queue size
and packet processing time".

Because service is FIFO at a deterministic link rate, the queue can be
simulated exactly in O(1) per packet without an event calendar:

* ``free_at`` is the time the transmitter finishes the last accepted packet;
* the backlog (in bytes) seen by an arrival at time ``t`` is exactly
  ``(free_at - t) * rate`` when ``free_at > t``, else 0;
* an arrival is dropped (tail drop) iff backlog + its size exceeds the
  buffer;
* otherwise its departure time is ``max(t, free_at) + size/rate``.

Arrivals must be offered in non-decreasing time order — both the fast
pipeline driver and the event engine guarantee this; the queue asserts it.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..net.packet import Packet

__all__ = ["FifoQueue", "QueueStats"]


def _scatter_merge(a, b, pos_a, pos_b, dtype):
    """Merge two arrays into their precomputed merged positions.

    Shared by the pipeline and chain batch drivers, whose two
    ``searchsorted`` passes compute each element's merged position with
    ``heapq.merge``'s tie rule.
    """
    out = np.empty(len(a) + len(b), dtype=dtype)
    out[pos_a] = a
    out[pos_b] = b
    return out


def _drop_free_threshold(buffer_bytes: int, max_size: int, rate_Bps: float) -> float:
    """Largest certified drop-free backlog time for a batch of arrivals.

    Returns a value ``thr`` such that any arrival seeing ``free_at - t <=
    thr`` provably survives the tail-drop test for every packet size up to
    *max_size* — letting the batch scans skip the per-packet drop
    arithmetic away from buffer-full territory.  The certificate is exact:
    float multiplication/addition by positive values are monotone, so
    verifying the test expression at ``(thr, max_size)`` bounds it for all
    smaller backlogs and sizes; ``thr`` is nudged down by ulps until the
    verification passes.  Returns ``-inf`` when no positive threshold can
    be certified (buffer close to or below the packet size), which sends
    every packet down the exact test.
    """
    thr = (buffer_bytes - max_size) / rate_Bps
    while thr > 0.0 and thr * rate_Bps + max_size > buffer_bytes:
        thr = math.nextafter(thr, -math.inf)
    return thr if thr > 0.0 else -math.inf


class QueueStats:
    """Counters accumulated by a :class:`FifoQueue`."""

    __slots__ = (
        "arrivals",
        "accepted",
        "dropped",
        "bytes_in",
        "bytes_accepted",
        "bytes_dropped",
        "total_delay",
        "max_delay",
        "last_departure",
    )

    def __init__(self) -> None:
        self.arrivals = 0
        self.accepted = 0
        self.dropped = 0
        self.bytes_in = 0
        self.bytes_accepted = 0
        self.bytes_dropped = 0
        self.total_delay = 0.0
        self.max_delay = 0.0
        self.last_departure = 0.0

    @property
    def loss_rate(self) -> float:
        """Fraction of arrivals dropped (0 if no arrivals)."""
        return self.dropped / self.arrivals if self.arrivals else 0.0

    @property
    def mean_delay(self) -> float:
        """Mean total delay (processing + waiting + transmission) of
        accepted packets."""
        return self.total_delay / self.accepted if self.accepted else 0.0


class FifoQueue:
    """Work-conserving FIFO queue draining at a fixed link rate.

    Parameters
    ----------
    rate_bps:
        Link rate in bits per second.
    buffer_bytes:
        Tail-drop buffer size in bytes.  An arrival that would push the
        backlog past this limit is dropped.  ``None`` means infinite.
    proc_delay:
        Fixed per-packet processing (pipeline) delay applied before the
        packet reaches the buffer, in seconds.
    name:
        Optional label used in reprs and drop diagnostics.
    """

    __slots__ = ("rate_Bps", "buffer_bytes", "proc_delay", "name", "_free_at", "stats")

    def __init__(
        self,
        rate_bps: float,
        buffer_bytes: Optional[int] = None,
        proc_delay: float = 0.0,
        name: str = "",
    ):
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive: {rate_bps}")
        if buffer_bytes is not None and buffer_bytes <= 0:
            raise ValueError(f"buffer must be positive or None: {buffer_bytes}")
        if proc_delay < 0:
            raise ValueError(f"processing delay must be non-negative: {proc_delay}")
        self.rate_Bps = rate_bps / 8.0
        self.buffer_bytes = buffer_bytes
        self.proc_delay = proc_delay
        self.name = name
        self._free_at = 0.0
        self.stats = QueueStats()

    # ------------------------------------------------------------------

    def backlog_bytes(self, now: float) -> float:
        """Bytes queued (including the packet in service) at time *now*."""
        return max(0.0, self._free_at - now) * self.rate_Bps

    def transmission_time(self, size_bytes: int) -> float:
        """Seconds to serialize *size_bytes* onto the link."""
        return size_bytes / self.rate_Bps

    def offer(self, packet: Packet, arrival: float) -> Optional[float]:
        """Offer *packet* at time *arrival*; return its departure time.

        Returns ``None`` and marks ``packet.dropped`` if the buffer
        overflows.  Arrivals must be non-decreasing in time.
        """
        stats = self.stats
        stats.arrivals += 1
        stats.bytes_in += packet.size
        t = arrival + self.proc_delay
        backlog = max(0.0, self._free_at - t) * self.rate_Bps
        if self.buffer_bytes is not None and backlog + packet.size > self.buffer_bytes:
            stats.dropped += 1
            stats.bytes_dropped += packet.size
            packet.dropped = True
            return None
        departure = max(t, self._free_at) + packet.size / self.rate_Bps
        self._free_at = departure
        delay = departure - arrival
        stats.accepted += 1
        stats.bytes_accepted += packet.size
        stats.total_delay += delay
        if delay > stats.max_delay:
            stats.max_delay = delay
        stats.last_departure = departure
        packet.hops += 1
        return departure

    def offer_batch(
        self, arrivals: np.ndarray, sizes: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Offer a whole sorted arrival array; the pipeline fast path's core.

        Parameters are parallel arrays: arrival times (non-decreasing) and
        wire sizes in bytes.  Returns ``(departures, accepted)`` — departure
        times (``NaN`` where dropped) and a boolean acceptance mask.

        The scan applies *exactly* the per-packet float operations of
        :meth:`offer` (``max(t, free_at) + size/rate`` with the identical
        tail-drop test) over a running ``free_at``, and folds the same
        statistics in the same order, so interleaving ``offer`` and
        ``offer_batch`` calls is bitwise-indistinguishable from offering
        every packet individually.  Only per-``Packet`` bookkeeping
        (``dropped`` flags, ``hops``) is absent — there are no objects.

        Only valid on the tail-drop base class: subclasses with their own
        drop logic (e.g. RED) must not inherit this scan.
        """
        if type(self).offer is not FifoQueue.offer:
            raise NotImplementedError(
                f"{type(self).__name__} overrides offer(); the vectorized "
                f"scan only reproduces tail-drop FifoQueue semantics"
            )
        arrivals = np.asarray(arrivals, dtype=np.float64)
        sizes = np.asarray(sizes)
        n = len(arrivals)
        # vectorized per-element precomputation: identical IEEE ops to the
        # scalar `arrival + proc_delay` and `size / rate_Bps` in offer()
        t_l = (arrivals + self.proc_delay).tolist()
        svc_l = (sizes / self.rate_Bps).tolist()

        # the scan itself carries only what the recurrence needs (free_at
        # and the drop test); counters and delay statistics are folded in
        # afterwards from the departure array, with identical results
        fa = self._free_at
        rate_Bps = self.rate_Bps
        buffer_bytes = self.buffer_bytes
        dropped = 0
        bytes_drop = 0
        nan = float("nan")
        dep_l: list = []
        dep_append = dep_l.append
        if buffer_bytes is None:
            for t, svc in zip(t_l, svc_l):
                fa = (t if t > fa else fa) + svc
                dep_append(fa)
        else:
            size_l = sizes.tolist()
            threshold = _drop_free_threshold(
                buffer_bytes, int(sizes.max()) if n else 0, rate_Bps)
            # three arms: a backlog at or below the certified threshold
            # cannot drop any packet of this batch, so the common case skips
            # the drop arithmetic entirely; the rare near-full arm and the
            # idle arm apply the exact offer() float ops (max() resolved by
            # the branch already taken)
            for i, (t, svc) in enumerate(zip(t_l, svc_l)):
                backlog = fa - t
                if backlog > threshold:
                    size = size_l[i]
                    clamped = backlog * rate_Bps if backlog > 0.0 else 0.0
                    if clamped + size > buffer_bytes:
                        dropped += 1
                        bytes_drop += size
                        dep_append(nan)
                        continue
                    fa = (t if t > fa else fa) + svc
                elif backlog > 0.0:
                    fa = fa + svc
                else:
                    fa = t + svc
                dep_append(fa)

        self._free_at = fa
        departures = np.array(dep_l, dtype=np.float64) if n else np.empty(0)
        accepted_mask = (
            ~np.isnan(departures) if dropped else np.ones(n, dtype=bool)
        )
        acc_dep = departures[accepted_mask] if dropped else departures
        bytes_in = int(sizes.sum()) if n else 0  # reprolint: disable=BATCH003 -- int64 byte counter; integer addition is exact in any order
        stats = self.stats
        stats.arrivals += n
        stats.bytes_in += bytes_in
        stats.accepted += n - dropped
        stats.dropped += dropped
        stats.bytes_accepted += bytes_in - bytes_drop
        stats.bytes_dropped += bytes_drop
        if len(acc_dep):
            # delay_i = departure_i - arrival_i elementwise (same operands
            # as the scalar path); the explicit loop reproduces the
            # sequential `total_delay += delay` accumulation bit for bit —
            # builtin sum() would not (it compensates rounding on 3.12+)
            delay_l = (acc_dep - arrivals[accepted_mask]).tolist()
            total_delay = stats.total_delay
            for delay in delay_l:
                total_delay += delay
            stats.total_delay = total_delay
            peak = max(delay_l)
            if peak > stats.max_delay:
                stats.max_delay = peak
            stats.last_departure = float(acc_dep[-1])
        return departures, accepted_mask

    def utilization(self, duration: float) -> float:
        """Offered-load utilization of the link over *duration* seconds:
        accepted bytes / (rate × duration)."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        return self.stats.bytes_accepted / (self.rate_Bps * duration)

    def set_rate(self, rate_bps: float) -> None:
        """Change the drain rate (e.g. to model a degraded link).

        Only valid between runs / before the queue has backlog — the
        analytic model assumes a constant rate while work is queued.
        """
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive: {rate_bps}")
        self.rate_Bps = rate_bps / 8.0

    def reset(self) -> None:
        """Clear state and statistics for a fresh run."""
        self._free_at = 0.0
        self.stats = QueueStats()

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"FifoQueue({label and label.strip()} rate={self.rate_Bps * 8:.3g}bps "
            f"buffer={self.buffer_bytes} proc={self.proc_delay})"
        )
