"""Analytic work-conserving FIFO queue with a finite buffer.

This is the core of the paper's simulator: packets "experience processing and
queueing delays across multiple queues (equivalently, multiple
routers/switches)" (Section 4.1), where delays "are governed by queue size
and packet processing time".

Because service is FIFO at a deterministic link rate, the queue can be
simulated exactly in O(1) per packet without an event calendar:

* ``free_at`` is the time the transmitter finishes the last accepted packet;
* the backlog (in bytes) seen by an arrival at time ``t`` is exactly
  ``(free_at - t) * rate`` when ``free_at > t``, else 0;
* an arrival is dropped (tail drop) iff backlog + its size exceeds the
  buffer;
* otherwise its departure time is ``max(t, free_at) + size/rate``.

Arrivals must be offered in non-decreasing time order — both the fast
pipeline driver and the event engine guarantee this; the queue asserts it.
"""

from __future__ import annotations

from typing import Optional

from ..net.packet import Packet

__all__ = ["FifoQueue", "QueueStats"]


class QueueStats:
    """Counters accumulated by a :class:`FifoQueue`."""

    __slots__ = (
        "arrivals",
        "accepted",
        "dropped",
        "bytes_in",
        "bytes_accepted",
        "bytes_dropped",
        "total_delay",
        "max_delay",
        "last_departure",
    )

    def __init__(self) -> None:
        self.arrivals = 0
        self.accepted = 0
        self.dropped = 0
        self.bytes_in = 0
        self.bytes_accepted = 0
        self.bytes_dropped = 0
        self.total_delay = 0.0
        self.max_delay = 0.0
        self.last_departure = 0.0

    @property
    def loss_rate(self) -> float:
        """Fraction of arrivals dropped (0 if no arrivals)."""
        return self.dropped / self.arrivals if self.arrivals else 0.0

    @property
    def mean_delay(self) -> float:
        """Mean total delay (processing + waiting + transmission) of
        accepted packets."""
        return self.total_delay / self.accepted if self.accepted else 0.0


class FifoQueue:
    """Work-conserving FIFO queue draining at a fixed link rate.

    Parameters
    ----------
    rate_bps:
        Link rate in bits per second.
    buffer_bytes:
        Tail-drop buffer size in bytes.  An arrival that would push the
        backlog past this limit is dropped.  ``None`` means infinite.
    proc_delay:
        Fixed per-packet processing (pipeline) delay applied before the
        packet reaches the buffer, in seconds.
    name:
        Optional label used in reprs and drop diagnostics.
    """

    __slots__ = ("rate_Bps", "buffer_bytes", "proc_delay", "name", "_free_at", "stats")

    def __init__(
        self,
        rate_bps: float,
        buffer_bytes: Optional[int] = None,
        proc_delay: float = 0.0,
        name: str = "",
    ):
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive: {rate_bps}")
        if buffer_bytes is not None and buffer_bytes <= 0:
            raise ValueError(f"buffer must be positive or None: {buffer_bytes}")
        if proc_delay < 0:
            raise ValueError(f"processing delay must be non-negative: {proc_delay}")
        self.rate_Bps = rate_bps / 8.0
        self.buffer_bytes = buffer_bytes
        self.proc_delay = proc_delay
        self.name = name
        self._free_at = 0.0
        self.stats = QueueStats()

    # ------------------------------------------------------------------

    def backlog_bytes(self, now: float) -> float:
        """Bytes queued (including the packet in service) at time *now*."""
        return max(0.0, self._free_at - now) * self.rate_Bps

    def transmission_time(self, size_bytes: int) -> float:
        """Seconds to serialize *size_bytes* onto the link."""
        return size_bytes / self.rate_Bps

    def offer(self, packet: Packet, arrival: float) -> Optional[float]:
        """Offer *packet* at time *arrival*; return its departure time.

        Returns ``None`` and marks ``packet.dropped`` if the buffer
        overflows.  Arrivals must be non-decreasing in time.
        """
        stats = self.stats
        stats.arrivals += 1
        stats.bytes_in += packet.size
        t = arrival + self.proc_delay
        backlog = max(0.0, self._free_at - t) * self.rate_Bps
        if self.buffer_bytes is not None and backlog + packet.size > self.buffer_bytes:
            stats.dropped += 1
            stats.bytes_dropped += packet.size
            packet.dropped = True
            return None
        departure = max(t, self._free_at) + packet.size / self.rate_Bps
        self._free_at = departure
        delay = departure - arrival
        stats.accepted += 1
        stats.bytes_accepted += packet.size
        stats.total_delay += delay
        if delay > stats.max_delay:
            stats.max_delay = delay
        stats.last_departure = departure
        packet.hops += 1
        return departure

    def utilization(self, duration: float) -> float:
        """Offered-load utilization of the link over *duration* seconds:
        accepted bytes / (rate × duration)."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        return self.stats.bytes_accepted / (self.rate_Bps * duration)

    def set_rate(self, rate_bps: float) -> None:
        """Change the drain rate (e.g. to model a degraded link).

        Only valid between runs / before the queue has backlog — the
        analytic model assumes a constant rate while work is queued.
        """
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive: {rate_bps}")
        self.rate_Bps = rate_bps / 8.0

    def reset(self) -> None:
        """Clear state and statistics for a fresh run."""
        self._free_at = 0.0
        self.stats = QueueStats()

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"FifoQueue({label and label.strip()} rate={self.rate_Bps * 8:.3g}bps "
            f"buffer={self.buffer_bytes} proc={self.proc_delay})"
        )
