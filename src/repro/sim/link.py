"""Ports and links.

A :class:`Port` is an egress interface of a switch: a finite-buffer FIFO
queue draining at the link rate, plus the propagation delay to the neighbor
on the other end.  Measurement instances attach to ports as *taps*:

* ``enqueue_taps`` fire when a packet is offered to the egress queue — this
  is where an RLI *sender* sits (it observes the regular stream at its
  interface and injects reference packets into the same queue);
* ``depart_taps`` fire when a packet finishes transmission — useful for
  wire-level accounting.

Receivers observe packets at node arrival (see ``Switch.arrival_taps``),
matching the paper's placement of the RLI receiver after the downstream
queue (Figure 3).
"""

from __future__ import annotations

from typing import Callable, List, Optional, TYPE_CHECKING

from ..net.packet import Packet
from .queue import FifoQueue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .switch import Switch

__all__ = ["Port"]

TapFn = Callable[[Packet, float], None]


class Port:
    """An egress interface: queue + wire toward a neighbor node.

    Parameters
    ----------
    owner:
        The switch this port belongs to.
    index:
        Port number on the owner switch.
    queue:
        The egress FIFO.
    prop_delay:
        Propagation delay of the attached wire, seconds.
    neighbor:
        The node at the far end (set when the topology is wired).
    """

    __slots__ = (
        "owner",
        "index",
        "queue",
        "prop_delay",
        "neighbor",
        "enqueue_taps",
        "depart_taps",
    )

    def __init__(
        self,
        owner: "Switch",
        index: int,
        queue: FifoQueue,
        prop_delay: float = 0.0,
        neighbor: Optional["Switch"] = None,
    ):
        self.owner = owner
        self.index = index
        self.queue = queue
        self.prop_delay = prop_delay
        self.neighbor = neighbor
        self.enqueue_taps: List[TapFn] = []
        self.depart_taps: List[TapFn] = []

    def add_enqueue_tap(self, fn: TapFn) -> None:
        """Attach an observer fired when a packet is offered to this port."""
        self.enqueue_taps.append(fn)

    def add_depart_tap(self, fn: TapFn) -> None:
        """Attach an observer fired when a packet leaves the wire end."""
        self.depart_taps.append(fn)

    def __repr__(self) -> str:
        to = self.neighbor.name if self.neighbor is not None else "?"
        return f"Port({self.owner.name}[{self.index}] -> {to})"
