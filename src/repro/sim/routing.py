"""Queue-free forwarding walk-throughs.

:func:`trace_route` replays a packet's forwarding decisions (LPM + ECMP
hashing + local delivery) across a topology without simulating queues.  It
yields exactly the switch sequence the event engine would produce, and is
used by tests (path ground truth), by the reverse-ECMP classifier's sanity
checks, and by the localization example to describe segments to operators.
"""

from __future__ import annotations

from typing import List

from ..net.packet import Packet
from .switch import LOCAL_DELIVERY, Switch

__all__ = ["trace_route", "RoutingError"]


class RoutingError(Exception):
    """A packet could not be routed (no route or a forwarding loop)."""


def trace_route(start: Switch, packet: Packet, max_hops: int = 64) -> List[Switch]:
    """Return the switch path *packet* takes from *start* to delivery.

    The path includes *start* and the delivering switch.  Raises
    :class:`RoutingError` on missing routes or loops longer than *max_hops*.
    """
    path = [start]
    current = start
    for _ in range(max_hops):
        target = current.route_port(packet)
        if target is LOCAL_DELIVERY:
            return path
        if target is None:
            raise RoutingError(f"no route for {packet!r} at {current.name}")
        port = current.ports[target]  # type: ignore[index]
        if port.neighbor is None:
            return path  # exits the modeled network at this port
        current = port.neighbor
        path.append(current)
    raise RoutingError(f"forwarding loop for {packet!r} (> {max_hops} hops)")
