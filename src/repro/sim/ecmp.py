"""ECMP hashing and reverse computation support.

Data-center switches pick the next hop for a packet by hashing its flow key
(equal-cost multipath).  This is exactly why the naive "deploy RLI across
routers" breaks: packets between the same pair of instrumented routers can
take different intermediate paths with uncorrelated delays (paper Section 1).

The paper's reverse-ECMP idea (Section 3.1, "Downstream") assumes switch
vendors reveal their hash functions so an RLIR receiver can *recompute* which
uplink an upstream switch chose for a given flow key, thereby identifying the
intermediate (core) router a regular packet traversed.

We implement a deterministic keyed hash (an xorshift/Fibonacci mix over the
5-tuple and a per-switch seed).  It is stable across processes (unlike
Python's ``hash``) and statistically well-spread, which is all ECMP needs.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["EcmpHasher", "craft_dport_for_port"]

_MASK64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """SplitMix64 finalizer — a strong 64-bit avalanche mix."""
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _mix64_batch(x: np.ndarray) -> np.ndarray:
    """:func:`_mix64` over a uint64 array.

    uint64 arithmetic is mod-2^64, i.e. exactly the scalar path's explicit
    ``& _MASK64`` masking, so the two produce identical words bit for bit.
    """
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


class EcmpHasher:
    """Per-switch ECMP hash over the 5-tuple.

    Parameters
    ----------
    seed:
        Per-switch salt.  Distinct switches must use distinct seeds,
        otherwise all switches make correlated choices and multipath
        utilization collapses (a real phenomenon known as hash polarization,
        which we also exploit in tests).
    fields:
        Which key fields participate in the hash.  Real switches commonly
        hash the full 5-tuple; some hash only (src, dst).  Both are
        supported so that reverse-ECMP can mirror the deployed config.
    """

    __slots__ = ("seed", "fields")

    FULL_TUPLE = ("src", "dst", "sport", "dport", "proto")
    ADDRESS_PAIR = ("src", "dst")

    def __init__(self, seed: int, fields: Sequence[str] = FULL_TUPLE):
        unknown = set(fields) - set(self.FULL_TUPLE)
        if unknown:
            raise ValueError(f"unknown hash fields: {sorted(unknown)}")
        if not fields:
            raise ValueError("at least one hash field required")
        self.seed = seed
        self.fields = tuple(fields)

    def hash_key(self, key: Tuple[int, int, int, int, int]) -> int:
        """64-bit hash of a 5-tuple ``(src, dst, sport, dport, proto)``."""
        src, dst, sport, dport, proto = key
        acc = _mix64(self.seed ^ 0x9E3779B97F4A7C15)
        if "src" in self.fields:
            acc = _mix64(acc ^ src)
        if "dst" in self.fields:
            acc = _mix64(acc ^ (dst << 1))
        if "sport" in self.fields:
            acc = _mix64(acc ^ (sport << 2))
        if "dport" in self.fields:
            acc = _mix64(acc ^ (dport << 3))
        if "proto" in self.fields:
            acc = _mix64(acc ^ (proto << 4))
        return acc

    def choose(self, key: Tuple[int, int, int, int, int], n_ports: int) -> int:
        """Pick one of *n_ports* equal-cost ports for flow *key*."""
        if n_ports <= 0:
            raise ValueError("n_ports must be positive")
        if n_ports == 1:
            return 0
        return self.hash_key(key) % n_ports

    def hash_key_batch(self, src, dst, sport, dport, proto) -> np.ndarray:
        """Vectorized :meth:`hash_key` over parallel flow-key columns.

        Bit-identical to the scalar hash per element (uint64 wraparound ==
        the scalar path's 64-bit masking); used by the columnar fat-tree
        drivers and the reverse-ECMP batch classifier.
        """
        acc0 = _mix64(self.seed ^ 0x9E3779B97F4A7C15)
        acc = np.full(len(src), acc0, dtype=np.uint64)
        if "src" in self.fields:
            acc = _mix64_batch(acc ^ np.asarray(src).astype(np.uint64))
        if "dst" in self.fields:
            acc = _mix64_batch(acc ^ (np.asarray(dst).astype(np.uint64) << np.uint64(1)))
        if "sport" in self.fields:
            acc = _mix64_batch(acc ^ (np.asarray(sport).astype(np.uint64) << np.uint64(2)))
        if "dport" in self.fields:
            acc = _mix64_batch(acc ^ (np.asarray(dport).astype(np.uint64) << np.uint64(3)))
        if "proto" in self.fields:
            acc = _mix64_batch(acc ^ (np.asarray(proto).astype(np.uint64) << np.uint64(4)))
        return acc

    def choose_batch(self, src, dst, sport, dport, proto, n_ports: int) -> np.ndarray:
        """Vectorized :meth:`choose`: one int64 port index per element."""
        if n_ports <= 0:
            raise ValueError("n_ports must be positive")
        if n_ports == 1:
            return np.zeros(len(src), dtype=np.int64)
        hashed = self.hash_key_batch(src, dst, sport, dport, proto)
        return (hashed % np.uint64(n_ports)).astype(np.int64)

    def __repr__(self) -> str:
        return f"EcmpHasher(seed={self.seed}, fields={self.fields})"


def craft_dport_for_port(
    hasher: EcmpHasher,
    src: int,
    dst: int,
    sport: int,
    proto: int,
    n_ports: int,
    target_port: int,
    max_tries: int = 4096,
    start_dport: int = 40000,
) -> Optional[int]:
    """Find a destination port that makes *hasher* choose *target_port*.

    This is how an RLIR sender "sends reference packets to all intermediate
    receivers through which its packets may cross" (paper Section 3.1): since
    it knows its local switch's hash function, it crafts one reference flow
    per uplink so every equal-cost path carries a reference stream.

    Returns the dport, or ``None`` if none found within *max_tries* (cannot
    happen for well-mixed hashes unless dport is excluded from the hash).
    """
    if not 0 <= target_port < n_ports:
        raise ValueError(f"target_port {target_port} out of range [0, {n_ports})")
    if "dport" not in hasher.fields:
        key = (src, dst, sport, start_dport, proto)
        return start_dport if hasher.choose(key, n_ports) == target_port else None
    for offset in range(max_tries):
        dport = start_dport + offset
        if hasher.choose((src, dst, sport, dport, proto), n_ports) == target_port:
            return dport
    return None
