"""Output-queued switch with LPM routing and ECMP uplink groups.

Forwarding model (matches commodity data-center switches as described in the
paper): the destination address is looked up in a longest-prefix-match table;
the result is either a single egress port (downward routes — deterministic in
a fat-tree) or an *ECMP group* of equal-cost ports, one of which is selected
by hashing the packet's 5-tuple with the switch's hash function (upward
routes).  A route to the switch's own address delivers the packet locally,
which is how reference packets terminate at a measurement instance.

Optionally a switch can be configured to *mark* packets passing through it
(paper Section 3.1: core routers stamp the ToS byte so downstream RLIR
receivers can identify the intermediate router).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

from ..net.addressing import Prefix, PrefixTrie, int_to_ip
from ..net.headers import encode_mark
from ..net.packet import Packet
from .ecmp import EcmpHasher
from .link import Port
from .queue import FifoQueue

__all__ = ["Switch", "EcmpGroup", "LOCAL_DELIVERY"]

ArrivalTap = Callable[[Packet, float, int], None]


class EcmpGroup:
    """A set of equal-cost egress ports resolved by the switch hash."""

    __slots__ = ("ports",)

    def __init__(self, ports: Sequence[int]):
        if not ports:
            raise ValueError("ECMP group must contain at least one port")
        self.ports = tuple(ports)

    def __repr__(self) -> str:
        return f"EcmpGroup(ports={self.ports})"


class _Local:
    """Sentinel route target: deliver to this switch's local instance."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "LOCAL_DELIVERY"


LOCAL_DELIVERY = _Local()

RouteTarget = Union[int, EcmpGroup, _Local]


class Switch:
    """A store-and-forward switch/router.

    Parameters
    ----------
    name:
        Human-readable label (e.g. ``"tor(p0,e1)"``).
    node_id:
        Unique integer id within a topology.
    address:
        The switch's own loopback/interface address (int).  Packets
        addressed to it are delivered locally.
    hasher:
        The switch's ECMP hash function.
    mark:
        If non-zero, every packet forwarded by this switch gets this value
        stamped into its ToS byte (the paper's packet-marking option).
    """

    def __init__(
        self,
        name: str,
        node_id: int,
        address: int,
        hasher: EcmpHasher,
        mark: int = 0,
    ):
        self.name = name
        self.node_id = node_id
        self.address = address
        self.hasher = hasher
        self.mark = mark
        self.ports: List[Port] = []
        self.routes: PrefixTrie[RouteTarget] = PrefixTrie()
        self.arrival_taps: List[ArrivalTap] = []
        self.local_sink: List[Tuple[Packet, float]] = []
        # route to self delivers locally
        self.routes.insert(Prefix(address, 32), LOCAL_DELIVERY)

    # ------------------------------------------------------------------
    # wiring

    def add_port(
        self,
        rate_bps: float,
        buffer_bytes: Optional[int],
        proc_delay: float = 0.0,
        prop_delay: float = 0.0,
    ) -> Port:
        """Create a new egress port; returns it (neighbor wired later)."""
        index = len(self.ports)
        queue = FifoQueue(
            rate_bps,
            buffer_bytes,
            proc_delay=proc_delay,
            name=f"{self.name}[{index}]",
        )
        port = Port(self, index, queue, prop_delay=prop_delay)
        self.ports.append(port)
        return port

    def add_route(self, prefix: Prefix, target: RouteTarget) -> None:
        """Install a route: prefix → port index, ECMP group or local."""
        self.routes.insert(prefix, target)

    def add_arrival_tap(self, fn: ArrivalTap) -> None:
        """Observer fired for every packet arriving at this switch."""
        self.arrival_taps.append(fn)

    # ------------------------------------------------------------------
    # forwarding

    def route_port(self, packet: Packet) -> Optional[RouteTarget]:
        """Resolve the egress for *packet* (ECMP group already hashed).

        Returns a port index, ``LOCAL_DELIVERY``, or ``None`` if no route.
        """
        target = self.routes.lookup(packet.dst)
        if isinstance(target, EcmpGroup):
            choice = self.hasher.choose(packet.flow_key, len(target.ports))
            return target.ports[choice]
        return target

    def receive(self, packet: Packet, now: float, in_port: int = -1) -> Optional[Tuple[Port, float]]:
        """Handle an arriving packet.

        Fires arrival taps, resolves the route, applies marking, and offers
        the packet to the chosen egress queue.  Returns ``(port, departure)``
        if the packet was forwarded, ``None`` if it was delivered locally or
        dropped (no route / buffer overflow).
        """
        packet.path = packet.path + (self.node_id,)
        for tap in self.arrival_taps:
            tap(packet, now, in_port)
        target = self.route_port(packet)
        if target is LOCAL_DELIVERY:
            self.local_sink.append((packet, now))
            return None
        if target is None:
            packet.dropped = True
            return None
        if self.mark:
            packet.tos = encode_mark(packet.tos, self.mark)
        port = self.ports[target]  # type: ignore[index]
        return self._transmit(port, packet, now)

    def inject(self, packet: Packet, now: float, port_index: int) -> Optional[Tuple[Port, float]]:
        """Inject a locally-generated packet directly into an egress port.

        Used by RLI senders: the reference packet enters the same egress
        queue as the regular stream it shadows, without passing routing.
        """
        return self._transmit(self.ports[port_index], packet, now)

    def _transmit(self, port: Port, packet: Packet, now: float) -> Optional[Tuple[Port, float]]:
        departure = port.queue.offer(packet, now)
        if departure is None:
            return None
        # taps fire after acceptance so a sender's injected reference packets
        # are offered behind the regular packet that triggered them
        for tap in port.enqueue_taps:
            tap(packet, now)
        for tap in port.depart_taps:
            tap(packet, departure)
        return port, departure

    def __repr__(self) -> str:
        return f"Switch({self.name} addr={int_to_ip(self.address)} ports={len(self.ports)})"
