"""IEEE 1588 (PTP)-style two-way time transfer.

RLI's prerequisite: "Time-synchronization between RLI instances is a basic
requirement, that can be achieved by GPS-based clock synchronization or
IEEE 1588" (paper Section 2).  This module provides the substrate for
studying that requirement instead of assuming it away: a two-way exchange
model that *estimates* a slave clock's offset the way a PTP session does,
including the error floor that path-delay asymmetry imposes.

One exchange (all times in the master's timebase, offset = slave − master):

    t1  master sends SYNC            (master clock)
    t2  slave receives SYNC          (slave clock)  = t1 + d_ms + offset
    t3  slave sends DELAY_REQ        (slave clock)
    t4  master receives DELAY_REQ    (master clock) = t3 − offset + d_sm

    offset_est = ((t2 − t1) − (t4 − t3)) / 2
               = offset + (d_ms − d_sm) / 2      ← asymmetry error

Like a real PTP servo, :meth:`PtpSession.synchronize` runs many exchanges
and combines the minimum-delay ones (queueing noise is one-sided, so
min-filtering approaches the propagation-only exchange).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .clock import OffsetClock

__all__ = ["PtpExchange", "PtpSession"]


class PtpExchange:
    """One SYNC/DELAY_REQ round trip's timestamps and derived values."""

    __slots__ = ("t1", "t2", "t3", "t4")

    def __init__(self, t1: float, t2: float, t3: float, t4: float):
        self.t1 = t1
        self.t2 = t2
        self.t3 = t3
        self.t4 = t4

    @property
    def offset_estimate(self) -> float:
        return 0.5 * ((self.t2 - self.t1) - (self.t4 - self.t3))

    @property
    def round_trip(self) -> float:
        """Apparent round-trip (offset cancels)."""
        return (self.t4 - self.t1) - (self.t3 - self.t2)


class PtpSession:
    """Synchronize a slave clock against a master over a noisy path.

    Parameters
    ----------
    true_offset:
        The slave clock's actual offset from the master (what the session
        tries to estimate), seconds.
    base_delay_ms / base_delay_sm:
        Propagation delay master→slave and slave→master.  Unequal values
        model path asymmetry — the PTP error floor: the residual offset
        error converges to (d_ms − d_sm)/2, not zero.
    queue_jitter:
        Mean of the one-sided exponential queueing delay added to each
        message (congestion between the instances).
    seed:
        Noise stream seed.
    """

    def __init__(
        self,
        true_offset: float,
        base_delay_ms: float = 5e-6,
        base_delay_sm: float = 5e-6,
        queue_jitter: float = 0.0,
        seed: Optional[int] = None,
    ):
        if base_delay_ms < 0 or base_delay_sm < 0:
            raise ValueError("propagation delays must be non-negative")
        if queue_jitter < 0:
            raise ValueError("queue jitter must be non-negative")
        self.true_offset = true_offset
        self.base_delay_ms = base_delay_ms
        self.base_delay_sm = base_delay_sm
        self.queue_jitter = queue_jitter
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------

    def exchange(self, start: float) -> PtpExchange:
        """Run one two-way exchange beginning at master time *start*."""
        jitter = self.queue_jitter
        d_ms = self.base_delay_ms + (self._rng.exponential(jitter) if jitter else 0.0)
        d_sm = self.base_delay_sm + (self._rng.exponential(jitter) if jitter else 0.0)
        t1 = start
        t2 = t1 + d_ms + self.true_offset  # slave clock reading
        turnaround = 1e-6
        t3 = t2 + turnaround
        t4 = (t3 - self.true_offset) + d_sm  # back in master time
        return PtpExchange(t1, t2, t3, t4)

    def synchronize(self, rounds: int = 16, interval: float = 0.1, keep_best: int = 4) -> "PtpResult":
        """Run *rounds* exchanges and servo on the minimum-delay ones."""
        if rounds < 1:
            raise ValueError(f"need at least one round: {rounds}")
        if keep_best < 1:
            raise ValueError(f"keep_best must be >= 1: {keep_best}")
        exchanges = [self.exchange(i * interval) for i in range(rounds)]
        best = sorted(exchanges, key=lambda e: e.round_trip)[: min(keep_best, rounds)]
        estimate = sum(e.offset_estimate for e in best) / len(best)
        return PtpResult(estimate, self.true_offset, exchanges)


class PtpResult:
    """Outcome of a synchronization session."""

    def __init__(self, estimated_offset: float, true_offset: float, exchanges: List[PtpExchange]):
        self.estimated_offset = estimated_offset
        self.true_offset = true_offset
        self.exchanges = exchanges

    @property
    def residual_error(self) -> float:
        """Offset error remaining after correction (what leaks into RLI
        delay samples)."""
        return self.estimated_offset - self.true_offset

    def corrected_clock(self) -> OffsetClock:
        """The slave's clock after applying the estimated correction.

        Its effective offset from true time is the negated residual error
        (over-estimating the offset leaves the clock running behind); plug
        it into an :class:`~repro.core.receiver.RliReceiver` to study sync
        quality end to end.
        """
        return OffsetClock(self.true_offset - self.estimated_offset)

    def __repr__(self) -> str:
        return (
            f"PtpResult(est={self.estimated_offset:.3e}, true={self.true_offset:.3e}, "
            f"residual={self.residual_error:.3e}, rounds={len(self.exchanges)})"
        )
