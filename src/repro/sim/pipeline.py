"""The paper's simulation environment (Figure 3): a two-switch pipeline.

    Packet trace ──► Traffic divider ──► [Switch 1] ──► [Switch 2] ──► sink
                          │  cross           ▲ RLI sender    ▲ bottleneck
                          └──────────► Cross-traffic injector   RLI receiver

Regular traffic traverses Switch 1 (where the RLI sender taps the egress
queue and injects reference packets) and then Switch 2.  Cross traffic skips
Switch 1 and joins at Switch 2, whose utilization is controlled by the
cross-traffic injection model.  The RLI receiver observes packets departing
Switch 2 and produces per-flow latency estimates of the regular traffic.

Because the pipeline is feed-forward, it can be driven by a single sorted
merge instead of an event calendar — the analytic queues make each packet
O(1) — which lets the benches run 10^5–10^6-packet traces in seconds.  The
queues and semantics are identical to the event engine's.

The pipeline is deliberately decoupled from :mod:`repro.core`: the sender
and receiver are any objects implementing the small protocols below, so the
same environment also drives baselines (LDA, Multiflow) and ablations.

Sender protocol
    ``on_regular(packet, now) -> Optional[List[Packet]]`` — called for every
    regular packet entering Switch 1's egress queue; may return reference
    packets to inject right behind it.

Receiver protocol
    ``observe(packet, now)`` — called for every non-cross packet departing
    Switch 2.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple

from ..net.packet import Packet, PacketKind
from .queue import FifoQueue

__all__ = ["PipelineConfig", "PipelineResult", "TwoSwitchPipeline"]


class PipelineConfig:
    """Physical parameters of the two switches.

    Defaults model 1 Gb/s links with 256 KB tail-drop buffers and 1 µs of
    per-packet processing, giving the tens-of-µs congested delays the paper
    reports.
    """

    __slots__ = ("rate1_bps", "rate2_bps", "buffer1_bytes", "buffer2_bytes",
                 "proc_delay", "queue_factory")

    def __init__(
        self,
        rate1_bps: float = 1e9,
        rate2_bps: float = 1e9,
        buffer1_bytes: Optional[int] = 256 * 1024,
        buffer2_bytes: Optional[int] = 256 * 1024,
        proc_delay: float = 1e-6,
        queue_factory=None,
    ):
        self.rate1_bps = rate1_bps
        self.rate2_bps = rate2_bps
        self.buffer1_bytes = buffer1_bytes
        self.buffer2_bytes = buffer2_bytes
        self.proc_delay = proc_delay
        # queue_factory(rate_bps, buffer_bytes, proc_delay, name) -> queue;
        # defaults to the tail-drop FifoQueue, override e.g. with RedQueue
        self.queue_factory = queue_factory or FifoQueue


class PipelineResult:
    """Counters and queue statistics from one pipeline run."""

    def __init__(self, queue1: FifoQueue, queue2: FifoQueue, duration: float):
        self.queue1 = queue1
        self.queue2 = queue2
        self.duration = duration
        # per-kind arrival/drop counters at switch 2
        self.arrivals2: Dict[PacketKind, int] = {k: 0 for k in PacketKind}
        self.drops2: Dict[PacketKind, int] = {k: 0 for k in PacketKind}
        self.refs_injected = 0

    @property
    def utilization2(self) -> float:
        """Measured utilization of the bottleneck (Switch 2) link."""
        return self.queue2.utilization(self.duration)

    @property
    def utilization1(self) -> float:
        return self.queue1.utilization(self.duration)

    def loss_rate(self, kind: PacketKind = PacketKind.REGULAR) -> float:
        """Loss rate of *kind* packets at the bottleneck switch."""
        arrivals = self.arrivals2[kind]
        return self.drops2[kind] / arrivals if arrivals else 0.0


class TwoSwitchPipeline:
    """Drive one run of the Figure-3 environment."""

    def __init__(self, config: Optional[PipelineConfig] = None):
        self.config = config or PipelineConfig()

    def run(
        self,
        regular: Iterable[Packet],
        cross: Iterable[Tuple[float, Packet]],
        sender=None,
        receiver=None,
        duration: Optional[float] = None,
    ) -> PipelineResult:
        """Run the pipeline.

        Parameters
        ----------
        regular:
            Regular-traffic packets sorted by ``ts`` (arrival at Switch 1).
        cross:
            ``(arrival_time, packet)`` pairs sorted by time — the output of a
            cross-traffic injection model; these arrive directly at Switch 2.
        sender:
            Optional RLI sender (see module docstring).  ``None`` disables
            reference injection (the paper's "without references" runs for
            Figure 5).
        receiver:
            Optional RLI receiver observing Switch-2 departures.
        duration:
            Trace span in seconds used for utilization accounting; inferred
            from the last departure if omitted.
        """
        cfg = self.config
        queue1 = cfg.queue_factory(cfg.rate1_bps, cfg.buffer1_bytes, cfg.proc_delay, "switch1")
        queue2 = cfg.queue_factory(cfg.rate2_bps, cfg.buffer2_bytes, cfg.proc_delay, "switch2")

        stage2_inputs = self._stage1(regular, queue1, sender)
        result = PipelineResult(queue1, queue2, duration or 0.0)
        result.refs_injected = self._refs_injected

        merged = heapq.merge(stage2_inputs, cross, key=lambda item: item[0])
        arrivals2 = result.arrivals2
        drops2 = result.drops2
        for arrival, packet in merged:
            arrivals2[packet.kind] += 1
            departure = queue2.offer(packet, arrival)
            if departure is None:
                drops2[packet.kind] += 1
                continue
            if receiver is not None and packet.kind != PacketKind.CROSS:
                receiver.observe(packet, departure)

        if duration is None:
            result.duration = max(queue1.stats.last_departure, queue2.stats.last_departure)
        return result

    # ------------------------------------------------------------------

    def _stage1(self, regular: Iterable[Packet], queue1: FifoQueue, sender) -> List[Tuple[float, Packet]]:
        """Pass regular traffic (plus injected references) through Switch 1.

        Returns (departure, packet) pairs; FIFO service keeps them sorted.
        Sets each packet's ``tap_time`` — the instant it passed the sender's
        interface, which defines the measured segment's entry point.
        """
        out: List[Tuple[float, Packet]] = []
        self._refs_injected = 0
        for packet in regular:
            now = packet.ts
            departure = queue1.offer(packet, now)
            if departure is None:
                continue  # dropped at switch 1: never passed the interface
            packet.tap_time = now
            out.append((departure, packet))
            if sender is None:
                continue
            refs = sender.on_regular(packet, now)
            if refs:
                for ref in refs:
                    self._refs_injected += 1
                    ref_departure = queue1.offer(ref, now)
                    if ref_departure is not None:
                        out.append((ref_departure, ref))
        return out
