"""The paper's simulation environment (Figure 3): a two-switch pipeline.

    Packet trace ──► Traffic divider ──► [Switch 1] ──► [Switch 2] ──► sink
                          │  cross           ▲ RLI sender    ▲ bottleneck
                          └──────────► Cross-traffic injector   RLI receiver

Regular traffic traverses Switch 1 (where the RLI sender taps the egress
queue and injects reference packets) and then Switch 2.  Cross traffic skips
Switch 1 and joins at Switch 2, whose utilization is controlled by the
cross-traffic injection model.  The RLI receiver observes packets departing
Switch 2 and produces per-flow latency estimates of the regular traffic.

Because the pipeline is feed-forward, it can be driven by a single sorted
merge instead of an event calendar — the analytic queues make each packet
O(1) — which lets the benches run 10^5–10^6-packet traces in seconds.  The
queues and semantics are identical to the event engine's.

The pipeline is deliberately decoupled from :mod:`repro.core`: the sender
and receiver are any objects implementing the small protocols below, so the
same environment also drives baselines (LDA, Multiflow) and ablations.

Sender protocol
    ``on_regular(packet, now) -> Optional[List[Packet]]`` — called for every
    regular packet entering Switch 1's egress queue; may return reference
    packets to inject right behind it.

Receiver protocol
    ``observe(packet, now)`` — called for every non-cross packet departing
    Switch 2.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..net.packet import Packet, PacketKind
from ..obs import metrics as obs_metrics
from ..traffic.batch import PacketBatch
from .queue import FifoQueue, _drop_free_threshold, _scatter_merge

__all__ = ["PipelineConfig", "PipelineResult", "TwoSwitchPipeline"]


class PipelineConfig:
    """Physical parameters of the two switches.

    Defaults model 1 Gb/s links with 256 KB tail-drop buffers and 1 µs of
    per-packet processing, giving the tens-of-µs congested delays the paper
    reports.

    ``batch=True`` selects the columnar fast path: :meth:`TwoSwitchPipeline.run`
    dispatches to :meth:`~TwoSwitchPipeline.run_batch` whenever the inputs
    carry (or are) :class:`~repro.traffic.batch.PacketBatch` columns.  The
    fast path produces bitwise-identical results; when a component cannot
    be driven columnar (custom queues, senders, receivers), it silently
    falls back to the per-object reference implementation.
    """

    __slots__ = ("rate1_bps", "rate2_bps", "buffer1_bytes", "buffer2_bytes",
                 "proc_delay", "queue_factory", "batch")

    def __init__(
        self,
        rate1_bps: float = 1e9,
        rate2_bps: float = 1e9,
        buffer1_bytes: Optional[int] = 256 * 1024,
        buffer2_bytes: Optional[int] = 256 * 1024,
        proc_delay: float = 1e-6,
        queue_factory=None,
        batch: bool = False,
    ):
        self.rate1_bps = rate1_bps
        self.rate2_bps = rate2_bps
        self.buffer1_bytes = buffer1_bytes
        self.buffer2_bytes = buffer2_bytes
        self.proc_delay = proc_delay
        # queue_factory(rate_bps, buffer_bytes, proc_delay, name) -> queue;
        # defaults to the tail-drop FifoQueue, override e.g. with RedQueue
        self.queue_factory = queue_factory or FifoQueue
        self.batch = batch


class PipelineResult:
    """Counters and queue statistics from one pipeline run."""

    def __init__(self, queue1: FifoQueue, queue2: FifoQueue, duration: float):
        self.queue1 = queue1
        self.queue2 = queue2
        self.duration = duration
        # per-kind arrival/drop counters at switch 2
        self.arrivals2: Dict[PacketKind, int] = {k: 0 for k in PacketKind}
        self.drops2: Dict[PacketKind, int] = {k: 0 for k in PacketKind}
        self.refs_injected = 0

    @property
    def utilization2(self) -> float:
        """Measured utilization of the bottleneck (Switch 2) link."""
        return self.queue2.utilization(self.duration)

    @property
    def utilization1(self) -> float:
        return self.queue1.utilization(self.duration)

    def loss_rate(self, kind: PacketKind = PacketKind.REGULAR) -> float:
        """Loss rate of *kind* packets at the bottleneck switch."""
        arrivals = self.arrivals2[kind]
        return self.drops2[kind] / arrivals if arrivals else 0.0


class TwoSwitchPipeline:
    """Drive one run of the Figure-3 environment."""

    def __init__(self, config: Optional[PipelineConfig] = None):
        self.config = config or PipelineConfig()

    def run(
        self,
        regular: Iterable[Packet],
        cross: Iterable[Tuple[float, Packet]],
        sender=None,
        receiver=None,
        duration: Optional[float] = None,
    ) -> PipelineResult:
        """Run the pipeline.

        Parameters
        ----------
        regular:
            Regular-traffic packets sorted by ``ts`` (arrival at Switch 1).
        cross:
            ``(arrival_time, packet)`` pairs sorted by time — the output of a
            cross-traffic injection model; these arrive directly at Switch 2.
        sender:
            Optional RLI sender (see module docstring).  ``None`` disables
            reference injection (the paper's "without references" runs for
            Figure 5).
        receiver:
            Optional RLI receiver observing Switch-2 departures.
        duration:
            Trace span in seconds used for utilization accounting; inferred
            from the last departure if omitted.
        """
        if self.config.batch:
            regular_b = PacketBatch.coerce(regular)
            cross_b = PacketBatch.coerce(cross)
            if regular_b is not None and (cross_b is not None or not cross):
                return self.run_batch(
                    regular_b, cross_b or PacketBatch.empty(),
                    sender=sender, receiver=receiver, duration=duration,
                )
            if regular_b is None:
                obs_metrics.fallback("pipeline.run", "regular-not-columnar")
            else:
                obs_metrics.fallback("pipeline.run", "cross-not-columnar")
        cfg = self.config
        queue1 = cfg.queue_factory(cfg.rate1_bps, cfg.buffer1_bytes, cfg.proc_delay, "switch1")
        queue2 = cfg.queue_factory(cfg.rate2_bps, cfg.buffer2_bytes, cfg.proc_delay, "switch2")

        stage2_inputs = self._stage1(regular, queue1, sender)
        result = PipelineResult(queue1, queue2, duration or 0.0)
        result.refs_injected = self._refs_injected

        merged = heapq.merge(stage2_inputs, cross, key=lambda item: item[0])
        arrivals2 = result.arrivals2
        drops2 = result.drops2
        for arrival, packet in merged:
            arrivals2[packet.kind] += 1
            departure = queue2.offer(packet, arrival)
            if departure is None:
                drops2[packet.kind] += 1
                continue
            if receiver is not None and packet.kind != PacketKind.CROSS:
                receiver.observe(packet, departure)

        if duration is None:
            result.duration = max(queue1.stats.last_departure, queue2.stats.last_departure)
        return result

    # ------------------------------------------------------------------
    # columnar fast path

    def run_batch(
        self,
        regular,
        cross=None,
        sender=None,
        receiver=None,
        duration: Optional[float] = None,
    ) -> PipelineResult:
        """Run the pipeline on columnar packet batches.

        Accepts a :class:`~repro.traffic.batch.PacketBatch` (or a
        batch-backed :class:`~repro.traffic.trace.Trace`) of time-sorted
        regular traffic, and one of cross traffic whose ``ts`` column is the
        Switch-2 arrival time (the output of a cross model's
        ``arrivals_batch``).  Results are **bitwise-identical** to
        :meth:`run` on the materialized packets — the queue scans apply the
        same per-packet float operations (``max(t, free_at) + size/rate``)
        in the same order, the merge replicates ``heapq.merge`` stability,
        and the stateful sender/receiver callbacks stay exact (references —
        the small stream — remain per-object Packets throughout).

        The fast path requires plain tail-drop :class:`FifoQueue` switches,
        a batch-capable sender (or none) and a batch-capable receiver (or
        none); any other combination silently falls back to the per-object
        reference path with identical numbers.
        """
        reg = PacketBatch.coerce(regular)
        if reg is None:
            raise TypeError(f"run_batch needs a PacketBatch or batch-backed Trace, got {type(regular).__name__}")
        crs = PacketBatch.coerce(cross) if cross is not None else PacketBatch.empty()
        if crs is None:
            raise TypeError(f"cross must be a PacketBatch or batch-backed Trace, got {type(cross).__name__}")
        cfg = self.config
        queue1 = cfg.queue_factory(cfg.rate1_bps, cfg.buffer1_bytes, cfg.proc_delay, "switch1")
        queue2 = cfg.queue_factory(cfg.rate2_bps, cfg.buffer2_bytes, cfg.proc_delay, "switch2")
        blocker = self._fast_path_blocker(queue1, queue2, sender, receiver, reg, crs)
        if blocker is not None:
            obs_metrics.fallback("pipeline.run_batch", blocker)
            cross_pairs = [(p.ts, p) for p in crs.to_packets()]
            return self.run(reg.to_packets(), cross_pairs, sender=sender,
                            receiver=receiver, duration=duration)
        obs_metrics.taken("pipeline.run_batch")

        stage2 = self._stage1_batch(reg, queue1, sender)
        time2, size2, kind2, hdr2, refslot2, ref_objs = stage2
        result = PipelineResult(queue1, queue2, duration or 0.0)
        result.refs_injected = self._refs_injected

        # sorted merge of stage-1 departures with cross arrivals.  Both
        # streams are already sorted, so two searchsorted passes give each
        # element its merged position directly — with heapq.merge's tie
        # rule (earlier iterable first: stage-1 entries precede coincident
        # cross arrivals, original order within each stream)
        m = len(crs)
        if m:
            n1 = len(time2)
            total2 = n1 + m
            pos_stage = np.arange(n1) + np.searchsorted(crs.ts, time2, side="left")
            pos_cross = np.arange(m) + np.searchsorted(time2, crs.ts, side="right")
            time2 = _scatter_merge(time2, crs.ts, pos_stage, pos_cross, np.float64)
            size2 = _scatter_merge(size2, crs.size, pos_stage, pos_cross, np.int64)
            # cross rows carry constants (kind CROSS — certified by
            # _fast_path_ok — and no header/ref slots): fill once, scatter
            # only the stage-1 side
            merged = np.full(total2, int(PacketKind.CROSS), dtype=np.int64)
            merged[pos_stage] = kind2
            kind2 = merged
            merged = np.full(total2, -1, dtype=np.int64)
            merged[pos_stage] = hdr2
            hdr2 = merged
            merged = np.full(total2, -1, dtype=np.int64)
            merged[pos_stage] = refslot2
            refslot2 = merged

        departures, accepted2 = queue2.offer_batch(time2, size2)

        kind_counts = np.bincount(kind2, minlength=len(PacketKind))
        drop_counts = np.bincount(kind2[~accepted2], minlength=len(PacketKind))
        for kind in PacketKind:
            result.arrivals2[kind] = int(kind_counts[kind])
            result.drops2[kind] = int(drop_counts[kind])

        # per-object bookkeeping for the (few) reference packets
        if ref_objs:
            ref_rows = np.flatnonzero(refslot2 >= 0)
            for slot, ok in zip(refslot2[ref_rows].tolist(),
                                accepted2[ref_rows].tolist()):
                if ok:
                    ref_objs[slot].hops += 1
                else:
                    ref_objs[slot].dropped = True

        if receiver is not None:
            observed = accepted2 & (kind2 != int(PacketKind.CROSS))
            obs_kind = kind2[observed]
            obs_hidx = hdr2[observed]
            obs_slots = refslot2[observed]
            obs_refs = [ref_objs[s] for s in obs_slots[obs_slots >= 0].tolist()]
            receiver.observe_batch(
                departures[observed], obs_kind, reg, obs_hidx, None, obs_refs,
            )

        if duration is None:
            result.duration = max(queue1.stats.last_departure, queue2.stats.last_departure)
        return result

    def _fast_path_blocker(self, queue1, queue2, sender, receiver, reg, crs) -> Optional[str]:
        """Why the run can't be driven columnar — ``None`` when it can.

        The reason string feeds the ``batch.fallback`` counter and the
        ``--verbose`` once-per-sweep note, so a user can tell a nominal
        fast-path run was actually falling back and why.
        """
        if type(queue1) is not FifoQueue or type(queue2) is not FifoQueue:
            return "custom-queue"
        if sender is not None and not (
            getattr(sender, "batch_capable", False)
            and hasattr(sender, "fast_scan_state")
        ):
            return "sender-not-batch-capable"
        if receiver is not None and not (
            getattr(receiver, "batch_capable", False)
            and hasattr(receiver, "observe_batch")
        ):
            return "receiver-not-batch-capable"
        # kinds the fast path hard-codes: the regular stream must be all
        # REGULAR (references are injected, not replayed) and the cross
        # stream all CROSS (anything else would be shown to the receiver)
        if len(reg) and not np.all(reg.kind == int(PacketKind.REGULAR)):
            return "mixed-regular-kinds"
        if len(crs) and not np.all(crs.kind == int(PacketKind.CROSS)):
            return "mixed-cross-kinds"
        return None

    def _stage1_batch(self, reg: PacketBatch, queue1: FifoQueue, sender):
        """Columnar Switch-1 pass: queue scan + inline reference injection.

        Returns the stage-2 input stream as parallel arrays (arrival time =
        Switch-1 departure, size, kind, regular-batch row or -1, reference
        slot or -1) plus the injected reference Packet objects.

        The scan applies the exact float-op sequence of
        :meth:`FifoQueue.offer` — including for the reference packets the
        sender splices into the queue right behind their trigger — and
        folds the same statistics in the same (interleaved) order, so
        ``queue1`` ends bitwise-identical to the per-object stage.
        """
        n = len(reg)
        if sender is None:
            # pure queue pass: the generic scan is already exact
            departures, accepted_mask = queue1.offer_batch(reg.ts, reg.size)
            self._refs_injected = 0
            acc_idx_arr = np.flatnonzero(accepted_mask)
            total = len(acc_idx_arr)
            time2 = departures[acc_idx_arr]
            size2 = reg.size[acc_idx_arr]
            kind2 = np.full(total, int(PacketKind.REGULAR), dtype=np.int64)
            refslot2 = np.full(total, -1, dtype=np.int64)
            return time2, size2, kind2, acc_idx_arr.astype(np.int64), refslot2, []

        proc = queue1.proc_delay
        rate_Bps = queue1.rate_Bps
        buffer_bytes = queue1.buffer_bytes
        ts_l = reg.ts.tolist()
        t_l = (reg.ts + proc).tolist()
        svc_l = (reg.size / rate_Bps).tolist()
        size_l = reg.size.tolist()

        # the scan carries only the recurrence (free_at, drop test) and the
        # inlined sender arithmetic; counters and delay statistics are
        # folded in afterwards from the assembled arrays, with identical
        # results.  The sender block implements exactly the update algebra
        # of RliSender.on_regular with the default classifier (see the
        # fast_scan_state contract): fold EWMA windows the arrival crossed,
        # account the bytes, bump the 1-and-n counter, inject on trigger —
        # the gap only needs re-evaluating after a window fold, because the
        # utilization estimate is constant in between.
        fa = queue1._free_at
        ref_dropped = 0
        bytes_drop = 0
        ref_arrivals = 0
        ref_bytes_in = 0
        self._refs_injected = 0

        drop_idx: List[int] = []
        acc_dep: List[float] = []
        n_acc = 0
        ref_pos: List[int] = []
        ref_dep: List[float] = []
        ref_objs: List[Packet] = []
        dep_append = acc_dep.append

        utilization = sender.utilization
        seen_any, wstart, wbytes, estimate, count, has_class0 = sender.fast_scan_state()
        window = utilization.window
        alpha = utilization.alpha
        capacity = utilization._capacity_per_window
        policy_gap = sender.policy.gap
        make_reference = sender.make_reference
        gap = policy_gap(estimate)
        regulars_seen = 0

        if buffer_bytes is None:
            threshold = math.inf  # no tail drop: every arrival is safe
        else:
            threshold = _drop_free_threshold(
                buffer_bytes, int(reg.size.max()) if n else 0, rate_Bps)
        for i, (now, t, svc, size) in enumerate(zip(ts_l, t_l, svc_l, size_l)):
            # same float ops as FifoQueue.offer; a backlog at or below the
            # certified threshold cannot drop, so only near-full arrivals
            # pay for the drop test (max() resolved by the branch taken)
            backlog = fa - t
            if backlog > threshold:
                clamped = backlog * rate_Bps if backlog > 0.0 else 0.0
                if clamped + size > buffer_bytes:
                    drop_idx.append(i)
                    bytes_drop += size
                    continue  # dropped at switch 1: never passed the interface
                fa = (t if t > fa else fa) + svc
            elif backlog > 0.0:
                fa = fa + svc
            else:
                fa = t + svc
            n_acc += 1
            dep_append(fa)
            # --- inlined sender observation (utilization EWMA + 1-and-n)
            if not seen_any:
                wstart = now - (now % window)
                seen_any = True
            wend = wstart + window
            if now >= wend:
                while True:
                    sample = wbytes / capacity
                    if sample > 1.0:
                        sample = 1.0  # min(1.0, sample)
                    estimate += alpha * (sample - estimate)
                    wbytes = 0
                    wstart = wend
                    wend = wstart + window
                    if now < wend:
                        break
                gap = policy_gap(estimate)
            wbytes += size
            if not has_class0:
                continue
            regulars_seen += 1
            count += 1
            if count < gap:
                continue
            count = 0
            ref = make_reference(0, now)
            # inject right behind the trigger: same queue float ops
            self._refs_injected += 1
            rsize = ref.size
            ref_arrivals += 1
            ref_bytes_in += rsize
            rt = now + proc
            if buffer_bytes is not None:
                backlog = fa - rt
                backlog = backlog * rate_Bps if backlog > 0.0 else 0.0
                if backlog + rsize > buffer_bytes:
                    ref_dropped += 1
                    bytes_drop += rsize
                    ref.dropped = True
                    continue
            fa = (rt if rt > fa else fa) + rsize / rate_Bps
            ref.hops += 1
            ref_pos.append(n_acc + len(ref_objs))
            ref_dep.append(fa)
            ref_objs.append(ref)

        sender.fast_scan_commit(seen_any, wstart, wbytes, estimate, count,
                                regulars_seen)
        queue1._free_at = fa
        stats = queue1.stats
        dropped = len(drop_idx) + ref_dropped
        bytes_in = (int(reg.size.sum()) if n else 0) + ref_bytes_in  # reprolint: disable=BATCH003 -- int64 byte counter; integer addition is exact in any order
        arrivals = n + ref_arrivals
        stats.arrivals += arrivals
        stats.bytes_in += bytes_in
        stats.accepted += arrivals - dropped
        stats.dropped += dropped
        stats.bytes_accepted += bytes_in - bytes_drop
        stats.bytes_dropped += bytes_drop

        # assemble the interleaved stage-2 arrays
        n_reg = n_acc
        n_ref = len(ref_objs)
        total = n_reg + n_ref
        is_ref = np.zeros(total, dtype=bool)
        if n_ref:
            is_ref[np.asarray(ref_pos, dtype=np.intp)] = True
        is_reg_slot = ~is_ref
        time2 = np.empty(total, dtype=np.float64)
        size2 = np.empty(total, dtype=np.int64)
        kind2 = np.empty(total, dtype=np.int64)
        hdr2 = np.full(total, -1, dtype=np.int64)
        refslot2 = np.full(total, -1, dtype=np.int64)
        if drop_idx:
            idx_arr = np.delete(np.arange(n, dtype=np.int64), drop_idx)
        else:
            idx_arr = np.arange(n, dtype=np.int64)
        time2[is_reg_slot] = acc_dep
        size2[is_reg_slot] = reg.size[idx_arr]
        kind2[is_reg_slot] = int(PacketKind.REGULAR)
        hdr2[is_reg_slot] = idx_arr
        if n_ref:
            time2[is_ref] = ref_dep
            size2[is_ref] = [r.size for r in ref_objs]
            kind2[is_ref] = int(PacketKind.REFERENCE)
            refslot2[is_ref] = np.arange(n_ref, dtype=np.int64)

        # fold the delay statistics in emission (acceptance) order, exactly
        # as per-packet offers would have: delay = departure - arrival with
        # the same operands, accumulated left-to-right (an explicit loop:
        # builtin sum() compensates rounding on 3.12+ and would drift)
        if total:
            arr_all = np.empty(total, dtype=np.float64)
            arr_all[is_reg_slot] = reg.ts[idx_arr]
            if n_ref:
                arr_all[is_ref] = [r.ts for r in ref_objs]
            delay_l = (time2 - arr_all).tolist()
            total_delay = stats.total_delay
            for delay in delay_l:
                total_delay += delay
            stats.total_delay = total_delay
            peak = max(delay_l)
            if peak > stats.max_delay:
                stats.max_delay = peak
            stats.last_departure = float(time2[-1])
        return time2, size2, kind2, hdr2, refslot2, ref_objs

    # ------------------------------------------------------------------

    def _stage1(self, regular: Iterable[Packet], queue1: FifoQueue, sender) -> List[Tuple[float, Packet]]:
        """Pass regular traffic (plus injected references) through Switch 1.

        Returns (departure, packet) pairs; FIFO service keeps them sorted.
        Sets each packet's ``tap_time`` — the instant it passed the sender's
        interface, which defines the measured segment's entry point.
        """
        out: List[Tuple[float, Packet]] = []
        self._refs_injected = 0
        for packet in regular:
            now = packet.ts
            departure = queue1.offer(packet, now)
            if departure is None:
                continue  # dropped at switch 1: never passed the interface
            packet.tap_time = now
            out.append((departure, packet))
            if sender is None:
                continue
            refs = sender.on_regular(packet, now)
            if refs:
                for ref in refs:
                    self._refs_injected += 1
                    ref_departure = queue1.offer(ref, now)
                    if ref_departure is not None:
                        out.append((ref_departure, ref))
        return out
