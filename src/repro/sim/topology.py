"""Topology container and k-ary fat-tree builder.

The paper evaluates RLIR on data-center topologies ("In our example fat-tree
topology...", Figure 1) and derives placement complexity on a k-ary fat-tree
(Section 3.1).  This module builds the standard three-tier k-ary fat-tree
(Al-Fares et al.): k pods, each with k/2 edge (ToR) and k/2 aggregation
switches, and (k/2)^2 core switches; core group i (of k/2 cores) attaches to
aggregation switch i of every pod.

Addressing follows the usual 10.pod.switch.x convention:

* hosts under edge switch e of pod p:  ``10.p.e.(2+h)``  (prefix 10.p.e.0/24)
* edge switch e of pod p:              ``10.p.e.1``
* aggregation switch a of pod p:       ``10.p.(k/2+a).1``
* core switch (i, j):                  ``10.k.(1+i).(1+j)``

Routing: downward routes are deterministic longest-prefix matches
(core → pod, agg → edge prefix, edge → local delivery for its own /24);
upward routes are default routes through ECMP groups hashed per switch.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..net.addressing import Prefix, ip_to_int
from .ecmp import EcmpHasher
from .switch import EcmpGroup, LOCAL_DELIVERY, Switch

__all__ = ["LinkParams", "Topology", "FatTree"]


class LinkParams:
    """Physical parameters applied to every port of a link."""

    __slots__ = ("rate_bps", "buffer_bytes", "proc_delay", "prop_delay")

    def __init__(
        self,
        rate_bps: float = 1e9,
        buffer_bytes: Optional[int] = 512 * 1024,
        proc_delay: float = 1e-6,
        prop_delay: float = 0.5e-6,
    ):
        self.rate_bps = rate_bps
        self.buffer_bytes = buffer_bytes
        self.proc_delay = proc_delay
        self.prop_delay = prop_delay

    def __repr__(self) -> str:
        return (
            f"LinkParams(rate={self.rate_bps:.3g}, buffer={self.buffer_bytes}, "
            f"proc={self.proc_delay}, prop={self.prop_delay})"
        )


class Topology:
    """A set of switches plus bidirectional links between them."""

    def __init__(self, name: str = "topology", ecmp_seed: int = 1):
        self.name = name
        self.ecmp_seed = ecmp_seed
        self.switches: List[Switch] = []
        self.by_name: Dict[str, Switch] = {}
        # (a_id, b_id) -> a's port index toward b
        self._port_toward: Dict[Tuple[int, int], int] = {}

    def add_switch(self, name: str, address: int, mark: int = 0) -> Switch:
        """Create a switch with a derived per-switch ECMP seed."""
        if name in self.by_name:
            raise ValueError(f"duplicate switch name: {name}")
        node_id = len(self.switches)
        hasher = EcmpHasher(seed=self.ecmp_seed * 0x1000003 + node_id)
        sw = Switch(name, node_id, address, hasher, mark=mark)
        self.switches.append(sw)
        self.by_name[name] = sw
        return sw

    def connect(self, a: Switch, b: Switch, params: LinkParams) -> Tuple[int, int]:
        """Create a bidirectional link; returns (a's port idx, b's port idx)."""
        pa = a.add_port(params.rate_bps, params.buffer_bytes, params.proc_delay, params.prop_delay)
        pb = b.add_port(params.rate_bps, params.buffer_bytes, params.proc_delay, params.prop_delay)
        pa.neighbor = b
        pb.neighbor = a
        self._port_toward[(a.node_id, b.node_id)] = pa.index
        self._port_toward[(b.node_id, a.node_id)] = pb.index
        return pa.index, pb.index

    def port_toward(self, a: Switch, b: Switch) -> int:
        """Port index on *a* of the link toward *b* (KeyError if none)."""
        return self._port_toward[(a.node_id, b.node_id)]

    def links(self) -> Iterator[Tuple[Switch, Switch]]:
        """Yield each bidirectional link once, as (lower-id, higher-id)."""
        for (aid, bid) in self._port_toward:
            if aid < bid:
                yield self.switches[aid], self.switches[bid]

    def reset_queues(self) -> None:
        """Reset all port queues for a fresh run on the same topology."""
        for sw in self.switches:
            sw.local_sink.clear()
            for port in sw.ports:
                port.queue.reset()


class FatTree(Topology):
    """A k-ary fat-tree with addressing and routing installed.

    Parameters
    ----------
    k:
        Fat-tree arity; must be even and >= 2.  The network has
        ``k`` pods, ``k^2/2`` edge+agg switches, ``(k/2)^2`` cores and
        supports ``k^3/4`` hosts.
    params:
        Link parameters used for every link (uniform fabric).
    ecmp_seed:
        Base seed from which per-switch hash seeds are derived.
    """

    def __init__(self, k: int, params: Optional[LinkParams] = None, ecmp_seed: int = 1):
        if k < 2 or k % 2:
            raise ValueError(f"fat-tree arity must be even and >= 2: k={k}")
        super().__init__(name=f"fattree(k={k})", ecmp_seed=ecmp_seed)
        self.k = k
        self.params = params or LinkParams()
        half = k // 2
        self.edges: List[List[Switch]] = []  # [pod][e]
        self.aggs: List[List[Switch]] = []  # [pod][a]
        self.cores: List[List[Switch]] = []  # [i][j]

        for p in range(k):
            self.edges.append(
                [self.add_switch(f"edge(p{p},e{e})", self._addr(p, e, 1)) for e in range(half)]
            )
            self.aggs.append(
                [self.add_switch(f"agg(p{p},a{a})", self._addr(p, half + a, 1)) for a in range(half)]
            )
        for i in range(half):
            self.cores.append(
                [self.add_switch(f"core({i},{j})", self._addr(k, 1 + i, 1 + j)) for j in range(half)]
            )

        self._wire()
        self._install_routes()

    # ------------------------------------------------------------------

    def _addr(self, a: int, b: int, c: int) -> int:
        return ip_to_int(f"10.{a}.{b}.{c}")

    def host_address(self, pod: int, edge: int, h: int) -> int:
        """Address of host *h* (0-based) under edge switch (pod, edge)."""
        half = self.k // 2
        if not (0 <= pod < self.k and 0 <= edge < half and 0 <= h < half):
            raise ValueError(f"host index out of range: pod={pod} edge={edge} h={h}")
        return self._addr(pod, edge, 2 + h)

    def tor_prefix(self, pod: int, edge: int) -> Prefix:
        """The /24 host prefix owned by edge switch (pod, edge)."""
        return Prefix(self._addr(pod, edge, 0), 24)

    def pod_prefix(self, pod: int) -> Prefix:
        return Prefix(self._addr(pod, 0, 0), 16)

    def locate_host(self, address: int) -> Tuple[int, int]:
        """Return (pod, edge) owning *address* (ValueError if not a host)."""
        pod = (address >> 16) & 0xFF
        edge = (address >> 8) & 0xFF
        half = self.k // 2
        if not (0 <= pod < self.k and 0 <= edge < half):
            raise ValueError(f"address not in any ToR host block: {address}")
        return pod, edge

    def edge_of(self, address: int) -> Switch:
        """The edge (ToR) switch owning host *address*."""
        pod, edge = self.locate_host(address)
        return self.edges[pod][edge]

    # ------------------------------------------------------------------

    def _wire(self) -> None:
        half = self.k // 2
        for p in range(self.k):
            for e in range(half):
                for a in range(half):
                    self.connect(self.edges[p][e], self.aggs[p][a], self.params)
        for i in range(half):
            for j in range(half):
                for p in range(self.k):
                    self.connect(self.aggs[p][i], self.cores[i][j], self.params)

    def _install_routes(self) -> None:
        half = self.k // 2
        for p in range(self.k):
            for e, edge in enumerate(self.edges[p]):
                # local hosts terminate here; everything else goes up
                edge.add_route(self.tor_prefix(p, e), LOCAL_DELIVERY)
                up = [self.port_toward(edge, self.aggs[p][a]) for a in range(half)]
                edge.add_route(Prefix(0, 0), EcmpGroup(up))
            for i, agg in enumerate(self.aggs[p]):
                for e in range(half):
                    agg.add_route(self.tor_prefix(p, e), self.port_toward(agg, self.edges[p][e]))
                up = [self.port_toward(agg, self.cores[i][j]) for j in range(half)]
                agg.add_route(Prefix(0, 0), EcmpGroup(up))
        for i in range(half):
            for j in range(half):
                core = self.cores[i][j]
                for p in range(self.k):
                    core.add_route(self.pod_prefix(p), self.port_toward(core, self.aggs[p][i]))

    # ------------------------------------------------------------------
    # deterministic path computation (ground truth for reverse ECMP tests)

    def up_path(self, flow_key: Tuple[int, int, int, int, int]) -> Tuple[Switch, Switch, Switch]:
        """The (edge, agg, core) an inter-pod flow climbs through.

        Deterministic given the flow key and the switches' hash functions —
        exactly the computation the paper's reverse-ECMP receiver performs.
        """
        src, dst = flow_key[0], flow_key[1]
        pod, e = self.locate_host(src)
        dpod, de = self.locate_host(dst)
        if (pod, e) == (dpod, de):
            raise ValueError("intra-ToR flow never climbs the tree")
        edge = self.edges[pod][e]
        half = self.k // 2
        a = edge.hasher.choose(flow_key, half)
        agg = self.aggs[pod][a]
        if dpod == pod:
            # stays inside the pod: bounces off the agg, no core
            raise ValueError("intra-pod flow does not reach a core")
        j = agg.hasher.choose(flow_key, half)
        return edge, agg, self.cores[a][j]

    def core_of(self, flow_key: Tuple[int, int, int, int, int]) -> Switch:
        """The core switch an inter-pod flow traverses."""
        return self.up_path(flow_key)[2]
