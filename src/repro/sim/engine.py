"""Discrete-event engine driving packets through a topology.

A single event type exists: *packet arrival at a switch*.  Everything else
(queueing, transmission, marking, measurement taps) happens synchronously
inside :meth:`Switch.receive`, which returns the departure time computed by
the analytic FIFO queue; the engine then schedules the arrival at the
neighbor after the wire's propagation delay.

Events are processed in strictly non-decreasing time order, which is what
the analytic queues require.  Ties are broken by insertion sequence so runs
are fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Optional, Tuple

from ..net.packet import Packet
from .link import Port
from .switch import Switch

__all__ = ["Engine"]


class Engine:
    """Event loop over a :class:`~repro.sim.topology.Topology`."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Switch, Packet, int]] = []
        self._seq = 0
        self.now = 0.0
        self.delivered = 0
        self.processed_events = 0

    # ------------------------------------------------------------------

    def schedule_arrival(self, time: float, switch: Switch, packet: Packet, in_port: int = -1) -> None:
        """Enqueue a packet-arrival event."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        heapq.heappush(self._heap, (time, self._seq, switch, packet, in_port))
        self._seq += 1

    def inject_trace(self, packets: Iterable[Packet], entry_of) -> int:
        """Schedule every trace packet at its entry switch.

        ``entry_of(packet) -> Switch`` maps a packet to the switch where it
        enters the modeled network (e.g. its source ToR).  Returns the number
        of packets scheduled.
        """
        count = 0
        for packet in packets:
            self.schedule_arrival(packet.ts, entry_of(packet), packet)
            count += 1
        return count

    def forward_injected(self, packet: Packet, result: Optional[Tuple[Port, float]]) -> None:
        """Continue a packet that a measurement instance injected mid-switch.

        ``result`` is the return value of :meth:`Switch.inject`; if the
        packet was accepted, its arrival at the neighbor is scheduled.
        """
        if result is None:
            return
        port, departure = result
        if port.neighbor is not None:
            self.schedule_arrival(departure + port.prop_delay, port.neighbor, packet)

    # ------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        """Process events until the calendar drains (or past *until*).

        With ``until`` given, the clock always advances to ``until`` when
        the loop exits — even if the calendar still holds later events or
        drained early — so simulated time never moves backwards: a
        subsequent :meth:`schedule_arrival` earlier than ``until`` is
        rejected as scheduling in the past rather than slipping in between
        already-processed events out of order.
        """
        heap = self._heap
        while heap:
            time, _seq, switch, packet, in_port = heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(heap)
            self.now = time
            self.processed_events += 1
            result = switch.receive(packet, time, in_port)
            if result is None:
                if not packet.dropped:
                    self.delivered += 1
                continue
            port, departure = result
            if port.neighbor is not None:
                self.schedule_arrival(departure + port.prop_delay, port.neighbor, packet)
            else:
                self.delivered += 1
        if until is not None and until > self.now:
            self.now = until

    def pending(self) -> int:
        """Number of events still in the calendar."""
        return len(self._heap)
