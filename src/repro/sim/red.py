"""Random Early Detection (RED) queue variant.

The paper's simulator uses tail-drop queues; production data-center
switches often run RED/WRED.  The drop *pattern* matters to measurement
systems: RED spreads drops across flows and time instead of bursts of
consecutive tail drops, which changes both how many LDA buckets survive and
when RLI reference packets die.  The AQM ablation bench quantifies this on
identical workloads.

Implementation: classic Floyd/Jacobson RED on top of the analytic FIFO —
an EWMA of the queue backlog is updated at each arrival; packets are
dropped early with probability rising linearly from 0 at ``min_th`` to
``max_p`` at ``max_th`` (and always above ``max_th``), falling back to the
underlying tail-drop only when the physical buffer truly overflows.  The
drop lottery is seeded, so runs stay deterministic.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..net.packet import Packet
from .queue import FifoQueue

__all__ = ["RedQueue"]


class RedQueue(FifoQueue):
    """RED early-drop queue (deterministic given the seed).

    Parameters
    ----------
    min_th_bytes / max_th_bytes:
        Average-backlog thresholds: below min no early drops, above max
        every arrival is dropped.
    max_p:
        Drop probability at ``max_th``.
    ewma_weight:
        Weight of the instantaneous backlog in the average (RED's w_q).
    """

    __slots__ = ("min_th", "max_th", "max_p", "ewma_weight", "avg_backlog",
                 "early_drops", "_rng")

    def __init__(
        self,
        rate_bps: float,
        buffer_bytes: Optional[int] = None,
        proc_delay: float = 0.0,
        name: str = "",
        min_th_bytes: float = 32 * 1024,
        max_th_bytes: float = 96 * 1024,
        max_p: float = 0.1,
        ewma_weight: float = 0.2,
        seed: int = 0,
    ):
        super().__init__(rate_bps, buffer_bytes, proc_delay, name)
        if not 0 < min_th_bytes < max_th_bytes:
            raise ValueError(
                f"need 0 < min_th < max_th: {min_th_bytes}, {max_th_bytes}")
        if not 0.0 < max_p <= 1.0:
            raise ValueError(f"max_p must be in (0, 1]: {max_p}")
        if not 0.0 < ewma_weight <= 1.0:
            raise ValueError(f"ewma_weight must be in (0, 1]: {ewma_weight}")
        self.min_th = min_th_bytes
        self.max_th = max_th_bytes
        self.max_p = max_p
        self.ewma_weight = ewma_weight
        self.avg_backlog = 0.0
        self.early_drops = 0
        self._rng = np.random.default_rng(seed)

    def offer(self, packet: Packet, arrival: float) -> Optional[float]:
        backlog = self.backlog_bytes(arrival + self.proc_delay)
        self.avg_backlog += self.ewma_weight * (backlog - self.avg_backlog)
        drop_p = self._drop_probability(self.avg_backlog)
        if drop_p > 0.0 and self._rng.random() < drop_p:
            self.stats.arrivals += 1
            self.stats.bytes_in += packet.size
            self.stats.dropped += 1
            self.stats.bytes_dropped += packet.size
            self.early_drops += 1
            packet.dropped = True
            return None
        return super().offer(packet, arrival)

    def _drop_probability(self, avg: float) -> float:
        if avg <= self.min_th:
            return 0.0
        if avg >= self.max_th:
            return 1.0
        return self.max_p * (avg - self.min_th) / (self.max_th - self.min_th)

    def reset(self) -> None:
        super().reset()
        self.avg_backlog = 0.0
        self.early_drops = 0
