"""Reference-packet injection policies (paper Sections 3.2 & 4.1).

Two schemes, exactly as evaluated in the paper:

* **Static 1-and-n** — "a way to inject a reference packet after every n
  regular packets".  The paper uses 1-and-100, chosen "for the worst link
  utilization case at the bottleneck link": assuming worst-case downstream
  utilization and injecting at "the lowest possible rate required for
  reasonable accuracy" is RLIR's answer to unobservable cross traffic.
* **Adaptive** — RLI's original scheme: "dynamically adjusts the injection
  rate based on the link utilization of a link where the sender is running
  ... controlled by a decreasing function of link utilization", with the
  rate varying "between 1-and-10 and 1-and-300".

The adaptive mapping is a documented piecewise-linear decreasing function of
utilization: u ≤ ``util_low`` → n_min (highest rate), u ≥ ``util_high`` →
n_max (lowest rate), linear in between.  This reproduces the paper's
operating point: a ~22 % utilized sender link "always triggers the highest
injection rate (1-and-10)", ten times the static scheme's.
"""

from __future__ import annotations

__all__ = ["InjectionPolicy", "StaticInjection", "AdaptiveInjection"]


class InjectionPolicy:
    """Decides how many regular packets to count between references."""

    def gap(self, utilization: float) -> int:
        """Return n: inject one reference after every n regular packets."""
        raise NotImplementedError

    @property
    def is_adaptive(self) -> bool:
        return False


class StaticInjection(InjectionPolicy):
    """1-and-n with a fixed n (paper default: n=100)."""

    def __init__(self, n: int = 100):
        if n < 1:
            raise ValueError(f"n must be >= 1: {n}")
        self.n = n

    def gap(self, utilization: float) -> int:
        return self.n

    def __repr__(self) -> str:
        return f"StaticInjection(1-and-{self.n})"


class AdaptiveInjection(InjectionPolicy):
    """RLI's utilization-adaptive 1-and-n(u) (paper: n ∈ [10, 300])."""

    def __init__(
        self,
        n_min: int = 10,
        n_max: int = 300,
        util_low: float = 0.30,
        util_high: float = 0.95,
    ):
        if not 1 <= n_min <= n_max:
            raise ValueError(f"need 1 <= n_min <= n_max: {n_min}, {n_max}")
        if not 0.0 <= util_low < util_high <= 1.0:
            raise ValueError(f"need 0 <= util_low < util_high <= 1: {util_low}, {util_high}")
        self.n_min = n_min
        self.n_max = n_max
        self.util_low = util_low
        self.util_high = util_high

    def gap(self, utilization: float) -> int:
        if utilization <= self.util_low:
            return self.n_min
        if utilization >= self.util_high:
            return self.n_max
        frac = (utilization - self.util_low) / (self.util_high - self.util_low)
        return int(round(self.n_min + frac * (self.n_max - self.n_min)))

    @property
    def is_adaptive(self) -> bool:
        return True

    def __repr__(self) -> str:
        return (
            f"AdaptiveInjection(1-and-[{self.n_min}..{self.n_max}], "
            f"u=[{self.util_low}..{self.util_high}])"
        )
