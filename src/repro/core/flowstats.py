"""Streaming per-flow latency aggregation.

RLI turns per-packet latency estimates into per-flow measurements by
aggregation: "Obtaining per-flow measurements now is just a matter of
aggregating latency estimates across packets that share a given flow key"
(paper Section 2).  The two statistics the paper evaluates are the per-flow
**mean** (Figure 4(a)) and **standard deviation** (Figure 4(b)).

:class:`StreamingStats` is a Welford accumulator (numerically stable
one-pass mean/variance, mergeable); :class:`FlowStatsTable` maps flow keys
to accumulators.  Both true and estimated delays flow through the same code,
so estimator error is never confounded with aggregation error.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict, Iterable, Iterator, Optional, Tuple

import numpy as np

__all__ = [
    "StreamingStats",
    "FlowStatsTable",
    "BoundedFlowStatsTable",
    "welford_grouped",
]

Key = Tuple[int, int, int, int, int]


class StreamingStats:
    """One-pass count/mean/variance accumulator (Welford)."""

    __slots__ = ("count", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        """Fold one sample in."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def add_many(self, values) -> None:
        """Fold an ordered sample sequence in, one by one.

        Bitwise-identical to calling :meth:`add` per value (same Welford
        recurrence, same float-op order) but ~3x faster on long runs: the
        loop keeps the accumulator state in locals instead of touching
        attributes per sample.  The batch receiver path feeds each flow's
        samples through this after grouping them with array ops.
        """
        count = self.count
        mean = self.mean
        m2 = self._m2
        lo = self.min
        hi = self.max
        for value in values:
            count += 1
            delta = value - mean
            mean += delta / count
            m2 += delta * (value - mean)
            if value < lo:
                lo = value
            if value > hi:
                hi = value
        self.count = count
        self.mean = mean
        self._m2 = m2
        self.min = lo
        self.max = hi

    def merge(self, other: "StreamingStats") -> None:
        """Fold another accumulator in (parallel-merge form of Welford)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def variance(self) -> float:
        """Population variance (0 for fewer than 2 samples)."""
        return self._m2 / self.count if self.count >= 2 else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def __repr__(self) -> str:
        return f"StreamingStats(n={self.count}, mean={self.mean:.3g}, std={self.std:.3g})"


def welford_grouped(values: np.ndarray, starts: np.ndarray, ends: np.ndarray,
                    rank_cutoff: int = 128):
    """Welford accumulators for many sample groups at once.

    *values* holds every group's samples contiguously (group g occupies
    ``values[starts[g]:ends[g]]``, in its own observation order).  Returns
    ``(count, mean, m2, min, max)`` arrays, one entry per group,
    **bitwise-identical** to feeding each group through
    :meth:`StreamingStats.add` sample by sample: groups are independent, so
    the recurrence is applied *rank-wise* — one vectorized Welford step for
    every group's k-th sample — which keeps each group's float-op order
    exactly sequential while amortizing the interpreter over all groups.
    Groups longer than *rank_cutoff* finish in a scalar tail loop (the rank
    population thins out, so late ranks stop paying for vectorization).
    """
    n_groups = len(starts)
    sizes = np.asarray(ends) - np.asarray(starts)
    counts = sizes.astype(np.int64)
    # process groups in descending size order so each rank's active set is
    # a prefix; un-permute on return
    by_size = np.argsort(-sizes, kind="stable")
    s_starts = np.asarray(starts)[by_size]
    s_sizes = sizes[by_size]
    mean = np.zeros(n_groups)
    m2 = np.zeros(n_groups)
    mn = np.full(n_groups, math.inf)
    mx = np.full(n_groups, -math.inf)
    max_rank = int(s_sizes[0]) if n_groups else 0
    neg_sizes = -s_sizes
    for k in range(1, min(max_rank, rank_cutoff) + 1):
        active = int(np.searchsorted(neg_sizes, -k, side="right"))
        x = values[s_starts[:active] + (k - 1)]
        mean_a = mean[:active]
        delta = x - mean_a
        mean_a += delta / k
        m2[:active] += delta * (x - mean_a)
        np.minimum(mn[:active], x, out=mn[:active])
        np.maximum(mx[:active], x, out=mx[:active])
    if max_rank > rank_cutoff:
        n_long = int(np.searchsorted(neg_sizes, -(rank_cutoff + 1), side="right"))
        for j in range(n_long):
            start = int(s_starts[j])
            size = int(s_sizes[j])
            count = rank_cutoff
            g_mean = float(mean[j])
            g_m2 = float(m2[j])
            g_mn = float(mn[j])
            g_mx = float(mx[j])
            for value in values[start + rank_cutoff:start + size].tolist():
                count += 1
                delta = value - g_mean
                g_mean += delta / count
                g_m2 += delta * (value - g_mean)
                if value < g_mn:
                    g_mn = value
                if value > g_mx:
                    g_mx = value
            mean[j] = g_mean
            m2[j] = g_m2
            mn[j] = g_mn
            mx[j] = g_mx
    # un-permute back to the caller's group order
    inverse = np.empty(n_groups, dtype=np.int64)
    inverse[by_size] = np.arange(n_groups)
    return counts, mean[inverse], m2[inverse], mn[inverse], mx[inverse]


class FlowStatsTable:
    """Flow key → :class:`StreamingStats`."""

    def __init__(self) -> None:
        self._table: Dict[Key, StreamingStats] = {}

    @classmethod
    def from_items(cls, items: Iterable[Tuple[Key, StreamingStats]]) -> "FlowStatsTable":
        """A table holding *items* in the given iteration order.

        Used by the shard-merge path to rebuild tables in sorted-key order,
        so a merged table's layout is independent of shard completion order.
        """
        table = cls()
        table._table = dict(items)
        return table

    def add(self, key: Key, value: float) -> None:
        stats = self._table.get(key)
        if stats is None:
            stats = StreamingStats()
            self._table[key] = stats
        stats.add(value)

    def add_many(self, key: Key, values) -> None:
        """Fold an ordered run of one flow's samples in (see
        :meth:`StreamingStats.add_many`)."""
        stats = self._table.get(key)
        if stats is None:
            stats = StreamingStats()
            self._table[key] = stats
        stats.add_many(values)

    def adopt(self, key: Key, stats: StreamingStats) -> None:
        """Insert a ready-made accumulator for a *new* flow.

        The grouped batch fold computes whole accumulators out-of-table
        (:func:`welford_grouped`) and installs them here; folding into an
        existing accumulator must go through :meth:`add_many` instead, so
        a duplicate key is a programming error.
        """
        if key in self._table:
            raise ValueError(f"flow {key} already present; use add_many")
        self._table[key] = stats

    def get(self, key: Key) -> Optional[StreamingStats]:
        return self._table.get(key)

    def merge_flow(self, key: Key, stats: StreamingStats) -> None:
        """Fold one flow's accumulator into this table."""
        mine = self._table.get(key)
        if mine is None:
            mine = StreamingStats()
            self._table[key] = mine
        mine.merge(stats)

    def merge(self, other: "FlowStatsTable") -> None:
        """Fold another table in, flow by flow."""
        for key, stats in other._table.items():
            self.merge_flow(key, stats)

    def items(self) -> Iterator[Tuple[Key, StreamingStats]]:
        return iter(self._table.items())

    def keys(self):
        return self._table.keys()

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, key: Key) -> bool:
        return key in self._table

    def total_samples(self) -> int:
        return sum(s.count for s in self._table.values())


class BoundedFlowStatsTable(FlowStatsTable):
    """A flow table with bounded memory and LRU eviction.

    Hardware measurement instances cannot keep state for an unbounded
    number of flows (the paper's trace has 1.45 M flows per minute).  Real
    per-flow engines (NetFlow caches, RLI's own flow table) bound memory
    and evict; this table evicts the least-recently-updated flow when full,
    counting what was lost so accuracy-vs-memory can be quantified (see the
    memory ablation bench).
    """

    def __init__(self, max_flows: int):
        super().__init__()
        if max_flows < 1:
            raise ValueError(f"max_flows must be >= 1: {max_flows}")
        self.max_flows = max_flows
        self._table = OrderedDict()  # preserves recency order
        self.evicted_flows = 0
        self.evicted_samples = 0

    def add(self, key: Key, value: float) -> None:
        table = self._table
        stats = table.get(key)
        if stats is None:
            if len(table) >= self.max_flows:
                _, victim = table.popitem(last=False)  # least recent
                self.evicted_flows += 1
                self.evicted_samples += victim.count
            stats = StreamingStats()
            table[key] = stats
        else:
            table.move_to_end(key)
        stats.add(value)

    def add_many(self, key: Key, values) -> None:
        """Per-sample adds: LRU recency/eviction depends on every access,
        so a bounded table cannot take the grouped shortcut."""
        for value in values:
            self.add(key, value)
