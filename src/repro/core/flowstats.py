"""Streaming per-flow latency aggregation.

RLI turns per-packet latency estimates into per-flow measurements by
aggregation: "Obtaining per-flow measurements now is just a matter of
aggregating latency estimates across packets that share a given flow key"
(paper Section 2).  The two statistics the paper evaluates are the per-flow
**mean** (Figure 4(a)) and **standard deviation** (Figure 4(b)).

:class:`StreamingStats` is a Welford accumulator (numerically stable
one-pass mean/variance, mergeable); :class:`FlowStatsTable` maps flow keys
to accumulators.  Both true and estimated delays flow through the same code,
so estimator error is never confounded with aggregation error.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict, Iterable, Iterator, Optional, Tuple

__all__ = ["StreamingStats", "FlowStatsTable", "BoundedFlowStatsTable"]

Key = Tuple[int, int, int, int, int]


class StreamingStats:
    """One-pass count/mean/variance accumulator (Welford)."""

    __slots__ = ("count", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        """Fold one sample in."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "StreamingStats") -> None:
        """Fold another accumulator in (parallel-merge form of Welford)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def variance(self) -> float:
        """Population variance (0 for fewer than 2 samples)."""
        return self._m2 / self.count if self.count >= 2 else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def __repr__(self) -> str:
        return f"StreamingStats(n={self.count}, mean={self.mean:.3g}, std={self.std:.3g})"


class FlowStatsTable:
    """Flow key → :class:`StreamingStats`."""

    def __init__(self) -> None:
        self._table: Dict[Key, StreamingStats] = {}

    @classmethod
    def from_items(cls, items: Iterable[Tuple[Key, StreamingStats]]) -> "FlowStatsTable":
        """A table holding *items* in the given iteration order.

        Used by the shard-merge path to rebuild tables in sorted-key order,
        so a merged table's layout is independent of shard completion order.
        """
        table = cls()
        table._table = dict(items)
        return table

    def add(self, key: Key, value: float) -> None:
        stats = self._table.get(key)
        if stats is None:
            stats = StreamingStats()
            self._table[key] = stats
        stats.add(value)

    def get(self, key: Key) -> Optional[StreamingStats]:
        return self._table.get(key)

    def merge_flow(self, key: Key, stats: StreamingStats) -> None:
        """Fold one flow's accumulator into this table."""
        mine = self._table.get(key)
        if mine is None:
            mine = StreamingStats()
            self._table[key] = mine
        mine.merge(stats)

    def merge(self, other: "FlowStatsTable") -> None:
        """Fold another table in, flow by flow."""
        for key, stats in other._table.items():
            self.merge_flow(key, stats)

    def items(self) -> Iterator[Tuple[Key, StreamingStats]]:
        return iter(self._table.items())

    def keys(self):
        return self._table.keys()

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, key: Key) -> bool:
        return key in self._table

    def total_samples(self) -> int:
        return sum(s.count for s in self._table.values())


class BoundedFlowStatsTable(FlowStatsTable):
    """A flow table with bounded memory and LRU eviction.

    Hardware measurement instances cannot keep state for an unbounded
    number of flows (the paper's trace has 1.45 M flows per minute).  Real
    per-flow engines (NetFlow caches, RLI's own flow table) bound memory
    and evict; this table evicts the least-recently-updated flow when full,
    counting what was lost so accuracy-vs-memory can be quantified (see the
    memory ablation bench).
    """

    def __init__(self, max_flows: int):
        super().__init__()
        if max_flows < 1:
            raise ValueError(f"max_flows must be >= 1: {max_flows}")
        self.max_flows = max_flows
        self._table = OrderedDict()  # preserves recency order
        self.evicted_flows = 0
        self.evicted_samples = 0

    def add(self, key: Key, value: float) -> None:
        table = self._table
        stats = table.get(key)
        if stats is None:
            if len(table) >= self.max_flows:
                _, victim = table.popitem(last=False)  # least recent
                self.evicted_flows += 1
                self.evicted_samples += victim.count
            stats = StreamingStats()
            table[key] = stats
        else:
            table.move_to_end(key)
        stats.add(value)
