"""Streaming per-flow latency quantiles (P² algorithm).

The paper evaluates per-flow mean and standard deviation, but operators of
latency-critical services alarm on *tails* ("a search query … needs to be
processed within a few 100ms", Section 1).  Mean/σ under-describe the
heavy-tailed delay distributions congested queues produce, so this module
adds streaming quantile estimation to the per-flow pipeline.

:class:`P2Quantile` implements the P² algorithm (Jain & Chlamtac, CACM
1985): it maintains five markers whose heights approximate the target
quantile using piecewise-parabolic interpolation, in O(1) memory per flow —
the same constant-state budget that makes RLI's per-flow tables feasible in
hardware.  :class:`FlowQuantileTable` keys estimators by flow.

Accuracy is validated against exact order statistics in the tests and the
tail-accuracy ablation.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["P2Quantile", "FlowQuantileTable"]

Key = Tuple[int, int, int, int, int]


class P2Quantile:
    """O(1)-memory streaming estimator of one quantile (P² algorithm).

    The first :data:`WARMUP` samples are buffered and answered *exactly*;
    when the first sample past the buffer arrives, the five P² markers are
    initialized from the buffer's order statistics and the estimator
    switches to streaming updates.
    (Textbook P² seeds the markers with the first five raw samples, which
    on short or adversarially ordered streams can leave the middle marker
    stranded far from the target quantile — flows here are often only tens
    of packets, exactly that regime.)  Memory stays O(1): at most
    ``WARMUP`` buffered floats, then five markers.
    """

    WARMUP = 25

    __slots__ = ("q", "_heights", "_positions", "_desired", "_increments", "count")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1): {q}")
        self.q = q
        self._heights: List[float] = []  # warm-up buffer, then marker heights
        self._positions: Optional[List[float]] = None  # None while warming up
        self._desired: Optional[List[float]] = None
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self.count = 0

    # ------------------------------------------------------------------

    def add(self, value: float) -> None:
        """Fold one observation into the estimator."""
        self.count += 1
        heights = self._heights
        if self._positions is None:
            if len(heights) < self.WARMUP:
                heights.append(value)
                return
            # buffer full: seed the markers from it, then stream this value
            self._init_markers()
            heights = self._heights

        # find the cell k containing the new value, updating extremes
        if value < heights[0]:
            heights[0] = value
            k = 0
        elif value >= heights[4]:
            heights[4] = value
            k = 3
        else:
            k = 0
            while value >= heights[k + 1]:
                k += 1

        positions = self._positions
        for i in range(k + 1, 5):
            positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]

        # adjust the three middle markers toward their desired positions
        for i in (1, 2, 3):
            delta = self._desired[i] - positions[i]
            if (delta >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                delta <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                direction = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, direction)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, direction)
                positions[i] += direction

    def _init_markers(self) -> None:
        """Seed the five markers from the warm-up buffer's order statistics."""
        ordered = sorted(self._heights)
        n = len(ordered)
        ranks = [1 + round(p * (n - 1)) for p in self._increments]
        # strictly increasing integer ranks (the P² invariants require it):
        # box each middle rank so marker i keeps i markers below and 4-i
        # above it, then one forward pass restores strict ascent in-box
        for i in (1, 2, 3):
            ranks[i] = min(max(ranks[i], i + 1), n - 4 + i)
        ranks[0], ranks[4] = 1, n
        for i in (1, 2, 3):
            ranks[i] = max(ranks[i], ranks[i - 1] + 1)
        self._heights = [ordered[r - 1] for r in ranks]
        self._positions = [float(r) for r in ranks]
        self._desired = [1.0 + p * (n - 1) for p in self._increments]

    def _parabolic(self, i: int, d: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (n[j] - n[i])

    # ------------------------------------------------------------------

    @property
    def estimate(self) -> float:
        """Current quantile estimate (exact while in the warm-up buffer)."""
        if self.count == 0:
            raise ValueError("no samples yet")
        heights = self._heights
        if self._positions is None:
            ordered = sorted(heights)
            index = max(0, min(len(ordered) - 1, math.ceil(self.q * len(ordered)) - 1))
            return ordered[index]
        return heights[2]

    def __repr__(self) -> str:
        est = f"{self.estimate:.4g}" if self.count else "n/a"
        return f"P2Quantile(q={self.q}, n={self.count}, est={est})"


class FlowQuantileTable:
    """Flow key → one P² estimator per configured quantile."""

    def __init__(self, quantiles: Sequence[float] = (0.5, 0.95, 0.99)):
        if not quantiles:
            raise ValueError("at least one quantile required")
        self.quantiles = tuple(quantiles)
        for q in self.quantiles:
            if not 0.0 < q < 1.0:
                raise ValueError(f"quantile must be in (0, 1): {q}")
        self._table: Dict[Key, List[P2Quantile]] = {}

    def add(self, key: Key, value: float) -> None:
        row = self._table.get(key)
        if row is None:
            row = [P2Quantile(q) for q in self.quantiles]
            self._table[key] = row
        for estimator in row:
            estimator.add(value)

    def get(self, key: Key) -> Optional[Dict[float, float]]:
        """Quantile → estimate for one flow (None if unseen)."""
        row = self._table.get(key)
        if row is None:
            return None
        return {e.q: e.estimate for e in row}

    def items(self) -> Iterator[Tuple[Key, Dict[float, float]]]:
        for key, row in self._table.items():
            yield key, {e.q: e.estimate for e in row}

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, key: Key) -> bool:
        return key in self._table
