"""RLIR stream demultiplexers (paper Section 3.1).

When RLI instances sit several routers apart, one receiver hears reference
streams from *many* senders, multiplexed with regular packets that may only
partially share the senders' paths.  "The receiver needs a mechanism to
distinguish both regular and reference packets to isolate the streams" —
interpolating a packet against the wrong sender's references would produce
"totally wrong" per-flow estimates.

A demultiplexer maps every packet to the *stream* (sender instance) whose
references describe its path segment, or ``None`` for packets this receiver
must not measure (cross traffic, uncovered paths):

* reference packets carry an explicit ``sender_id`` — "The RLI receiver can
  identify reference packets' origin easily via an RLI sender ID";
* regular packets are classified by source-prefix matching (upstream case),
  optionally refined by a *path classifier* — packet marking or reverse-ECMP
  computation — to pin down the intermediate router (downstream case).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Set, Tuple

import numpy as np

from ..net.addressing import Prefix, PrefixTrie
from ..net.packet import Packet

__all__ = ["Demux", "SingleSenderDemux", "UpstreamPrefixDemux", "PathClassifierDemux"]


class Demux:
    """Base demultiplexer: packet → stream id (= sender instance id)."""

    def classify_regular(self, packet: Packet) -> Optional[int]:
        raise NotImplementedError

    def classify_reference(self, packet: Packet) -> Optional[int]:
        """Default: accept references from subscribed senders, keyed by ID."""
        sender = packet.sender_id
        return sender if sender in self.sender_ids() else None

    def sender_ids(self) -> Set[int]:
        """The sender instances this receiver is associated with."""
        raise NotImplementedError

    @property
    def batch_capable(self) -> bool:
        """True when :meth:`classify_regular_batch` exists and is exact.

        Subclasses whose vectorized classifier is only conditionally exact
        (e.g. it delegates to a path classifier that may or may not be
        vectorizable) override this; the default keys off the method's
        presence.  The receiver fast path advertises its own batch
        capability off this flag.
        """
        return hasattr(self, "classify_regular_batch")

    def _covered(self, trie_prefixes, srcs: np.ndarray) -> np.ndarray:
        """Vectorized is-there-a-match over a source-address column."""
        covered = np.zeros(len(srcs), dtype=bool)
        for prefix in trie_prefixes:
            covered |= (srcs & prefix.mask) == prefix.network
        return covered


class SingleSenderDemux(Demux):
    """One sender, no multiplexing — classic RLI within a router.

    Optionally restricts regular packets to given source prefixes (the
    pipeline uses this to ignore anything that is not regular traffic).
    """

    def __init__(self, sender_id: int, regular_prefixes: Optional[Iterable[Prefix]] = None):
        self._sender_id = sender_id
        self._trie: Optional[PrefixTrie[bool]] = None
        self._prefixes: Optional[Tuple[Prefix, ...]] = None
        if regular_prefixes is not None:
            self._prefixes = tuple(regular_prefixes)
            self._trie = PrefixTrie()
            for prefix in self._prefixes:
                self._trie.insert(prefix, True)

    def classify_regular(self, packet: Packet) -> Optional[int]:
        if self._trie is not None and self._trie.lookup(packet.src) is None:
            return None
        return self._sender_id

    def classify_regular_batch(self, headers, rows: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`classify_regular` over batch rows.

        ``headers`` is a :class:`~repro.traffic.batch.PacketBatch` and
        ``rows`` the row indices to classify.  Returns the stream id per
        packet, with ``-1`` standing in for ``None`` (sender ids are
        non-negative).  Covered-by-any-prefix is exactly the trie's "is
        there a match" question, evaluated as one masked compare per
        prefix.
        """
        srcs = headers.src[rows]
        if self._prefixes is None:
            return np.full(len(srcs), self._sender_id, dtype=np.int64)
        covered = self._covered(self._prefixes, srcs)
        return np.where(covered, np.int64(self._sender_id), np.int64(-1))

    def sender_ids(self) -> Set[int]:
        return {self._sender_id}


class UpstreamPrefixDemux(Demux):
    """Upstream multiplexing: origin ToR identified by source prefix.

    "In many cases (such as the fat-tree example), the origin of regular
    packets can be easily identified by IP address block assigned for hosts
    in each ToR switch. Thus, upstream RLI receivers need to perform simple
    IP prefix matching."
    """

    def __init__(self, prefix_to_sender: Iterable[Tuple[Prefix, int]]):
        self._trie: PrefixTrie[int] = PrefixTrie()
        self._senders: Set[int] = set()
        mappings = tuple(prefix_to_sender)
        # the batch classifier's LPM order, fixed at construction: ascending
        # prefix length, stable within a length so a re-inserted prefix
        # wins like the trie's overwrite
        self._by_length: Tuple[Tuple[Prefix, int], ...] = tuple(
            sorted(mappings, key=lambda m: m[0].length))
        for prefix, sender_id in mappings:
            self._trie.insert(prefix, sender_id)
            self._senders.add(sender_id)
        if not self._senders:
            raise ValueError("at least one (prefix, sender) mapping required")

    def classify_regular(self, packet: Packet) -> Optional[int]:
        return self._trie.lookup(packet.src)

    def classify_regular_batch(self, headers, rows: np.ndarray) -> np.ndarray:
        """Vectorized longest-prefix classification (``-1`` = no match).

        Mappings are applied in increasing prefix length, so the last
        assignment per packet is exactly the trie's longest-prefix match.
        """
        srcs = headers.src[rows]
        streams = np.full(len(srcs), -1, dtype=np.int64)
        for prefix, sender_id in self._by_length:
            streams[(srcs & prefix.mask) == prefix.network] = sender_id
        return streams

    def sender_ids(self) -> Set[int]:
        return set(self._senders)


class PathClassifierDemux(Demux):
    """Downstream multiplexing: a path classifier pins the mid-path router.

    The classifier is either the packet-marking decoder
    (:class:`repro.core.marking.MarkingClassifier`) or the reverse-ECMP
    computation (:class:`repro.core.reverse_ecmp.ReverseEcmpClassifier`);
    both return the sender instance on the identified intermediate router.

    An optional source-prefix filter restricts measurement to the origin
    ToR(s) under study — the upstream-identification step that downstream
    receivers still perform ("For identifying an upstream sender, we can
    simply use the prefix-matching trick discussed in the upstream case").
    """

    def __init__(
        self,
        path_classifier: Callable[[Packet], Optional[int]],
        sender_ids: Iterable[int],
        source_prefixes: Optional[Iterable[Prefix]] = None,
    ):
        self._classifier = path_classifier
        self._senders = set(sender_ids)
        if not self._senders:
            raise ValueError("at least one sender id required")
        self._trie: Optional[PrefixTrie[bool]] = None
        self._sources: Tuple[Prefix, ...] = ()
        if source_prefixes is not None:
            self._sources = tuple(source_prefixes)
            self._trie = PrefixTrie()
            for prefix in self._sources:
                self._trie.insert(prefix, True)

    def classify_regular(self, packet: Packet) -> Optional[int]:
        if self._trie is not None and self._trie.lookup(packet.src) is None:
            return None
        sender = self._classifier(packet)
        return sender if sender in self._senders else None

    @property
    def batch_capable(self) -> bool:
        """Batch classification needs a vectorized path classifier."""
        return hasattr(self._classifier, "classify_batch")

    def classify_regular_batch(self, headers, rows: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`classify_regular`: source filter, then the
        path classifier's own batch computation (``-1`` = no match)."""
        streams = self._classifier.classify_batch(headers, rows)
        known = np.isin(streams, np.fromiter(self._senders, dtype=np.int64))
        streams = np.where(known, streams, np.int64(-1))
        if self._trie is not None:
            covered = self._covered(self._sources, headers.src[rows])
            streams = np.where(covered, streams, np.int64(-1))
        return streams

    def sender_ids(self) -> Set[int]:
        return set(self._senders)
