"""RLI sender: taps an interface and injects reference packets.

"An RLI sender regularly injects special packets called reference packets
that carry a (hardware) timestamp to an RLI receiver" (paper Section 2).

The sender is attached to one egress interface.  For every regular packet it
observes, it updates its local-link utilization estimate and a per-path-class
counter; when the counter reaches the injection policy's current 1-and-n gap
it emits a reference packet *for that path class*.

Path classes implement the RLIR requirement that "each sender sends
reference packets to all intermediate receivers through which its packets
may cross" (Section 3.1): in a multipath fabric the sender carries one
reference template per equal-cost path (crafted with
:func:`repro.sim.ecmp.craft_dport_for_port` so the fabric hashes it onto the
intended path), and a ``classify`` callback assigns each observed regular
packet to the class whose path it will take.  Single-path deployments (the
paper's two-switch pipeline) use the default single class.

The sender is environment-agnostic: it returns the reference packets to
inject and the caller (pipeline driver or event-engine tap) puts them on the
wire immediately behind the observed packet.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..net.packet import Packet, PacketKind
from ..sim.clock import Clock, PerfectClock
from .injection import AdaptiveInjection, InjectionPolicy, StaticInjection
from .utilization import EwmaUtilization

__all__ = ["RefTemplate", "RliSender", "REFERENCE_PACKET_SIZE"]

REFERENCE_PACKET_SIZE = 64  # minimum-size probe, as in RLI


def _classify_single(packet: Packet) -> Optional[int]:
    """Default classifier: every observed packet belongs to path class 0."""
    return 0


class RefTemplate:
    """Header fields for the reference packets of one path class."""

    __slots__ = ("src", "dst", "sport", "dport", "proto", "size")

    def __init__(
        self,
        src: int,
        dst: int,
        sport: int = 0,
        dport: int = 0,
        proto: int = 253,  # IANA "use for experimentation"
        size: int = REFERENCE_PACKET_SIZE,
    ):
        self.src = src
        self.dst = dst
        self.sport = sport
        self.dport = dport
        self.proto = proto
        self.size = size


class RliSender:
    """One RLI sender instance on one interface.

    Parameters
    ----------
    sender_id:
        Globally unique instance ID carried by every reference packet so
        receivers can demultiplex reference streams (paper Section 3.1).
    link_rate_bps:
        Capacity of the local link — the only utilization the sender can
        see, per the paper's cross-traffic discussion.
    policy:
        Injection policy (static or adaptive 1-and-n).
    templates:
        ``path_class -> RefTemplate``.  Defaults to a single class 0 with a
        placeholder template (callers that only need counters may ignore the
        header fields).
    classify:
        ``packet -> Optional[path_class]`` mapping each observed regular
        packet to a path class (None = not covered by this sender).
    clock:
        The sender's timestamping clock.
    """

    def __init__(
        self,
        sender_id: int,
        link_rate_bps: float,
        policy: Optional[InjectionPolicy] = None,
        templates: Optional[Dict[int, RefTemplate]] = None,
        classify: Optional[Callable[[Packet], Optional[int]]] = None,
        clock: Optional[Clock] = None,
        util_window: float = 0.01,
        util_alpha: float = 0.3,
    ):
        self.sender_id = sender_id
        self.policy = policy or StaticInjection(100)
        self.templates = templates if templates is not None else {0: RefTemplate(0, 0)}
        if not self.templates:
            raise ValueError("sender needs at least one reference template")
        self._classify = classify or _classify_single
        self.clock = clock or PerfectClock()
        self.utilization = EwmaUtilization(link_rate_bps, window=util_window, alpha=util_alpha)
        self._counters: Dict[int, int] = {cls: 0 for cls in self.templates}
        self.regulars_seen = 0
        self.refs_injected = 0

    # ------------------------------------------------------------------

    def on_regular(self, packet: Packet, now: float) -> Optional[List[Packet]]:
        """Observe one regular packet at the interface.

        Returns reference packets to inject immediately after it (or None).
        """
        self.utilization.observe(now, packet.size)
        cls = self._classify(packet)
        if cls is None or cls not in self._counters:
            return None
        self.regulars_seen += 1
        count = self._counters[cls] + 1
        if count < self.policy.gap(self.utilization.estimate):
            self._counters[cls] = count
            return None
        self._counters[cls] = 0
        return [self.make_reference(cls, now)]

    @property
    def policy_pure(self) -> bool:
        """True when ``policy.gap`` is a pure function of the utilization
        estimate — which only changes at EWMA window folds, the property
        every inlined fast scan rests on."""
        return type(self.policy) in (StaticInjection, AdaptiveInjection)

    @property
    def batch_capable(self) -> bool:
        """True when the inlined fast scan is an exact stand-in.

        The columnar pipeline fast path carries no per-packet objects for
        regular traffic and inlines the per-packet sender arithmetic into
        its queue scan, so it requires (a) the default single-class
        classifier — custom classifiers inspect the packet — and (b) a
        known-pure injection policy (see :attr:`policy_pure`).  Anything
        else keeps the per-object reference path.  (The fat-tree layered
        driver lifts restriction (a) by recomputing the wiring's own
        classifier vectorized — see :meth:`fast_scan_state_classes`.)
        """
        return self._classify is _classify_single and self.policy_pure

    # ------------------------------------------------------------------
    # inlined-scan state (columnar fast path)

    def fast_scan_state(self) -> tuple:
        """Mutable scalars an inlined observation scan advances.

        Returns ``(seen_any, window_start, window_bytes, estimate, count,
        has_class0)``.  A scanner holding these as locals must apply, per
        observed packet, exactly the update algebra of :meth:`on_regular`
        with the default classifier (fold EWMA windows crossed by the
        arrival, add the packet's bytes, bump the 1-and-n counter against
        ``policy.gap(estimate)`` — which only needs re-evaluating after a
        fold — and emit :meth:`make_reference` on trigger), then hand the
        scalars back via :meth:`fast_scan_commit`.  The equivalence suite
        asserts the inlined scan is bitwise-identical to per-packet
        :meth:`on_regular` calls.
        """
        seen_any, wstart, wbytes, estimate, counters = \
            self.fast_scan_state_classes()
        return (seen_any, wstart, wbytes, estimate,
                counters.get(0, 0), 0 in counters)

    def fast_scan_commit(self, seen_any: bool, window_start: float,
                         window_bytes: int, estimate: float, count: int,
                         regulars_seen: int) -> None:
        """Write an inlined scan's advanced scalars back (see
        :meth:`fast_scan_state`)."""
        self.fast_scan_commit_classes(
            seen_any, window_start, window_bytes, estimate,
            {0: count} if 0 in self._counters else {}, regulars_seen)

    def fast_scan_state_classes(self) -> tuple:
        """Multi-class variant of :meth:`fast_scan_state`.

        Returns ``(seen_any, window_start, window_bytes, estimate,
        counters)`` where ``counters`` is a mutable copy of the per-class
        1-and-n counters.  Used by the columnar fat-tree driver, which
        recomputes each packet's path class externally (it knows the
        wiring that built this sender's ``classify``): per observed
        regular packet the scan folds the EWMA windows and adds the bytes
        exactly as :meth:`fast_scan_state` describes, then — for packets
        whose class is a known counter key — bumps that class's counter
        against ``policy.gap(estimate)`` and emits
        :meth:`make_reference` for the class on trigger.  Packets with no
        class (``None``) update only the utilization, exactly like
        :meth:`on_regular`.
        """
        u = self.utilization
        return (u._seen_any, u._window_start, u._window_bytes, u._estimate,
                dict(self._counters))

    def fast_scan_commit_classes(self, seen_any: bool, window_start: float,
                                 window_bytes: int, estimate: float,
                                 counters: Dict[int, int],
                                 regulars_seen: int) -> None:
        """Write a multi-class inlined scan's advanced state back (see
        :meth:`fast_scan_state_classes`)."""
        u = self.utilization
        u._seen_any = seen_any
        u._window_start = window_start
        u._window_bytes = window_bytes
        u._estimate = estimate
        self._counters.update(counters)
        self.regulars_seen += regulars_seen

    def make_reference(self, path_class: int, now: float) -> Packet:
        """Build a timestamped reference packet for *path_class*."""
        template = self.templates[path_class]
        ref = Packet(
            src=template.src,
            dst=template.dst,
            sport=template.sport,
            dport=template.dport,
            proto=template.proto,
            size=template.size,
            ts=now,
            kind=PacketKind.REFERENCE,
            sender_id=self.sender_id,
            ref_timestamp=self.clock.now(now),
        )
        ref.tap_time = now
        self.refs_injected += 1
        return ref

    @property
    def current_gap(self) -> int:
        """The 1-and-n gap the policy currently prescribes."""
        return self.policy.gap(self.utilization.estimate)

    def __repr__(self) -> str:
        return (
            f"RliSender(id={self.sender_id}, policy={self.policy!r}, "
            f"classes={sorted(self.templates)}, refs={self.refs_injected})"
        )
