"""The paper's contribution: RLI instances and the RLIR partial deployment.

Public surface: injection policies, sender/receiver instances, the
demultiplexers that make RLI work *across* routers, placement planning, and
anomaly localization.
"""

from .demux import Demux, PathClassifierDemux, SingleSenderDemux, UpstreamPrefixDemux
from .flowstats import BoundedFlowStatsTable, FlowStatsTable, StreamingStats
from .full_rli import FullRliDeployment, FullRliResult
from .injection import AdaptiveInjection, InjectionPolicy, StaticInjection
from .interpolation import ESTIMATORS, Estimate, InterpolationBuffer, linear_interpolate
from .localization import LocalizationReport, SegmentSummary, flow_breakdown, localize
from .marking import MarkingClassifier, assign_marks
from .mesh import MeshResult, RlirMesh
from .placement import (
    PlacementInstance,
    RlirPlacement,
    instances_all_tor_pairs_enumerated,
    instances_all_tor_pairs_paper,
    instances_full_deployment,
    instances_interface_pair,
    instances_tor_pair,
)
from .quantiles import FlowQuantileTable, P2Quantile
from .receiver import RliReceiver
from .reverse_ecmp import ReverseEcmpClassifier
from .rlir import RlirDeployment, RlirResult
from .sender import REFERENCE_PACKET_SIZE, RefTemplate, RliSender
from .utilization import EwmaUtilization

__all__ = [
    "BoundedFlowStatsTable",
    "FullRliDeployment",
    "FullRliResult",
    "Demux",
    "PathClassifierDemux",
    "SingleSenderDemux",
    "UpstreamPrefixDemux",
    "FlowStatsTable",
    "StreamingStats",
    "AdaptiveInjection",
    "InjectionPolicy",
    "StaticInjection",
    "ESTIMATORS",
    "Estimate",
    "InterpolationBuffer",
    "linear_interpolate",
    "LocalizationReport",
    "SegmentSummary",
    "flow_breakdown",
    "localize",
    "MarkingClassifier",
    "assign_marks",
    "MeshResult",
    "RlirMesh",
    "FlowQuantileTable",
    "P2Quantile",
    "PlacementInstance",
    "RlirPlacement",
    "instances_all_tor_pairs_enumerated",
    "instances_all_tor_pairs_paper",
    "instances_full_deployment",
    "instances_interface_pair",
    "instances_tor_pair",
    "RliReceiver",
    "ReverseEcmpClassifier",
    "RlirDeployment",
    "RlirResult",
    "REFERENCE_PACKET_SIZE",
    "RefTemplate",
    "RliSender",
    "EwmaUtilization",
]
