"""RLI receiver: per-stream interpolation and per-flow aggregation.

"The RLI receiver then easily obtains true delays of these special packets
based on the local clock.  The delay samples can then be used to approximate
the latency of regular packets" (paper Section 2).

The RLIR receiver extends this with one interpolation buffer *per stream*
(per associated sender / path class), selected by a demultiplexer — the fix
for traffic multiplexing across routers (Section 3.1).  Interpolating a
packet against a reference that took a different path would violate delay
locality; the demux guarantees every estimate uses references that shared
the packet's path segment.

Ground truth: the simulator stamps each packet's segment entry time
(``tap_time``) at the sender's interface; the receiver records
``arrival − tap_time`` as the packet's true delay next to its estimate, so
per-flow relative errors are computed against exact truth, as in the
paper's evaluation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..net.packet import Packet, PacketKind
from ..sim.clock import Clock, PerfectClock
from .demux import Demux
from .flowstats import BoundedFlowStatsTable, FlowStatsTable, StreamingStats, welford_grouped
from .interpolation import Estimate, InterpolationBuffer, interpolate_batch
from .quantiles import FlowQuantileTable

__all__ = ["RliReceiver", "REF_OBS", "REG_OBS"]

# observation-log event tags (see repro.core.replay)
REF_OBS = 0  # (REF_OBS, stream, arrival, reference delay)
REG_OBS = 1  # (REG_OBS, stream, arrival, flow key, true delay)


class RliReceiver:
    """One RLI receiver instance on one interface.

    Parameters
    ----------
    demux:
        Stream demultiplexer (see :mod:`repro.core.demux`).
    clock:
        Local clock used to timestamp reference arrivals; sync error vs the
        senders' clocks biases delay samples (ablation knob).
    estimator:
        Interpolation strategy (``"linear"`` is the paper's).
    collect_estimates:
        If True, keep every per-packet :class:`Estimate` for packet-level
        analysis (memory-heavy; per-flow tables are always kept).
    max_flows:
        Optional flow-table memory bound; when set, both the estimated and
        true tables become LRU-evicting
        :class:`~repro.core.flowstats.BoundedFlowStatsTable` instances,
        modelling a hardware instance's fixed-size flow cache.
    quantiles:
        Optional sequence of quantiles (e.g. ``(0.5, 0.95, 0.99)``).  When
        set, the receiver additionally maintains streaming P² per-flow
        quantile estimates of both estimated and true delays
        (:attr:`flow_estimated_quantiles` / :attr:`flow_true_quantiles`) —
        the tail view mean/σ cannot give.
    observation_log:
        Optional appendable log the receiver writes its post-demux
        observation events to (see :mod:`repro.core.replay`) — a plain
        list, or a columnar :class:`~repro.core.obslog.ObservationColumns`
        for the same events at a fraction of the memory.  A recorded log
        can be replayed — in full or restricted to one flow shard — to
        rebuild this receiver's per-flow tables without re-running the
        simulation; the within-condition sharding of the sweep runner
        (serial, process-pool, or distributed) is built on it.
    record_only:
        With an ``observation_log``, skip the live estimation work
        (interpolation buffers and flow tables stay empty): the log is the
        only output, and replaying it would recompute every estimate
        anyway.  Demux classification, clocking, and the tap/measurement
        accounting are unchanged, so the log is identical either way.
    """

    def __init__(
        self,
        demux: Demux,
        clock: Optional[Clock] = None,
        estimator: str = "linear",
        collect_estimates: bool = False,
        max_flows: Optional[int] = None,
        quantiles: Optional[Sequence[float]] = None,
        observation_log: Optional[list] = None,
        record_only: bool = False,
    ):
        if record_only and observation_log is None:
            raise ValueError("record_only requires an observation_log")
        self.demux = demux
        self.observation_log = observation_log
        self.record_only = record_only
        self.clock = clock or PerfectClock()
        self.estimator = estimator
        self.collect_estimates = collect_estimates
        self.estimates: List[Estimate] = []
        self._buffers: Dict[int, InterpolationBuffer] = {}
        if max_flows is None:
            self.flow_estimated = FlowStatsTable()
            self.flow_true = FlowStatsTable()
        else:
            self.flow_estimated = BoundedFlowStatsTable(max_flows)
            self.flow_true = BoundedFlowStatsTable(max_flows)
        self.flow_estimated_quantiles: Optional[FlowQuantileTable] = None
        self.flow_true_quantiles: Optional[FlowQuantileTable] = None
        if quantiles is not None:
            self.flow_estimated_quantiles = FlowQuantileTable(quantiles)
            self.flow_true_quantiles = FlowQuantileTable(quantiles)
        self.regulars_measured = 0
        self.regulars_ignored = 0
        self.references_accepted = 0
        self.references_ignored = 0
        self.missing_tap = 0
        self.unestimated = 0
        self._finalized = False

    # ------------------------------------------------------------------

    def observe(self, packet: Packet, now: float) -> None:
        """Feed one packet arriving at this receiver's interface."""
        if self._finalized:
            raise RuntimeError("receiver already finalized")
        if packet.is_reference:
            stream = self.demux.classify_reference(packet)
            if stream is None:
                self.references_ignored += 1
                return
            self.references_accepted += 1
            delay = self.clock.now(now) - packet.ref_timestamp
            if self.observation_log is not None:
                self.observation_log.append((REF_OBS, stream, now, delay))
                if self.record_only:
                    return
            for estimate in self._buffer(stream).add_reference(now, delay):
                self._record(estimate)
        elif packet.is_regular:
            stream = self.demux.classify_regular(packet)
            if stream is None:
                self.regulars_ignored += 1
                return
            if packet.tap_time is None:
                # never crossed the associated sender's interface: cannot
                # have a ground-truth segment delay, so don't measure it
                self.missing_tap += 1
                return
            self.regulars_measured += 1
            truth = now - packet.tap_time
            if self.observation_log is not None:
                self.observation_log.append(
                    (REG_OBS, stream, now, packet.flow_key, truth))
                if self.record_only:
                    return
            self.flow_true.add(packet.flow_key, truth)
            if self.flow_true_quantiles is not None:
                self.flow_true_quantiles.add(packet.flow_key, truth)
            self._buffer(stream).add_regular(now, packet.flow_key, truth)

    # ------------------------------------------------------------------
    # columnar fast path

    @property
    def batch_capable(self) -> bool:
        """True when :meth:`observe_batch` reproduces :meth:`observe` exactly.

        Requires a demux with a vectorized regular classifier
        (``classify_regular_batch`` plus a truthy ``batch_capable`` flag —
        a path-classifier demux only advertises it when its classifier is
        vectorizable).  Observation logs are recorded on the fast path too
        — bulk-appended in observation order, byte-identical to per-event
        appends — for the plain ``list`` and
        :class:`~repro.core.obslog.ObservationColumns` representations;
        an exotic log type falls back to the per-object path.
        """
        log = self.observation_log
        if log is not None and not (
            isinstance(log, list) or hasattr(log, "extend_batch")
        ):
            return False
        return bool(getattr(self.demux, "batch_capable", False)) and hasattr(
            self.demux, "classify_regular_batch"
        )

    def observe_batch(
        self,
        times: np.ndarray,
        kinds: np.ndarray,
        headers,
        header_index: np.ndarray,
        taps: np.ndarray,
        ref_packets: Sequence[Packet],
    ) -> None:
        """Feed one interface's *entire* observation stream at once.

        The vectorized equivalent of calling :meth:`observe` per packet in
        stream order and then flushing the one-sided tails: reference
        packets (few, stateful) take a per-object loop, while regular
        packets are classified, grouped and estimated with array
        operations whose per-element float ops match the scalar path —
        every counter, flow-table entry (including dict insertion order)
        and estimate is bitwise-identical, which the equivalence suite
        asserts.  One-shot: it covers the stream's tail flush, so a
        subsequent :meth:`finalize` is a no-op.

        Parameters
        ----------
        times:
            Observation (arrival) times, strictly increasing.
        kinds:
            Packet kind per observation (:class:`PacketKind` values;
            CROSS must already be filtered out by the caller, as the
            pipeline never shows cross traffic to a receiver).
        headers:
            A :class:`~repro.traffic.batch.PacketBatch` holding the header
            columns of the *regular* traffic.
        header_index:
            Per-observation row index into *headers* (-1 for references).
        taps:
            Per-observation measurement-tap times (NaN where unknown;
            references ignore this column).  ``None`` means every
            regular's tap is its trace timestamp ``headers.ts`` — the
            feed-forward pipeline's semantics — which skips building the
            full-width column.
        ref_packets:
            The reference :class:`Packet` objects, in observation order —
            one per REFERENCE row of *kinds*.
        """
        if self._finalized:
            raise RuntimeError("receiver already finalized")
        times = np.asarray(times, dtype=np.float64)
        kinds = np.asarray(kinds)
        header_index = np.asarray(header_index)
        if taps is not None:
            taps = np.asarray(taps, dtype=np.float64)
        n_obs = len(times)
        pos = np.arange(n_obs)
        is_ref = kinds == int(PacketKind.REFERENCE)
        is_reg = kinds == int(PacketKind.REGULAR)
        if int(np.count_nonzero(is_ref)) != len(ref_packets):
            raise ValueError("ref_packets must align with REFERENCE rows")

        # --- references: per-object, in observation order (small stream)
        refs_by_stream: Dict[int, list] = {}  # stream -> [positions, times, delays]
        first_by_stream: Dict[int, int] = {}  # buffer-creation order
        ref_log: List[list] = [[], [], [], []]  # accepted: pos, stream, t, delay
        clock_now = self.clock.now
        for p_obs, t, pkt in zip(
            pos[is_ref].tolist(), times[is_ref].tolist(), ref_packets
        ):
            stream = self.demux.classify_reference(pkt)
            if stream is None:
                self.references_ignored += 1
                continue
            self.references_accepted += 1
            delay = clock_now(t) - pkt.ref_timestamp
            if self.observation_log is not None:
                ref_log[0].append(p_obs)
                ref_log[1].append(stream)
                ref_log[2].append(t)
                ref_log[3].append(delay)
            entry = refs_by_stream.get(stream)
            if entry is None:
                entry = refs_by_stream[stream] = [[], [], []]
                first_by_stream.setdefault(stream, p_obs)
            entry[0].append(p_obs)
            entry[1].append(t)
            entry[2].append(delay)

        # --- regulars: vectorized classify / tap check / ground truth
        reg_pos = pos[is_reg]
        reg_times = times[is_reg]
        reg_hidx = header_index[is_reg]
        if len(reg_pos):
            streams = self.demux.classify_regular_batch(headers, reg_hidx)
        else:
            streams = np.empty(0, dtype=np.int64)
        ignored = streams < 0
        self.regulars_ignored += int(np.count_nonzero(ignored))
        if taps is None:
            keep = ~ignored
        else:
            reg_taps = taps[is_reg]
            tapped = ~np.isnan(reg_taps)
            self.missing_tap += int(np.count_nonzero(~ignored & ~tapped))
            keep = ~ignored & tapped
        mpos = reg_pos[keep]
        mtimes = reg_times[keep]
        mstreams = streams[keep]
        mhidx = reg_hidx[keep]
        self.regulars_measured += len(mpos)
        mtaps = headers.ts[mhidx] if taps is None else reg_taps[keep]
        truth = mtimes - mtaps  # same op as scalar `now - tap_time`

        if self.observation_log is not None:
            self._log_batch(ref_log, mpos, mstreams, mtimes, mhidx, truth,
                            headers)
            if self.record_only:
                return

        a_col, b_col = headers.packed_flow_keys()
        self._fold_flow_samples(
            self.flow_true, self.flow_true_quantiles, headers,
            mhidx, a_col[mhidx], b_col[mhidx], truth,
        )

        # buffer-creation order: first accepted reference or measured
        # regular per stream, whichever was observed first
        if len(mpos):
            uniq, first_idx = np.unique(mstreams, return_index=True)
            for s, i in zip(uniq.tolist(), first_idx.tolist()):
                p0 = int(mpos[i])
                cur = first_by_stream.get(s)
                if cur is None or p0 < cur:
                    first_by_stream[s] = p0
        stream_rank = {
            s: r for r, s in enumerate(sorted(first_by_stream, key=first_by_stream.get))
        }

        # --- single-stream shortcut (the two-switch pipeline case): with
        # one stream, closing positions are non-decreasing in observation
        # order, so emission order IS observation order — no sort, no
        # per-stream partitioning
        if len(refs_by_stream) == 1 and (
            not len(mstreams)
            or (next(iter(refs_by_stream)) == mstreams[0]
                and bool(np.all(mstreams == mstreams[0])))
        ):
            entry = next(iter(refs_by_stream.values()))
            if len(mpos):
                ref_pos = np.asarray(entry[0], dtype=np.int64)
                intervals = np.searchsorted(ref_pos, mpos)
                est = interpolate_batch(
                    mtimes, np.asarray(entry[1]), np.asarray(entry[2]),
                    estimator=self.estimator, intervals=intervals,
                )
                self._fold_flow_samples(
                    self.flow_estimated, self.flow_estimated_quantiles,
                    headers, mhidx, a_col[mhidx], b_col[mhidx], est,
                )
                if self.collect_estimates:
                    self.estimates.extend(
                        Estimate(headers.flow_key(int(h)), t, e, tr)
                        for h, t, e, tr in zip(
                            mhidx.tolist(), mtimes.tolist(),
                            est.tolist(), truth.tolist(),
                        )
                    )
            return

        # --- per-stream interpolation; emission keyed by the closing event
        # (sorted: the downstream lexsort is order-insensitive today, but
        # set-iteration order must never be load-bearing — DET003)
        parts: List[tuple] = []
        for stream in sorted(refs_by_stream.keys() | set(mstreams.tolist())):
            sel = mstreams == stream
            rpos = mpos[sel]
            entry = refs_by_stream.get(stream)
            if entry is None:
                # pending forever: no reference ever closed this stream
                self.unestimated += int(np.count_nonzero(sel))
                continue
            if not len(rpos):
                continue
            ref_pos = np.asarray(entry[0], dtype=np.int64)
            ref_t = np.asarray(entry[1], dtype=np.float64)
            ref_d = np.asarray(entry[2], dtype=np.float64)
            intervals = np.searchsorted(ref_pos, rpos)
            est = interpolate_batch(
                mtimes[sel], ref_t, ref_d,
                estimator=self.estimator, intervals=intervals,
            )
            n_refs = len(ref_pos)
            # estimates surface when their interval closes: at the
            # right-endpoint reference, or at the final flush (ordered by
            # buffer creation, after every reference event)
            close = np.where(
                intervals < n_refs,
                ref_pos[np.minimum(intervals, n_refs - 1)],
                n_obs + stream_rank[stream],
            )
            parts.append((close, rpos, mtimes[sel], est, truth[sel],
                          mhidx[sel], a_col[mhidx[sel]], b_col[mhidx[sel]]))

        if parts:
            close_all = np.concatenate([p[0] for p in parts])
            obs_all = np.concatenate([p[1] for p in parts])
            t_all = np.concatenate([p[2] for p in parts])
            est_all = np.concatenate([p[3] for p in parts])
            truth_all = np.concatenate([p[4] for p in parts])
            hidx_all = np.concatenate([p[5] for p in parts])
            a_all = np.concatenate([p[6] for p in parts])
            b_all = np.concatenate([p[7] for p in parts])
            emit = np.lexsort((obs_all, close_all))
            est_e = est_all[emit]
            hidx_e = hidx_all[emit]
            self._fold_flow_samples(
                self.flow_estimated, self.flow_estimated_quantiles, headers,
                hidx_e, a_all[emit], b_all[emit], est_e,
            )
            if self.collect_estimates:
                self.estimates.extend(
                    Estimate(headers.flow_key(int(h)), t, e, tr)
                    for h, t, e, tr in zip(
                        hidx_e.tolist(), t_all[emit].tolist(),
                        est_e.tolist(), truth_all[emit].tolist(),
                    )
                )

    def _log_batch(self, ref_log, mpos, mstreams, mtimes, mhidx, truth,
                   headers) -> None:
        """Write one batch's observation events to the log, in stream order.

        Reference and measured-regular events are interleaved by their
        observation positions, reproducing the exact per-event append
        sequence (and values) of the scalar path; plain lists take tuple
        events, :class:`~repro.core.obslog.ObservationColumns` a bulk
        column append.
        """
        n_ref = len(ref_log[0])
        n_reg = len(mpos)
        total = n_ref + n_reg
        if not total:
            return
        log = self.observation_log
        pos_all = np.concatenate([
            np.asarray(ref_log[0], dtype=np.int64),
            np.asarray(mpos, dtype=np.int64),
        ])
        if isinstance(log, list):
            reg_keys = zip(
                headers.src[mhidx].tolist(), headers.dst[mhidx].tolist(),
                headers.sport[mhidx].tolist(), headers.dport[mhidx].tolist(),
                headers.proto[mhidx].tolist(),
            )
            events = [
                (REF_OBS, s, t, d)
                for s, t, d in zip(ref_log[1], ref_log[2], ref_log[3])
            ] + [
                (REG_OBS, s, t, key, tr)
                for s, t, key, tr in zip(
                    mstreams.tolist(), mtimes.tolist(), reg_keys,
                    truth.tolist(),
                )
            ]
            log.extend(events[i] for i in np.argsort(pos_all, kind="stable").tolist())
            return
        # columnar log: scatter both event classes into their merged slots
        rank = np.empty(total, dtype=np.intp)
        rank[np.argsort(pos_all, kind="stable")] = np.arange(total)
        ref_rank = rank[:n_ref]
        reg_rank = rank[n_ref:]
        tags = np.empty(total, dtype=np.int8)
        tags[ref_rank] = REF_OBS
        tags[reg_rank] = REG_OBS
        streams_all = np.empty(total, dtype=np.int64)
        streams_all[ref_rank] = np.asarray(ref_log[1], dtype=np.int64)
        streams_all[reg_rank] = mstreams
        times_all = np.empty(total, dtype=np.float64)
        times_all[ref_rank] = np.asarray(ref_log[2], dtype=np.float64)
        times_all[reg_rank] = mtimes
        values_all = np.empty(total, dtype=np.float64)
        values_all[ref_rank] = np.asarray(ref_log[3], dtype=np.float64)
        values_all[reg_rank] = truth
        keys = []
        for column in (headers.src, headers.dst, headers.sport,
                       headers.dport, headers.proto):
            key_col = np.zeros(total, dtype=np.int64)
            key_col[reg_rank] = column[mhidx]
            keys.append(key_col)
        log.extend_batch(tags, streams_all, times_all, values_all, keys)

    def _fold_flow_samples(
        self, table, qtable, headers, hidx, a, b, values
    ) -> None:
        """Fold (flow, value) samples into *table* (and *qtable*).

        Dict insertion order (first appearance of each flow) and per-flow
        sample order both match the per-sample scalar path.  Bounded (LRU)
        tables and quantile tracking depend on the exact cross-flow access
        sequence, so they take the per-sample loop; the common unbounded
        case groups samples by flow with array ops and folds each run
        through the Welford accumulator in one call.
        """
        n = len(values)
        if n == 0:
            return
        if isinstance(table, BoundedFlowStatsTable) or qtable is not None:
            keys = list(zip(
                headers.src[hidx].tolist(), headers.dst[hidx].tolist(),
                headers.sport[hidx].tolist(), headers.dport[hidx].tolist(),
                headers.proto[hidx].tolist(),
            ))
            table_add = table.add
            q_add = qtable.add if qtable is not None else None
            for key, value in zip(keys, values.tolist()):
                table_add(key, value)
                if q_add is not None:
                    q_add(key, value)
            return
        order = np.lexsort((b, a))
        a_s = a[order]
        b_s = b[order]
        boundary = np.empty(n, dtype=bool)
        boundary[0] = True
        boundary[1:] = (a_s[1:] != a_s[:-1]) | (b_s[1:] != b_s[:-1])
        starts = np.flatnonzero(boundary)
        ends = np.append(starts[1:], n)
        firsts = order[starts]  # stable sort => min original index per flow
        grouped_vals = values[order]
        counts, means, m2s, mins, maxs = welford_grouped(grouped_vals, starts, ends)
        # per-flow scalars as plain Python values, extracted in bulk
        rep = hidx[firsts]
        keys = list(zip(headers.src[rep].tolist(), headers.dst[rep].tolist(),
                        headers.sport[rep].tolist(), headers.dport[rep].tolist(),
                        headers.proto[rep].tolist()))
        counts_l = counts.tolist()
        means_l = means.tolist()
        m2_l = m2s.tolist()
        mins_l = mins.tolist()
        maxs_l = maxs.tolist()
        vals_list = None
        adopt = table.adopt
        for g in np.argsort(firsts, kind="stable").tolist():
            key = keys[g]
            if key in table:
                # fold into the existing accumulator sample by sample —
                # the precomputed one assumed a fresh start
                if vals_list is None:
                    vals_list = grouped_vals.tolist()
                table.add_many(key, vals_list[int(starts[g]):int(ends[g])])
                continue
            stats = StreamingStats()
            stats.count = counts_l[g]
            stats.mean = means_l[g]
            stats._m2 = m2_l[g]
            stats.min = mins_l[g]
            stats.max = maxs_l[g]
            adopt(key, stats)

    def finalize(self) -> None:
        """Flush the one-sided tails of every stream buffer (idempotent)."""
        if self._finalized:
            return
        for buffer in self._buffers.values():
            for estimate in buffer.flush():
                self._record(estimate)
            self.unestimated += buffer.unestimated
        self._finalized = True

    # ------------------------------------------------------------------

    def _buffer(self, stream: int) -> InterpolationBuffer:
        buffer = self._buffers.get(stream)
        if buffer is None:
            buffer = InterpolationBuffer(self.estimator)
            self._buffers[stream] = buffer
        return buffer

    def _record(self, estimate: Estimate) -> None:
        self.flow_estimated.add(estimate.key, estimate.estimated)
        if self.flow_estimated_quantiles is not None:
            self.flow_estimated_quantiles.add(estimate.key, estimate.estimated)
        if self.collect_estimates:
            self.estimates.append(estimate)

    # ------------------------------------------------------------------

    @property
    def stream_count(self) -> int:
        return len(self._buffers)

    def __repr__(self) -> str:
        return (
            f"RliReceiver(streams={self.stream_count}, measured={self.regulars_measured}, "
            f"refs={self.references_accepted}, estimator={self.estimator!r})"
        )
