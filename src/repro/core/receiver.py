"""RLI receiver: per-stream interpolation and per-flow aggregation.

"The RLI receiver then easily obtains true delays of these special packets
based on the local clock.  The delay samples can then be used to approximate
the latency of regular packets" (paper Section 2).

The RLIR receiver extends this with one interpolation buffer *per stream*
(per associated sender / path class), selected by a demultiplexer — the fix
for traffic multiplexing across routers (Section 3.1).  Interpolating a
packet against a reference that took a different path would violate delay
locality; the demux guarantees every estimate uses references that shared
the packet's path segment.

Ground truth: the simulator stamps each packet's segment entry time
(``tap_time``) at the sender's interface; the receiver records
``arrival − tap_time`` as the packet's true delay next to its estimate, so
per-flow relative errors are computed against exact truth, as in the
paper's evaluation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..net.packet import Packet
from ..sim.clock import Clock, PerfectClock
from .demux import Demux
from .flowstats import BoundedFlowStatsTable, FlowStatsTable
from .interpolation import Estimate, InterpolationBuffer
from .quantiles import FlowQuantileTable

__all__ = ["RliReceiver", "REF_OBS", "REG_OBS"]

# observation-log event tags (see repro.core.replay)
REF_OBS = 0  # (REF_OBS, stream, arrival, reference delay)
REG_OBS = 1  # (REG_OBS, stream, arrival, flow key, true delay)


class RliReceiver:
    """One RLI receiver instance on one interface.

    Parameters
    ----------
    demux:
        Stream demultiplexer (see :mod:`repro.core.demux`).
    clock:
        Local clock used to timestamp reference arrivals; sync error vs the
        senders' clocks biases delay samples (ablation knob).
    estimator:
        Interpolation strategy (``"linear"`` is the paper's).
    collect_estimates:
        If True, keep every per-packet :class:`Estimate` for packet-level
        analysis (memory-heavy; per-flow tables are always kept).
    max_flows:
        Optional flow-table memory bound; when set, both the estimated and
        true tables become LRU-evicting
        :class:`~repro.core.flowstats.BoundedFlowStatsTable` instances,
        modelling a hardware instance's fixed-size flow cache.
    quantiles:
        Optional sequence of quantiles (e.g. ``(0.5, 0.95, 0.99)``).  When
        set, the receiver additionally maintains streaming P² per-flow
        quantile estimates of both estimated and true delays
        (:attr:`flow_estimated_quantiles` / :attr:`flow_true_quantiles`) —
        the tail view mean/σ cannot give.
    observation_log:
        Optional list the receiver appends its post-demux observation
        events to (see :mod:`repro.core.replay`).  A recorded log can be
        replayed — in full or restricted to one flow shard — to rebuild
        this receiver's per-flow tables without re-running the simulation;
        the within-condition sharding of the sweep runner is built on it.
    record_only:
        With an ``observation_log``, skip the live estimation work
        (interpolation buffers and flow tables stay empty): the log is the
        only output, and replaying it would recompute every estimate
        anyway.  Demux classification, clocking, and the tap/measurement
        accounting are unchanged, so the log is identical either way.
    """

    def __init__(
        self,
        demux: Demux,
        clock: Optional[Clock] = None,
        estimator: str = "linear",
        collect_estimates: bool = False,
        max_flows: Optional[int] = None,
        quantiles: Optional[Sequence[float]] = None,
        observation_log: Optional[list] = None,
        record_only: bool = False,
    ):
        if record_only and observation_log is None:
            raise ValueError("record_only requires an observation_log")
        self.demux = demux
        self.observation_log = observation_log
        self.record_only = record_only
        self.clock = clock or PerfectClock()
        self.estimator = estimator
        self.collect_estimates = collect_estimates
        self.estimates: List[Estimate] = []
        self._buffers: Dict[int, InterpolationBuffer] = {}
        if max_flows is None:
            self.flow_estimated = FlowStatsTable()
            self.flow_true = FlowStatsTable()
        else:
            self.flow_estimated = BoundedFlowStatsTable(max_flows)
            self.flow_true = BoundedFlowStatsTable(max_flows)
        self.flow_estimated_quantiles: Optional[FlowQuantileTable] = None
        self.flow_true_quantiles: Optional[FlowQuantileTable] = None
        if quantiles is not None:
            self.flow_estimated_quantiles = FlowQuantileTable(quantiles)
            self.flow_true_quantiles = FlowQuantileTable(quantiles)
        self.regulars_measured = 0
        self.regulars_ignored = 0
        self.references_accepted = 0
        self.references_ignored = 0
        self.missing_tap = 0
        self.unestimated = 0
        self._finalized = False

    # ------------------------------------------------------------------

    def observe(self, packet: Packet, now: float) -> None:
        """Feed one packet arriving at this receiver's interface."""
        if self._finalized:
            raise RuntimeError("receiver already finalized")
        if packet.is_reference:
            stream = self.demux.classify_reference(packet)
            if stream is None:
                self.references_ignored += 1
                return
            self.references_accepted += 1
            delay = self.clock.now(now) - packet.ref_timestamp
            if self.observation_log is not None:
                self.observation_log.append((REF_OBS, stream, now, delay))
                if self.record_only:
                    return
            for estimate in self._buffer(stream).add_reference(now, delay):
                self._record(estimate)
        elif packet.is_regular:
            stream = self.demux.classify_regular(packet)
            if stream is None:
                self.regulars_ignored += 1
                return
            if packet.tap_time is None:
                # never crossed the associated sender's interface: cannot
                # have a ground-truth segment delay, so don't measure it
                self.missing_tap += 1
                return
            self.regulars_measured += 1
            truth = now - packet.tap_time
            if self.observation_log is not None:
                self.observation_log.append(
                    (REG_OBS, stream, now, packet.flow_key, truth))
                if self.record_only:
                    return
            self.flow_true.add(packet.flow_key, truth)
            if self.flow_true_quantiles is not None:
                self.flow_true_quantiles.add(packet.flow_key, truth)
            self._buffer(stream).add_regular(now, packet.flow_key, truth)

    def finalize(self) -> None:
        """Flush the one-sided tails of every stream buffer (idempotent)."""
        if self._finalized:
            return
        for buffer in self._buffers.values():
            for estimate in buffer.flush():
                self._record(estimate)
            self.unestimated += buffer.unestimated
        self._finalized = True

    # ------------------------------------------------------------------

    def _buffer(self, stream: int) -> InterpolationBuffer:
        buffer = self._buffers.get(stream)
        if buffer is None:
            buffer = InterpolationBuffer(self.estimator)
            self._buffers[stream] = buffer
        return buffer

    def _record(self, estimate: Estimate) -> None:
        self.flow_estimated.add(estimate.key, estimate.estimated)
        if self.flow_estimated_quantiles is not None:
            self.flow_estimated_quantiles.add(estimate.key, estimate.estimated)
        if self.collect_estimates:
            self.estimates.append(estimate)

    # ------------------------------------------------------------------

    @property
    def stream_count(self) -> int:
        return len(self._buffers)

    def __repr__(self) -> str:
        return (
            f"RliReceiver(streams={self.stream_count}, measured={self.regulars_measured}, "
            f"refs={self.references_accepted}, estimator={self.estimator!r})"
        )
