"""Reverse-ECMP path classifier (paper Section 3.1, downstream case).

"The other approach is to leverage the routing information to isolate the
exact path a given packet may have taken from the source router ... we can
potentially persuade the switch vendors to reveal [the hash functions], in
which case, we can 'reverse' engineer the intermediate router through which
a packet may have originated. ... This become[s] definitely more cumbersome
than the packet marking approach, but requires fewer firmware changes in
the routers."

Given the topology's hash functions (the "vendor-revealed" knowledge) and a
packet's flow key, the receiver recomputes the upward ECMP choices the
packet's source-side switches made — edge → aggregation, aggregation → core
— and thereby identifies the core router the packet crossed, without any
in-band support.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..net.packet import Packet
from ..sim.topology import FatTree

__all__ = ["ReverseEcmpClassifier"]


class ReverseEcmpClassifier:
    """Recompute upstream ECMP choices to find the traversed core router.

    Parameters
    ----------
    fattree:
        The fabric whose hash functions the receiver knows.
    core_to_sender:
        ``core node_id -> sender instance id`` for the instrumented cores.
    """

    def __init__(self, fattree: FatTree, core_to_sender: Dict[int, int]):
        if not core_to_sender:
            raise ValueError("at least one instrumented core required")
        self._fattree = fattree
        self._map = dict(core_to_sender)

    def __call__(self, packet: Packet) -> Optional[int]:
        try:
            core = self._fattree.core_of(packet.flow_key)
        except ValueError:
            # intra-ToR or intra-pod flow: never crossed a core
            return None
        return self._map.get(core.node_id)

    def classify_batch(self, headers, rows: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`__call__` over batch rows (``-1`` = None).

        Recomputes the edge→agg and agg→core ECMP choices with the
        switches' vectorized hashes, grouped by the (per-switch-seeded)
        hasher each subset of flows consults — element-for-element
        identical to the scalar recomputation.
        """
        ft = self._fattree
        k = ft.k
        half = k // 2
        src = headers.src[rows]
        dst = headers.dst[rows]
        pod = (src >> 16) & 0xFF
        edge = (src >> 8) & 0xFF
        dpod = (dst >> 16) & 0xFF
        dedge = (dst >> 8) & 0xFF
        # flows that never crossed a core: bad host blocks, intra-pod,
        # intra-ToR — exactly the ValueError arms of FatTree.up_path
        valid = (
            (pod < k) & (edge < half) & (dpod < k) & (dedge < half)
            & (pod != dpod)
        )
        out = np.full(len(rows), -1, dtype=np.int64)
        idx = np.flatnonzero(valid)
        if not len(idx):
            return out
        vrows = rows[idx]
        cols = (headers.src[vrows], headers.dst[vrows], headers.sport[vrows],
                headers.dport[vrows], headers.proto[vrows])
        vpod = pod[idx]
        vedge = edge[idx]
        # edge-level choice: group by source ToR (each edge has its own seed)
        a = np.empty(len(idx), dtype=np.int64)
        tor = vpod * half + vedge
        for t in np.unique(tor):
            sel = tor == t
            hasher = ft.edges[int(t) // half][int(t) % half].hasher
            a[sel] = hasher.choose_batch(*(c[sel] for c in cols), half)
        # agg-level choice: group by (pod, a)
        j = np.empty(len(idx), dtype=np.int64)
        agg_group = vpod * half + a
        for g in np.unique(agg_group):
            sel = agg_group == g
            hasher = ft.aggs[int(g) // half][int(g) % half].hasher
            j[sel] = hasher.choose_batch(*(c[sel] for c in cols), half)
        core_sender = np.full((half, half), -1, dtype=np.int64)
        for ai in range(half):
            for ji in range(half):
                core_sender[ai, ji] = self._map.get(
                    ft.cores[ai][ji].node_id, -1)
        out[idx] = core_sender[a, j]
        return out

    def __repr__(self) -> str:
        return f"ReverseEcmpClassifier(cores={sorted(self._map)})"
