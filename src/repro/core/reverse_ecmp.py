"""Reverse-ECMP path classifier (paper Section 3.1, downstream case).

"The other approach is to leverage the routing information to isolate the
exact path a given packet may have taken from the source router ... we can
potentially persuade the switch vendors to reveal [the hash functions], in
which case, we can 'reverse' engineer the intermediate router through which
a packet may have originated. ... This become[s] definitely more cumbersome
than the packet marking approach, but requires fewer firmware changes in
the routers."

Given the topology's hash functions (the "vendor-revealed" knowledge) and a
packet's flow key, the receiver recomputes the upward ECMP choices the
packet's source-side switches made — edge → aggregation, aggregation → core
— and thereby identifies the core router the packet crossed, without any
in-band support.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..net.packet import Packet
from ..sim.topology import FatTree

__all__ = ["ReverseEcmpClassifier"]


class ReverseEcmpClassifier:
    """Recompute upstream ECMP choices to find the traversed core router.

    Parameters
    ----------
    fattree:
        The fabric whose hash functions the receiver knows.
    core_to_sender:
        ``core node_id -> sender instance id`` for the instrumented cores.
    """

    def __init__(self, fattree: FatTree, core_to_sender: Dict[int, int]):
        if not core_to_sender:
            raise ValueError("at least one instrumented core required")
        self._fattree = fattree
        self._map = dict(core_to_sender)

    def __call__(self, packet: Packet) -> Optional[int]:
        try:
            core = self._fattree.core_of(packet.flow_key)
        except ValueError:
            # intra-ToR or intra-pod flow: never crossed a core
            return None
        return self._map.get(core.node_id)

    def __repr__(self) -> str:
        return f"ReverseEcmpClassifier(cores={sorted(self._map)})"
