"""Multi-pair RLIR: one shared core deployment serving many ToR pairs.

The paper's complexity analysis scales from one interface pair up to "every
pair of ToR switches" (Section 3.1) — core instances are *shared* across
pairs, which is where the Θ(k³)-vs-Θ(k⁴) saving comes from.  This module
realizes that sharing in the simulator: a :class:`RlirMesh` wires one
measurement instance per core interface plus per-ToR instances, and serves
an arbitrary set of (src ToR, dst ToR) pairs simultaneously.

Sharing is what makes the demultiplexing machinery earn its keep: a core
receiver now hears reference streams from *several* source ToRs (demuxed by
sender ID + source prefix), and a destination ToR receiver hears streams
from all cores crossed by multiple source ToRs (demuxed by path classifier
+ source prefix), with every combination holding its own interpolation
buffer.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..net.packet import Packet
from ..sim.clock import Clock, PerfectClock
from ..sim.ecmp import craft_dport_for_port
from ..sim.engine import Engine
from ..sim.fatpath import try_fast_path
from ..sim.switch import Switch
from ..sim.topology import FatTree
from ..traffic.trace import Trace
from .demux import PathClassifierDemux, UpstreamPrefixDemux
from .flowstats import FlowStatsTable
from .injection import InjectionPolicy, StaticInjection
from .receiver import RliReceiver
from .reverse_ecmp import ReverseEcmpClassifier
from .rlir import RlirResult
from .sender import RefTemplate, RliSender

__all__ = ["RlirMesh", "MeshResult"]

TOR_SENDER_STRIDE = 100


class MeshResult:
    """Per-pair views over the shared mesh receivers."""

    def __init__(self, mesh: "RlirMesh"):
        self._mesh = mesh

    def pair(self, src: Tuple[int, int], dst: Tuple[int, int]) -> RlirResult:
        """The (seg1, seg2) result restricted to one measured pair.

        Segment-1 receivers are shared across pairs; the returned tables
        are filtered to flows whose source lies in *src*'s prefix and whose
        destination lies in *dst*'s prefix.
        """
        mesh = self._mesh
        if (src, dst) not in mesh.pairs:
            raise KeyError(f"pair {src}->{dst} not measured by this mesh")
        src_prefix = mesh.fattree.tor_prefix(*src)
        dst_prefix = mesh.fattree.tor_prefix(*dst)

        def filtered(receiver: RliReceiver) -> RliReceiver:
            view = RliReceiver(demux=receiver.demux)
            for src_table, dst_table in (
                (receiver.flow_estimated, view.flow_estimated),
                (receiver.flow_true, view.flow_true),
            ):
                for key, stats in src_table.items():
                    if key[0] in src_prefix and key[1] in dst_prefix:
                        dst_table.merge_flow(key, stats)
            return view

        seg1 = {name: filtered(rx) for name, rx in mesh.core_receivers.items()}
        seg2 = filtered(mesh.dst_receivers[dst])
        return RlirResult(seg1, seg2)


class RlirMesh:
    """Shared RLIR deployment over a set of inter-pod ToR pairs.

    Parameters mirror :class:`~repro.core.rlir.RlirDeployment`; ``pairs``
    is a sequence of ((src_pod, src_edge), (dst_pod, dst_edge)) tuples, all
    inter-pod.

    ``batch=True`` selects the layered columnar fast path
    (:class:`~repro.sim.fatpath.FatTreeFastPath`) whenever every trace
    carries :class:`~repro.traffic.batch.PacketBatch` columns: results are
    **bitwise identical** to the event engine — arrival ties included,
    reconstructed exactly from event provenance — and any non-batchable
    component falls back to the engine transparently.
    """

    def __init__(
        self,
        fattree: FatTree,
        pairs: Sequence[Tuple[Tuple[int, int], Tuple[int, int]]],
        policy_factory: Callable[[], InjectionPolicy] = lambda: StaticInjection(100),
        estimator: str = "linear",
        clock_factory: Optional[Callable[[], Clock]] = None,
        batch: bool = False,
    ):
        if not pairs:
            raise ValueError("at least one ToR pair required")
        for src, dst in pairs:
            if src == dst:
                raise ValueError(f"pair {src}->{dst}: ToRs must differ")
            if src[0] == dst[0]:
                raise ValueError(f"pair {src}->{dst}: inter-pod pairs only")
        self.fattree = fattree
        self.pairs = list(pairs)
        self.policy_factory = policy_factory
        self.estimator = estimator
        self.clock_factory = clock_factory or PerfectClock
        self.batch = batch
        self.engine: Optional[Engine] = None
        self.tor_senders: Dict[Tuple[Tuple[int, int], int], RliSender] = {}
        self.core_receivers: Dict[str, RliReceiver] = {}
        self.core_senders: Dict[Tuple[str, int], RliSender] = {}
        self.dst_receivers: Dict[Tuple[int, int], RliReceiver] = {}
        self._wired = False
        # declarative wiring descriptions consumed by the columnar driver
        self._sender_taps: Dict[Tuple[Switch, int], tuple] = {}
        self._receiver_taps: Dict[Switch, RliReceiver] = {}

    # ------------------------------------------------------------------
    # instance ids

    def tor_sender_id(self, src: Tuple[int, int], uplink: int) -> int:
        index = self._src_index(src)
        return 10_000 + index * TOR_SENDER_STRIDE + uplink

    def core_sender_id(self, core: Switch, dst_pod: int) -> int:
        return 20_000 + core.node_id * 64 + dst_pod

    def _src_index(self, src: Tuple[int, int]) -> int:
        return self._src_tors().index(src)

    def _src_tors(self) -> List[Tuple[int, int]]:
        seen: List[Tuple[int, int]] = []
        for src, _ in self.pairs:
            if src not in seen:
                seen.append(src)
        return seen

    def _dst_tors(self) -> List[Tuple[int, int]]:
        seen: List[Tuple[int, int]] = []
        for _, dst in self.pairs:
            if dst not in seen:
                seen.append(dst)
        return seen

    # ------------------------------------------------------------------

    def wire(self, engine: Engine) -> None:
        if self._wired:
            raise RuntimeError("mesh already wired")
        self._wired = True
        self.engine = engine
        ft = self.fattree
        half = ft.k // 2
        src_tors = self._src_tors()
        dst_tors = self._dst_tors()
        cores = [ft.cores[i][j] for i in range(half) for j in range(half)]

        # ---- source ToRs: one sender per uplink ----
        for src in src_tors:
            src_edge = ft.edges[src[0]][src[1]]
            for u in range(half):
                agg = ft.aggs[src[0]][u]
                port_index = ft.port_toward(src_edge, agg)
                port = src_edge.ports[port_index]
                templates = {}
                for j in range(half):
                    core = ft.cores[u][j]
                    dport = craft_dport_for_port(
                        agg.hasher, src_edge.address, core.address, 0, 253, half, j)
                    if dport is None:
                        raise RuntimeError(f"cannot craft flow to {core.name}")
                    templates[j] = RefTemplate(src_edge.address, core.address, 0, dport)
                sender = RliSender(
                    sender_id=self.tor_sender_id(src, u),
                    link_rate_bps=port.queue.rate_Bps * 8.0,
                    policy=self.policy_factory(),
                    templates=templates,
                    classify=self._agg_hash_classifier(agg, half),
                    clock=self.clock_factory(),
                )
                self.tor_senders[(src, u)] = sender
                port.add_enqueue_tap(self._sender_tap(src_edge, port_index, sender))
                self._sender_taps[(src_edge, port_index)] = (
                    sender, ("hash", agg.hasher, half))

        # ---- cores: one shared receiver; one sender per involved dst pod ----
        dst_pods = sorted({dst[0] for dst in dst_tors})
        for i in range(half):
            for j in range(half):
                core = ft.cores[i][j]
                mappings = [
                    (ft.tor_prefix(*src), self.tor_sender_id(src, i))
                    for src in src_tors
                ]
                receiver = RliReceiver(
                    demux=UpstreamPrefixDemux(mappings),
                    clock=self.clock_factory(),
                    estimator=self.estimator,
                )
                self.core_receivers[core.name] = receiver
                core.add_arrival_tap(self._receiver_tap(receiver))
                self._receiver_taps[core] = receiver
                for pod in dst_pods:
                    egress_index = ft.port_toward(core, ft.aggs[pod][i])
                    egress = core.ports[egress_index]
                    pod_dsts = [dst for dst in dst_tors if dst[0] == pod]
                    templates = {
                        self._dst_index(dst): RefTemplate(
                            core.address, ft.edges[dst[0]][dst[1]].address, 0, 0)
                        for dst in pod_dsts
                    }
                    sender = RliSender(
                        sender_id=self.core_sender_id(core, pod),
                        link_rate_bps=egress.queue.rate_Bps * 8.0,
                        policy=self.policy_factory(),
                        templates=templates,
                        classify=self._dst_tor_classifier(pod_dsts),
                        clock=self.clock_factory(),
                    )
                    self.core_senders[(core.name, pod)] = sender
                    egress.add_enqueue_tap(self._sender_tap(core, egress_index, sender))
                    self._sender_taps[(core, egress_index)] = (
                        sender,
                        ("tor_map", tuple((dst[0], dst[1], self._dst_index(dst))
                                          for dst in pod_dsts)))

        # ---- destination ToRs: one downstream receiver each ----
        for dst in dst_tors:
            dst_edge = ft.edges[dst[0]][dst[1]]
            core_to_sender = {c.node_id: self.core_sender_id(c, dst[0]) for c in cores}
            classifier = ReverseEcmpClassifier(ft, core_to_sender)
            sources = [ft.tor_prefix(*src) for src, d in self.pairs if d == dst]
            receiver = RliReceiver(
                demux=PathClassifierDemux(
                    classifier,
                    sender_ids=core_to_sender.values(),
                    source_prefixes=sources,
                ),
                clock=self.clock_factory(),
                estimator=self.estimator,
            )
            self.dst_receivers[dst] = receiver
            dst_edge.add_arrival_tap(self._receiver_tap(receiver))
            self._receiver_taps[dst_edge] = receiver

    def _dst_index(self, dst: Tuple[int, int]) -> int:
        return self._dst_tors().index(dst)

    # ------------------------------------------------------------------
    # tap/classifier factories

    def _agg_hash_classifier(self, agg: Switch, half: int):
        def classify(packet: Packet) -> int:
            return agg.hasher.choose(packet.flow_key, half)

        return classify

    def _dst_tor_classifier(self, pod_dsts: Sequence[Tuple[int, int]]):
        prefixes = [(self.fattree.tor_prefix(*dst), self._dst_index(dst))
                    for dst in pod_dsts]

        def classify(packet: Packet) -> Optional[int]:
            for prefix, index in prefixes:
                if prefix.contains(packet.dst):
                    return index
            return None

        return classify

    def _sender_tap(self, switch: Switch, port_index: int, sender: RliSender):
        def tap(packet: Packet, now: float) -> None:
            if not packet.is_regular:
                return
            packet.tap_time = now
            refs = sender.on_regular(packet, now)
            if refs:
                for ref in refs:
                    self.engine.forward_injected(ref, switch.inject(ref, now, port_index))

        return tap

    def _receiver_tap(self, receiver: RliReceiver):
        def tap(packet: Packet, now: float, in_port: int) -> None:
            if packet.is_regular or packet.is_reference:
                receiver.observe(packet, now)

        return tap

    # ------------------------------------------------------------------

    def run(self, traces: List[Trace], until: Optional[float] = None) -> MeshResult:
        """Inject traces, run (columnar or event engine), collect results.

        With ``batch=True`` and batch-backed traces, the layered columnar
        driver replaces the event calendar (``until`` must be None — a
        truncated run needs the calendar); anything non-batchable falls
        back to the engine with identical output.
        """
        engine = Engine()
        self.wire(engine)
        ft = self.fattree
        if self.batch and try_fast_path(ft, self._sender_taps,
                                        self._receiver_taps, traces, until):
            return self._finish()
        for trace in traces:
            packets = (trace.clone_packets() if hasattr(trace, "clone_packets")
                       else trace.to_packets())
            engine.inject_trace(packets, lambda p: ft.edge_of(p.src))
        engine.run(until=until)
        return self._finish()

    def _finish(self) -> MeshResult:
        for receiver in self.core_receivers.values():
            receiver.finalize()
        for receiver in self.dst_receivers.values():
            receiver.finalize()
        return MeshResult(self)
