"""Partial placement planning and deployment complexity (paper Section 3.1).

The paper's closed-form instance counts on a k-ary fat-tree, where a
*measurement instance* lives on one router interface and "can play a dual
role of a sender and a receiver":

* one pair of ToR **interfaces** (S, R): 2 instances on each of the k/2
  core routers the source interface can reach, plus one instance per ToR
  interface → ``k + 2``;
* one pair of **ToR switches**: k ToR-interface instances (k/2 uplinks per
  ToR) and 2 instances on each of the (k/2)² cores → ``k(k+2)/2``;
* **every pair of ToR switches**: an instance on every core interface —
  ``(k/2)²·k`` — plus the paper's stated ToR term ``(k/2)²`` → total
  ``(k/2)²(k+1)``.  (The ToR term as printed appears to undercount: covering
  every ToR uplink of all ``k²/2`` ToRs takes ``k³/4`` instances, not
  ``k²/4``; :func:`instances_all_tor_pairs_enumerated` reports the count our
  planner actually enumerates, and the bench prints both columns.)
* **full deployment**: "installing two instances for each pair of
  interfaces in each switch or router requires O(k⁴)" — with k interfaces
  per switch and ``k² + (k/2)²`` switches that is ``2·C(k,2)`` instances per
  switch, ``Θ(k⁴)`` total.

:class:`RlirPlacement` enumerates concrete (switch, interface) placements on
a built :class:`~repro.sim.topology.FatTree`; the formulas are verified
against the enumeration in tests and in the placement bench.
"""

from __future__ import annotations

from typing import List, NamedTuple, Tuple

from ..sim.topology import FatTree

__all__ = [
    "instances_interface_pair",
    "instances_tor_pair",
    "instances_all_tor_pairs_paper",
    "instances_all_tor_pairs_enumerated",
    "instances_full_deployment",
    "PlacementInstance",
    "RlirPlacement",
]


def _check_k(k: int) -> None:
    if k < 2 or k % 2:
        raise ValueError(f"fat-tree arity must be even and >= 2: k={k}")


def instances_interface_pair(k: int) -> int:
    """Instances for one (sender interface, receiver interface) ToR pair."""
    _check_k(k)
    return k + 2


def instances_tor_pair(k: int) -> int:
    """Instances for measurements between two ToR switches."""
    _check_k(k)
    return k * (k + 2) // 2


def instances_all_tor_pairs_paper(k: int) -> int:
    """The paper's stated total for every pair of ToR switches: (k/2)²(k+1)."""
    _check_k(k)
    return (k // 2) ** 2 * (k + 1)


def instances_all_tor_pairs_enumerated(k: int) -> int:
    """All-ToR-pairs count as actually enumerated by the planner.

    Every core interface — ``(k/2)²·k`` — plus every ToR uplink interface —
    ``(k²/2)·(k/2) = k³/4`` — giving ``k³/2``.  Same Θ(k³) order as the
    paper's formula; see module docstring for the discrepancy note.
    """
    _check_k(k)
    return (k // 2) ** 2 * k + (k * k // 2) * (k // 2)


def instances_full_deployment(k: int) -> int:
    """Full RLI deployment per the paper's counting convention.

    Two instances for each pair of interfaces in each switch: each of the
    ``k² + (k/2)²`` switches has k interfaces → ``2·C(k,2) = k(k-1)`` per
    switch.  Θ(k⁴).
    """
    _check_k(k)
    n_switches = k * k + (k // 2) ** 2
    return n_switches * k * (k - 1)


class PlacementInstance(NamedTuple):
    """One measurement instance: a dual-role tap on a switch interface."""

    switch_name: str
    port_index: int
    role: str  # "tor-sender", "tor-receiver", "core-ingress", "core-egress"


class RlirPlacement:
    """Enumerate concrete RLIR placements on a built fat-tree."""

    def __init__(self, fattree: FatTree):
        self.fattree = fattree

    # ------------------------------------------------------------------

    def interface_pair(
        self, src: Tuple[int, int], uplink: int, dst: Tuple[int, int]
    ) -> List[PlacementInstance]:
        """Instances for one ToR-interface pair.

        ``src``/``dst`` are (pod, edge) ToR coordinates; ``uplink`` is the
        source ToR's uplink index (→ aggregation switch ``uplink``, whose
        cores form group ``uplink``).
        """
        ft = self.fattree
        half = ft.k // 2
        if not 0 <= uplink < half:
            raise ValueError(f"uplink out of range [0, {half}): {uplink}")
        src_edge = ft.edges[src[0]][src[1]]
        dst_edge = ft.edges[dst[0]][dst[1]]
        if src_edge is dst_edge:
            raise ValueError("source and destination ToR must differ")
        out = [
            PlacementInstance(
                src_edge.name, ft.port_toward(src_edge, ft.aggs[src[0]][uplink]), "tor-sender"
            )
        ]
        for j in range(half):
            core = ft.cores[uplink][j]
            out.append(
                PlacementInstance(
                    core.name, ft.port_toward(core, ft.aggs[src[0]][uplink]), "core-ingress"
                )
            )
            out.append(
                PlacementInstance(
                    core.name, ft.port_toward(core, ft.aggs[dst[0]][uplink]), "core-egress"
                )
            )
        # receiver on the destination ToR's downlink-facing interface: use
        # its uplink toward the same group (arrival side), one instance
        out.append(
            PlacementInstance(
                dst_edge.name, ft.port_toward(dst_edge, ft.aggs[dst[0]][uplink]), "tor-receiver"
            )
        )
        return out

    def tor_pair(self, src: Tuple[int, int], dst: Tuple[int, int]) -> List[PlacementInstance]:
        """Instances for measurements between two whole ToR switches."""
        ft = self.fattree
        half = ft.k // 2
        out: List[PlacementInstance] = []
        src_edge = ft.edges[src[0]][src[1]]
        dst_edge = ft.edges[dst[0]][dst[1]]
        if src_edge is dst_edge:
            raise ValueError("source and destination ToR must differ")
        for u in range(half):
            out.append(
                PlacementInstance(
                    src_edge.name, ft.port_toward(src_edge, ft.aggs[src[0]][u]), "tor-sender"
                )
            )
            out.append(
                PlacementInstance(
                    dst_edge.name, ft.port_toward(dst_edge, ft.aggs[dst[0]][u]), "tor-receiver"
                )
            )
        for i in range(half):
            for j in range(half):
                core = ft.cores[i][j]
                out.append(
                    PlacementInstance(
                        core.name, ft.port_toward(core, ft.aggs[src[0]][i]), "core-ingress"
                    )
                )
                out.append(
                    PlacementInstance(
                        core.name, ft.port_toward(core, ft.aggs[dst[0]][i]), "core-egress"
                    )
                )
        return out

    def all_tor_pairs(self) -> List[PlacementInstance]:
        """Instances covering every ToR pair: every core interface plus
        every ToR uplink interface (dual role each)."""
        ft = self.fattree
        half = ft.k // 2
        out: List[PlacementInstance] = []
        for i in range(half):
            for j in range(half):
                core = ft.cores[i][j]
                for p in range(ft.k):
                    out.append(
                        PlacementInstance(
                            core.name, ft.port_toward(core, ft.aggs[p][i]), "core-ingress"
                        )
                    )
        for p in range(ft.k):
            for e in range(half):
                edge = ft.edges[p][e]
                for u in range(half):
                    out.append(
                        PlacementInstance(
                            edge.name, ft.port_toward(edge, ft.aggs[p][u]), "tor-sender"
                        )
                    )
        return out
