"""Full RLI deployment: instances at every router on the measured paths.

The paper's baseline architecture and the thing RLIR exists to avoid paying
for: "The most effective deployment strategy is to install RLI instances at
every interfaces of switches/routers that packets can traverse" (Section 3).
Full deployment buys single-hop localization granularity — each inter-switch
queue is its own measured segment — at Θ(k⁴) instance cost.

For a (src ToR, dst ToR) pair on a fat-tree, every path crosses four
queueing segments, each instrumented here:

    A  src edge uplink u     → aggregation u          (k/2 segments)
    B  aggregation u, port j → core (u, j)            ((k/2)² segments)
    C  core (u, j)           → dst-pod aggregation u  ((k/2)² segments)
    D  dst-pod aggregation u → dst edge               (k/2 segments)

Segments A and B need only prefix demultiplexing (paths converge); segments
C and D are the downstream cases and reuse RLIR's reverse-ECMP machinery —
the receiver recomputes which core / which aggregation the packet came
through from the source-side hash functions.

The comparison bench pits this against :class:`~repro.core.rlir.RlirDeployment`:
same accuracy and workload, ~2x the instances on the path (and Θ(k) more
fabric-wide), but an induced slow queue is pinned to one hop instead of one
multi-router segment.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..net.packet import Packet
from ..sim.clock import Clock, PerfectClock
from ..sim.engine import Engine
from ..sim.switch import Switch
from ..sim.topology import FatTree
from ..traffic.trace import Trace
from .demux import PathClassifierDemux, UpstreamPrefixDemux
from .flowstats import FlowStatsTable
from .injection import InjectionPolicy, StaticInjection
from .obslog import make_observation_log
from .receiver import RliReceiver
from .sender import RefTemplate, RliSender

__all__ = ["FullRliDeployment", "FullRliResult"]

SEG_A_BASE = 3000
SEG_B_BASE = 4000
SEG_C_BASE = 5000
SEG_D_BASE = 6000


class FullRliResult:
    """Per-hop-segment receivers, keyed by a human-readable segment name."""

    def __init__(self, receivers: Dict[str, RliReceiver]):
        self.receivers = receivers

    def segments(self) -> List[Tuple[str, FlowStatsTable]]:
        """(name, estimated table) per hop segment, for localization."""
        return [(name, rx.flow_estimated) for name, rx in self.receivers.items()]

    def true_segments(self) -> List[Tuple[str, FlowStatsTable]]:
        return [(name, rx.flow_true) for name, rx in self.receivers.items()]

    def instance_count(self) -> int:
        """Interfaces instrumented on the path: one sender + one receiver
        per hop segment (dual-role instances counted once per interface)."""
        # sender interface and receiver interface per segment
        return 2 * len(self.receivers)


class FullRliDeployment:
    """Instrument every switch on the (src ToR → dst ToR) paths."""

    def __init__(
        self,
        fattree: FatTree,
        src: Tuple[int, int],
        dst: Tuple[int, int],
        policy_factory: Callable[[], InjectionPolicy] = lambda: StaticInjection(100),
        estimator: str = "linear",
        clock_factory: Optional[Callable[[], Clock]] = None,
        record_observations: bool = False,
    ):
        if src == dst:
            raise ValueError("source and destination ToR must differ")
        if src[0] == dst[0]:
            raise ValueError("inter-pod pairs only (same constraint as RLIR)")
        self.fattree = fattree
        self.src = src
        self.dst = dst
        self.policy_factory = policy_factory
        self.estimator = estimator
        self.clock_factory = clock_factory or PerfectClock
        self.record_observations = record_observations
        self.engine: Optional[Engine] = None
        self.receivers: Dict[str, RliReceiver] = {}
        self.senders: Dict[str, RliSender] = {}
        self._wired = False

    # ------------------------------------------------------------------

    def wire(self, engine: Engine) -> None:
        if self._wired:
            raise RuntimeError("deployment already wired")
        self._wired = True
        self.engine = engine
        ft = self.fattree
        half = ft.k // 2
        src_pod, src_e = self.src
        dst_pod, dst_e = self.dst
        src_edge = ft.edges[src_pod][src_e]
        dst_edge = ft.edges[dst_pod][dst_e]
        src_prefix = ft.tor_prefix(src_pod, src_e)
        dst_prefix = ft.tor_prefix(dst_pod, dst_e)

        # ---- segment A: src edge uplink u -> agg(src_pod, u) ----
        for u in range(half):
            agg = ft.aggs[src_pod][u]
            sender = self._attach_sender(
                src_edge, ft.port_toward(src_edge, agg),
                sender_id=SEG_A_BASE + u,
                templates={0: RefTemplate(src_edge.address, agg.address)},
                classify=None,
            )
            self._attach_receiver(
                agg, f"A:edge->agg{u}",
                UpstreamPrefixDemux([(src_prefix, SEG_A_BASE + u)]),
            )
            self.senders[f"A:uplink{u}"] = sender

        # ---- segment B: agg(src_pod, u) port j -> core(u, j) ----
        for u in range(half):
            agg = ft.aggs[src_pod][u]
            for j in range(half):
                core = ft.cores[u][j]
                sid = SEG_B_BASE + u * half + j
                sender = self._attach_sender(
                    agg, ft.port_toward(agg, core),
                    sender_id=sid,
                    templates={0: RefTemplate(agg.address, core.address)},
                    classify=None,
                )
                self._attach_receiver(
                    core, f"B:agg{u}->core({u},{j})",
                    UpstreamPrefixDemux([(src_prefix, sid)]),
                )
                self.senders[f"B:agg{u}:port{j}"] = sender

        # ---- segment C: core(u, j) -> agg(dst_pod, u) ----
        core_sender_of = {}
        for u in range(half):
            for j in range(half):
                core = ft.cores[u][j]
                sid = SEG_C_BASE + core.node_id
                core_sender_of[core.node_id] = sid
                dst_agg = ft.aggs[dst_pod][u]
                sender = self._attach_sender(
                    core, ft.port_toward(core, dst_agg),
                    sender_id=sid,
                    templates={0: RefTemplate(core.address, dst_agg.address)},
                    classify=self._dst_filter(dst_prefix),
                )
                self.senders[f"C:core({u},{j})"] = sender
        for u in range(half):
            dst_agg = ft.aggs[dst_pod][u]
            group = {ft.cores[u][j].node_id: core_sender_of[ft.cores[u][j].node_id]
                     for j in range(half)}
            self._attach_receiver(
                dst_agg, f"C:cores->agg{u}",
                PathClassifierDemux(
                    self._core_classifier(group),
                    sender_ids=group.values(),
                    source_prefixes=[src_prefix],
                ),
            )

        # ---- segment D: agg(dst_pod, u) -> dst edge ----
        agg_sender_of = {}
        for u in range(half):
            dst_agg = ft.aggs[dst_pod][u]
            sid = SEG_D_BASE + u
            agg_sender_of[u] = sid
            sender = self._attach_sender(
                dst_agg, ft.port_toward(dst_agg, dst_edge),
                sender_id=sid,
                templates={0: RefTemplate(dst_agg.address, dst_edge.address)},
                classify=self._dst_filter(dst_prefix),
            )
            self.senders[f"D:agg{u}"] = sender
        self._attach_receiver(
            dst_edge, "D:aggs->edge",
            PathClassifierDemux(
                self._agg_classifier(src_edge, half, agg_sender_of),
                sender_ids=agg_sender_of.values(),
                source_prefixes=[src_prefix],
            ),
        )

    # ------------------------------------------------------------------
    # classifier factories (the receiver-side "routing knowledge")

    def _dst_filter(self, dst_prefix):
        def classify(packet: Packet) -> Optional[int]:
            return 0 if dst_prefix.contains(packet.dst) else None

        return classify

    def _core_classifier(self, group: Dict[int, int]):
        """Reverse-ECMP: which core (within one group) did the packet use?"""
        ft = self.fattree

        def classify(packet: Packet) -> Optional[int]:
            try:
                core = ft.core_of(packet.flow_key)
            except ValueError:
                return None
            return group.get(core.node_id)

        return classify

    def _agg_classifier(self, src_edge: Switch, half: int, agg_sender_of: Dict[int, int]):
        """Which dst-pod aggregation did the packet descend through?  The
        core group — hence the dst agg index — equals the source edge's
        uplink hash choice."""

        def classify(packet: Packet) -> Optional[int]:
            u = src_edge.hasher.choose(packet.flow_key, half)
            return agg_sender_of.get(u)

        return classify

    # ------------------------------------------------------------------

    def _attach_sender(self, switch: Switch, port_index: int, sender_id: int,
                       templates, classify) -> RliSender:
        port = switch.ports[port_index]
        sender = RliSender(
            sender_id=sender_id,
            link_rate_bps=port.queue.rate_Bps * 8.0,
            policy=self.policy_factory(),
            templates=templates,
            classify=classify,
            clock=self.clock_factory(),
        )

        def tap(packet: Packet, now: float) -> None:
            if not packet.is_regular:
                return
            packet.tap_time = now
            refs = sender.on_regular(packet, now)
            if refs:
                for ref in refs:
                    self.engine.forward_injected(ref, switch.inject(ref, now, port_index))

        port.add_enqueue_tap(tap)
        return sender

    def observation_logs(self) -> List[Tuple[str, list]]:
        """(segment name, recorded events) per receiver (after a run)."""
        if not self.record_observations:
            raise RuntimeError("deployment built without record_observations")
        return [(name, rx.observation_log) for name, rx in self.receivers.items()]

    def _attach_receiver(self, switch: Switch, name: str, demux) -> RliReceiver:
        receiver = RliReceiver(demux=demux, clock=self.clock_factory(),
                               estimator=self.estimator,
                               observation_log=make_observation_log(
                                   self.record_observations),
                               record_only=bool(self.record_observations))

        def tap(packet: Packet, now: float, in_port: int) -> None:
            if packet.is_regular or packet.is_reference:
                receiver.observe(packet, now)

        switch.add_arrival_tap(tap)
        self.receivers[name] = receiver
        return receiver

    # ------------------------------------------------------------------

    def run(self, traces: List[Trace], until: Optional[float] = None) -> FullRliResult:
        """Inject traces at their source ToRs, run, finalize, collect."""
        engine = Engine()
        self.wire(engine)
        ft = self.fattree
        for trace in traces:
            engine.inject_trace(trace.clone_packets(), lambda p: ft.edge_of(p.src))
        engine.run(until=until)
        for receiver in self.receivers.values():
            receiver.finalize()
        return FullRliResult(dict(self.receivers))
