"""Array-backed observation logs: columns instead of per-event tuples.

A recorded receiver (``RliReceiver(observation_log=…)``) appends one event
per observed packet — ``(REF_OBS, stream, now, delay)`` or ``(REG_OBS,
stream, now, flow_key, truth)``.  The tuple representation costs ~200
bytes per event in object headers and pointers; at trace scale a single
condition's log is millions of events, which bloats the prepared-artifact
memory that forked shard workers inherit and that distributed workers
rebuild per process.

:class:`ObservationColumns` stores the same stream as eight flat typed
columns (tag, stream, time, value, and the five flow-key fields) — ~49
bytes per event, no per-event objects, and genuinely copy-on-write under
``fork`` (a tuple log's reference counts dirty its pages the moment a
child iterates it).  Iteration yields the *exact* tuples the list mode
would hold — every ``float`` and ``int`` round-trips bit-exactly through
the typed arrays — so replaying either representation produces
byte-identical tables, which the equivalence suite asserts.

Tuple mode (a plain ``list``) stays the compatibility default everywhere;
pass ``"array"`` to the deployments' ``record_observations=`` knob (or an
:class:`ObservationColumns` straight to a receiver) to opt in.
"""

from __future__ import annotations

from array import array
from typing import Iterator, Tuple, Union

from .receiver import REF_OBS, REG_OBS

__all__ = ["ObservationColumns", "make_observation_log"]

_NO_KEY = (0, 0, 0, 0, 0)  # key columns for reference rows (never read back)


class ObservationColumns:
    """A columnar observation log with the list API receivers use.

    Only ``append``, ``len`` and iteration are needed by the recording and
    replay machinery; iteration reconstructs the canonical event tuples.
    """

    __slots__ = ("_tags", "_streams", "_times", "_values", "_keys")

    def __init__(self, events=()):
        self._tags = array("b")
        self._streams = array("q")
        self._times = array("d")
        self._values = array("d")
        self._keys = tuple(array("q") for _ in range(5))
        for event in events:
            self.append(event)

    # ------------------------------------------------------------------

    def append(self, event: tuple) -> None:
        tag = event[0]
        if tag == REF_OBS:
            _, stream, now, value = event
            key = _NO_KEY
        elif tag == REG_OBS:
            _, stream, now, key, value = event
        else:
            raise ValueError(f"unknown observation event tag: {tag!r}")
        self._tags.append(tag)
        self._streams.append(stream)
        self._times.append(now)
        self._values.append(value)
        for column, field in zip(self._keys, key):
            column.append(field)

    def extend_batch(self, tags, streams, times, values, keys) -> None:
        """Bulk-append events from parallel numpy columns.

        ``keys`` is a 5-tuple of int64 columns (zeros on reference rows,
        mirroring ``_NO_KEY``).  Every value round-trips bit-exactly
        through the typed arrays, so a bulk append leaves the log
        byte-identical to the equivalent sequence of :meth:`append` calls
        — the columnar receiver fast path records through this.
        """
        import numpy as np

        self._tags.frombytes(np.ascontiguousarray(tags, dtype=np.int8).tobytes())
        self._streams.frombytes(np.ascontiguousarray(streams, dtype=np.int64).tobytes())
        self._times.frombytes(np.ascontiguousarray(times, dtype=np.float64).tobytes())
        self._values.frombytes(np.ascontiguousarray(values, dtype=np.float64).tobytes())
        for column, field in zip(self._keys, keys):
            column.frombytes(np.ascontiguousarray(field, dtype=np.int64).tobytes())

    def __len__(self) -> int:
        return len(self._tags)

    def __iter__(self) -> Iterator[tuple]:
        keys = self._keys
        for i, tag in enumerate(self._tags):
            if tag == REF_OBS:
                yield (REF_OBS, self._streams[i], self._times[i], self._values[i])
            else:
                yield (
                    REG_OBS,
                    self._streams[i],
                    self._times[i],
                    (keys[0][i], keys[1][i], keys[2][i], keys[3][i], keys[4][i]),
                    self._values[i],
                )

    # ------------------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Payload bytes held by the columns (itemsize × length each)."""
        columns = (self._tags, self._streams, self._times, self._values, *self._keys)
        return sum(len(c) * c.itemsize for c in columns)

    def arrays(self) -> dict:
        """Zero-copy numpy views of the columns, for analysis tooling."""
        import numpy as np

        return {
            "tag": np.frombuffer(self._tags, dtype=np.int8),
            "stream": np.frombuffer(self._streams, dtype=np.int64),
            "time": np.frombuffer(self._times, dtype=np.float64),
            "value": np.frombuffer(self._values, dtype=np.float64),
            "key": tuple(
                np.frombuffer(column, dtype=np.int64) for column in self._keys
            ),
        }

    # typed arrays pickle compactly by value; nothing special needed, but
    # keep the state explicit so __slots__ classes stay pickle-stable
    def __getstate__(self):
        return (self._tags, self._streams, self._times, self._values, self._keys)

    def __setstate__(self, state):
        self._tags, self._streams, self._times, self._values, self._keys = state

    def __repr__(self) -> str:
        return f"ObservationColumns(events={len(self)}, bytes={self.nbytes})"


def make_observation_log(mode: Union[bool, str, None]):
    """The log object for a ``record_observations`` setting.

    ``False``/``None`` → no recording; ``True``/``"tuple"`` → a plain list
    (the compatibility default); ``"array"`` → :class:`ObservationColumns`.
    """
    if mode is None or mode is False:
        return None
    if mode is True or mode == "tuple":
        return []
    if mode == "array":
        return ObservationColumns()
    raise ValueError(
        f"record_observations must be False, True, 'tuple' or 'array': {mode!r}"
    )
