"""Sender-side link-utilization estimation.

The adaptive injection scheme "dynamically adjusts the injection rate based
on the link utilization of a link where the sender is running" (paper
Section 4.1).  The sender can only see its *local* link — which is precisely
why adaptation misbehaves across routers: "the sender cannot easily estimate
utilization across routers, because it has no idea about the amount of cross
traffic at intermediate routers" (Section 1).

:class:`EwmaUtilization` measures offered bytes on the local link over fixed
windows and smooths across windows with an exponential weighted moving
average, the standard router-side utilization estimator.
"""

from __future__ import annotations

__all__ = ["EwmaUtilization"]


class EwmaUtilization:
    """Windowed, EWMA-smoothed utilization of one link.

    Parameters
    ----------
    rate_bps:
        Link capacity.
    window:
        Measurement window in seconds.
    alpha:
        EWMA weight of the newest window (1.0 = no smoothing).
    initial:
        Estimate reported before the first window completes.
    """

    def __init__(self, rate_bps: float, window: float = 0.01, alpha: float = 0.3, initial: float = 0.0):
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive: {rate_bps}")
        if window <= 0:
            raise ValueError(f"window must be positive: {window}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1]: {alpha}")
        self._capacity_per_window = rate_bps / 8.0 * window
        self.window = window
        self.alpha = alpha
        self._estimate = initial
        self._window_start = 0.0
        self._window_bytes = 0
        self._seen_any = False

    def observe(self, now: float, size_bytes: int) -> None:
        """Account one packet of *size_bytes* passing at time *now*.

        Packets must be observed in non-decreasing time order.  Crossing a
        window boundary folds the finished window(s) into the EWMA; windows
        with no traffic count as zero utilization.
        """
        if not self._seen_any:
            self._window_start = now - (now % self.window)
            self._seen_any = True
        while now >= self._window_start + self.window:
            self._fold_window()
        self._window_bytes += size_bytes

    def _fold_window(self) -> None:
        sample = min(1.0, self._window_bytes / self._capacity_per_window)
        self._estimate += self.alpha * (sample - self._estimate)
        self._window_bytes = 0
        self._window_start += self.window

    @property
    def estimate(self) -> float:
        """Current smoothed utilization in [0, 1]."""
        return self._estimate

    def __repr__(self) -> str:
        return f"EwmaUtilization(window={self.window}, alpha={self.alpha}, est={self._estimate:.3f})"
