"""Packet-marking path classifier (paper Section 3.1, downstream case).

"Packet marking is a simple way to address the issue, where the
type-of-service (ToS) field in the IP header could be used to mark packets,
similar to prior solutions for IP traceback.  While this is certainly an
easy approach, it requires some native packet marking support from core
routers."

In the simulator, a core router configured with ``mark=m`` stamps ``m`` into
the DSCP bits of every packet it forwards (see
:class:`repro.sim.switch.Switch`).  The classifier below is the receiver
side: it decodes the mark and maps it to the RLI sender instance installed
on that core router.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..net.headers import MARK_UNSET, decode_mark
from ..net.packet import Packet

__all__ = ["MarkingClassifier", "assign_marks"]


class MarkingClassifier:
    """Map a packet's ToS mark to the sender instance on the marking router."""

    def __init__(self, mark_to_sender: Dict[int, int]):
        if MARK_UNSET in mark_to_sender:
            raise ValueError("mark 0 means 'unmarked' and cannot map to a sender")
        if not mark_to_sender:
            raise ValueError("at least one mark required")
        self._map = dict(mark_to_sender)

    def __call__(self, packet: Packet) -> Optional[int]:
        mark = decode_mark(packet.tos)
        if mark == MARK_UNSET:
            return None
        return self._map.get(mark)

    def __repr__(self) -> str:
        return f"MarkingClassifier({self._map})"


def assign_marks(node_ids) -> Dict[int, int]:
    """Assign distinct non-zero marks to an iterable of router node ids.

    Returns ``node_id -> mark``.  Raises if more routers than the mark space
    (63 DSCP values) can distinguish.
    """
    from ..net.headers import MAX_MARK

    nodes = list(node_ids)
    if len(nodes) > MAX_MARK:
        raise ValueError(f"cannot assign {len(nodes)} marks; ToS space has {MAX_MARK}")
    return {node: mark for mark, node in enumerate(nodes, start=1)}
