"""Reference Latency Interpolation — the estimator core.

"Given the delays of the two reference packets (computed from the
timestamps), and arrival times of the reference and regular packets, RLI
uses linear interpolation to estimate per-packet latency" (paper Section 2).

:class:`InterpolationBuffer` is the receiver-side data structure the paper
calls the *interpolation buffer* (Figure 2): regular-packet arrivals are
buffered until the next reference packet closes the interval, at which point
every buffered packet gets a delay estimate.

Estimator strategies (the default is the paper's; the others exist for the
ablation benches):

* ``"linear"`` — linear interpolation between the two straddling references;
* ``"previous"`` — each packet takes the delay of the latest reference
  before it (zero buffering, but ignores the right endpoint);
* ``"nearest"`` — the delay of the reference closest in arrival time.

Edge handling matches RLI: packets that arrive before the first reference
take the first reference's delay; packets after the last reference (stream
tail) take the last reference's delay when the buffer is flushed.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

__all__ = [
    "InterpolationBuffer",
    "Estimate",
    "linear_interpolate",
    "interpolate_batch",
    "ESTIMATORS",
]

Key = Tuple[int, int, int, int, int]


class Estimate:
    """One per-packet latency estimate emitted by the buffer."""

    __slots__ = ("key", "arrival", "estimated", "true_delay")

    def __init__(self, key: Key, arrival: float, estimated: float, true_delay: float):
        self.key = key
        self.arrival = arrival
        self.estimated = estimated
        self.true_delay = true_delay

    @property
    def abs_error(self) -> float:
        return abs(self.estimated - self.true_delay)

    def __repr__(self) -> str:
        return (
            f"Estimate(key={self.key}, t={self.arrival:.6f}, "
            f"est={self.estimated:.3g}, true={self.true_delay:.3g})"
        )


def linear_interpolate(
    t_prev: float, d_prev: float, t_next: float, d_next: float, t: float
) -> float:
    """Delay at time *t* on the line through the two reference samples.

    Degenerates to the endpoint average if the references arrived at the
    same instant (possible when a reference is injected back-to-back).
    """
    span = t_next - t_prev
    if span <= 0.0:
        return 0.5 * (d_prev + d_next)
    w = (t - t_prev) / span
    return d_prev + w * (d_next - d_prev)


def _estimate_linear(t_prev, d_prev, t_next, d_next, t):
    return linear_interpolate(t_prev, d_prev, t_next, d_next, t)


def _estimate_previous(t_prev, d_prev, t_next, d_next, t):
    return d_prev


def _estimate_nearest(t_prev, d_prev, t_next, d_next, t):
    return d_prev if (t - t_prev) <= (t_next - t) else d_next


ESTIMATORS: dict = {
    "linear": _estimate_linear,
    "previous": _estimate_previous,
    "nearest": _estimate_nearest,
}


def interpolate_batch(  # reprolint: disable=BATCH001 -- scalar twin is the InterpolationBuffer class (stated below), pinned bitwise-identical by the equivalence suite
    arrivals: np.ndarray,
    ref_arrivals: np.ndarray,
    ref_delays: np.ndarray,
    estimator: str = "linear",
    intervals: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Batch flush of one reference stream: estimate all regulars at once.

    This is the vectorized equivalent of feeding every regular arrival and
    every reference sample of one stream through an
    :class:`InterpolationBuffer` and concatenating the estimates (including
    the final one-sided :meth:`~InterpolationBuffer.flush`): for each
    regular packet, ``np.searchsorted`` locates the pair of reference
    samples straddling it, and the per-element estimate applies the *same*
    float operations as the scalar estimator — results are bitwise
    identical.

    Parameters
    ----------
    arrivals:
        Regular-packet arrival times.
    ref_arrivals, ref_delays:
        Arrival times and delay samples of the (non-empty) reference
        stream, in arrival order.
    estimator:
        One of :data:`ESTIMATORS`.
    intervals:
        Optional per-regular interval index: the number of references that
        had *arrived* when the regular was buffered (``0`` = before the
        first reference, ``len(refs)`` = after the last).  Callers that
        interleave by observation order (not timestamps) pass it
        explicitly; the default derives it from the arrival times
        (``side="left"``: a regular observed before a coincident reference
        is closed by it).
    """
    if estimator not in ESTIMATORS:
        raise ValueError(
            f"unknown estimator {estimator!r}; choose from {sorted(ESTIMATORS)}"
        )
    arrivals = np.asarray(arrivals, dtype=np.float64)
    ref_t = np.asarray(ref_arrivals, dtype=np.float64)
    ref_d = np.asarray(ref_delays, dtype=np.float64)
    n_refs = len(ref_t)
    if n_refs == 0:
        raise ValueError("interpolate_batch needs at least one reference")
    if intervals is None:
        intervals = np.searchsorted(ref_t, arrivals, side="left")
    else:
        intervals = np.asarray(intervals)

    # straddling samples per element (indices clipped at the edges; the
    # gathered values are ignored there via the np.where selections below)
    i_prev = np.clip(intervals - 1, 0, n_refs - 1)
    i_next = np.clip(intervals, 0, n_refs - 1)
    t_prev, d_prev = ref_t[i_prev], ref_d[i_prev]
    t_next, d_next = ref_t[i_next], ref_d[i_next]

    if estimator == "previous":
        interior = d_prev
    elif estimator == "nearest":
        interior = np.where(
            (arrivals - t_prev) <= (t_next - arrivals), d_prev, d_next
        )
    else:  # linear — same op order as linear_interpolate(), elementwise
        span = t_next - t_prev
        with np.errstate(divide="ignore", invalid="ignore"):
            w = (arrivals - t_prev) / span
            interior = np.where(
                span <= 0.0, 0.5 * (d_prev + d_next), d_prev + w * (d_next - d_prev)
            )
    # edges: before the first reference -> its delay; after the last
    # (the flush tail) -> the last delay
    return np.where(
        intervals <= 0, ref_d[0], np.where(intervals >= n_refs, ref_d[n_refs - 1], interior)
    )


class InterpolationBuffer:
    """Receiver-side buffer pairing regular arrivals with reference delays.

    Usage: call :meth:`add_regular` for every regular packet and
    :meth:`add_reference` for every reference packet, in arrival order; each
    reference returns the estimates for the interval it closes.  Call
    :meth:`flush` once at end of stream for the one-sided tail.
    """

    def __init__(self, estimator: str = "linear"):
        try:
            self._estimate: Callable = ESTIMATORS[estimator]
        except KeyError:
            raise ValueError(
                f"unknown estimator {estimator!r}; choose from {sorted(ESTIMATORS)}"
            ) from None
        self.estimator = estimator
        self._pending: List[Tuple[float, Key, float]] = []  # (arrival, key, truth)
        self._last_ref: Optional[Tuple[float, float]] = None  # (arrival, delay)
        self.references_seen = 0
        self.regulars_seen = 0

    # ------------------------------------------------------------------

    def add_regular(self, arrival: float, key: Key, true_delay: float) -> None:
        """Buffer one regular-packet arrival (truth tags the estimate later)."""
        self.regulars_seen += 1
        self._pending.append((arrival, key, true_delay))

    def add_reference(self, arrival: float, delay: float) -> List[Estimate]:
        """Process one reference-packet delay sample; emit closed estimates.

        The first reference ever seen resolves earlier arrivals one-sided
        (they take its delay); later references interpolate linearly against
        the previous one.
        """
        self.references_seen += 1
        pending = self._pending
        out: List[Estimate] = []
        if self._last_ref is None:
            for t, key, truth in pending:
                out.append(Estimate(key, t, delay, truth))
        else:
            t_prev, d_prev = self._last_ref
            estimate = self._estimate
            for t, key, truth in pending:
                est = estimate(t_prev, d_prev, arrival, delay, t)
                out.append(Estimate(key, t, est, truth))
        pending.clear()
        self._last_ref = (arrival, delay)
        return out

    def flush(self) -> List[Estimate]:
        """Resolve the tail one-sided with the last reference's delay.

        If no reference was ever seen, the buffered packets cannot be
        estimated and are discarded (reported via :attr:`unestimated`).
        """
        out: List[Estimate] = []
        if self._last_ref is not None:
            _, d_last = self._last_ref
            for t, key, truth in self._pending:
                out.append(Estimate(key, t, d_last, truth))
            self._pending.clear()
        return out

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def unestimated(self) -> int:
        """Packets that can never be estimated (no reference arrived)."""
        return len(self._pending) if self._last_ref is None else 0
