"""Shardable replay of recorded receiver observations.

The estimation stage of an RLI receiver is per-flow work: a regular
packet's interpolated estimate depends only on the reference delays that
bracket it — never on other flows' regular packets (see
:class:`~repro.core.interpolation.InterpolationBuffer`).  That makes the
stage embarrassingly parallel *by flow* even though the simulation that
produced the observations is strictly sequential.

This module exploits that: a receiver created with ``observation_log=[...]``
(a list, or the columnar :class:`~repro.core.obslog.ObservationColumns` —
any appendable iterable of event tuples) records its post-demux event
stream during one (sequential, memoized) simulation;
:func:`replay_observations` then rebuilds the per-flow tables from the log
— optionally restricted to one flow shard (every shard replays all
reference events but only its own flows' regular events) — and
:func:`merge_shard_tables` reassembles the shards in sorted-key order.
:func:`replay_observations_multi` replays a *chunk* of shards in one pass
(the dispatch unit of the distributed backend) with bitwise-identical
per-shard output.

Because shard membership is a pure function of the flow key
(:func:`~repro.traffic.divider.flow_shard`) and each flow's samples are
processed in original log order, the merged tables are **bitwise identical**
for any shard count, which the determinism suite asserts.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..traffic.divider import flow_shard
from .flowstats import FlowStatsTable, StreamingStats
from .interpolation import InterpolationBuffer
from .receiver import REF_OBS, REG_OBS

__all__ = ["ReplayTables", "replay_observations", "replay_observations_multi",
           "merge_shard_tables", "pooled_stats"]


class ReplayTables:
    """Per-flow tables rebuilt from one (possibly sharded) log replay."""

    def __init__(self, estimated: FlowStatsTable, true: FlowStatsTable,
                 unestimated: int):
        self.estimated = estimated
        self.true = true
        self.unestimated = unestimated


def replay_observations(
    events: Sequence[tuple],
    estimator: str = "linear",
    shard: int = 0,
    n_shards: int = 1,
) -> ReplayTables:
    """Rebuild per-flow estimated/true tables from an observation log.

    With ``n_shards > 1`` only regular events whose flow hashes to *shard*
    are replayed; reference events always are (they define the
    interpolation intervals every flow estimates against), so each flow's
    estimates come out identical to an unsharded replay.
    """
    if not 0 <= shard < n_shards:
        raise ValueError(f"shard must be in [0, {n_shards}): {shard}")
    buffers: Dict[int, InterpolationBuffer] = {}
    estimated = FlowStatsTable()
    true = FlowStatsTable()
    unestimated = 0
    for event in events:
        tag = event[0]
        if tag == REF_OBS:
            _, stream, now, delay = event
            buffer = buffers.get(stream)
            if buffer is None:
                buffer = buffers[stream] = InterpolationBuffer(estimator)
            for est in buffer.add_reference(now, delay):
                estimated.add(est.key, est.estimated)
        elif tag == REG_OBS:
            _, stream, now, key, truth = event
            if n_shards > 1 and flow_shard(key, n_shards) != shard:
                continue
            buffer = buffers.get(stream)
            if buffer is None:
                buffer = buffers[stream] = InterpolationBuffer(estimator)
            true.add(key, truth)
            buffer.add_regular(now, key, truth)
        else:
            raise ValueError(f"unknown observation event tag: {tag!r}")
    for buffer in buffers.values():
        for est in buffer.flush():
            estimated.add(est.key, est.estimated)
        unestimated += buffer.unestimated
    return ReplayTables(estimated, true, unestimated)


def replay_observations_multi(
    events: Sequence[tuple],
    estimator: str = "linear",
    shards: Sequence[int] = (0,),
    n_shards: int = 1,
) -> Dict[int, "ReplayTables"]:
    """Replay several flow shards in **one pass** over the log.

    The shard-chunk envelope of the distributed backend: a worker handed a
    chunk of same-condition shard jobs replays all of its shards in a
    single scan instead of one scan per shard (reference events — the
    expensive interpolation state — are ~1 % of a log, so a k-shard chunk
    costs ≈1 pass, not k).  Each shard keeps its own buffers and tables
    and sees exactly the event subsequence :func:`replay_observations`
    would feed it, in the same order — so every per-shard result is
    **bitwise identical** to an individual replay, which the distributed
    determinism suite asserts.
    """
    shards = tuple(shards)
    if len(set(shards)) != len(shards):
        raise ValueError(f"duplicate shards in chunk: {shards}")
    for shard in shards:
        if not 0 <= shard < n_shards:
            raise ValueError(f"shard must be in [0, {n_shards}): {shard}")
    buffers: Dict[int, Dict[int, InterpolationBuffer]] = {s: {} for s in shards}
    estimated: Dict[int, FlowStatsTable] = {s: FlowStatsTable() for s in shards}
    true: Dict[int, FlowStatsTable] = {s: FlowStatsTable() for s in shards}
    unestimated: Dict[int, int] = {s: 0 for s in shards}
    for event in events:
        tag = event[0]
        if tag == REF_OBS:
            _, stream, now, delay = event
            for shard in shards:
                shard_buffers = buffers[shard]
                buffer = shard_buffers.get(stream)
                if buffer is None:
                    buffer = shard_buffers[stream] = InterpolationBuffer(estimator)
                add = estimated[shard].add
                for est in buffer.add_reference(now, delay):
                    add(est.key, est.estimated)
        elif tag == REG_OBS:
            _, stream, now, key, truth = event
            shard = flow_shard(key, n_shards) if n_shards > 1 else 0
            shard_buffers = buffers.get(shard)
            if shard_buffers is None:
                continue
            buffer = shard_buffers.get(stream)
            if buffer is None:
                buffer = shard_buffers[stream] = InterpolationBuffer(estimator)
            true[shard].add(key, truth)
            buffer.add_regular(now, key, truth)
        else:
            raise ValueError(f"unknown observation event tag: {tag!r}")
    out: Dict[int, ReplayTables] = {}
    for shard in shards:
        for buffer in buffers[shard].values():
            add = estimated[shard].add
            for est in buffer.flush():
                add(est.key, est.estimated)
            unestimated[shard] += buffer.unestimated
        out[shard] = ReplayTables(estimated[shard], true[shard], unestimated[shard])
    return out


def merge_shard_tables(tables: Iterable[FlowStatsTable]) -> FlowStatsTable:
    """Union flow-disjoint shard tables into one, in sorted-key order.

    Sorting makes the merged table's layout (and every float computed by
    iterating it) independent of shard count and completion order — the
    property the byte-identical determinism guarantee rests on.  Keys
    appearing in more than one shard are merged, but the shard split
    guarantees that never happens.
    """
    merged: Dict[Tuple[int, int, int, int, int], StreamingStats] = {}
    for table in tables:
        for key, stats in table.items():
            mine = merged.get(key)
            if mine is None:
                merged[key] = stats
            else:
                mine.merge(stats)
    return FlowStatsTable.from_items((key, merged[key]) for key in sorted(merged))


def pooled_stats(table: FlowStatsTable) -> StreamingStats:
    """All flows' accumulators pooled, folded in sorted-key order.

    The sort pins the floating-point merge order, so the pooled mean is
    reproducible bit-for-bit no matter how the table was assembled.
    """
    pooled = StreamingStats()
    for key in sorted(table.keys()):
        pooled.merge(table.get(key))
    return pooled
