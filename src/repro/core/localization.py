"""Segment-level latency-anomaly localization.

The operational goal of the architecture: "Detecting and localizing
latency-related problems at router and switch levels" — RLIR trades
localization *granularity* (segments of several routers instead of single
queues) for deployment cost, "without losing localization granularity and
estimation accuracy significantly" (paper Sections 1 and 3).

Given the per-flow latency tables each RLIR segment produces, this module
answers the operator's question: *which segment is inflating latency?*
Segments are scored by their pooled mean delay; a segment is flagged when it
exceeds the median segment by a configurable factor and an absolute floor
(so idle fabrics do not alarm on nanosecond noise).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .flowstats import FlowStatsTable, StreamingStats

__all__ = ["SegmentSummary", "LocalizationReport", "localize", "flow_breakdown"]

Key = Tuple[int, int, int, int, int]


class SegmentSummary:
    """Pooled latency statistics of one measured segment."""

    __slots__ = ("name", "pooled", "n_flows")

    def __init__(self, name: str, table: FlowStatsTable):
        self.name = name
        pooled = StreamingStats()
        for _, stats in table.items():
            pooled.merge(stats)
        self.pooled = pooled
        self.n_flows = len(table)

    @property
    def mean(self) -> float:
        return self.pooled.mean

    @property
    def samples(self) -> int:
        return self.pooled.count

    def __repr__(self) -> str:
        return (
            f"SegmentSummary({self.name!r}: mean={self.mean * 1e6:.1f}us, "
            f"flows={self.n_flows}, samples={self.samples})"
        )


class LocalizationReport:
    """Ranked segments with anomaly verdicts."""

    def __init__(
        self,
        summaries: List[SegmentSummary],
        anomalous: List[str],
        baseline_mean: float,
    ):
        self.summaries = summaries  # sorted by descending mean
        self.anomalous = anomalous
        self.baseline_mean = baseline_mean

    @property
    def culprit(self) -> Optional[str]:
        """The worst anomalous segment, if any."""
        return self.anomalous[0] if self.anomalous else None

    def as_rows(self) -> List[Tuple[str, float, int, int, bool]]:
        """(name, mean, flows, samples, anomalous?) per segment, worst first.

        Plain tuples: picklable across worker processes, cacheable on disk,
        and byte-comparable by the determinism suite — the report's live
        accumulators are not part of the value.
        """
        return [
            (s.name, s.mean, s.n_flows, s.samples, s.name in self.anomalous)
            for s in self.summaries
        ]

    def __repr__(self) -> str:
        return f"LocalizationReport(culprit={self.culprit!r}, anomalous={self.anomalous})"


def localize(
    segments: Sequence[Tuple[str, FlowStatsTable]],
    factor: float = 3.0,
    floor: float = 10e-6,
    min_samples: int = 10,
) -> LocalizationReport:
    """Flag segments whose pooled mean latency is anomalously high.

    Parameters
    ----------
    segments:
        (name, per-flow estimated latency table) per measured segment.
    factor:
        A segment is anomalous if its mean exceeds ``factor`` × the median
        segment mean.
    floor:
        ...and also exceeds this absolute floor (seconds).
    min_samples:
        Segments with fewer samples are summarized but never flagged.
    """
    if not segments:
        raise ValueError("at least one segment required")
    summaries = sorted(
        (SegmentSummary(name, table) for name, table in segments),
        key=lambda s: s.mean,
        reverse=True,
    )
    means = sorted(s.mean for s in summaries)
    mid = len(means) // 2
    baseline = means[mid] if len(means) % 2 else 0.5 * (means[mid - 1] + means[mid])
    anomalous = [
        s.name
        for s in summaries
        if s.samples >= min_samples and s.mean > factor * baseline and s.mean > floor
    ]
    return LocalizationReport(summaries, anomalous, baseline)


def flow_breakdown(
    key: Key, segments: Sequence[Tuple[str, FlowStatsTable]]
) -> Dict[str, Optional[StreamingStats]]:
    """Per-segment latency statistics of one flow (None where unmeasured).

    This is the per-flow drill-down RLI enables over aggregate schemes like
    LDA: an operator can ask where a *specific* flow spends its time.
    """
    return {name: table.get(key) for name, table in segments}
