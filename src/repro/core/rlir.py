"""RLIR deployment: wiring senders and receivers across a fat-tree.

Implements the paper's partial-placement architecture for a ToR pair
(Figure 1's (S1, R3) scenario generalized to whole ToR switches): RLI
instances only at the source ToR's uplink interfaces, at the core routers,
and at the destination ToR — splitting every path into two measured
segments,

    segment 1:  src ToR uplink  →  core router      (upstream demux)
    segment 2:  core router     →  dst ToR          (downstream demux)

Wiring per the paper's Section 3 solutions:

* every source-ToR uplink hosts an :class:`~repro.core.sender.RliSender`
  with one reference template per reachable core, crafted against the
  aggregation switch's hash so each equal-cost path carries references;
* every core hosts a receiver (segment 1) that demultiplexes by source-ToR
  prefix — sufficient upstream, because in a fat-tree all packets a given
  core sees from one ToR climbed through the same uplink — and a sender
  (segment 2) on its egress toward the destination pod;
* the destination ToR hosts the downstream receiver, which identifies the
  traversed core by **packet marking** or **reverse-ECMP computation**
  (``demux_method``), plus source-prefix matching.

Ground-truth segment delays ride on the packets' ``tap_time`` bookkeeping,
so every estimate is paired with exact truth.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..net.packet import Packet
from ..sim.clock import Clock, PerfectClock
from ..sim.ecmp import craft_dport_for_port
from ..sim.engine import Engine
from ..sim.fatpath import try_fast_path
from ..sim.switch import Switch
from ..sim.topology import FatTree
from ..traffic.trace import Trace
from .demux import PathClassifierDemux, UpstreamPrefixDemux
from .flowstats import FlowStatsTable
from .injection import InjectionPolicy, StaticInjection
from .marking import MarkingClassifier, assign_marks
from .obslog import make_observation_log
from .receiver import RliReceiver
from .reverse_ecmp import ReverseEcmpClassifier
from .sender import RefTemplate, RliSender

__all__ = ["RlirDeployment", "RlirResult"]

TOR_SENDER_BASE = 1000
CORE_SENDER_BASE = 2000


class RlirResult:
    """Measurement output of one RLIR run over a ToR pair."""

    def __init__(
        self,
        seg1_receivers: Dict[str, RliReceiver],
        seg2_receiver: RliReceiver,
    ):
        self.seg1_receivers = seg1_receivers
        self.seg2_receiver = seg2_receiver

    # ------------------------------------------------------------------

    def segment1_estimated(self) -> FlowStatsTable:
        """Per-flow estimates for src-ToR → core, merged across cores."""
        merged = FlowStatsTable()
        for receiver in self.seg1_receivers.values():
            merged.merge(receiver.flow_estimated)
        return merged

    def segment1_true(self) -> FlowStatsTable:
        merged = FlowStatsTable()
        for receiver in self.seg1_receivers.values():
            merged.merge(receiver.flow_true)
        return merged

    def segment2_estimated(self) -> FlowStatsTable:
        return self.seg2_receiver.flow_estimated

    def segment2_true(self) -> FlowStatsTable:
        return self.seg2_receiver.flow_true

    def end_to_end(self) -> List[Tuple[Tuple[int, int, int, int, int], float, float]]:
        """(flow key, estimated mean, true mean) across both segments.

        Per-flow end-to-end mean latency is the sum of the two segment
        means; only flows measured on both segments appear.
        """
        seg1_est, seg1_true = self.segment1_estimated(), self.segment1_true()
        out = []
        for key, est2 in self.seg2_receiver.flow_estimated.items():
            est1 = seg1_est.get(key)
            true1 = seg1_true.get(key)
            true2 = self.seg2_receiver.flow_true.get(key)
            if est1 is None or true1 is None or true2 is None:
                continue
            out.append((key, est1.mean + est2.mean, true1.mean + true2.mean))
        return out

    def segments(self) -> List[Tuple[str, FlowStatsTable]]:
        """(name, estimated table) per segment, ready for localization."""
        out = [
            (f"seg1:{name}", receiver.flow_estimated)
            for name, receiver in self.seg1_receivers.items()
        ]
        out.append(("seg2:to-dst-tor", self.seg2_receiver.flow_estimated))
        return out


class RlirDeployment:
    """Instrument a fat-tree for ToR-pair measurements and run traces.

    Parameters
    ----------
    fattree:
        The fabric (already built; this class only attaches taps/marks).
    src, dst:
        (pod, edge) coordinates of the source and destination ToR switches.
    policy_factory:
        Builds a fresh injection policy per sender instance.
    demux_method:
        ``"marking"`` or ``"reverse-ecmp"`` for the downstream receiver.
    estimator:
        Interpolation strategy for all receivers.
    clock_factory:
        Builds the clock of each instance (default: perfect sync).
    record_observations:
        When truthy every receiver records its post-demux observation
        stream (see :mod:`repro.core.replay`); :meth:`observation_logs`
        returns the logs under the same segment names
        :meth:`RlirResult.segments` uses, so one recorded run can be
        replayed shard-by-shard.  ``True``/``"tuple"`` records plain event
        tuples; ``"array"`` records columnar
        :class:`~repro.core.obslog.ObservationColumns` logs (same events,
        ~4× less memory, bitwise-identical replay).  Recording receivers
        run record-only — their live tables stay empty, since replay
        recomputes every estimate from the log.
    batch:
        Run on the layered columnar fast path
        (:class:`~repro.sim.fatpath.FatTreeFastPath`) when every trace is
        batch-backed: **bitwise identical** to the event engine — arrival
        ties included, reconstructed exactly from event provenance —
        several times the throughput.  Non-batchable configurations —
        packet marking (the classifier reads per-packet ToS state),
        jittered clocks, an ``until`` bound — fall back to the engine
        transparently.
    """

    def __init__(
        self,
        fattree: FatTree,
        src: Tuple[int, int],
        dst: Tuple[int, int],
        policy_factory: Callable[[], InjectionPolicy] = lambda: StaticInjection(100),
        demux_method: str = "marking",
        estimator: str = "linear",
        clock_factory: Optional[Callable[[], Clock]] = None,
        record_observations: bool = False,
        batch: bool = False,
    ):
        if demux_method not in ("marking", "reverse-ecmp"):
            raise ValueError(f"demux_method must be 'marking' or 'reverse-ecmp': {demux_method}")
        if src == dst:
            raise ValueError("source and destination ToR must differ")
        if src[0] == dst[0]:
            raise ValueError(
                "ToRs in the same pod never cross a core; RLIR core placement "
                "covers inter-pod pairs"
            )
        self.fattree = fattree
        self.src = src
        self.dst = dst
        self.policy_factory = policy_factory
        self.demux_method = demux_method
        self.estimator = estimator
        self.clock_factory = clock_factory or PerfectClock
        self.record_observations = record_observations
        self.batch = batch
        self.engine: Optional[Engine] = None

        self.tor_senders: Dict[int, RliSender] = {}  # uplink -> sender
        self.core_receivers: Dict[str, RliReceiver] = {}  # core name -> rx
        self.core_senders: Dict[str, RliSender] = {}  # core name -> tx
        self.dst_receiver: Optional[RliReceiver] = None
        self._wired = False
        # declarative wiring descriptions consumed by the columnar driver
        self._sender_taps: Dict[Tuple[Switch, int], tuple] = {}
        self._receiver_taps: Dict[Switch, RliReceiver] = {}

    # ------------------------------------------------------------------
    # instance id helpers

    def tor_sender_id(self, uplink: int) -> int:
        return TOR_SENDER_BASE + uplink

    def core_sender_id(self, core: Switch) -> int:
        return CORE_SENDER_BASE + core.node_id

    # ------------------------------------------------------------------

    def wire(self, engine: Engine) -> None:
        """Attach all measurement instances (idempotent per deployment)."""
        if self._wired:
            raise RuntimeError("deployment already wired")
        self._wired = True
        self.engine = engine
        ft = self.fattree
        half = ft.k // 2
        src_pod, src_e = self.src
        dst_pod, dst_e = self.dst
        src_edge = ft.edges[src_pod][src_e]
        dst_edge = ft.edges[dst_pod][dst_e]
        src_prefix = ft.tor_prefix(src_pod, src_e)

        # ---- source ToR: one sender per uplink interface ----
        for u in range(half):
            agg = ft.aggs[src_pod][u]
            port_index = ft.port_toward(src_edge, agg)
            port = src_edge.ports[port_index]
            templates: Dict[int, RefTemplate] = {}
            for j in range(half):
                core = ft.cores[u][j]
                dport = craft_dport_for_port(
                    agg.hasher, src_edge.address, core.address, 0, 253, half, j
                )
                if dport is None:
                    raise RuntimeError(
                        f"could not craft reference flow for {core.name} via {agg.name}"
                    )
                templates[j] = RefTemplate(src_edge.address, core.address, 0, dport)
            sender = RliSender(
                sender_id=self.tor_sender_id(u),
                link_rate_bps=port.queue.rate_Bps * 8.0,
                policy=self.policy_factory(),
                templates=templates,
                classify=self._make_core_classifier(agg, half),
                clock=self.clock_factory(),
            )
            self.tor_senders[u] = sender
            port.add_enqueue_tap(self._make_tor_tap(src_edge, port_index, sender))
            self._sender_taps[(src_edge, port_index)] = (
                sender, ("hash", agg.hasher, half))

        # ---- cores: receiver (segment 1) + sender (segment 2) ----
        cores = [ft.cores[i][j] for i in range(half) for j in range(half)]
        if self.demux_method == "marking":
            marks = assign_marks(core.node_id for core in cores)
            mark_to_sender = {}
            for core in cores:
                core.mark = marks[core.node_id]
                mark_to_sender[marks[core.node_id]] = self.core_sender_id(core)
            path_classifier = MarkingClassifier(mark_to_sender)
        else:
            core_to_sender = {core.node_id: self.core_sender_id(core) for core in cores}
            path_classifier = ReverseEcmpClassifier(ft, core_to_sender)

        dst_prefix = ft.tor_prefix(dst_pod, dst_e)
        for i in range(half):
            for j in range(half):
                core = ft.cores[i][j]
                # receiver: packets from the src ToR reached this core via
                # uplink i, so the associated sender is tor_senders[i]
                receiver = RliReceiver(
                    demux=UpstreamPrefixDemux([(src_prefix, self.tor_sender_id(i))]),
                    clock=self.clock_factory(),
                    estimator=self.estimator,
                    observation_log=make_observation_log(self.record_observations),
                    record_only=bool(self.record_observations),
                )
                self.core_receivers[core.name] = receiver
                core.add_arrival_tap(self._make_arrival_tap(receiver))
                self._receiver_taps[core] = receiver

                # sender: egress interface toward the destination pod
                egress_index = ft.port_toward(core, ft.aggs[dst_pod][i])
                egress = core.ports[egress_index]
                sender = RliSender(
                    sender_id=self.core_sender_id(core),
                    link_rate_bps=egress.queue.rate_Bps * 8.0,
                    policy=self.policy_factory(),
                    templates={0: RefTemplate(core.address, dst_edge.address, 0, 0)},
                    classify=self._make_dst_filter(dst_prefix),
                    clock=self.clock_factory(),
                )
                self.core_senders[core.name] = sender
                egress.add_enqueue_tap(self._make_core_tap(core, egress_index, sender))
                self._sender_taps[(core, egress_index)] = (
                    sender, ("tor_map", ((dst_pod, dst_e, 0),)))

        # ---- destination ToR: downstream receiver ----
        self.dst_receiver = RliReceiver(
            demux=PathClassifierDemux(
                path_classifier,
                sender_ids=[self.core_sender_id(c) for c in cores],
                source_prefixes=[src_prefix],
            ),
            clock=self.clock_factory(),
            estimator=self.estimator,
            observation_log=make_observation_log(self.record_observations),
            record_only=bool(self.record_observations),
        )
        dst_edge.add_arrival_tap(self._make_arrival_tap(self.dst_receiver))
        self._receiver_taps[dst_edge] = self.dst_receiver

    def observation_logs(self) -> List[Tuple[str, list]]:
        """(segment name, recorded events) per receiver (after a run)."""
        if not self.record_observations:
            raise RuntimeError("deployment built without record_observations")
        out = [
            (f"seg1:{name}", receiver.observation_log)
            for name, receiver in self.core_receivers.items()
        ]
        out.append(("seg2:to-dst-tor", self.dst_receiver.observation_log))
        return out

    # ------------------------------------------------------------------
    # tap factories (closures keep per-instance wiring explicit)

    def _make_core_classifier(self, agg: Switch, half: int):
        def classify(packet: Packet) -> int:
            return agg.hasher.choose(packet.flow_key, half)

        return classify

    def _make_dst_filter(self, dst_prefix):
        def classify(packet: Packet) -> Optional[int]:
            return 0 if dst_prefix.contains(packet.dst) else None

        return classify

    def _make_tor_tap(self, switch: Switch, port_index: int, sender: RliSender):
        def tap(packet: Packet, now: float) -> None:
            if not packet.is_regular:
                return
            packet.tap_time = now
            refs = sender.on_regular(packet, now)
            if refs:
                for ref in refs:
                    self.engine.forward_injected(ref, switch.inject(ref, now, port_index))

        return tap

    def _make_core_tap(self, switch: Switch, port_index: int, sender: RliSender):
        def tap(packet: Packet, now: float) -> None:
            if not packet.is_regular:
                return
            packet.tap_time = now  # segment-2 entry (segment 1 already read)
            refs = sender.on_regular(packet, now)
            if refs:
                for ref in refs:
                    self.engine.forward_injected(ref, switch.inject(ref, now, port_index))

        return tap

    def _make_arrival_tap(self, receiver: RliReceiver):
        def tap(packet: Packet, now: float, in_port: int) -> None:
            if packet.is_regular or packet.is_reference:
                receiver.observe(packet, now)

        return tap

    # ------------------------------------------------------------------

    def run(self, traces: List[Trace], until: Optional[float] = None) -> RlirResult:
        """Inject traces (packets enter at their source ToR), run, collect.

        ``traces`` may include background traffic between arbitrary host
        pairs; only flows covered by the deployment are measured — that is
        the whole point of the demultiplexers.

        With ``batch=True`` and batch-backed traces the layered columnar
        driver replaces the event calendar (bitwise-identical output);
        non-batchable configurations fall back to the engine.
        """
        engine = Engine()
        self.wire(engine)
        ft = self.fattree
        if self.batch and try_fast_path(ft, self._sender_taps,
                                        self._receiver_taps, traces, until):
            return self._finish()
        for trace in traces:
            packets = (trace.clone_packets() if hasattr(trace, "clone_packets")
                       else trace.to_packets())
            engine.inject_trace(packets, lambda p: ft.edge_of(p.src))
        engine.run(until=until)
        return self._finish()

    def _finish(self) -> RlirResult:
        for receiver in self.core_receivers.values():
            receiver.finalize()
        self.dst_receiver.finalize()
        return RlirResult(dict(self.core_receivers), self.dst_receiver)
