"""Cross-traffic injection models (paper Section 4.1).

"The cross traffic injector provides two types of traffic selection models;
uniform and bursty models.  Uniform model randomly selects cross traffic
with a given probability, which can demonstrate a persistent congestion
event as we increase injection rate.  Bursty model simulates a situation
where cross traffic arrives in a bursty fashion by controlling cross traffic
injection duration."

Both models take a cross-traffic trace and yield ``(arrival_time, packet)``
pairs destined for the bottleneck switch:

* :class:`UniformModel` keeps each cross packet independently with
  probability ``prob``; timestamps are untouched, so the extra load is
  spread evenly — persistent, "random" congestion.
* :class:`BurstyModel` keeps each packet with probability ``prob`` but
  time-compresses the kept stream into periodic ON windows of
  ``on_duration`` seconds every ``period`` seconds.  The same ``prob``
  therefore delivers the same *average* utilization as the uniform model
  while concentrating it into bursts — exactly the controlled comparison of
  Figure 4(c).

:func:`calibrate_selection_probability` solves for the ``prob`` that hits a
target average bottleneck utilization, replacing the paper's manual tuning
("we set ... packet selection probability as 15 %, which gives us 34 % link
utilization at the second switch").
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..net.packet import Packet, PacketKind
from .batch import PacketBatch
from .trace import Trace

__all__ = [
    "UniformModel",
    "BurstyModel",
    "calibrate_selection_probability",
    "CalibrationError",
]


class CalibrationError(ValueError):
    """Raised when the cross trace cannot supply the requested load."""


class UniformModel:
    """Uniform (random) selection: persistent congestion."""

    def __init__(self, prob: float, seed: int = 0):
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"selection probability must be in [0, 1]: {prob}")
        self.prob = prob
        self.seed = seed

    def arrivals(self, cross: Trace) -> List[Tuple[float, Packet]]:
        """Select and clone cross packets; arrival time = original ts."""
        rng = np.random.default_rng(self.seed)
        keep = rng.random(len(cross)) < self.prob
        out: List[Tuple[float, Packet]] = []
        for selected, packet in zip(keep, cross.packets):
            if selected:
                q = packet.clone()
                q.kind = PacketKind.CROSS
                out.append((q.ts, q))
        return out

    def arrivals_batch(self, cross: Trace) -> PacketBatch:
        """Columnar :meth:`arrivals`: same seeded selection, no objects.

        The random draw is identical (one ``rng.random(len(cross))``
        vector), so exactly the packets the per-object model would clone
        are selected; ``ts`` doubles as the Switch-2 arrival time.
        """
        rng = np.random.default_rng(self.seed)
        keep = rng.random(len(cross)) < self.prob
        return cross.batch.take(np.flatnonzero(keep)).with_kind(PacketKind.CROSS)

    def __repr__(self) -> str:
        return f"UniformModel(prob={self.prob}, seed={self.seed})"


class BurstyModel:
    """ON/OFF selection: the same average load, concentrated into bursts.

    Kept packets are remapped onto ON windows: the whole trace timeline
    [0, T) is compressed by the duty-cycle factor ``period / on_duration``
    and folded into windows ``[k·period, k·period + on_duration)``.  Packet
    order and intra-burst micro-structure are preserved; the instantaneous
    cross rate inside a window is ``period / on_duration`` times the uniform
    model's, producing the deep transient queues whose delays interpolation
    tracks so well in Figure 4(c).
    """

    def __init__(self, prob: float, on_duration: float, period: float, seed: int = 0):
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"selection probability must be in [0, 1]: {prob}")
        if on_duration <= 0 or period <= 0:
            raise ValueError("on_duration and period must be positive")
        if on_duration > period:
            raise ValueError(f"on_duration {on_duration} exceeds period {period}")
        self.prob = prob
        self.on_duration = on_duration
        self.period = period
        self.seed = seed

    def arrivals(self, cross: Trace) -> List[Tuple[float, Packet]]:
        """Select, clone, and fold cross packets into ON windows."""
        if len(cross) == 0:
            return []
        span = cross.duration or 1.0
        duty = self.on_duration / self.period
        rng = np.random.default_rng(self.seed)
        keep = rng.random(len(cross)) < self.prob
        out: List[Tuple[float, Packet]] = []
        for selected, packet in zip(keep, cross.packets):
            if not selected:
                continue
            compressed = packet.ts * duty  # position on the all-ON timeline
            window, offset = divmod(compressed, self.on_duration)
            arrival = window * self.period + offset
            if arrival >= span:
                continue  # folded past the trace span; drop the straggler
            q = packet.clone()
            q.kind = PacketKind.CROSS
            q.ts = arrival
            out.append((arrival, q))
        out.sort(key=lambda item: item[0])
        return out

    def arrivals_batch(self, cross: Trace) -> PacketBatch:
        """Columnar :meth:`arrivals`: identical selection, folding and order.

        The fold is the per-packet arithmetic applied elementwise
        (``divmod`` and the window remap are the same float ops), stragglers
        past the span are dropped the same way, and the final stable sort
        matches the object path's stable ``list.sort`` tie behavior.
        """
        if len(cross) == 0:
            return PacketBatch.empty()
        span = cross.duration or 1.0
        duty = self.on_duration / self.period
        rng = np.random.default_rng(self.seed)
        keep = rng.random(len(cross)) < self.prob
        batch = cross.batch.take(np.flatnonzero(keep))
        compressed = batch.ts * duty  # position on the all-ON timeline
        window, offset = np.divmod(compressed, self.on_duration)
        arrival = window * self.period + offset
        inside = arrival < span
        batch = batch.take(np.flatnonzero(inside))
        arrival = arrival[inside]
        order = np.argsort(arrival, kind="stable")
        return batch.take(order).replace(
            ts=arrival[order],
            kind=np.full(len(order), int(PacketKind.CROSS), dtype=np.int64),
        )

    def __repr__(self) -> str:
        return (
            f"BurstyModel(prob={self.prob}, on={self.on_duration}, "
            f"period={self.period}, seed={self.seed})"
        )


def calibrate_selection_probability(
    cross: Trace,
    regular_bytes: int,
    rate_bps: float,
    duration: float,
    target_utilization: float,
    max_prob: float = 1.0,
) -> float:
    """Selection probability that yields *target_utilization* on average.

    The bottleneck link carries the regular traffic plus the selected cross
    traffic:  ``util = (regular_bytes + p · cross_bytes) / (rate/8 · T)``.
    Solving for ``p`` replaces trial-and-error calibration.  Raises
    :class:`CalibrationError` if the cross trace is too small to reach the
    target (p would exceed *max_prob*).
    """
    if not 0.0 < target_utilization <= 1.0:
        raise ValueError(f"target utilization must be in (0, 1]: {target_utilization}")
    if duration <= 0:
        raise ValueError("duration must be positive")
    cross_bytes = cross.total_bytes
    if cross_bytes == 0:
        raise CalibrationError("cross trace is empty")
    needed = target_utilization * (rate_bps / 8.0) * duration - regular_bytes
    if needed <= 0:
        return 0.0
    prob = needed / cross_bytes
    if prob > max_prob:
        raise CalibrationError(
            f"cross trace too small: need p={prob:.3f} > {max_prob} for "
            f"{target_utilization:.0%} utilization"
        )
    return prob
