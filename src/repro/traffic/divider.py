"""Traffic divider (paper Figure 3).

"The simulator reads a packet trace and classifies packets as either regular
traffic ones or cross traffic ones based on IP addresses."

Given prefix sets describing the regular traffic's address space, the
divider splits a merged trace into a regular trace and a cross trace.  It is
the same longest-prefix-match machinery the RLIR receivers use for origin
identification.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from ..net.addressing import Prefix, PrefixTrie
from ..net.packet import PacketKind
from .trace import Trace

__all__ = ["TrafficDivider", "flow_shard"]

# FNV-1a over the flow 5-tuple's fields: cheap, well-mixed, and — unlike
# the built-in hash() — independent of PYTHONHASHSEED, so every worker
# process agrees on which shard owns a flow.
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def flow_shard(key: Tuple[int, int, int, int, int], n_shards: int) -> int:
    """The shard index in ``[0, n_shards)`` that owns flow *key*.

    The within-condition analogue of :class:`TrafficDivider`'s prefix
    classification: a pure function of the flow key, stable across
    processes and runs, so one condition's per-flow work
    (:mod:`repro.core.replay`) partitions identically no matter how many
    workers there are or which one picks up which shard.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1: {n_shards}")
    h = _FNV_OFFSET
    for part in key:
        value = int(part) & _MASK64
        while True:
            h = ((h ^ (value & 0xFF)) * _FNV_PRIME) & _MASK64
            value >>= 8
            if not value:
                break
    return h % n_shards


class TrafficDivider:
    """Classify packets as regular or cross by source-address prefix."""

    def __init__(self, regular_prefixes: Iterable[Prefix]):
        self._trie: PrefixTrie[bool] = PrefixTrie()
        count = 0
        for prefix in regular_prefixes:
            self._trie.insert(prefix, True)
            count += 1
        if count == 0:
            raise ValueError("at least one regular prefix required")

    def is_regular(self, src: int) -> bool:
        """True if *src* falls under a regular-traffic prefix."""
        return self._trie.lookup(src) is not None

    def split(self, trace: Trace) -> Tuple[Trace, Trace]:
        """Split *trace* into (regular, cross) traces (packets cloned).

        Regular packets keep their kind; cross packets are marked CROSS.
        """
        regular, cross = [], []
        for packet in trace.packets:
            clone = packet.clone()
            if self.is_regular(packet.src):
                regular.append(clone)
            else:
                clone.kind = PacketKind.CROSS
                cross.append(clone)
        return (
            Trace(regular, name=f"{trace.name}/regular", check_sorted=False),
            Trace(cross, name=f"{trace.name}/cross", check_sorted=False),
        )
