"""Workload substrate: synthetic traces, division, cross-traffic injection,
and YAF-like flow metering."""

from .batch import PacketBatch
from .crosstraffic import (
    BurstyModel,
    CalibrationError,
    UniformModel,
    calibrate_selection_probability,
)
from .csvio import load_csv, save_csv
from .distributions import BoundedPareto, DEFAULT_SIZE_MIX, LognormalGaps, PacketSizeMix
from .divider import TrafficDivider
from .flowmeter import FlowMeter, FlowRecord
from .synthetic import TraceConfig, generate_fattree_trace, generate_trace
from .trace import Trace

__all__ = [
    "PacketBatch",
    "load_csv",
    "save_csv",
    "BurstyModel",
    "CalibrationError",
    "UniformModel",
    "calibrate_selection_probability",
    "BoundedPareto",
    "DEFAULT_SIZE_MIX",
    "LognormalGaps",
    "PacketSizeMix",
    "TrafficDivider",
    "FlowMeter",
    "FlowRecord",
    "TraceConfig",
    "generate_fattree_trace",
    "generate_trace",
    "Trace",
]
