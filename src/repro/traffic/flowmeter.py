"""YAF-like flow metering.

The paper's simulator is "based on an open-source NetFlow software — YAF".
This module reproduces the part that matters for latency work: building
NetFlow-style flow records (first/last packet timestamps, packet and byte
counts) from an observed packet stream.  Those two timestamps per flow are
exactly what the Multiflow baseline estimator [Lee et al., INFOCOM 2010]
consumes (see :mod:`repro.baselines.multiflow`).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..net.packet import Packet

__all__ = ["FlowRecord", "FlowMeter"]

Key = Tuple[int, int, int, int, int]


class FlowRecord:
    """A NetFlow/YAF-style unidirectional flow record."""

    __slots__ = ("key", "first_ts", "last_ts", "packets", "bytes")

    def __init__(self, key: Key, first_ts: float):
        self.key = key
        self.first_ts = first_ts
        self.last_ts = first_ts
        self.packets = 0
        self.bytes = 0

    def update(self, ts: float, size: int) -> None:
        if ts < self.last_ts:
            raise ValueError(f"flow record updated out of order: {ts} < {self.last_ts}")
        self.last_ts = ts
        self.packets += 1
        self.bytes += size

    @property
    def duration(self) -> float:
        return self.last_ts - self.first_ts

    def __repr__(self) -> str:
        return (
            f"FlowRecord(key={self.key}, pkts={self.packets}, bytes={self.bytes}, "
            f"[{self.first_ts:.6f}, {self.last_ts:.6f}])"
        )


class FlowMeter:
    """Streaming flow-record builder with NetFlow-style timeouts.

    Packets must be offered in time order (as any capture point sees them).
    With ``idle_timeout`` set, a gap longer than the timeout within a
    5-tuple starts a new record (cache expiry); with ``active_timeout``
    set, a record older than the timeout is exported and restarted even
    while traffic continues — how NetFlow bounds record latency for
    long-lived flows.
    """

    def __init__(self, idle_timeout: Optional[float] = None,
                 active_timeout: Optional[float] = None):
        if idle_timeout is not None and idle_timeout <= 0:
            raise ValueError(f"idle timeout must be positive: {idle_timeout}")
        if active_timeout is not None and active_timeout <= 0:
            raise ValueError(f"active timeout must be positive: {active_timeout}")
        self.idle_timeout = idle_timeout
        self.active_timeout = active_timeout
        self._active: Dict[Key, FlowRecord] = {}
        self._expired: List[FlowRecord] = []

    def observe(self, packet: Packet, ts: Optional[float] = None) -> None:
        """Account one packet (at time *ts*, default the packet's own ts)."""
        when = packet.ts if ts is None else ts
        key = packet.flow_key
        record = self._active.get(key)
        if record is not None:
            idle_expired = (self.idle_timeout is not None
                            and when - record.last_ts > self.idle_timeout)
            active_expired = (self.active_timeout is not None
                              and when - record.first_ts > self.active_timeout)
            if idle_expired or active_expired:
                self._expired.append(record)
                record = None
        if record is None:
            record = FlowRecord(key, when)
            self._active[key] = record
        record.update(when, packet.size)

    def observe_all(self, packets: Iterable[Packet]) -> "FlowMeter":
        for packet in packets:
            self.observe(packet)
        return self

    def records(self) -> Iterator[FlowRecord]:
        """All records: expired first, then still-active ones."""
        yield from self._expired
        yield from self._active.values()

    def table(self) -> Dict[Key, FlowRecord]:
        """Active records keyed by 5-tuple (ignores expired splits)."""
        return dict(self._active)

    def __len__(self) -> int:
        return len(self._expired) + len(self._active)
