"""Columnar (structure-of-arrays) packet batches.

A :class:`PacketBatch` holds one parallel numpy array per header/trace field
— src, dst, sport, dport, proto, size, ts, kind — instead of one Python
:class:`~repro.net.packet.Packet` object per packet.  At the 10^5–10^6
packets of the paper's headline experiments, the per-object representation
costs more interpreter time in constructors and attribute loads than the
actual queueing math; the columnar form is what the vectorized pipeline
fast path (:meth:`repro.sim.pipeline.TwoSwitchPipeline.run_batch`) consumes
directly, with *lazy* materialization back to ``Packet`` objects for the
per-object reference path.

A batch carries exactly the state a saved trace carries (the ``.npz``
column set): measurement-only fields (``sender_id``, ``ref_timestamp``,
``tos``) and simulation bookkeeping (``tap_time``, ``dropped``, ``hops``,
``path``) are *not* represented, so reference packets — which are few and
inherently stateful — stay Python objects even on the fast path.
Round-tripping through :meth:`from_packets`/:meth:`to_packets` is exact for
the represented columns and drops the rest, exactly like ``Trace.save`` /
``Trace.load`` always has.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..net.packet import Packet, PacketKind

__all__ = ["PacketBatch", "BATCH_COLUMNS"]

BATCH_COLUMNS = ("src", "dst", "sport", "dport", "proto", "size", "ts", "kind")

_INT_COLUMNS = ("src", "dst", "sport", "dport", "proto", "size", "kind")


class PacketBatch:
    """Parallel per-field arrays describing a sequence of packets.

    Integer columns are ``int64`` (wide enough for packed flow keys and
    fearless arithmetic), ``ts`` is ``float64``.  Instances are
    immutable-by-convention, like :class:`~repro.traffic.trace.Trace`:
    transformations return new batches sharing (sliced views of) the
    underlying arrays where possible.
    """

    __slots__ = BATCH_COLUMNS

    def __init__(self, src, dst, sport, dport, proto, size, ts, kind):
        self.src = np.ascontiguousarray(src, dtype=np.int64)
        self.dst = np.ascontiguousarray(dst, dtype=np.int64)
        self.sport = np.ascontiguousarray(sport, dtype=np.int64)
        self.dport = np.ascontiguousarray(dport, dtype=np.int64)
        self.proto = np.ascontiguousarray(proto, dtype=np.int64)
        self.size = np.ascontiguousarray(size, dtype=np.int64)
        self.ts = np.ascontiguousarray(ts, dtype=np.float64)
        self.kind = np.ascontiguousarray(kind, dtype=np.int64)
        n = len(self.ts)
        for name in BATCH_COLUMNS:
            if len(getattr(self, name)) != n:
                raise ValueError(
                    f"column {name!r} has {len(getattr(self, name))} entries, "
                    f"expected {n}"
                )

    # ------------------------------------------------------------------
    # construction

    @classmethod
    def empty(cls) -> "PacketBatch":
        zi = np.empty(0, dtype=np.int64)
        return cls(zi, zi, zi, zi, zi, zi, np.empty(0), zi)

    @classmethod
    def from_packets(cls, packets: Sequence[Packet]) -> "PacketBatch":
        """Columnarize a packet sequence (lossy for non-column fields)."""
        n = len(packets)
        cols = {name: np.empty(n, dtype=np.int64) for name in _INT_COLUMNS}
        ts = np.empty(n, dtype=np.float64)
        for i, p in enumerate(packets):
            cols["src"][i] = p.src
            cols["dst"][i] = p.dst
            cols["sport"][i] = p.sport
            cols["dport"][i] = p.dport
            cols["proto"][i] = p.proto
            cols["size"][i] = p.size
            ts[i] = p.ts
            cols["kind"][i] = int(p.kind)
        return cls(ts=ts, **cols)

    @classmethod
    def coerce(cls, obj) -> Optional["PacketBatch"]:
        """The batch behind *obj* (PacketBatch or batchable Trace), else None."""
        if isinstance(obj, PacketBatch):
            return obj
        batch = getattr(obj, "batch", None)
        return batch if isinstance(batch, PacketBatch) else None

    # ------------------------------------------------------------------
    # materialization

    def to_packets(self) -> List[Packet]:
        """Materialize fresh :class:`Packet` objects (bookkeeping reset).

        Field values are identical to the per-object construction the
        columnar producers replaced; only the representation is lazy.
        """
        kinds = {int(k): PacketKind(int(k)) for k in np.unique(self.kind)} if len(self) else {}
        return [
            Packet(src=s, dst=d, sport=sp, dport=dp, proto=pr, size=sz, ts=t,
                   kind=kinds[k])
            for s, d, sp, dp, pr, sz, t, k in zip(
                self.src.tolist(), self.dst.tolist(), self.sport.tolist(),
                self.dport.tolist(), self.proto.tolist(), self.size.tolist(),
                self.ts.tolist(), self.kind.tolist(),
            )
        ]

    def packet(self, i: int) -> Packet:
        """Materialize the single packet at index *i*."""
        return Packet(
            src=int(self.src[i]), dst=int(self.dst[i]), sport=int(self.sport[i]),
            dport=int(self.dport[i]), proto=int(self.proto[i]),
            size=int(self.size[i]), ts=float(self.ts[i]),
            kind=PacketKind(int(self.kind[i])),
        )

    def __iter__(self):
        return iter(self.to_packets())

    # ------------------------------------------------------------------
    # transformations

    def take(self, indices) -> "PacketBatch":
        """A new batch holding rows *indices* (numpy fancy-index order)."""
        return PacketBatch(**{name: getattr(self, name)[indices] for name in BATCH_COLUMNS})

    def replace(self, **columns) -> "PacketBatch":
        """A new batch with the given columns swapped out."""
        unknown = set(columns) - set(BATCH_COLUMNS)
        if unknown:
            raise ValueError(f"unknown batch columns: {sorted(unknown)}")
        cols = {name: columns.get(name, getattr(self, name)) for name in BATCH_COLUMNS}
        return PacketBatch(**cols)

    def with_kind(self, kind: PacketKind) -> "PacketBatch":
        """A new batch with every packet's kind set to *kind*."""
        return self.replace(kind=np.full(len(self), int(kind), dtype=np.int64))

    @staticmethod
    def concat(batches: Iterable["PacketBatch"]) -> "PacketBatch":
        """Row-wise concatenation, in the given order."""
        batches = list(batches)
        if not batches:
            return PacketBatch.empty()
        return PacketBatch(**{
            name: np.concatenate([getattr(b, name) for b in batches])
            for name in BATCH_COLUMNS
        })

    # ------------------------------------------------------------------
    # summary statistics (bit-identical to the per-object computations)

    def __len__(self) -> int:
        return len(self.ts)

    @property
    def duration(self) -> float:
        """Span from 0 to the last packet's timestamp (0 if empty)."""
        return float(self.ts[-1]) if len(self.ts) else 0.0

    @property
    def total_bytes(self) -> int:
        return int(self.size.sum())

    @property
    def n_flows(self) -> int:
        if not len(self):
            return 0
        a, b = self.packed_flow_keys()
        return int(np.unique(np.stack([a, b], axis=1), axis=0).shape[0])

    def is_time_sorted(self) -> bool:
        return bool(np.all(self.ts[1:] >= self.ts[:-1]))

    def packed_flow_keys(self):
        """The 5-tuple flow identity packed into two ``uint64`` columns.

        ``a`` packs (src, dst), ``b`` packs (sport, dport, proto); the pair
        (a, b) is unique per flow.  Used for vectorized grouping — the
        tuple keys themselves are only materialized once per flow.
        """
        a = (self.src.astype(np.uint64) << np.uint64(32)) | self.dst.astype(np.uint64)
        b = (
            (self.sport.astype(np.uint64) << np.uint64(24))
            | (self.dport.astype(np.uint64) << np.uint64(8))
            | self.proto.astype(np.uint64)
        )
        return a, b

    def flow_key(self, i: int):
        """The 5-tuple flow key of row *i* (plain Python ints)."""
        return (int(self.src[i]), int(self.dst[i]), int(self.sport[i]),
                int(self.dport[i]), int(self.proto[i]))

    def __repr__(self) -> str:
        return f"PacketBatch({len(self)} pkts, {self.duration:.3f}s)"
