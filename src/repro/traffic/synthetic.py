"""Synthetic OC-192-like trace generation.

Substitutes for the paper's CAIDA anonymized OC-192 traces [14] (not
redistributable; see DESIGN.md).  Flows arrive as a Poisson process over the
trace span; each flow draws a heavy-tailed size in packets, endpoints from
configurable address pools, and bursty lognormal intra-flow gaps.  The
paper's trace has ~15.4 packets/flow on average; the defaults here match.

Two front-ends are provided:

* :func:`generate_trace` — endpoints drawn from synthetic /16 pools, used by
  the two-switch pipeline experiments where addresses only matter for flow
  identity and regular/cross classification;
* :func:`generate_fattree_trace` — endpoints are hosts of a
  :class:`~repro.sim.topology.FatTree`, restricted to inter-pod pairs, used
  by the RLIR across-routers experiments.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..net.addressing import ip_to_int
from ..net.packet import PacketKind
from .batch import PacketBatch
from .distributions import BoundedPareto, PacketSizeMix
from .trace import Trace

__all__ = ["TraceConfig", "generate_trace", "generate_fattree_trace"]


class TraceConfig:
    """Knobs of the synthetic workload.

    Parameters
    ----------
    duration:
        Trace span in seconds.
    n_packets:
        Target total packet count (the realized count varies a few percent
        with the flow-size draws).
    mean_flow_pkts:
        Target mean flow size; combined with ``n_packets`` this sets the
        number of flows.
    flow_size:
        Flow-size sampler (packets per flow).
    sizes:
        Packet-size mix.
    mean_gap, rate_sigma, gap_sigma:
        Intra-flow inter-packet gaps.  Each flow draws its own mean gap
        (lognormal around ``mean_gap`` with shape ``rate_sigma`` — flows
        have heterogeneous rates), and each packet draws a lognormal gap
        with shape ``gap_sigma`` around the flow's mean.  Keeping per-flow
        rates small relative to the link (backbone-like) means congestion
        comes from *aggregation*, not from any single flow overrunning the
        link.  Flows whose packets would fall past the trace end are
        truncated, as in any fixed-window capture.
    src_base, dst_base:
        /16 bases for synthetic endpoint pools (ignored by the fat-tree
        front-end).
    n_hosts:
        Number of distinct hosts per pool.
    """

    def __init__(
        self,
        duration: float = 2.0,
        n_packets: int = 200_000,
        mean_flow_pkts: float = 15.0,
        flow_size: Optional[BoundedPareto] = None,
        sizes: Optional[PacketSizeMix] = None,
        mean_gap: float = 1e-3,
        rate_sigma: float = 1.0,
        gap_sigma: float = 1.2,
        src_base: str = "10.1.0.0",
        dst_base: str = "10.2.0.0",
        n_hosts: int = 4096,
    ):
        if duration <= 0:
            raise ValueError(f"duration must be positive: {duration}")
        if n_packets <= 0:
            raise ValueError(f"n_packets must be positive: {n_packets}")
        self.duration = duration
        self.n_packets = n_packets
        self.mean_flow_pkts = mean_flow_pkts
        self.flow_size = flow_size or BoundedPareto(alpha=1.25, low=1.0, high=2e4)
        self.sizes = sizes or PacketSizeMix()
        if mean_gap <= 0:
            raise ValueError(f"mean_gap must be positive: {mean_gap}")
        self.mean_gap = mean_gap
        self.rate_sigma = rate_sigma
        self.gap_sigma = gap_sigma
        self.src_base = ip_to_int(src_base)
        self.dst_base = ip_to_int(dst_base)
        self.n_hosts = n_hosts


def _flow_packet_times(
    rng: np.random.Generator, cfg: TraceConfig, n_flows: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw flow start times/sizes and expand to per-packet times.

    Returns time-sorted (flow_index, packet_time) arrays clipped to the
    trace span (flows near the end are truncated, as in any fixed-window
    capture).
    """
    starts = rng.uniform(0.0, cfg.duration, n_flows)
    # calibrate sizes so the realized total lands near n_packets
    sizes_f = cfg.flow_size.sample(rng, n_flows)
    sizes = np.maximum(1, np.round(sizes_f * (cfg.mean_flow_pkts / cfg.flow_size.mean()))).astype(
        np.int64
    )
    total = int(sizes.sum())
    flow_idx = np.repeat(np.arange(n_flows), sizes)
    # per-flow mean gap (heterogeneous flow rates), then per-packet jitter
    rs = cfg.rate_sigma
    flow_gap = cfg.mean_gap * rng.lognormal(-0.5 * rs * rs, rs, n_flows)
    mean_gaps = np.repeat(flow_gap, sizes)
    sigma = cfg.gap_sigma
    gaps = mean_gaps * rng.lognormal(-0.5 * sigma * sigma, sigma, total)
    # per-flow cumulative gaps: global cumsum minus each flow's base
    cum = np.cumsum(gaps)
    flow_ends = np.cumsum(sizes)
    first = np.concatenate(([0], flow_ends[:-1]))
    base = np.repeat(cum[first] - gaps[first], sizes)
    offsets = cum - base  # first packet of a flow lands one gap after start
    times = starts[flow_idx] + offsets
    keep = times < cfg.duration
    flow_idx, times = flow_idx[keep], times[keep]
    order = np.argsort(times, kind="stable")
    return flow_idx[order], times[order]


def generate_trace(cfg: TraceConfig, seed: int = 0, name: str = "synthetic") -> Trace:
    """Generate a synthetic trace with endpoints from flat address pools."""
    rng = np.random.default_rng(seed)
    n_flows = max(1, int(round(cfg.n_packets / cfg.mean_flow_pkts)))
    srcs = cfg.src_base + rng.integers(1, cfg.n_hosts + 1, n_flows)
    dsts = cfg.dst_base + rng.integers(1, cfg.n_hosts + 1, n_flows)
    sports = rng.integers(1024, 65536, n_flows)
    dports = rng.integers(1, 65536, n_flows)
    return _materialize(rng, cfg, srcs, dsts, sports, dports, name)


def generate_fattree_trace(
    cfg: TraceConfig,
    host_pairs: Sequence[Tuple[int, int]],
    seed: int = 0,
    name: str = "fattree-synthetic",
) -> Trace:
    """Generate a trace whose flows run between the given host-address pairs.

    ``host_pairs`` are candidate (src, dst) endpoint pairs (e.g. all
    inter-pod pairs, or pairs between two specific ToRs); each flow picks one
    uniformly at random.
    """
    if not host_pairs:
        raise ValueError("host_pairs must not be empty")
    rng = np.random.default_rng(seed)
    n_flows = max(1, int(round(cfg.n_packets / cfg.mean_flow_pkts)))
    pair_idx = rng.integers(0, len(host_pairs), n_flows)
    pairs = np.asarray(host_pairs, dtype=np.int64)
    srcs = pairs[pair_idx, 0]
    dsts = pairs[pair_idx, 1]
    sports = rng.integers(1024, 65536, n_flows)
    dports = rng.integers(1, 65536, n_flows)
    return _materialize(rng, cfg, srcs, dsts, sports, dports, name)


def _materialize(
    rng: np.random.Generator,
    cfg: TraceConfig,
    srcs: np.ndarray,
    dsts: np.ndarray,
    sports: np.ndarray,
    dports: np.ndarray,
    name: str,
) -> Trace:
    """Expand per-flow draws into a columnar, batch-backed trace.

    The random draws (and thus the realized trace values) are identical to
    the historical per-object construction; only the representation changed
    — packets stay as parallel arrays until a per-object consumer asks the
    trace to materialize them.
    """
    flow_idx, times = _flow_packet_times(rng, cfg, len(srcs))
    pkt_sizes = cfg.sizes.sample(rng, len(times))
    n = len(times)
    batch = PacketBatch(
        src=srcs[flow_idx],
        dst=dsts[flow_idx],
        sport=sports[flow_idx],
        dport=dports[flow_idx],
        proto=np.full(n, 6, dtype=np.int64),
        size=pkt_sizes,
        ts=times,
        kind=np.full(n, int(PacketKind.REGULAR), dtype=np.int64),
    )
    return Trace(batch=batch, name=name, check_sorted=False)
