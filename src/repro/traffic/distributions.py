"""Seeded samplers for workload synthesis.

The paper drives its simulator with CAIDA OC-192 traces; we synthesize
statistically similar traffic (see DESIGN.md, substitutions).  The relevant
trace properties are reproduced by three standard ingredients:

* **bounded Pareto** flow sizes — heavy-tailed "mice and elephants"; the
  paper's trace averages ~15.4 packets/flow (22.4 M packets, 1.45 M flows);
* an **empirical packet-size mix** — Internet backbone traffic is dominated
  by 40 B ACKs and 1500 B MTU packets with a thin middle;
* **lognormal intra-flow gaps** — bursty within-flow arrivals.

All samplers take a :class:`numpy.random.Generator` so every draw is
reproducible.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = [
    "BoundedPareto",
    "PacketSizeMix",
    "LognormalGaps",
    "DEFAULT_SIZE_MIX",
]


class BoundedPareto:
    """Pareto distribution truncated to [low, high] via inverse CDF.

    ``alpha`` is the tail index; smaller alpha = heavier tail.  With
    alpha≈1.2, low=1, high=10^4 the mean is ~15 packets, matching the
    paper's trace statistics.
    """

    def __init__(self, alpha: float, low: float, high: float):
        if alpha <= 0:
            raise ValueError(f"alpha must be positive: {alpha}")
        if not 0 < low < high:
            raise ValueError(f"need 0 < low < high, got [{low}, {high}]")
        self.alpha = alpha
        self.low = low
        self.high = high

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw *n* samples (floats in [low, high])."""
        a, lo, hi = self.alpha, self.low, self.high
        u = rng.random(n)
        # inverse CDF of the truncated Pareto
        ratio = (hi / lo) ** a
        return lo * (1.0 - u * (1.0 - 1.0 / ratio)) ** (-1.0 / a)

    def mean(self) -> float:
        """Analytic mean of the truncated distribution."""
        a, lo, hi = self.alpha, self.low, self.high
        if a == 1.0:
            return np.log(hi / lo) * lo * hi / (hi - lo)
        num = (lo**a) * a / (a - 1.0) * (lo ** (1 - a) - hi ** (1 - a))
        den = 1.0 - (lo / hi) ** a
        return num / den


# Backbone-like packet-size mix (bytes -> probability).
DEFAULT_SIZE_MIX: Dict[int, float] = {40: 0.45, 576: 0.18, 1200: 0.12, 1500: 0.25}


class PacketSizeMix:
    """Categorical packet-size distribution."""

    def __init__(self, mix: Dict[int, float] = None):
        mix = dict(DEFAULT_SIZE_MIX if mix is None else mix)
        if not mix:
            raise ValueError("size mix must not be empty")
        total = sum(mix.values())
        if total <= 0:
            raise ValueError("size mix probabilities must sum to > 0")
        self.sizes = np.array(sorted(mix), dtype=np.int64)
        self.probs = np.array([mix[s] / total for s in sorted(mix)])

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw *n* packet sizes in bytes."""
        return rng.choice(self.sizes, size=n, p=self.probs)

    def mean(self) -> float:
        return float(np.dot(self.sizes, self.probs))


class LognormalGaps:
    """Lognormal inter-packet gaps within a flow.

    Parameterized by the desired *mean* gap and a shape ``sigma``; the
    underlying normal's ``mu`` is solved from mean = exp(mu + sigma²/2).
    sigma≈1.5 yields visibly bursty flows; sigma→0 degenerates to constant
    spacing.
    """

    def __init__(self, mean_gap: float, sigma: float = 1.0):
        if mean_gap <= 0:
            raise ValueError(f"mean gap must be positive: {mean_gap}")
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative: {sigma}")
        self.mean_gap = mean_gap
        self.sigma = sigma
        self._mu = np.log(mean_gap) - 0.5 * sigma * sigma

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw *n* gaps (seconds, strictly positive)."""
        if self.sigma == 0.0:
            return np.full(n, self.mean_gap)
        return rng.lognormal(self._mu, self.sigma, n)
