"""Trace container: an ordered sequence of packets with summary statistics.

Stands in for the paper's "two 1 minute traces collected from an OC-192
link" — one regular, one cross.  Traces can be saved/loaded (npz columnar
format), sliced in time, address-remapped (the paper "modif[ies] IP
addresses of cross traffic to distinguish from regular traffic"), and cloned
per run (simulation mutates packet bookkeeping fields).

A trace is backed by a columnar :class:`~repro.traffic.batch.PacketBatch`,
a Python packet list, or both.  Generators and ``load`` produce the batch
form directly; :attr:`packets` materializes ``Packet`` objects lazily the
first time a per-object consumer asks for them, so the vectorized pipeline
fast path never pays for objects it does not touch.  Either representation
yields identical values — materialized packets are built from the same
column data the batch holds.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional

import numpy as np

from ..net.packet import Packet, PacketKind
from .batch import PacketBatch

__all__ = ["Trace"]

_COLUMNS = ("src", "dst", "sport", "dport", "proto", "size", "ts", "kind")

# on-disk npz dtypes (unchanged across the columnar refactor, so files
# written before/after it are interchangeable)
_SAVE_DTYPES = {
    "src": np.uint32,
    "dst": np.uint32,
    "sport": np.uint16,
    "dport": np.uint16,
    "proto": np.uint8,
    "size": np.uint16,
    "ts": np.float64,
    "kind": np.uint8,
}


class Trace:
    """An immutable-by-convention, time-sorted packet sequence."""

    def __init__(
        self,
        packets: Optional[List[Packet]] = None,
        name: str = "trace",
        check_sorted: bool = True,
        batch: Optional[PacketBatch] = None,
    ):
        if packets is None and batch is None:
            raise ValueError("a Trace needs packets, a batch, or both")
        if check_sorted:
            if packets is not None:
                last = float("-inf")
                for p in packets:
                    if p.ts < last:
                        raise ValueError(f"trace not sorted by ts at t={p.ts}")
                    last = p.ts
            elif not batch.is_time_sorted():
                raise ValueError("trace batch not sorted by ts")
        self._packets = packets
        self._batch = batch
        self.name = name

    # ------------------------------------------------------------------
    # representations

    @property
    def packets(self) -> List[Packet]:
        """The per-object packet list (materialized lazily from the batch)."""
        if self._packets is None:
            self._packets = self._batch.to_packets()
        return self._packets

    @property
    def batch(self) -> PacketBatch:
        """The columnar view (built lazily from the packet list)."""
        if self._batch is None:
            self._batch = PacketBatch.from_packets(self._packets)
        return self._batch

    @property
    def has_batch(self) -> bool:
        """True if the columnar view already exists (no build needed)."""
        return self._batch is not None

    # ------------------------------------------------------------------
    # basics

    def __len__(self) -> int:
        return len(self._batch) if self._packets is None else len(self._packets)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self.packets)

    def __getitem__(self, idx):
        return self.packets[idx]

    @property
    def duration(self) -> float:
        """Span from 0 to the last packet's timestamp (0 if empty)."""
        if self._packets is None:
            return self._batch.duration
        return self._packets[-1].ts if self._packets else 0.0

    @property
    def total_bytes(self) -> int:
        if self._batch is not None:
            return self._batch.total_bytes
        return sum(p.size for p in self._packets)

    @property
    def n_flows(self) -> int:
        if self._batch is not None:
            return self._batch.n_flows
        return len({p.flow_key for p in self._packets})

    def mean_rate_bps(self) -> float:
        """Average offered rate over the trace span."""
        d = self.duration
        return self.total_bytes * 8.0 / d if d > 0 else 0.0

    # ------------------------------------------------------------------
    # transformations (all return new traces; packets are cloned)

    def clone_packets(self) -> List[Packet]:
        """Fresh packet copies for one simulation run.

        The simulator mutates bookkeeping fields (``dropped``, ``tap_time``,
        ``hops``); cloning lets the same trace drive many runs.  A
        batch-backed trace materializes fresh objects directly — same
        values, no intermediate list.
        """
        if self._packets is None:
            return self._batch.to_packets()
        return [p.clone() for p in self._packets]

    def slice_time(self, start: float, end: float, name: Optional[str] = None) -> "Trace":
        """Packets with ``start <= ts < end`` (cloned, timestamps kept)."""
        chosen = [p.clone() for p in self.packets if start <= p.ts < end]
        return Trace(chosen, name or f"{self.name}[{start}:{end}]", check_sorted=False)

    def remap_addresses(self, fn: Callable[[int, int], tuple], name: Optional[str] = None) -> "Trace":
        """Apply ``fn(src, dst) -> (src', dst')`` to every packet (cloned)."""
        out = []
        for p in self.packets:
            q = p.clone()
            q.src, q.dst = fn(p.src, p.dst)
            out.append(q)
        return Trace(out, name or f"{self.name}+remap", check_sorted=False)

    def with_kind(self, kind: PacketKind, name: Optional[str] = None) -> "Trace":
        """Cloned trace with every packet's kind set to *kind*."""
        out = []
        for p in self.packets:
            q = p.clone()
            q.kind = kind
            out.append(q)
        return Trace(out, name or f"{self.name}+{kind.name.lower()}", check_sorted=False)

    @staticmethod
    def merge(traces: Iterable["Trace"], name: str = "merged") -> "Trace":
        """Time-sorted merge of several traces (cloned packets)."""
        packets: List[Packet] = []
        for trace in traces:
            packets.extend(p.clone() for p in trace.packets)
        packets.sort(key=lambda p: p.ts)
        return Trace(packets, name, check_sorted=False)

    # ------------------------------------------------------------------
    # persistence

    def save(self, path: str) -> None:
        """Write the trace as a compressed columnar npz file."""
        batch = self.batch
        cols = {
            name: getattr(batch, name).astype(_SAVE_DTYPES[name])
            for name in _COLUMNS
        }
        np.savez_compressed(path, name=np.array(self.name), **cols)

    @classmethod
    def load(cls, path: str) -> "Trace":
        """Read a trace written by :meth:`save` (batch-backed, lazy)."""
        data = np.load(path, allow_pickle=False)
        missing = [c for c in _COLUMNS if c not in data]
        if missing:
            raise ValueError(f"not a trace file, missing columns: {missing}")
        batch = PacketBatch(**{name: data[name] for name in _COLUMNS})
        name = str(data["name"]) if "name" in data else "trace"
        return cls(batch=batch, name=name, check_sorted=False)

    def __repr__(self) -> str:
        return (
            f"Trace({self.name!r}: {len(self)} pkts, "
            f"{self.n_flows} flows, {self.duration:.3f}s)"
        )
