"""Trace container: an ordered sequence of packets with summary statistics.

Stands in for the paper's "two 1 minute traces collected from an OC-192
link" — one regular, one cross.  Traces can be saved/loaded (npz columnar
format), sliced in time, address-remapped (the paper "modif[ies] IP
addresses of cross traffic to distinguish from regular traffic"), and cloned
per run (simulation mutates packet bookkeeping fields).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional

import numpy as np

from ..net.packet import Packet, PacketKind

__all__ = ["Trace"]

_COLUMNS = ("src", "dst", "sport", "dport", "proto", "size", "ts", "kind")


class Trace:
    """An immutable-by-convention, time-sorted packet sequence."""

    def __init__(self, packets: List[Packet], name: str = "trace", check_sorted: bool = True):
        if check_sorted:
            last = float("-inf")
            for p in packets:
                if p.ts < last:
                    raise ValueError(f"trace not sorted by ts at t={p.ts}")
                last = p.ts
        self.packets = packets
        self.name = name

    # ------------------------------------------------------------------
    # basics

    def __len__(self) -> int:
        return len(self.packets)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self.packets)

    def __getitem__(self, idx):
        return self.packets[idx]

    @property
    def duration(self) -> float:
        """Span from 0 to the last packet's timestamp (0 if empty)."""
        return self.packets[-1].ts if self.packets else 0.0

    @property
    def total_bytes(self) -> int:
        return sum(p.size for p in self.packets)

    @property
    def n_flows(self) -> int:
        return len({p.flow_key for p in self.packets})

    def mean_rate_bps(self) -> float:
        """Average offered rate over the trace span."""
        d = self.duration
        return self.total_bytes * 8.0 / d if d > 0 else 0.0

    # ------------------------------------------------------------------
    # transformations (all return new traces; packets are cloned)

    def clone_packets(self) -> List[Packet]:
        """Fresh packet copies for one simulation run.

        The simulator mutates bookkeeping fields (``dropped``, ``tap_time``,
        ``hops``); cloning lets the same trace drive many runs.
        """
        return [p.clone() for p in self.packets]

    def slice_time(self, start: float, end: float, name: Optional[str] = None) -> "Trace":
        """Packets with ``start <= ts < end`` (cloned, timestamps kept)."""
        chosen = [p.clone() for p in self.packets if start <= p.ts < end]
        return Trace(chosen, name or f"{self.name}[{start}:{end}]", check_sorted=False)

    def remap_addresses(self, fn: Callable[[int, int], tuple], name: Optional[str] = None) -> "Trace":
        """Apply ``fn(src, dst) -> (src', dst')`` to every packet (cloned)."""
        out = []
        for p in self.packets:
            q = p.clone()
            q.src, q.dst = fn(p.src, p.dst)
            out.append(q)
        return Trace(out, name or f"{self.name}+remap", check_sorted=False)

    def with_kind(self, kind: PacketKind, name: Optional[str] = None) -> "Trace":
        """Cloned trace with every packet's kind set to *kind*."""
        out = []
        for p in self.packets:
            q = p.clone()
            q.kind = kind
            out.append(q)
        return Trace(out, name or f"{self.name}+{kind.name.lower()}", check_sorted=False)

    @staticmethod
    def merge(traces: Iterable["Trace"], name: str = "merged") -> "Trace":
        """Time-sorted merge of several traces (cloned packets)."""
        packets: List[Packet] = []
        for trace in traces:
            packets.extend(p.clone() for p in trace.packets)
        packets.sort(key=lambda p: p.ts)
        return Trace(packets, name, check_sorted=False)

    # ------------------------------------------------------------------
    # persistence

    def save(self, path: str) -> None:
        """Write the trace as a compressed columnar npz file."""
        n = len(self.packets)
        cols = {
            "src": np.empty(n, dtype=np.uint32),
            "dst": np.empty(n, dtype=np.uint32),
            "sport": np.empty(n, dtype=np.uint16),
            "dport": np.empty(n, dtype=np.uint16),
            "proto": np.empty(n, dtype=np.uint8),
            "size": np.empty(n, dtype=np.uint16),
            "ts": np.empty(n, dtype=np.float64),
            "kind": np.empty(n, dtype=np.uint8),
        }
        for i, p in enumerate(self.packets):
            cols["src"][i] = p.src
            cols["dst"][i] = p.dst
            cols["sport"][i] = p.sport
            cols["dport"][i] = p.dport
            cols["proto"][i] = p.proto
            cols["size"][i] = p.size
            cols["ts"][i] = p.ts
            cols["kind"][i] = int(p.kind)
        np.savez_compressed(path, name=np.array(self.name), **cols)

    @classmethod
    def load(cls, path: str) -> "Trace":
        """Read a trace written by :meth:`save`."""
        data = np.load(path, allow_pickle=False)
        missing = [c for c in _COLUMNS if c not in data]
        if missing:
            raise ValueError(f"not a trace file, missing columns: {missing}")
        n = len(data["ts"])
        packets = [
            Packet(
                src=int(data["src"][i]),
                dst=int(data["dst"][i]),
                sport=int(data["sport"][i]),
                dport=int(data["dport"][i]),
                proto=int(data["proto"][i]),
                size=int(data["size"][i]),
                ts=float(data["ts"][i]),
                kind=PacketKind(int(data["kind"][i])),
            )
            for i in range(n)
        ]
        name = str(data["name"]) if "name" in data else "trace"
        return cls(packets, name=name, check_sorted=False)

    def __repr__(self) -> str:
        return (
            f"Trace({self.name!r}: {len(self.packets)} pkts, "
            f"{self.n_flows} flows, {self.duration:.3f}s)"
        )
