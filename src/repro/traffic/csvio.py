"""CSV trace interchange.

The binary npz format (:meth:`repro.traffic.trace.Trace.save`) is compact
but opaque; CSV is the lingua franca for importing real captures (e.g. a
``tshark -T fields`` export) or eyeballing synthetic ones.  Columns:

    ts,src,dst,sport,dport,proto,size[,kind]

``src``/``dst`` are dotted quads; ``kind`` is optional (0=regular, 1=
reference, 2=cross; defaults to regular).  Rows must be time-sorted, as any
capture is.
"""

from __future__ import annotations

import csv
from typing import List, Optional

from ..net.addressing import int_to_ip, ip_to_int
from ..net.packet import Packet, PacketKind
from .trace import Trace

__all__ = ["save_csv", "load_csv"]

_REQUIRED = ("ts", "src", "dst", "sport", "dport", "proto", "size")


def save_csv(trace: Trace, path: str, include_kind: bool = True) -> None:
    """Write *trace* as a CSV file with a header row."""
    fields = list(_REQUIRED) + (["kind"] if include_kind else [])
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(fields)
        for p in trace:
            row = [f"{p.ts:.9f}", int_to_ip(p.src), int_to_ip(p.dst),
                   p.sport, p.dport, p.proto, p.size]
            if include_kind:
                row.append(int(p.kind))
            writer.writerow(row)


def load_csv(path: str, name: Optional[str] = None) -> Trace:
    """Read a CSV trace written by :func:`save_csv` (or any conformant
    export).  Raises ValueError on missing columns or unsorted rows."""
    packets: List[Packet] = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        missing = [c for c in _REQUIRED if c not in (reader.fieldnames or [])]
        if missing:
            raise ValueError(f"CSV trace missing columns: {missing}")
        last_ts = float("-inf")
        for line_no, row in enumerate(reader, start=2):
            try:
                ts = float(row["ts"])
                packet = Packet(
                    src=ip_to_int(row["src"]),
                    dst=ip_to_int(row["dst"]),
                    sport=int(row["sport"]),
                    dport=int(row["dport"]),
                    proto=int(row["proto"]),
                    size=int(row["size"]),
                    ts=ts,
                    kind=PacketKind(int(row["kind"])) if row.get("kind") else PacketKind.REGULAR,
                )
            except (KeyError, ValueError) as exc:
                raise ValueError(f"bad CSV trace row at line {line_no}: {exc}") from exc
            if ts < last_ts:
                raise ValueError(f"CSV trace not time-sorted at line {line_no}")
            last_ts = ts
            packets.append(packet)
    return Trace(packets, name=name or path, check_sorted=False)
