"""Lossy Difference Aggregator (Kompella et al., SIGCOMM 2009).

The aggregate-latency baseline the paper positions RLI against: "LDA enables
high-fidelity low network latency measurements ... [but] only provides
aggregate measurements" (Section 5).  We implement it fully so benches can
show the qualitative difference: LDA nails the *aggregate* mean with tiny
state but cannot answer per-flow questions.

Mechanism: sender and receiver keep mirrored banks of buckets; each bucket
holds a (timestamp sum, packet count) pair.  Every packet is hashed —
consistently at both ends — to decide (a) whether the bank samples it and
(b) which bucket accumulates its timestamp.  A packet loss poisons exactly
one bucket (counts mismatch); at collection time only buckets with equal
counts on both sides are usable, and the mean one-way delay is

    (Σ usable rx sums − Σ usable tx sums) / Σ usable counts.

Banks with geometrically decreasing sampling probabilities keep some buckets
usable across a wide range of loss rates.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..net.packet import Packet
from ..sim.ecmp import _mix64

__all__ = ["Lda", "LdaEstimate"]

_SCALE = float(1 << 64)


def _packet_id(packet: Packet) -> int:
    """Deterministic per-packet identity, identical at both ends.

    Real LDA hashes invariant packet content; we hash the 5-tuple plus the
    creation timestamp's bit pattern, unique per packet in a trace.
    """
    src, dst, sport, dport, proto = packet.flow_key
    ts_bits = hash(packet.ts) & ((1 << 64) - 1)
    acc = _mix64(src ^ (dst << 16))
    acc = _mix64(acc ^ (sport << 32) ^ (dport << 8) ^ proto)
    return _mix64(acc ^ ts_bits)


class LdaEstimate:
    """Collection-time output of an LDA pair."""

    __slots__ = ("mean", "samples", "usable_buckets", "total_buckets", "bank")

    def __init__(self, mean: Optional[float], samples: int, usable_buckets: int, total_buckets: int, bank: int):
        self.mean = mean
        self.samples = samples
        self.usable_buckets = usable_buckets
        self.total_buckets = total_buckets
        self.bank = bank

    def __repr__(self) -> str:
        mean = f"{self.mean * 1e6:.2f}us" if self.mean is not None else "n/a"
        return (
            f"LdaEstimate(mean={mean}, samples={self.samples}, "
            f"buckets={self.usable_buckets}/{self.total_buckets}, bank={self.bank})"
        )


class Lda:
    """A sender/receiver LDA pair (both ends in one object for simulation).

    Parameters
    ----------
    n_buckets:
        Buckets per bank.
    bank_probs:
        Sampling probability of each bank (descending).
    seed:
        Salt shared by both ends (as deployed LDAs share their hash config).
    """

    def __init__(self, n_buckets: int = 1024, bank_probs: Tuple[float, ...] = (1.0, 0.1, 0.01), seed: int = 7):
        if n_buckets <= 0:
            raise ValueError(f"n_buckets must be positive: {n_buckets}")
        if not bank_probs:
            raise ValueError("at least one bank required")
        for p in bank_probs:
            if not 0.0 < p <= 1.0:
                raise ValueError(f"bank probability out of (0, 1]: {p}")
        self.n_buckets = n_buckets
        self.bank_probs = tuple(bank_probs)
        self.seed = seed
        n_banks = len(bank_probs)
        self._tx_sum = [[0.0] * n_buckets for _ in range(n_banks)]
        self._tx_cnt = [[0] * n_buckets for _ in range(n_banks)]
        self._rx_sum = [[0.0] * n_buckets for _ in range(n_banks)]
        self._rx_cnt = [[0] * n_buckets for _ in range(n_banks)]
        self.tx_packets = 0
        self.rx_packets = 0

    # ------------------------------------------------------------------

    def _placement(self, packet: Packet) -> List[Tuple[int, int]]:
        """(bank, bucket) pairs this packet lands in — same at both ends."""
        pid = _packet_id(packet)
        out = []
        for bank, prob in enumerate(self.bank_probs):
            decision = _mix64(pid ^ (self.seed + bank * 0x9E37))
            if decision < prob * _SCALE:
                bucket = _mix64(pid ^ (self.seed * 31 + bank)) % self.n_buckets
                out.append((bank, bucket))
        return out

    def on_tx(self, packet: Packet, now: float) -> None:
        """Sender side: account the packet's transmit timestamp."""
        self.tx_packets += 1
        for bank, bucket in self._placement(packet):
            self._tx_sum[bank][bucket] += now
            self._tx_cnt[bank][bucket] += 1

    def on_rx(self, packet: Packet, now: float) -> None:
        """Receiver side: account the packet's receive timestamp."""
        self.rx_packets += 1
        for bank, bucket in self._placement(packet):
            self._rx_sum[bank][bucket] += now
            self._rx_cnt[bank][bucket] += 1

    # pipeline-protocol adapters: the same object serves as sender/receiver
    def on_regular(self, packet: Packet, now: float) -> None:
        self.on_tx(packet, now)

    def observe(self, packet: Packet, now: float) -> None:
        if packet.is_regular:
            self.on_rx(packet, now)

    # ------------------------------------------------------------------

    def estimate(self) -> LdaEstimate:
        """Best estimate across banks (most usable samples wins)."""
        best: Optional[LdaEstimate] = None
        for bank in range(len(self.bank_probs)):
            delay_sum = 0.0
            samples = 0
            usable = 0
            tx_sum, tx_cnt = self._tx_sum[bank], self._tx_cnt[bank]
            rx_sum, rx_cnt = self._rx_sum[bank], self._rx_cnt[bank]
            for b in range(self.n_buckets):
                if tx_cnt[b] > 0 and tx_cnt[b] == rx_cnt[b]:
                    delay_sum += rx_sum[b] - tx_sum[b]
                    samples += tx_cnt[b]
                    usable += 1
            mean = delay_sum / samples if samples else None
            candidate = LdaEstimate(mean, samples, usable, self.n_buckets, bank)
            if best is None or candidate.samples > best.samples:
                best = candidate
        return best

    def __repr__(self) -> str:
        return (
            f"Lda(buckets={self.n_buckets}, banks={self.bank_probs}, "
            f"tx={self.tx_packets}, rx={self.rx_packets})"
        )
