"""Trajectory sampling delay estimation (Duffield & Grossglauser, ToN 2000).

"Duffield et al. proposed trajectory sampling for collecting packet
trajectories across a network ... Using these trajectory samples to infer
loss and delay at different measurement points has been proposed ...
Incorporating flow key in trajectory samples also enables per-flow latency
estimation" (paper Section 5).

Both measurement points sample the *same* subset of packets by hashing
invariant packet content into [0, 1) and keeping those below the sampling
probability; matched (tx, rx) timestamp pairs yield per-packet delays, which
aggregate into per-flow statistics — but only for the sampled subset, so
short flows are usually missed entirely.  The ablation bench contrasts this
coverage gap with RLI, which estimates *every* packet.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.flowstats import FlowStatsTable
from ..net.packet import Packet
from ..sim.ecmp import _mix64
from .lda import _packet_id

__all__ = ["TrajectorySampler"]

_SCALE = float(1 << 64)


class TrajectorySampler:
    """Hash-consistent packet sampling at two measurement points."""

    def __init__(self, prob: float = 0.01, seed: int = 11):
        if not 0.0 < prob <= 1.0:
            raise ValueError(f"sampling probability must be in (0, 1]: {prob}")
        self.prob = prob
        self.seed = seed
        self._tx: Dict[int, Tuple[float, Tuple[int, int, int, int, int]]] = {}
        self._rx: Dict[int, float] = {}
        self.tx_sampled = 0
        self.rx_sampled = 0

    def _sampled(self, packet: Packet) -> int:
        """Return the packet's label if sampled, else 0."""
        pid = _packet_id(packet)
        if _mix64(pid ^ self.seed) < self.prob * _SCALE:
            return pid or 1
        return 0

    # pipeline-protocol adapters
    def on_regular(self, packet: Packet, now: float) -> None:
        label = self._sampled(packet)
        if label:
            self._tx[label] = (now, packet.flow_key)
            self.tx_sampled += 1

    def observe(self, packet: Packet, now: float) -> None:
        if not packet.is_regular:
            return
        label = self._sampled(packet)
        if label:
            self._rx[label] = now
            self.rx_sampled += 1

    # ------------------------------------------------------------------

    def delays(self) -> List[Tuple[Tuple[int, int, int, int, int], float]]:
        """(flow key, delay) for every packet sampled at both points."""
        out = []
        for label, (tx_ts, key) in self._tx.items():
            rx_ts = self._rx.get(label)
            if rx_ts is not None:
                out.append((key, rx_ts - tx_ts))
        return out

    def per_flow(self) -> FlowStatsTable:
        """Per-flow latency statistics over the sampled packets."""
        table = FlowStatsTable()
        for key, delay in self.delays():
            table.add(key, delay)
        return table

    def __repr__(self) -> str:
        return (
            f"TrajectorySampler(p={self.prob}, tx={self.tx_sampled}, rx={self.rx_sampled})"
        )
