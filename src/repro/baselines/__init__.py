"""Comparison baselines from the paper's related work: LDA (aggregate),
Multiflow (NetFlow two-sample), and trajectory sampling."""

from .lda import Lda, LdaEstimate
from .multiflow import MultiflowEstimator
from .trajectory import TrajectorySampler

__all__ = ["Lda", "LdaEstimate", "MultiflowEstimator", "TrajectorySampler"]
