"""Multiflow estimator (Lee et al., INFOCOM 2010 — "Two Samples are Enough").

The opportunistic NetFlow-based per-flow baseline the paper cites: "the two
timestamps already stored on a per-flow basis within NetFlow were exploited
to obtain a crude estimator called Multiflow estimator" (Section 5).

Each end runs a NetFlow/YAF meter (:class:`repro.traffic.flowmeter.FlowMeter`);
a flow's delay estimate is the average of the delays of its first and last
packets:

    d(flow) = ((first_rx − first_tx) + (last_rx − last_tx)) / 2

It needs no extra packets or router changes, but uses exactly two samples
per flow — the benches show how far that falls behind RLI's interpolation
on anything but long, stable flows.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..net.packet import Packet
from ..traffic.flowmeter import FlowMeter

__all__ = ["MultiflowEstimator"]

Key = Tuple[int, int, int, int, int]


class MultiflowEstimator:
    """Two-ended NetFlow metering with the two-sample delay estimator."""

    def __init__(self) -> None:
        self._tx = FlowMeter()
        self._rx = FlowMeter()

    # pipeline-protocol adapters
    def on_regular(self, packet: Packet, now: float) -> None:
        """Sender-side meter sees the packet at time *now*."""
        self._tx.observe(packet, ts=now)

    def observe(self, packet: Packet, now: float) -> None:
        """Receiver-side meter sees the packet at time *now*."""
        if packet.is_regular:
            self._rx.observe(packet, ts=now)

    # ------------------------------------------------------------------

    def estimate_flow(self, key: Key) -> Optional[float]:
        """The two-sample mean-delay estimate for one flow (None if unseen
        at either end)."""
        tx = self._tx.table().get(key)
        rx = self._rx.table().get(key)
        if tx is None or rx is None:
            return None
        first = rx.first_ts - tx.first_ts
        last = rx.last_ts - tx.last_ts
        return 0.5 * (first + last)

    def estimates(self) -> Dict[Key, float]:
        """All flows seen at both ends → two-sample mean-delay estimate."""
        rx_table = self._rx.table()
        out: Dict[Key, float] = {}
        for key, tx in self._tx.table().items():
            rx = rx_table.get(key)
            if rx is None:
                continue
            out[key] = 0.5 * ((rx.first_ts - tx.first_ts) + (rx.last_ts - tx.last_ts))
        return out

    def __repr__(self) -> str:
        return f"MultiflowEstimator(tx_flows={len(self._tx)}, rx_flows={len(self._rx)})"
