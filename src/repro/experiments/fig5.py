"""Figure 5 experiment driver: reference-packet interference with regular
traffic.

"Adaptive scheme fails to adjust reference packet injection rate when a
bottleneck link is not the one which an RLI sender is monitoring.  As a
result, the adaptive scheme produces reference packets at higher rate,
which can alter the characteristics of traffic such as packet loss."

For each bottleneck utilization in the sweep we run the pipeline three
times — without references, with static injection, and with adaptive
injection — and report the *increase* in regular-packet loss rate at the
bottleneck caused by each scheme's reference packets.
"""

from __future__ import annotations

from typing import List, Optional

from ..net.packet import PacketKind
from ..runner.runner import ParallelRunner
from ..runner.spec import SweepSpec
from .config import ExperimentConfig

__all__ = ["Fig5Row", "run_fig5"]


class Fig5Row:
    """Loss-rate differences at one utilization point."""

    def __init__(
        self,
        target_util: float,
        measured_util: float,
        baseline_loss: float,
        static_loss: float,
        adaptive_loss: float,
        static_refs: int,
        adaptive_refs: int,
    ):
        self.target_util = target_util
        self.measured_util = measured_util
        self.baseline_loss = baseline_loss
        self.static_loss = static_loss
        self.adaptive_loss = adaptive_loss
        self.static_refs = static_refs
        self.adaptive_refs = adaptive_refs

    @property
    def static_diff(self) -> float:
        """Loss-rate increase caused by static-scheme references."""
        return self.static_loss - self.baseline_loss

    @property
    def adaptive_diff(self) -> float:
        return self.adaptive_loss - self.baseline_loss

    def __repr__(self) -> str:
        return (
            f"Fig5Row(util={self.measured_util:.3f}, "
            f"static={self.static_diff:+.6f}, adaptive={self.adaptive_diff:+.6f})"
        )


def run_fig5(cfg: Optional[ExperimentConfig] = None, n_seeds: int = 3,
             runner: Optional[ParallelRunner] = None,
             batch: bool = False) -> List[Fig5Row]:
    """The Figure-5 sweep (random cross-traffic model, utilization 82–98 %).

    Loss-rate differences are tiny (the paper's y-axis tops out at 7×10⁻⁴),
    so each point averages ``n_seeds`` cross-traffic selections; within one
    seed the regular trace and cross selection are identical across the
    three runs, making the difference a paired comparison.

    The 3 × ``n_seeds`` × |utilizations| conditions are independent; pass a
    parallel ``runner`` to fan them out.  ``batch=True`` selects the
    columnar pipeline fast path (identical rows).
    """
    if n_seeds < 1:
        raise ValueError(f"n_seeds must be >= 1: {n_seeds}")
    cfg = cfg or ExperimentConfig()
    runner = runner or ParallelRunner()
    spec = SweepSpec.from_config(
        cfg,
        schemes=(None, "static", "adaptive"),
        models=("random",),
        utilizations=tuple(cfg.fig5_utilizations),
        run_seeds=tuple(range(n_seeds)),
        axis_order=("utilization", "run_seed", "scheme", "model", "estimator"),
        batch=batch,
    )
    summaries = iter(runner.run(spec))
    rows = []
    for util in cfg.fig5_utilizations:
        measured = base_loss = static_loss = adaptive_loss = 0.0
        static_refs = adaptive_refs = 0
        for _seed in range(n_seeds):
            baseline = next(summaries)
            static = next(summaries)
            adaptive = next(summaries)
            measured += baseline.measured_util
            base_loss += baseline.loss_rate(PacketKind.REGULAR)
            static_loss += static.loss_rate(PacketKind.REGULAR)
            adaptive_loss += adaptive.loss_rate(PacketKind.REGULAR)
            static_refs += static.refs_injected
            adaptive_refs += adaptive.refs_injected
        rows.append(
            Fig5Row(
                target_util=util,
                measured_util=measured / n_seeds,
                baseline_loss=base_loss / n_seeds,
                static_loss=static_loss / n_seeds,
                adaptive_loss=adaptive_loss / n_seeds,
                static_refs=static_refs // n_seeds,
                adaptive_refs=adaptive_refs // n_seeds,
            )
        )
    return rows
