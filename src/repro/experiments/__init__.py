"""Experiment drivers regenerating every quantitative figure/table of the
paper, plus ablations."""

from .ablations import (
    run_baseline_comparison,
    run_estimator_ablation,
    run_injection_sweep,
    run_sync_error_ablation,
)
from .config import ExperimentConfig, default_scale, derive_seed
from .extensions import (
    run_aqm_comparison,
    run_granularity_comparison,
    run_localization_study,
    run_memory_ablation,
    run_mesh_study,
    run_multihop_ablation,
    run_ptp_study,
    run_tail_accuracy,
)
from .fig4 import Fig4Curve, run_fig4ab, run_fig4c
from .fig5 import Fig5Row, run_fig5
from .placement import PlacementJob, PlacementRow, run_placement
from .workloads import (
    ConditionResult,
    ConditionSummary,
    PipelineWorkload,
    run_condition,
    run_condition_job,
)

__all__ = [
    "run_aqm_comparison",
    "run_granularity_comparison",
    "run_localization_study",
    "run_memory_ablation",
    "run_mesh_study",
    "run_multihop_ablation",
    "run_ptp_study",
    "run_tail_accuracy",
    "run_baseline_comparison",
    "run_estimator_ablation",
    "run_injection_sweep",
    "run_sync_error_ablation",
    "ExperimentConfig",
    "default_scale",
    "derive_seed",
    "Fig4Curve",
    "run_fig4ab",
    "run_fig4c",
    "Fig5Row",
    "run_fig5",
    "PlacementJob",
    "PlacementRow",
    "run_placement",
    "ConditionResult",
    "ConditionSummary",
    "PipelineWorkload",
    "run_condition",
    "run_condition_job",
]
