"""Figure 4 experiment drivers: per-flow estimation accuracy CDFs.

* Figure 4(a): relative error of per-flow **mean** latency estimates,
  {adaptive, static} × {67 %, 93 %} utilization, random cross traffic.
* Figure 4(b): same for per-flow **standard deviation** estimates.
* Figure 4(c): mean estimates, **bursty vs random** cross traffic at
  {34 %, 67 %} utilization.

Both drivers enumerate their condition grid as a declarative
:class:`~repro.runner.spec.SweepSpec` and execute it through a
:class:`~repro.runner.runner.ParallelRunner` — pass ``runner=`` to fan the
conditions out over worker processes, a distributed broker/worker cluster
(:class:`~repro.distrib.runner.DistributedRunner`, or any backend from
:func:`~repro.runner.backends.make_runner`), and/or memoize them on disk;
the default is serial and uncached with identical numbers on every
backend.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.cdf import Ecdf
from ..analysis.metrics import FlowErrorJoin
from ..runner.runner import ParallelRunner
from ..runner.spec import SweepSpec
from .config import ExperimentConfig
from .workloads import ConditionSummary

__all__ = ["Fig4Curve", "run_fig4ab", "run_fig4c"]


class Fig4Curve:
    """One CDF curve of Figure 4, with its provenance."""

    def __init__(self, label: str, summary: ConditionSummary):
        self.label = label
        self.summary = summary

    @property
    def mean_join(self) -> FlowErrorJoin:
        return self.summary.mean_join

    @property
    def std_join(self) -> FlowErrorJoin:
        return self.summary.std_join

    @property
    def mean_ecdf(self) -> Ecdf:
        return Ecdf(self.mean_join.errors)

    @property
    def std_ecdf(self) -> Optional[Ecdf]:
        return Ecdf(self.std_join.errors) if self.std_join.errors else None

    def summary_row(self) -> List[object]:
        """One printable row: the numbers the paper quotes in prose."""
        mean = self.mean_ecdf
        std = self.std_ecdf
        return [
            self.label,
            f"{self.summary.measured_util:.0%}",
            f"{self.summary.mean_true_latency * 1e6:.1f}",
            f"{mean.median:.3f}",
            f"{mean.fraction_below(0.10):.0%}",
            f"{std.median:.3f}" if std else "n/a",
            self.summary.sender_refs_injected,
        ]


def _curves(spec: SweepSpec, runner: Optional[ParallelRunner],
            label_of) -> List[Fig4Curve]:
    runner = runner or ParallelRunner()
    jobs = spec.jobs()
    summaries = runner.run(jobs)
    return [Fig4Curve(label_of(job), summary) for job, summary in zip(jobs, summaries)]


def run_fig4ab(cfg: Optional[ExperimentConfig] = None,
               runner: Optional[ParallelRunner] = None,
               batch: bool = False) -> List[Fig4Curve]:
    """The four curves of Figures 4(a) and 4(b).

    Returns curves labelled ``{scheme}, {util}`` in the paper's legend
    order: adaptive/93, static/93, adaptive/67, static/67.  ``batch=True``
    runs every condition on the columnar pipeline fast path — identical
    curves, several times the throughput.
    """
    cfg = cfg or ExperimentConfig()
    spec = SweepSpec.from_config(
        cfg,
        schemes=("adaptive", "static"),
        models=("random",),
        utilizations=tuple(sorted(cfg.fig4ab_utilizations, reverse=True)),
        batch=batch,
    )
    return _curves(spec, runner,
                   lambda job: f"{job.scheme}, {job.target_util:.0%}")


def run_fig4c(cfg: Optional[ExperimentConfig] = None,
              runner: Optional[ParallelRunner] = None,
              batch: bool = False) -> List[Fig4Curve]:
    """The four curves of Figure 4(c): bursty vs random at 34 % and 67 %.

    The paper uses the adaptive scheme's accuracy for this comparison;
    injection is held fixed (adaptive) while the cross-traffic model varies.
    """
    cfg = cfg or ExperimentConfig()
    spec = SweepSpec.from_config(
        cfg,
        schemes=("adaptive",),
        models=("bursty", "random"),
        utilizations=tuple(sorted(cfg.fig4c_utilizations, reverse=True)),
        axis_order=("model", "utilization", "scheme", "estimator", "run_seed"),
        batch=batch,
    )
    return _curves(spec, runner,
                   lambda job: f"{job.model}, {job.target_util:.0%}")
