"""Figure 4 experiment drivers: per-flow estimation accuracy CDFs.

* Figure 4(a): relative error of per-flow **mean** latency estimates,
  {adaptive, static} × {67 %, 93 %} utilization, random cross traffic.
* Figure 4(b): same for per-flow **standard deviation** estimates.
* Figure 4(c): mean estimates, **bursty vs random** cross traffic at
  {34 %, 67 %} utilization.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.cdf import Ecdf
from ..analysis.metrics import FlowErrorJoin, flow_mean_errors, flow_std_errors
from .config import ExperimentConfig
from .workloads import ConditionResult, PipelineWorkload, run_condition

__all__ = ["Fig4Curve", "run_fig4ab", "run_fig4c"]


class Fig4Curve:
    """One CDF curve of Figure 4, with its provenance."""

    def __init__(
        self,
        label: str,
        condition: ConditionResult,
        mean_join: FlowErrorJoin,
        std_join: FlowErrorJoin,
    ):
        self.label = label
        self.condition = condition
        self.mean_join = mean_join
        self.std_join = std_join

    @property
    def mean_ecdf(self) -> Ecdf:
        return Ecdf(self.mean_join.errors)

    @property
    def std_ecdf(self) -> Optional[Ecdf]:
        return Ecdf(self.std_join.errors) if self.std_join.errors else None

    def summary_row(self) -> List[object]:
        """One printable row: the numbers the paper quotes in prose."""
        mean = self.mean_ecdf
        std = self.std_ecdf
        return [
            self.label,
            f"{self.condition.measured_util:.0%}",
            f"{self.condition.mean_true_latency * 1e6:.1f}",
            f"{mean.median:.3f}",
            f"{mean.fraction_below(0.10):.0%}",
            f"{std.median:.3f}" if std else "n/a",
            self.condition.sender.refs_injected,
        ]


def _measure(label: str, condition: ConditionResult) -> Fig4Curve:
    receiver = condition.receiver
    return Fig4Curve(
        label,
        condition,
        flow_mean_errors(receiver.flow_estimated, receiver.flow_true),
        flow_std_errors(receiver.flow_estimated, receiver.flow_true),
    )


def run_fig4ab(cfg: Optional[ExperimentConfig] = None) -> List[Fig4Curve]:
    """The four curves of Figures 4(a) and 4(b).

    Returns curves labelled ``{scheme}, {util}`` in the paper's legend
    order: adaptive/93, static/93, adaptive/67, static/67.
    """
    cfg = cfg or ExperimentConfig()
    workload = PipelineWorkload(cfg)
    curves = []
    for util in sorted(cfg.fig4ab_utilizations, reverse=True):
        for scheme in ("adaptive", "static"):
            condition = run_condition(workload, scheme, "random", util)
            curves.append(_measure(f"{scheme}, {util:.0%}", condition))
    return curves


def run_fig4c(cfg: Optional[ExperimentConfig] = None) -> List[Fig4Curve]:
    """The four curves of Figure 4(c): bursty vs random at 34 % and 67 %.

    The paper uses the adaptive scheme's accuracy for this comparison;
    injection is held fixed (adaptive) while the cross-traffic model varies.
    """
    cfg = cfg or ExperimentConfig()
    workload = PipelineWorkload(cfg)
    curves = []
    for model in ("bursty", "random"):
        for util in sorted(cfg.fig4c_utilizations, reverse=True):
            condition = run_condition(workload, "adaptive", model, util)
            curves.append(_measure(f"{model}, {util:.0%}", condition))
    return curves
