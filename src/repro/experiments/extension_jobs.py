"""Runner jobs for the extension and localization studies.

Each job is a frozen dataclass of plain values — picklable across a
``multiprocessing`` boundary and hashable into a stable
:meth:`cache_token` — mirroring :class:`~repro.runner.spec.JobSpec` (the
pipeline conditions) and :class:`~repro.experiments.placement.PlacementJob`.

Two shapes of job live here:

* **whole-condition jobs** (:class:`PtpJob`, :class:`MeshJob`) — one
  independent simulation each, parallel across conditions;
* **shard jobs** (:class:`MultihopShardJob`, :class:`GranularityShardJob`,
  :class:`LocalizationShardJob`) — the simulation runs *once* per condition
  (memoized below, prewarmed pre-fork so workers inherit it copy-on-write)
  and records every receiver's observation log (columnar
  :class:`~repro.core.obslog.ObservationColumns`, a fraction of the tuple
  log's memory); each shard job then replays the log restricted to its
  flow shard (:mod:`repro.core.replay`), so one large condition's per-flow
  estimation fans out over workers instead of serializing on one core.
  The shared ``run_chunk`` additionally replays a whole chunk of
  same-condition shards in one log pass — the distributed backend's
  dispatch envelope (:func:`~repro.core.replay.replay_observations_multi`).

Seed discipline: every random sub-stream (per-hop cross traffic, per-pair
mesh traces, PTP noise) takes a :func:`~repro.experiments.config.derive_seed`
of the job's ``run_seed`` and a stream label — no two conditions or streams
can silently share an RNG stream, and the seeds sit inside the cache tokens
so the :class:`~repro.runner.cache.ResultCache` distinguishes them.

Every simulation-backed job also carries the ``batch`` knob: ``True``
runs the condition on the columnar fast path (the chain's
:meth:`~repro.sim.chain.SwitchChain.run_batch`, or the fat-tree's
:class:`~repro.sim.fatpath.FatTreeFastPath` behind the deployments) with
**bitwise-identical** results.  ``batch`` sits in both the cache token
and the ``prepare_key`` — identical values either way, but memoized
artifacts and cached timings stay honest per path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.replay import ReplayTables, replay_observations, replay_observations_multi
from ..runner.spec import ConfigItems
from .config import derive_seed

__all__ = [
    "ShardedSegments",
    "MultihopShardJob",
    "GranularityShardJob",
    "LocalizationShardJob",
    "PtpJob",
    "MeshJob",
]

# Fields deliberately absent from prepare_key (checked by reprolint
# KEY002): prepare_key names the memoized *per-condition* simulation
# artifact, which every flow shard of that condition shares — the shard
# selector must NOT split the memo, or prewarming would rebuild one
# simulation per shard and chunked replay could not batch shards.
# cache_token still carries shard/n_shards, so cached *results* never
# alias across shards.
PREPARE_KEY_EXEMPT = {
    "MultihopShardJob.shard": "replay selector over the shared event log",
    "MultihopShardJob.n_shards": "replay partition count; log is shared",
    "GranularityShardJob.shard": "replay selector over the shared event log",
    "GranularityShardJob.n_shards": "replay partition count; log is shared",
    "LocalizationShardJob.shard": "replay selector over the shared event log",
    "LocalizationShardJob.n_shards": "replay partition count; log is shared",
}


# ----------------------------------------------------------------------
# memoized per-condition simulation artifacts
#
# A condition's shard jobs all need the same recorded observation log.
# Jobs advertise the log's identity via ``prepare_key``: the runner builds
# it once in the parent before forking (children inherit it copy-on-write),
# and under spawn each worker rebuilds it on first use.  Entries built by
# ``prepare()`` are *pinned* — a prewarmed log must survive until the fork
# however many conditions the sweep has — and unpinned again by the
# runner's ``release_prepared()`` call once its pool is done, since the
# parent's copy is dead weight after the children inherit it.  Entries
# built lazily inside ``run()`` stay in a bounded FIFO so a long-lived
# worker process does not accumulate logs forever.

_SIM_CACHE: Dict[tuple, object] = {}
_SIM_PINNED: set = set()
_SIM_CACHE_SLOTS = 8


def _memoized_sim(key: tuple, build: Callable[[], object],
                  pin: bool = False) -> object:
    artifact = _SIM_CACHE.get(key)
    if artifact is None:
        artifact = build()
        evictable = [k for k in _SIM_CACHE if k not in _SIM_PINNED]
        while evictable and len(_SIM_CACHE) >= _SIM_CACHE_SLOTS:
            _SIM_CACHE.pop(evictable.pop(0))
        _SIM_CACHE[key] = artifact
    if pin:
        _SIM_PINNED.add(key)
    return artifact


def _release_sim(key: tuple) -> None:
    """Unpin and drop one prewarmed artifact (see ``_memoized_sim``)."""
    _SIM_PINNED.discard(key)
    _SIM_CACHE.pop(key, None)


class _ShardJobBase:
    """Replay/pin/chunk plumbing shared by the sharded job types.

    Subclasses provide ``prepare_key``, ``_build()`` (run the simulation,
    return its artifact), ``_segments(sim)`` (the recorded ``(name,
    events)`` logs) and optionally ``_meta(sim)``; this base turns those
    into the runner's job interface — ``prepare``/``release_prepared``
    (pre-fork prewarming), ``run`` (replay one shard), and ``run_chunk``
    (replay a whole chunk of same-condition shards in one log pass, the
    distributed backend's dispatch envelope).
    """

    def _build(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def _segments(self, sim) -> List[Tuple[str, list]]:  # pragma: no cover
        raise NotImplementedError

    def _meta(self, sim) -> dict:
        return {}

    def prepare(self) -> None:
        _memoized_sim(self.prepare_key, self._build, pin=True)

    def release_prepared(self) -> None:
        _release_sim(self.prepare_key)

    def run(self) -> "ShardedSegments":
        sim = _memoized_sim(self.prepare_key, self._build)
        segments = [
            (name, replay_observations(events, shard=self.shard,
                                       n_shards=self.n_shards))
            for name, events in self._segments(sim)
        ]
        return ShardedSegments(segments, meta=self._meta(sim))

    def run_chunk(self, jobs: Sequence["_ShardJobBase"]) -> List["ShardedSegments"]:
        """Run several shards of one condition with a single log pass.

        All *jobs* must share this job's ``prepare_key`` (the broker's
        chunker guarantees it); each returned :class:`ShardedSegments` is
        bitwise-identical to what that job's own :meth:`run` would build.
        """
        for job in jobs:
            if job.prepare_key != self.prepare_key or job.n_shards != self.n_shards:
                raise ValueError(
                    f"chunk mixes conditions: {job!r} vs {self!r}"
                )
        sim = _memoized_sim(self.prepare_key, self._build)
        shards = tuple(job.shard for job in jobs)
        replayed = [
            (name, replay_observations_multi(events, shards=shards,
                                             n_shards=self.n_shards))
            for name, events in self._segments(sim)
        ]
        return [
            ShardedSegments(
                [(name, by_shard[job.shard]) for name, by_shard in replayed],
                meta=self._meta(sim),
            )
            for job in jobs
        ]


# ----------------------------------------------------------------------
# shard results


class ShardedSegments:
    """One shard's replayed per-segment tables plus condition metadata.

    ``segments`` preserves the deployment's segment order; each table holds
    only the shard's flows, so shards merge by disjoint union
    (:func:`~repro.core.replay.merge_shard_tables`).
    """

    def __init__(self, segments: List[Tuple[str, ReplayTables]],
                 meta: Optional[dict] = None):
        self.segments = segments
        self.meta = meta or {}


# ----------------------------------------------------------------------
# multihop ablation


def _multihop_log(config: ConfigItems, n_hops: int, utilization: float,
                  run_seed: int, batch: bool = False):
    """Simulate one chain condition, returning the receiver's event log.

    With ``batch=True`` the chain runs its columnar fast path
    (:meth:`~repro.sim.chain.SwitchChain.run_batch`): per-hop cross
    arrivals stay columns (``arrivals_batch``, same seeded selection) and
    the recorded log is **bitwise identical** to the per-object path's.
    """
    from ..core.obslog import make_observation_log
    from ..sim.chain import ChainConfig, SwitchChain
    from ..traffic.crosstraffic import UniformModel, calibrate_selection_probability
    from .workloads import workload_for

    workload = workload_for(config)
    cfg = workload.cfg
    prob = calibrate_selection_probability(
        workload.cross,
        regular_bytes=workload.regular.total_bytes,
        rate_bps=workload.rate_bps,
        duration=cfg.duration,
        target_utilization=utilization,
    )
    sender = workload.make_sender("static")
    # columnar log: ~4x less prepared-artifact memory per condition, and
    # fork-inherited pages stay clean (replay never touches refcounts)
    log = make_observation_log("array")
    receiver = workload.make_receiver(observation_log=log, record_only=True)
    models = {
        hop: UniformModel(prob, seed=derive_seed(run_seed, "multihop-cross", hop))
        for hop in range(n_hops)
    }
    chain = SwitchChain(ChainConfig(
        n_hops=n_hops,
        rate_bps=workload.rate_bps,
        buffer_bytes=cfg.buffer_bytes,
        proc_delay=cfg.proc_delay,
        batch=batch,
    ))
    if batch:
        chain.run(workload.regular,
                  {hop: m.arrivals_batch(workload.cross)
                   for hop, m in models.items()},
                  sender=sender, receiver=receiver, duration=cfg.duration)
    else:
        chain.run(workload.regular.clone_packets(),
                  {hop: m.arrivals(workload.cross)
                   for hop, m in models.items()},
                  sender=sender, receiver=receiver, duration=cfg.duration)
    return log


@dataclass(frozen=True)
class MultihopShardJob(_ShardJobBase):
    """One flow shard of one chain length of the multihop ablation."""

    config: ConfigItems
    n_hops: int
    utilization: float
    run_seed: int = 0
    shard: int = 0
    n_shards: int = 1
    batch: bool = False

    @property
    def prepare_key(self) -> tuple:
        return ("multihop", self.config, self.n_hops, self.utilization,
                self.run_seed, self.batch)

    def _build(self):
        return _multihop_log(self.config, self.n_hops, self.utilization,
                             self.run_seed, self.batch)

    def _segments(self, sim) -> List[Tuple[str, list]]:
        return [("chain", sim)]

    def cache_token(self) -> dict:
        return {
            "kind": "multihop-shard",
            "config": dict(self.config),
            "n_hops": self.n_hops,
            "utilization": self.utilization,
            "run_seed": self.run_seed,
            "shard": self.shard,
            "n_shards": self.n_shards,
            "batch": self.batch,
        }


# ----------------------------------------------------------------------
# granularity comparison (full RLI vs RLIR on one degraded fabric)


def _degraded_fattree(slow_factor: float):
    """A k=4 fabric with one core egress link running slow_factor slower."""
    from ..sim.topology import FatTree, LinkParams

    ft = FatTree(4, LinkParams(rate_bps=40e6, buffer_bytes=128 * 1024,
                               proc_delay=1e-6, prop_delay=0.5e-6))
    core = ft.cores[0][0]
    port = core.ports[ft.port_toward(core, ft.aggs[1][0])]
    port.queue.set_rate(40e6 / slow_factor)
    return ft


def _granularity_trace(ft, n_packets: int, seed: int):
    from ..traffic.synthetic import TraceConfig, generate_fattree_trace

    pairs = [(ft.host_address(0, 0, h), ft.host_address(1, 0, g))
             for h in range(2) for g in range(2)]
    return generate_fattree_trace(
        TraceConfig(duration=1.0, n_packets=n_packets, mean_flow_pkts=12.0),
        pairs, seed=seed, name="granularity")


def _granularity_sim(deployment: str, n_packets: int, trace_seed: int,
                     slow_factor: float) -> dict:
    """Run one deployment over the degraded fabric; record all receivers.

    Both halves stay on the event engine by design: the RLIR deployment
    here uses the paper's *marking* demux (the classifier reads per-packet
    ToS state, which no columnar pass reproduces) and full RLI's per-hop
    segments terminate references at aggregation switches, outside the
    layered driver's model — so this study has no ``batch`` knob.
    """
    from ..core.full_rli import FullRliDeployment
    from ..core.injection import StaticInjection
    from ..core.placement import instances_tor_pair
    from ..core.rlir import RlirDeployment

    ft = _degraded_fattree(slow_factor)
    if deployment == "full":
        dep = FullRliDeployment(ft, src=(0, 0), dst=(1, 0),
                                policy_factory=lambda: StaticInjection(10),
                                record_observations="array")
        result = dep.run([_granularity_trace(ft, n_packets, trace_seed)])
        instances = result.instance_count()
        n_segments = len(result.receivers)
    elif deployment == "rlir":
        dep = RlirDeployment(ft, src=(0, 0), dst=(1, 0),
                             policy_factory=lambda: StaticInjection(10),
                             record_observations="array")
        result = dep.run([_granularity_trace(ft, n_packets, trace_seed)])
        instances = instances_tor_pair(4)
        n_segments = len(result.segments())
    else:
        raise ValueError(f"unknown deployment: {deployment!r}")
    return {
        "segments": dep.observation_logs(),
        "instances": instances,
        "n_segments": n_segments,
    }


@dataclass(frozen=True)
class GranularityShardJob(_ShardJobBase):
    """One flow shard of one deployment of the granularity comparison.

    Both deployments ("full", "rlir") measure the *same* trace seed by
    design — the study compares architectures on one workload — but the
    seed is part of the job identity, so distinct seeds get distinct cache
    entries and sweeps over seeds never alias.
    """

    deployment: str
    n_packets: int
    trace_seed: int = 21
    slow_factor: float = 4.0
    shard: int = 0
    n_shards: int = 1

    @property
    def prepare_key(self) -> tuple:
        return ("granularity", self.deployment, self.n_packets,
                self.trace_seed, self.slow_factor)

    def _build(self):
        return _granularity_sim(self.deployment, self.n_packets,
                                self.trace_seed, self.slow_factor)

    def _segments(self, sim) -> List[Tuple[str, list]]:
        return sim["segments"]

    def _meta(self, sim) -> dict:
        return {"instances": sim["instances"], "n_segments": sim["n_segments"]}

    def cache_token(self) -> dict:
        return {
            "kind": "granularity-shard",
            "deployment": self.deployment,
            "n_packets": self.n_packets,
            "trace_seed": self.trace_seed,
            "slow_factor": self.slow_factor,
            "shard": self.shard,
            "n_shards": self.n_shards,
        }


# ----------------------------------------------------------------------
# localization study (the CLI demo: incast across an RLIR ToR pair)


def _localization_sim(n_packets: int, demux_method: str, run_seed: int,
                      batch: bool = False) -> dict:
    from ..core.injection import StaticInjection
    from ..core.rlir import RlirDeployment
    from ..sim.topology import FatTree, LinkParams
    from ..traffic.synthetic import TraceConfig, generate_fattree_trace

    ft = FatTree(4, LinkParams(rate_bps=100e6, buffer_bytes=256 * 1024))
    measured_pairs = [(ft.host_address(0, 0, h), ft.host_address(1, 0, g))
                      for h in range(2) for g in range(2)]
    incast_pairs = [(ft.host_address(p, e, h), ft.host_address(1, 0, g))
                    for p in (2, 3) for e in range(2) for h in range(2)
                    for g in range(2)]
    measured = generate_fattree_trace(
        TraceConfig(duration=1.0, n_packets=n_packets), measured_pairs,
        seed=derive_seed(run_seed, "localize-measured"))
    incast = generate_fattree_trace(
        TraceConfig(duration=1.0, n_packets=3 * n_packets), incast_pairs,
        seed=derive_seed(run_seed, "localize-incast"))
    deployment = RlirDeployment(ft, src=(0, 0), dst=(1, 0),
                                policy_factory=lambda: StaticInjection(50),
                                demux_method=demux_method,
                                record_observations="array", batch=batch)
    deployment.run([measured, incast])
    return {"segments": deployment.observation_logs()}


@dataclass(frozen=True)
class LocalizationShardJob(_ShardJobBase):
    """One flow shard of the incast localization scenario."""

    n_packets: int
    demux_method: str = "reverse-ecmp"
    run_seed: int = 0
    shard: int = 0
    n_shards: int = 1
    batch: bool = False

    @property
    def prepare_key(self) -> tuple:
        return ("localize", self.n_packets, self.demux_method, self.run_seed,
                self.batch)

    def _build(self):
        return _localization_sim(self.n_packets, self.demux_method,
                                 self.run_seed, self.batch)

    def _segments(self, sim) -> List[Tuple[str, list]]:
        return sim["segments"]

    def cache_token(self) -> dict:
        return {
            "kind": "localization-shard",
            "n_packets": self.n_packets,
            "demux_method": self.demux_method,
            "run_seed": self.run_seed,
            "shard": self.shard,
            "n_shards": self.n_shards,
            "batch": self.batch,
        }


# ----------------------------------------------------------------------
# PTP sync study


@dataclass(frozen=True)
class PtpJob:
    """One (jitter level, noise seed) cell of the PTP sync study."""

    jitter: float
    true_offset: float = 250e-6
    rounds: int = 32
    seed_index: int = 0
    run_seed: int = 0

    def cache_token(self) -> dict:
        return {
            "kind": "ptp",
            "jitter": self.jitter,
            "true_offset": self.true_offset,
            "rounds": self.rounds,
            "seed_index": self.seed_index,
            "run_seed": self.run_seed,
        }

    def run(self) -> float:
        from ..sim.ptp import PtpSession

        session = PtpSession(
            true_offset=self.true_offset,
            queue_jitter=self.jitter,
            seed=derive_seed(self.run_seed, "ptp-noise", self.seed_index),
        )
        return abs(session.synchronize(rounds=self.rounds).residual_error)


# ----------------------------------------------------------------------
# multi-pair mesh study


@dataclass(frozen=True)
class MeshJob:
    """The shared-fabric mesh study as one job.

    All pairs share one fabric and the core instances — each pair's traffic
    is cross traffic for the others — so the condition is irreducibly one
    simulation; routing it through the runner buys caching and overlap with
    other studies, not an internal split.
    """

    pairs: Tuple[Tuple[Tuple[int, int], Tuple[int, int]], ...]
    n_packets_per_pair: int
    run_seed: int = 0
    batch: bool = False

    def cache_token(self) -> dict:
        return {
            "kind": "mesh",
            "pairs": self.pairs,
            "n_packets_per_pair": self.n_packets_per_pair,
            "run_seed": self.run_seed,
            "batch": self.batch,
        }

    def run(self) -> List[Tuple[str, int, float, float]]:
        from ..analysis.cdf import Ecdf
        from ..analysis.metrics import flow_mean_errors
        from ..core.injection import StaticInjection
        from ..core.mesh import RlirMesh
        from ..sim.topology import FatTree, LinkParams
        from ..traffic.synthetic import TraceConfig, generate_fattree_trace

        ft = FatTree(4, LinkParams(rate_bps=40e6, buffer_bytes=256 * 1024,
                                   proc_delay=1e-6, prop_delay=0.5e-6))
        mesh = RlirMesh(ft, list(self.pairs),
                        policy_factory=lambda: StaticInjection(20),
                        batch=self.batch)
        traces = []
        for i, (src, dst) in enumerate(self.pairs):
            host_pairs = [(ft.host_address(*src, h), ft.host_address(*dst, g))
                          for h in range(2) for g in range(2)]
            traces.append(generate_fattree_trace(
                TraceConfig(duration=1.0, n_packets=self.n_packets_per_pair,
                            mean_flow_pkts=12.0),
                host_pairs, seed=derive_seed(self.run_seed, "mesh-trace", i),
                name=f"{src}->{dst}"))
        result = mesh.run(traces)

        rows = []
        for src, dst in self.pairs:
            view = result.pair(src, dst)
            j2 = flow_mean_errors(view.segment2_estimated(), view.segment2_true())
            e2e = view.end_to_end()
            e2e_errors = [abs(e - t) / t for _, e, t in e2e if t > 0]
            rows.append((
                f"{src}->{dst}",
                len(j2.errors),
                Ecdf(j2.errors).median if j2.errors else float("nan"),
                Ecdf(e2e_errors).median if e2e_errors else float("nan"),
            ))
        return rows
