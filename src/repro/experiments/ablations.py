"""Ablation studies on the design choices DESIGN.md calls out.

Not figures from the paper, but benches that justify/inspect its design:

* estimator ablation — linear interpolation vs previous/nearest reference
  (quantifies the value of interpolating rather than holding);
* injection-gap sweep — accuracy as a function of static n (why 1-and-10 vs
  1-and-100 matters an order of magnitude);
* clock-sync sensitivity — how residual sender/receiver offset corrupts
  per-flow estimates (why the paper requires IEEE 1588/GPS);
* baseline comparison — RLI vs LDA (aggregate only) vs Multiflow vs
  trajectory sampling on the identical workload.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.cdf import Ecdf
from ..analysis.metrics import flow_mean_errors
from ..baselines.lda import Lda
from ..baselines.multiflow import MultiflowEstimator
from ..baselines.trajectory import TrajectorySampler
from ..core.flowstats import StreamingStats
from ..core.receiver import RliReceiver
from ..core.sender import RliSender
from ..runner.runner import ParallelRunner
from ..runner.spec import JobSpec
from ..sim.pipeline import TwoSwitchPipeline
from .config import ExperimentConfig
from .workloads import PipelineWorkload

__all__ = [
    "run_estimator_ablation",
    "run_injection_sweep",
    "run_sync_error_ablation",
    "run_baseline_comparison",
]


def run_estimator_ablation(
    cfg: Optional[ExperimentConfig] = None,
    utilization: float = 0.93,
    estimators: Tuple[str, ...] = ("linear", "previous", "nearest"),
    runner: Optional[ParallelRunner] = None,
) -> Dict[str, Ecdf]:
    """Median flow-mean error per interpolation strategy (same workload)."""
    cfg = cfg or ExperimentConfig()
    runner = runner or ParallelRunner()
    jobs = [
        JobSpec.from_config(cfg, "static", "random", utilization, estimator=estimator)
        for estimator in estimators
    ]
    return {
        estimator: Ecdf(summary.mean_join.errors)
        for estimator, summary in zip(estimators, runner.run(jobs))
    }


def run_injection_sweep(
    cfg: Optional[ExperimentConfig] = None,
    utilization: float = 0.93,
    gaps: Tuple[int, ...] = (10, 30, 100, 300, 1000),
    runner: Optional[ParallelRunner] = None,
) -> List[Tuple[int, float, int]]:
    """(n, median flow-mean relative error, refs injected) per static gap."""
    cfg = cfg or ExperimentConfig()
    runner = runner or ParallelRunner()
    jobs = [
        JobSpec.from_config(cfg, "static", "random", utilization, static_n=n)
        for n in gaps
    ]
    return [
        (n, Ecdf(summary.mean_join.errors).median, summary.refs_injected)
        for n, summary in zip(gaps, runner.run(jobs))
    ]


def run_sync_error_ablation(
    cfg: Optional[ExperimentConfig] = None,
    utilization: float = 0.93,
    offsets: Tuple[float, ...] = (0.0, 1e-6, 10e-6, 100e-6),
    runner: Optional[ParallelRunner] = None,
) -> List[Tuple[float, float]]:
    """(receiver clock offset, median flow-mean relative error).

    A positive receiver offset inflates every reference delay sample by the
    offset, biasing all estimates — the reason RLI requires hardware time
    sync.
    """
    cfg = cfg or ExperimentConfig()
    runner = runner or ParallelRunner()
    jobs = [
        JobSpec.from_config(cfg, "static", "random", utilization, clock_offset=offset)
        for offset in offsets
    ]
    return [
        (offset, Ecdf(summary.mean_join.errors).median)
        for offset, summary in zip(offsets, runner.run(jobs))
    ]


class _TeeSender:
    """Feed the regular stream to the RLI sender and passive baselines."""

    def __init__(self, rli: RliSender, passive: List):
        self.rli = rli
        self.passive = passive

    def on_regular(self, packet, now):
        for observer in self.passive:
            observer.on_regular(packet, now)
        return self.rli.on_regular(packet, now)


class _TeeReceiver:
    """Feed bottleneck departures to the RLI receiver and passive baselines."""

    def __init__(self, rli: RliReceiver, passive: List):
        self.rli = rli
        self.passive = passive

    def observe(self, packet, now):
        for observer in self.passive:
            observer.observe(packet, now)
        self.rli.observe(packet, now)


def run_baseline_comparison(
    cfg: Optional[ExperimentConfig] = None,
    utilization: float = 0.93,
) -> Dict[str, object]:
    """RLI vs LDA vs Multiflow vs trajectory sampling, one workload.

    Returns a dict with per-method summaries:
    ``rli_median_re``/``multiflow_median_re``/``trajectory_median_re``
    (per-flow mean relative error medians and coverage) and the LDA
    aggregate-mean error.
    """
    cfg = cfg or ExperimentConfig()
    workload = PipelineWorkload(cfg)
    rli_sender = workload.make_sender("static")
    rli_receiver = workload.make_receiver()
    lda = Lda()
    multiflow = MultiflowEstimator()
    trajectory = TrajectorySampler(prob=0.05)
    pipeline = TwoSwitchPipeline(workload.pipeline_config)
    pipeline.run(
        regular=workload.regular.clone_packets(),
        cross=workload.cross_arrivals("random", utilization),
        sender=_TeeSender(rli_sender, [lda, multiflow, trajectory]),
        receiver=_TeeReceiver(rli_receiver, [lda, multiflow, trajectory]),
        duration=cfg.duration,
    )
    rli_receiver.finalize()

    truth = rli_receiver.flow_true
    rli_join = flow_mean_errors(rli_receiver.flow_estimated, truth)

    # Multiflow: per-flow two-sample estimates vs the same truth
    mf_errors = []
    mf_covered = 0
    for key, est in multiflow.estimates().items():
        t = truth.get(key)
        if t is None or t.mean <= 0:
            continue
        mf_covered += 1
        mf_errors.append(abs(est - t.mean) / t.mean)

    # Trajectory: per-flow stats over sampled packets vs truth
    tr_errors = []
    tr_covered = 0
    for key, stats in trajectory.per_flow().items():
        t = truth.get(key)
        if t is None or t.mean <= 0:
            continue
        tr_covered += 1
        tr_errors.append(abs(stats.mean - t.mean) / t.mean)

    # LDA: aggregate mean vs pooled truth
    pooled = StreamingStats()
    for _, stats in truth.items():
        pooled.merge(stats)
    lda_estimate = lda.estimate()
    lda_error = (
        abs(lda_estimate.mean - pooled.mean) / pooled.mean
        if lda_estimate.mean is not None and pooled.mean > 0
        else None
    )

    n_flows = len(truth)
    return {
        "n_flows": n_flows,
        "rli_median_re": Ecdf(rli_join.errors).median,
        "rli_coverage": rli_join.joined / n_flows if n_flows else 0.0,
        "multiflow_median_re": Ecdf(mf_errors).median if mf_errors else None,
        "multiflow_coverage": mf_covered / n_flows if n_flows else 0.0,
        "trajectory_median_re": Ecdf(tr_errors).median if tr_errors else None,
        "trajectory_coverage": tr_covered / n_flows if n_flows else 0.0,
        "lda_aggregate_re": lda_error,
        "lda_estimate": lda_estimate,
        "true_aggregate_mean": pooled.mean,
    }
