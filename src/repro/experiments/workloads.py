"""Shared workload construction for the pipeline experiments.

Builds (and caches) the regular/cross traces, derives the link rate that
puts the regular workload at the paper's ~22 % operating point, and wires
RLI senders/receivers for one condition of Figure 4/5.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.demux import SingleSenderDemux
from ..core.injection import AdaptiveInjection, InjectionPolicy, StaticInjection
from ..core.receiver import RliReceiver
from ..core.sender import RefTemplate, RliSender
from ..net.addressing import Prefix, ip_to_int
from ..net.packet import Packet
from ..sim.pipeline import PipelineConfig, PipelineResult, TwoSwitchPipeline
from ..traffic.crosstraffic import (
    BurstyModel,
    UniformModel,
    calibrate_selection_probability,
)
from ..traffic.synthetic import TraceConfig, generate_trace
from ..traffic.trace import Trace
from .config import CROSS_SRC_BASE, REGULAR_SRC_BASE, ExperimentConfig

__all__ = ["PipelineWorkload", "ConditionResult", "run_condition"]

PIPELINE_SENDER_ID = 1

_trace_cache: Dict[Tuple, Trace] = {}


def _cached_trace(kind: str, cfg: ExperimentConfig) -> Trace:
    """Build (once) the regular or cross trace for this config."""
    key = (kind, cfg.n_regular_packets, cfg.n_cross_packets, cfg.duration, cfg.seed)
    trace = _trace_cache.get(key)
    if trace is not None:
        return trace
    if kind == "regular":
        tc = TraceConfig(
            duration=cfg.duration,
            n_packets=cfg.n_regular_packets,
            mean_flow_pkts=cfg.mean_flow_pkts,
            src_base=REGULAR_SRC_BASE,
        )
        trace = generate_trace(tc, seed=cfg.seed, name="regular")
    elif kind == "cross":
        tc = TraceConfig(
            duration=cfg.duration,
            n_packets=cfg.n_cross_packets,
            mean_flow_pkts=cfg.mean_flow_pkts,
            src_base=CROSS_SRC_BASE,
            dst_base="10.10.0.0",
        )
        trace = generate_trace(tc, seed=cfg.seed + 1, name="cross")
    else:
        raise ValueError(f"unknown trace kind: {kind}")
    _trace_cache[key] = trace
    return trace


class PipelineWorkload:
    """Traces + physical parameters for one experiment configuration."""

    def __init__(self, cfg: ExperimentConfig):
        self.cfg = cfg
        self.regular = _cached_trace("regular", cfg)
        self.cross = _cached_trace("cross", cfg)
        # pick the link rate that puts the regular workload alone at the
        # paper's ~22% utilization operating point
        self.rate_bps = self.regular.total_bytes * 8.0 / (cfg.duration * cfg.base_utilization)
        self.pipeline_config = PipelineConfig(
            rate1_bps=self.rate_bps,
            rate2_bps=self.rate_bps,
            buffer1_bytes=cfg.buffer_bytes,
            buffer2_bytes=cfg.buffer_bytes,
            proc_delay=cfg.proc_delay,
        )
        self.regular_prefix = Prefix.parse(f"{REGULAR_SRC_BASE}/16")

    # ------------------------------------------------------------------

    def selection_probability(self, target_util: float) -> float:
        """Selection probability hitting *target_util* at Switch 2."""
        return calibrate_selection_probability(
            self.cross,
            regular_bytes=self.regular.total_bytes,
            rate_bps=self.rate_bps,
            duration=self.cfg.duration,
            target_utilization=target_util,
        )

    def cross_arrivals(self, model: str, target_util: float, seed: int = 0) -> List[Tuple[float, Packet]]:
        """Build one run's cross-traffic arrivals under *model*."""
        prob = self.selection_probability(target_util)
        if model == "random":
            return UniformModel(prob, seed=seed).arrivals(self.cross)
        if model == "bursty":
            return BurstyModel(
                prob, self.cfg.bursty_on, self.cfg.bursty_period, seed=seed
            ).arrivals(self.cross)
        raise ValueError(f"unknown cross-traffic model: {model}")

    def make_policy(self, scheme: str) -> InjectionPolicy:
        """The paper's static 1-and-100 or adaptive 1-and-[10..300]."""
        if scheme == "static":
            return StaticInjection(self.cfg.static_n)
        if scheme == "adaptive":
            return AdaptiveInjection(self.cfg.adaptive_n_min, self.cfg.adaptive_n_max)
        raise ValueError(f"unknown injection scheme: {scheme}")

    def make_sender(self, scheme: str) -> RliSender:
        template = RefTemplate(
            src=ip_to_int(REGULAR_SRC_BASE) + 1,
            dst=ip_to_int("10.2.255.254"),
        )
        return RliSender(
            sender_id=PIPELINE_SENDER_ID,
            link_rate_bps=self.rate_bps,
            policy=self.make_policy(scheme),
            templates={0: template},
        )

    def make_receiver(self, estimator: str = "linear") -> RliReceiver:
        return RliReceiver(
            demux=SingleSenderDemux(PIPELINE_SENDER_ID, regular_prefixes=[self.regular_prefix]),
            estimator=estimator,
        )


class ConditionResult:
    """Everything one (scheme, model, utilization) run produces."""

    def __init__(
        self,
        scheme: str,
        model: str,
        target_util: float,
        pipeline: PipelineResult,
        receiver: Optional[RliReceiver],
        sender: Optional[RliSender],
    ):
        self.scheme = scheme
        self.model = model
        self.target_util = target_util
        self.pipeline = pipeline
        self.receiver = receiver
        self.sender = sender

    @property
    def measured_util(self) -> float:
        return self.pipeline.utilization2

    @property
    def mean_true_latency(self) -> float:
        """Pooled true mean latency of measured regular packets."""
        from ..core.flowstats import StreamingStats

        pooled = StreamingStats()
        for _, stats in self.receiver.flow_true.items():
            pooled.merge(stats)
        return pooled.mean


def run_condition(
    workload: PipelineWorkload,
    scheme: Optional[str],
    model: str,
    target_util: float,
    estimator: str = "linear",
    run_seed: int = 0,
) -> ConditionResult:
    """Run one pipeline condition.

    ``scheme=None`` disables reference injection (Figure 5's baseline runs).
    """
    sender = workload.make_sender(scheme) if scheme is not None else None
    receiver = workload.make_receiver(estimator) if scheme is not None else None
    cross = workload.cross_arrivals(model, target_util, seed=run_seed)
    pipeline = TwoSwitchPipeline(workload.pipeline_config)
    result = pipeline.run(
        regular=workload.regular.clone_packets(),
        cross=cross,
        sender=sender,
        receiver=receiver,
        duration=workload.cfg.duration,
    )
    if receiver is not None:
        receiver.finalize()
    return ConditionResult(scheme, model, target_util, result, receiver, sender)
