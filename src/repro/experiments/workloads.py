"""Shared workload construction for the pipeline experiments.

Builds (and caches) the regular/cross traces, derives the link rate that
puts the regular workload at the paper's ~22 % operating point, and wires
RLI senders/receivers for one condition of Figure 4/5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.metrics import FlowErrorJoin, flow_mean_errors, flow_std_errors
from ..core.demux import SingleSenderDemux
from ..core.injection import AdaptiveInjection, InjectionPolicy, StaticInjection
from ..core.receiver import RliReceiver
from ..core.sender import RefTemplate, RliSender
from ..net.addressing import Prefix, ip_to_int
from ..net.packet import Packet, PacketKind
from ..sim.clock import OffsetClock
from ..sim.pipeline import PipelineConfig, PipelineResult, TwoSwitchPipeline
from ..traffic.crosstraffic import (
    BurstyModel,
    UniformModel,
    calibrate_selection_probability,
)
from ..traffic.synthetic import TraceConfig, generate_trace
from ..traffic.trace import Trace
from .config import (
    CROSS_SRC_BASE,
    REGULAR_SRC_BASE,
    ExperimentConfig,
    config_from_items,
)

__all__ = [
    "PipelineWorkload",
    "ConditionResult",
    "ConditionSummary",
    "run_condition",
    "run_condition_job",
    "summarize_condition",
    "workload_for",
]

PIPELINE_SENDER_ID = 1

_trace_cache: Dict[Tuple, Trace] = {}


def _cached_trace(kind: str, cfg: ExperimentConfig) -> Trace:
    """Build (once) the regular or cross trace for this config.

    The key must cover every knob generate_trace consumes, or two configs
    differing only in an omitted knob would silently share one trace.
    """
    key = (kind, cfg.n_regular_packets, cfg.n_cross_packets, cfg.duration,
           cfg.mean_flow_pkts, cfg.seed)
    trace = _trace_cache.get(key)
    if trace is not None:
        return trace
    if kind == "regular":
        tc = TraceConfig(
            duration=cfg.duration,
            n_packets=cfg.n_regular_packets,
            mean_flow_pkts=cfg.mean_flow_pkts,
            src_base=REGULAR_SRC_BASE,
        )
        trace = generate_trace(tc, seed=cfg.seed, name="regular")
    elif kind == "cross":
        tc = TraceConfig(
            duration=cfg.duration,
            n_packets=cfg.n_cross_packets,
            mean_flow_pkts=cfg.mean_flow_pkts,
            src_base=CROSS_SRC_BASE,
            dst_base="10.10.0.0",
        )
        trace = generate_trace(tc, seed=cfg.seed + 1, name="cross")
    else:
        raise ValueError(f"unknown trace kind: {kind}")
    _trace_cache[key] = trace
    return trace


class PipelineWorkload:
    """Traces + physical parameters for one experiment configuration."""

    def __init__(self, cfg: ExperimentConfig):
        self.cfg = cfg
        self.regular = _cached_trace("regular", cfg)
        self.cross = _cached_trace("cross", cfg)
        # pick the link rate that puts the regular workload alone at the
        # paper's ~22% utilization operating point
        self.rate_bps = self.regular.total_bytes * 8.0 / (cfg.duration * cfg.base_utilization)
        self.pipeline_config = PipelineConfig(
            rate1_bps=self.rate_bps,
            rate2_bps=self.rate_bps,
            buffer1_bytes=cfg.buffer_bytes,
            buffer2_bytes=cfg.buffer_bytes,
            proc_delay=cfg.proc_delay,
        )
        self.regular_prefix = Prefix.parse(f"{REGULAR_SRC_BASE}/16")

    # ------------------------------------------------------------------

    def selection_probability(self, target_util: float) -> float:
        """Selection probability hitting *target_util* at Switch 2."""
        return calibrate_selection_probability(
            self.cross,
            regular_bytes=self.regular.total_bytes,
            rate_bps=self.rate_bps,
            duration=self.cfg.duration,
            target_utilization=target_util,
        )

    def _cross_model(self, model: str, target_util: float, seed: int):
        prob = self.selection_probability(target_util)
        if model == "random":
            return UniformModel(prob, seed=seed)
        if model == "bursty":
            return BurstyModel(prob, self.cfg.bursty_on, self.cfg.bursty_period,
                               seed=seed)
        raise ValueError(f"unknown cross-traffic model: {model}")

    def cross_arrivals(self, model: str, target_util: float, seed: int = 0) -> List[Tuple[float, Packet]]:
        """Build one run's cross-traffic arrivals under *model*."""
        return self._cross_model(model, target_util, seed).arrivals(self.cross)

    def cross_arrivals_batch(self, model: str, target_util: float, seed: int = 0):
        """Columnar :meth:`cross_arrivals`: identical selection, no objects."""
        return self._cross_model(model, target_util, seed).arrivals_batch(self.cross)

    def make_policy(self, scheme: str) -> InjectionPolicy:
        """The paper's static 1-and-100 or adaptive 1-and-[10..300]."""
        if scheme == "static":
            return StaticInjection(self.cfg.static_n)
        if scheme == "adaptive":
            return AdaptiveInjection(self.cfg.adaptive_n_min, self.cfg.adaptive_n_max)
        raise ValueError(f"unknown injection scheme: {scheme}")

    def make_sender(self, scheme: str) -> RliSender:
        template = RefTemplate(
            src=ip_to_int(REGULAR_SRC_BASE) + 1,
            dst=ip_to_int("10.2.255.254"),
        )
        return RliSender(
            sender_id=PIPELINE_SENDER_ID,
            link_rate_bps=self.rate_bps,
            policy=self.make_policy(scheme),
            templates={0: template},
        )

    def make_receiver(
        self,
        estimator: str = "linear",
        max_flows: Optional[int] = None,
        quantiles: Optional[Tuple[float, ...]] = None,
        observation_log: Optional[list] = None,
        record_only: bool = False,
    ) -> RliReceiver:
        return RliReceiver(
            demux=SingleSenderDemux(PIPELINE_SENDER_ID, regular_prefixes=[self.regular_prefix]),
            estimator=estimator,
            max_flows=max_flows,
            quantiles=quantiles,
            observation_log=observation_log,
            record_only=record_only,
        )


class ConditionResult:
    """Everything one (scheme, model, utilization) run produces."""

    def __init__(
        self,
        scheme: str,
        model: str,
        target_util: float,
        pipeline: PipelineResult,
        receiver: Optional[RliReceiver],
        sender: Optional[RliSender],
    ):
        self.scheme = scheme
        self.model = model
        self.target_util = target_util
        self.pipeline = pipeline
        self.receiver = receiver
        self.sender = sender

    @property
    def measured_util(self) -> float:
        return self.pipeline.utilization2

    @property
    def mean_true_latency(self) -> float:
        """Pooled true mean latency of measured regular packets."""
        from ..core.flowstats import StreamingStats

        pooled = StreamingStats()
        for _, stats in self.receiver.flow_true.items():
            pooled.merge(stats)
        return pooled.mean


def run_condition(
    workload: PipelineWorkload,
    scheme: Optional[str],
    model: str,
    target_util: float,
    estimator: str = "linear",
    run_seed: int = 0,
    static_n: Optional[int] = None,
    clock_offset: float = 0.0,
    max_flows: Optional[int] = None,
    quantiles: Optional[Tuple[float, ...]] = None,
    aqm: Optional[str] = None,
    batch: bool = False,
) -> ConditionResult:
    """Run one pipeline condition.

    ``scheme=None`` disables reference injection (Figure 5's baseline runs);
    it runs no receiver, so combining it with receiver-side knobs (a
    non-default ``estimator``, ``max_flows``, or ``quantiles``) is a
    contradiction and raises rather than silently ignoring them.
    ``static_n`` overrides the injection gap (the injection-gap ablation);
    a nonzero ``clock_offset`` desynchronizes the receiver clock (the
    sync-error ablation); ``max_flows``/``quantiles`` configure the
    receiver's flow tables; ``aqm="red"`` swaps both switch queues for RED.

    ``batch=True`` drives the condition through the columnar pipeline fast
    path — bitwise-identical numbers, several times the throughput; the
    pipeline falls back to the per-object path by itself where the fast
    path does not apply (e.g. RED queues).
    """
    if scheme is None:
        contradictory = [
            name
            for name, off in (("estimator", estimator == "linear"),
                              ("max_flows", max_flows is None),
                              ("quantiles", not quantiles))
            if not off
        ]
        if contradictory:
            raise ValueError(
                f"scheme=None runs no receiver, so {', '.join(contradictory)} "
                f"would be silently ignored; drop them or pick a scheme"
            )
    sender = workload.make_sender(scheme) if scheme is not None else None
    if sender is not None and static_n is not None:
        sender.policy = StaticInjection(static_n)
    receiver = (
        workload.make_receiver(estimator, max_flows=max_flows, quantiles=quantiles)
        if scheme is not None
        else None
    )
    if receiver is not None and clock_offset != 0.0:
        receiver.clock = OffsetClock(clock_offset)
    pipeline = TwoSwitchPipeline(_pipeline_config(workload, aqm, run_seed, batch))
    if batch:
        result = pipeline.run_batch(
            workload.regular,
            workload.cross_arrivals_batch(model, target_util, seed=run_seed),
            sender=sender,
            receiver=receiver,
            duration=workload.cfg.duration,
        )
    else:
        result = pipeline.run(
            regular=workload.regular.clone_packets(),
            cross=workload.cross_arrivals(model, target_util, seed=run_seed),
            sender=sender,
            receiver=receiver,
            duration=workload.cfg.duration,
        )
    if receiver is not None:
        receiver.finalize()
    return ConditionResult(scheme, model, target_util, result, receiver, sender)


def _pipeline_config(workload: PipelineWorkload, aqm: Optional[str],
                     run_seed: int, batch: bool = False) -> PipelineConfig:
    """The workload's pipeline config, with *aqm* queues swapped in.

    ``aqm=None`` keeps the shared tail-drop config; ``"red"`` builds a RED
    bottleneck (thresholds at 1/8 and 1/2 of the buffer) whose drop-decision
    stream is seeded from ``run_seed`` so no two conditions share it.
    ``batch`` selects the columnar fast path (RED runs fall back inside the
    pipeline — the vectorized scan only models tail drop).
    """
    if aqm is None:
        if not batch:
            return workload.pipeline_config
        return PipelineConfig(
            rate1_bps=workload.rate_bps,
            rate2_bps=workload.rate_bps,
            buffer1_bytes=workload.cfg.buffer_bytes,
            buffer2_bytes=workload.cfg.buffer_bytes,
            proc_delay=workload.cfg.proc_delay,
            batch=True,
        )
    if aqm != "red":
        raise ValueError(f"unknown AQM discipline: {aqm!r}")
    from ..sim.red import RedQueue
    from .config import derive_seed

    def red_factory(rate_bps, buffer_bytes, proc_delay, name):
        # each queue gets its own drop-decision stream (keyed by queue
        # name), so the two switches' early-drop lotteries are uncorrelated
        return RedQueue(rate_bps, buffer_bytes, proc_delay, name,
                        min_th_bytes=buffer_bytes // 8,
                        max_th_bytes=buffer_bytes // 2,
                        max_p=0.2, seed=derive_seed(run_seed, "red-drops", name))

    return PipelineConfig(
        rate1_bps=workload.rate_bps,
        rate2_bps=workload.rate_bps,
        buffer1_bytes=workload.cfg.buffer_bytes,
        buffer2_bytes=workload.cfg.buffer_bytes,
        proc_delay=workload.cfg.proc_delay,
        queue_factory=red_factory,
    )


# ----------------------------------------------------------------------
# picklable condition summaries and the sweep-runner job function

FlowKey = Tuple[int, int, int, int, int]
FlowRow = Tuple[int, float, float]  # (count, mean, std)
QuantileRow = Dict[float, float]  # quantile -> estimated value


@dataclass
class ConditionSummary:
    """Everything the figure drivers need from one condition, as plain data.

    Unlike :class:`ConditionResult` (which holds live receiver/queue
    objects), a summary is a value: picklable across process boundaries,
    cacheable on disk, and comparable with ``==`` — the determinism suite
    asserts serial and parallel sweeps produce *equal* summaries.
    """

    scheme: Optional[str]
    model: str
    target_util: float
    estimator: str
    run_seed: int
    # bottleneck-link accounting
    measured_util: float
    utilization1: float
    processed_packets: int  # arrivals at the bottleneck switch
    delivered_packets: int  # arrivals minus drops
    arrivals2: Dict[str, int] = field(default_factory=dict)  # by PacketKind name
    drops2: Dict[str, int] = field(default_factory=dict)
    # reference-injection accounting
    refs_injected: int = 0  # references that entered the pipeline
    sender_refs_injected: int = 0  # references the sender generated
    # accuracy
    mean_true_latency: float = 0.0
    mean_join: Optional[FlowErrorJoin] = None
    std_join: Optional[FlowErrorJoin] = None
    # per-flow tables: flow key -> (count, mean, std)
    flow_estimated: Dict[FlowKey, FlowRow] = field(default_factory=dict)
    flow_true: Dict[FlowKey, FlowRow] = field(default_factory=dict)
    # bounded-flow-table accounting (memory ablation; 0 when unbounded)
    evicted_flows: int = 0
    evicted_samples: int = 0
    # per-flow streaming quantiles (tail study; empty unless requested)
    flow_estimated_quantiles: Dict[FlowKey, QuantileRow] = field(default_factory=dict)
    flow_true_quantiles: Dict[FlowKey, QuantileRow] = field(default_factory=dict)

    def loss_rate(self, kind: PacketKind = PacketKind.REGULAR) -> float:
        """Loss rate of *kind* packets at the bottleneck switch."""
        arrivals = self.arrivals2.get(kind.name, 0)
        return self.drops2.get(kind.name, 0) / arrivals if arrivals else 0.0


def _flow_table_rows(table) -> Dict[FlowKey, FlowRow]:
    # inlined StreamingStats.std (sqrt of the population variance): two
    # attribute reads instead of two property dispatches per flow — this
    # runs once per flow per summary, 10^5 times per sweep
    sqrt = math.sqrt
    return {
        key: (s.count, s.mean,
              sqrt(s._m2 / s.count) if s.count >= 2 else 0.0)
        for key, s in table.items()
    }


def summarize_condition(condition: ConditionResult, estimator: str = "linear",
                        run_seed: int = 0) -> ConditionSummary:
    """Reduce a live :class:`ConditionResult` to a picklable summary."""
    pipeline = condition.pipeline
    receiver = condition.receiver
    processed = sum(pipeline.arrivals2.values())
    dropped = sum(pipeline.drops2.values())
    summary = ConditionSummary(
        scheme=condition.scheme,
        model=condition.model,
        target_util=condition.target_util,
        estimator=estimator,
        run_seed=run_seed,
        measured_util=pipeline.utilization2,
        utilization1=pipeline.utilization1,
        processed_packets=processed,
        delivered_packets=processed - dropped,
        arrivals2={kind.name: n for kind, n in pipeline.arrivals2.items()},
        drops2={kind.name: n for kind, n in pipeline.drops2.items()},
        refs_injected=pipeline.refs_injected,
        sender_refs_injected=condition.sender.refs_injected if condition.sender else 0,
    )
    if receiver is not None:
        summary.mean_true_latency = condition.mean_true_latency
        summary.mean_join = flow_mean_errors(receiver.flow_estimated, receiver.flow_true)
        summary.std_join = flow_std_errors(receiver.flow_estimated, receiver.flow_true)
        summary.flow_estimated = _flow_table_rows(receiver.flow_estimated)
        summary.flow_true = _flow_table_rows(receiver.flow_true)
        summary.evicted_flows = getattr(receiver.flow_estimated, "evicted_flows", 0)
        summary.evicted_samples = getattr(receiver.flow_estimated, "evicted_samples", 0)
        if receiver.flow_estimated_quantiles is not None:
            summary.flow_estimated_quantiles = {
                key: dict(q) for key, q in receiver.flow_estimated_quantiles.items()
            }
            summary.flow_true_quantiles = {
                key: dict(q) for key, q in receiver.flow_true_quantiles.items()
            }
    return summary


# per-process workload memo so repeated jobs in one worker share traces;
# bounded FIFO: a sweep touches one or two configs, so a handful of slots
# gives full reuse without retaining workloads for every config a
# long-lived process ever ran (the heavyweight traces are deduped one
# level down in _trace_cache regardless)
_workload_cache: Dict[Tuple, PipelineWorkload] = {}
_WORKLOAD_CACHE_SLOTS = 4


def workload_for(config_items: Tuple[Tuple[str, object], ...]) -> PipelineWorkload:
    """The (memoized) workload for a frozen ExperimentConfig state.

    Keyed by the full config items so any knob change rebuilds; the
    underlying trace cache additionally dedupes across configs that share
    trace parameters.
    """
    workload = _workload_cache.get(config_items)
    if workload is None:
        workload = PipelineWorkload(config_from_items(config_items))
        while len(_workload_cache) >= _WORKLOAD_CACHE_SLOTS:
            _workload_cache.pop(next(iter(_workload_cache)))
        _workload_cache[config_items] = workload
    return workload


def run_condition_job(job) -> ConditionSummary:
    """Execute one :class:`~repro.runner.spec.JobSpec` (pure function).

    This is the unit of work the sweep runner distributes: everything the
    run depends on is inside *job*, and the returned summary is plain data.
    """
    workload = workload_for(job.config)
    condition = run_condition(
        workload,
        job.scheme,
        job.model,
        job.target_util,
        estimator=job.estimator,
        run_seed=job.run_seed,
        static_n=job.static_n,
        clock_offset=job.clock_offset,
        max_flows=job.max_flows,
        quantiles=job.quantiles or None,
        aqm=job.aqm,
        batch=job.batch,
    )
    return summarize_condition(condition, estimator=job.estimator, run_seed=job.run_seed)
