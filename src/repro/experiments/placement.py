"""Placement-complexity experiment (paper Section 3.1, in-text analysis).

For a sweep of fat-tree arities, compares the paper's closed-form instance
counts with what the concrete planner enumerates on a built topology, and
with full deployment — the quantitative argument for partial placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..runner.runner import ParallelRunner
from ..core.placement import (
    RlirPlacement,
    instances_all_tor_pairs_enumerated,
    instances_all_tor_pairs_paper,
    instances_full_deployment,
    instances_interface_pair,
    instances_tor_pair,
)
from ..sim.topology import FatTree

__all__ = ["PlacementRow", "PlacementJob", "run_placement"]


class PlacementRow:
    """Instance counts for one fat-tree arity."""

    def __init__(self, k: int, enumerate_on_topology: bool = True):
        self.k = k
        self.interface_pair = instances_interface_pair(k)
        self.tor_pair = instances_tor_pair(k)
        self.all_tor_pairs_paper = instances_all_tor_pairs_paper(k)
        self.all_tor_pairs_enumerated = instances_all_tor_pairs_enumerated(k)
        self.full = instances_full_deployment(k)
        self.enum_interface_pair = None
        self.enum_tor_pair = None
        self.enum_all_pairs = None
        if enumerate_on_topology:
            ft = FatTree(k)
            planner = RlirPlacement(ft)
            self.enum_interface_pair = len(planner.interface_pair((0, 0), 0, (1, 0)))
            self.enum_tor_pair = len(planner.tor_pair((0, 0), (1, 0)))
            self.enum_all_pairs = len(planner.all_tor_pairs())

    @property
    def savings_vs_full(self) -> float:
        """Instance-count ratio of all-ToR-pairs RLIR over full deployment."""
        return self.all_tor_pairs_enumerated / self.full

    def as_list(self) -> List[object]:
        return [
            self.k,
            self.interface_pair,
            self.tor_pair,
            self.all_tor_pairs_paper,
            self.all_tor_pairs_enumerated,
            self.full,
            f"{self.savings_vs_full:.1%}",
        ]


@dataclass(frozen=True)
class PlacementJob:
    """One arity of the placement table as a runner job.

    Topology enumeration at large k is the expensive part (O(k³) switch
    objects); rows for different arities are independent, so the table
    parallelizes and caches per-k.  The row itself holds only integer
    counts, so it pickles across workers and into the result cache.
    """

    k: int
    enumerate_on_topology: bool

    def cache_token(self) -> dict:
        return {
            "kind": "placement",
            "k": self.k,
            "enumerate_on_topology": self.enumerate_on_topology,
        }

    def run(self) -> PlacementRow:
        return PlacementRow(self.k, enumerate_on_topology=self.enumerate_on_topology)


def run_placement(
    ks: Sequence[int] = (4, 8, 16, 32, 48),
    enumerate_up_to: int = 16,
    runner: Optional[ParallelRunner] = None,
) -> List[PlacementRow]:
    """Rows for the placement table.

    Topology enumeration is O(k³) switch objects, so it is verified only up
    to ``enumerate_up_to``; larger arities report formulas only.
    """
    runner = runner or ParallelRunner()
    jobs = [PlacementJob(k, enumerate_on_topology=(k <= enumerate_up_to)) for k in ks]
    return runner.run(jobs)
