"""Canonical parameterization of the paper's experiments.

The paper's traces are 22.4 M regular + 70.4 M cross packets over one
minute — hours of pure-Python simulation.  Every experiment here scales with
``REPRO_SCALE`` (default 1.0 ≈ a 1:100 scale model with the same operating
points: the regular workload alone utilizes the bottleneck link ~22 %, the
injection schemes are the paper's 1-and-100 static and 1-and-[10..300]
adaptive, and cross traffic is calibrated to the same target utilizations).
"""

from __future__ import annotations

import hashlib
import os

__all__ = [
    "ExperimentConfig",
    "config_from_items",
    "default_scale",
    "derive_seed",
    "REGULAR_SRC_BASE",
    "CROSS_SRC_BASE",
]

# address plan: regular and cross traffic are distinguished by source block,
# exactly like the paper's modified-IP cross trace
REGULAR_SRC_BASE = "10.1.0.0"
REGULAR_DST_BASE = "10.2.0.0"
CROSS_SRC_BASE = "10.9.0.0"
CROSS_DST_BASE = "10.10.0.0"


def default_scale() -> float:
    """Read the REPRO_SCALE environment knob (default 1.0)."""
    raw = os.environ.get("REPRO_SCALE", "1.0")
    try:
        scale = float(raw)
    except ValueError:
        raise ValueError(f"REPRO_SCALE must be a number: {raw!r}") from None
    if scale <= 0:
        raise ValueError(f"REPRO_SCALE must be positive: {scale}")
    return scale


def derive_seed(base: int, *stream: object) -> int:
    """A per-stream seed derived from *base* and a stream label.

    Experiments that consume several independent random streams (per-hop
    cross traffic, RED drop decisions, per-pair mesh traces, PTP noise)
    must never hand two streams the same generator seed, and arithmetic
    like ``base + hop`` silently collides across conditions (``base=100,
    hop=1`` vs ``base=101, hop=0``).  Hashing the (base, label) pair gives
    every named stream its own stable 63-bit seed, reproducible across
    processes and Python versions (no ``PYTHONHASHSEED`` dependence).
    """
    payload = repr((int(base),) + stream).encode()
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big") >> 1


class ExperimentConfig:
    """Shared knobs for the Figure 4/5 pipeline experiments.

    Parameters mirror the paper's setup (Section 4.1):

    * regular trace utilizes the fabric ~``base_utilization`` (22 %) on its
      own, which "always triggers the highest injection rate (1-and-10) in
      the adaptive scheme";
    * the static scheme is 1-and-``static_n`` (100), adaptive varies in
      [``adaptive_n_min``, ``adaptive_n_max``] = [10, 300];
    * the cross trace carries ~``cross_factor`` × the regular bytes so
      selection probabilities stay below 1 up to 98 % utilization.
    """

    def __init__(self, scale: float = None, seed: int = 42):
        if scale is None:
            scale = default_scale()
        self.scale = scale
        self.seed = seed
        # workload
        self.duration = 2.0
        self.n_regular_packets = max(2000, int(round(200_000 * scale)))
        # ~6x the regular bytes: enough headroom that selection probability
        # stays below 1 up to 98% utilization even with heavy-tailed
        # realized-byte variance at small scales
        self.n_cross_packets = max(16_000, int(round(1_200_000 * scale)))
        self.mean_flow_pkts = 15.0
        self.base_utilization = 0.22
        # switches (rate derived from the realized trace, see workloads.py)
        self.buffer_bytes = 256 * 1024
        self.proc_delay = 1e-6
        # injection schemes (paper Section 4.1)
        self.static_n = 100
        self.adaptive_n_min = 10
        self.adaptive_n_max = 300
        # figure operating points
        self.fig4ab_utilizations = (0.67, 0.93)
        self.fig4c_utilizations = (0.34, 0.67)
        self.fig5_utilizations = (0.82, 0.86, 0.90, 0.94, 0.98)
        # bursty model: two ON windows per trace at duty cycle 0.6 (1.67x
        # compression inside bursts).  Scaled analogue of the paper's 10 s
        # injection bursts; the duty cycle is chosen so ON-window load peaks
        # near saturation (deep transient queues) without sustained overload
        # that would destroy the target average utilization.
        self.bursty_period = self.duration / 2.0
        self.bursty_on = 0.6 * self.bursty_period

    def __repr__(self) -> str:
        return (
            f"ExperimentConfig(scale={self.scale}, regular={self.n_regular_packets}, "
            f"cross={self.n_cross_packets}, duration={self.duration}s)"
        )


def config_from_items(items) -> ExperimentConfig:
    """Rebuild an ExperimentConfig from frozen ``(name, value)`` pairs.

    Inverse of ``repro.runner.spec.config_items``: reconstructs through the
    constructor (so derived fields are recomputed consistently) and then
    restores every frozen attribute, including hand-mutated knobs.
    """
    by_name = dict(items)
    cfg = ExperimentConfig(scale=by_name["scale"], seed=by_name["seed"])
    for name, value in by_name.items():
        setattr(cfg, name, value)
    return cfg
