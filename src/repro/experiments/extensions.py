"""Extension studies beyond the paper's figures.

These exercise the parts of the design space the paper names but does not
quantify, each with a bench:

* :func:`run_multihop_ablation` — accuracy of one RLI pair measuring across
  a growing chain of queues ("across multiple hops", Section 4), with
  cross traffic at every hop;
* :func:`run_granularity_comparison` — full RLI vs RLIR on the same
  degraded fabric: instance cost vs localization granularity, the paper's
  central trade-off, measured;
* :func:`run_memory_ablation` — estimation coverage when receivers bound
  their flow-table memory (hardware reality for 1.45 M-flow traces);
* :func:`run_ptp_study` — how path noise during IEEE 1588 sync propagates
  into per-flow estimation bias (the paper's sync prerequisite, quantified).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.cdf import Ecdf
from ..analysis.metrics import flow_mean_errors
from ..core.full_rli import FullRliDeployment
from ..core.injection import StaticInjection
from ..core.localization import localize
from ..core.placement import instances_tor_pair
from ..core.receiver import RliReceiver
from ..core.rlir import RlirDeployment
from ..sim.chain import ChainConfig, SwitchChain
from ..sim.ptp import PtpSession
from ..sim.topology import FatTree, LinkParams
from ..traffic.crosstraffic import UniformModel, calibrate_selection_probability
from ..traffic.synthetic import TraceConfig, generate_fattree_trace
from .config import ExperimentConfig
from .workloads import PipelineWorkload

__all__ = [
    "run_multihop_ablation",
    "run_granularity_comparison",
    "run_memory_ablation",
    "run_ptp_study",
    "run_tail_accuracy",
    "run_mesh_study",
    "run_aqm_comparison",
]


def run_multihop_ablation(
    cfg: Optional[ExperimentConfig] = None,
    hops: Sequence[int] = (1, 2, 4, 8),
    utilization: float = 0.80,
) -> List[Tuple[int, float, float]]:
    """(n_hops, median flow-mean RE, mean true latency) per chain length.

    Cross traffic is injected independently at *every* hop, calibrated so
    each hop runs at *utilization* — the hardest case for delay locality
    across a multi-router segment, since the segment delay is a sum of
    independent queues.
    """
    cfg = cfg or ExperimentConfig()
    workload = PipelineWorkload(cfg)
    prob = calibrate_selection_probability(
        workload.cross,
        regular_bytes=workload.regular.total_bytes,
        rate_bps=workload.rate_bps,
        duration=cfg.duration,
        target_utilization=utilization,
    )
    rows = []
    for n_hops in hops:
        sender = workload.make_sender("static")
        receiver = workload.make_receiver()
        cross_per_hop = {
            hop: UniformModel(prob, seed=100 + hop).arrivals(workload.cross)
            for hop in range(n_hops)
        }
        chain = SwitchChain(ChainConfig(
            n_hops=n_hops,
            rate_bps=workload.rate_bps,
            buffer_bytes=cfg.buffer_bytes,
            proc_delay=cfg.proc_delay,
        ))
        chain.run(workload.regular.clone_packets(), cross_per_hop,
                  sender=sender, receiver=receiver, duration=cfg.duration)
        receiver.finalize()
        join = flow_mean_errors(receiver.flow_estimated, receiver.flow_true)
        from ..core.flowstats import StreamingStats

        pooled = StreamingStats()
        for _, stats in receiver.flow_true.items():
            pooled.merge(stats)
        rows.append((n_hops, Ecdf(join.errors).median, pooled.mean))
    return rows


class GranularityRow:
    """One deployment's cost and localization outcome."""

    def __init__(self, name: str, instances: int, n_segments: int,
                 culprit: Optional[str], pinned_to_single_queue: bool):
        self.name = name
        self.instances = instances
        self.n_segments = n_segments
        self.culprit = culprit
        self.pinned_to_single_queue = pinned_to_single_queue


def _degraded_fattree(slow_factor: float = 4.0) -> FatTree:
    """A k=4 fabric with one core egress link running slow_factor slower."""
    ft = FatTree(4, LinkParams(rate_bps=40e6, buffer_bytes=128 * 1024,
                               proc_delay=1e-6, prop_delay=0.5e-6))
    core = ft.cores[0][0]
    port = core.ports[ft.port_toward(core, ft.aggs[1][0])]
    port.queue.set_rate(40e6 / slow_factor)
    return ft


def _granularity_trace(ft: FatTree, n_packets: int, seed: int = 21):
    pairs = [(ft.host_address(0, 0, h), ft.host_address(1, 0, g))
             for h in range(2) for g in range(2)]
    return generate_fattree_trace(
        TraceConfig(duration=1.0, n_packets=n_packets, mean_flow_pkts=12.0),
        pairs, seed=seed, name="granularity")


def run_granularity_comparison(n_packets: int = 10_000) -> List[GranularityRow]:
    """Full RLI vs RLIR, one slow queue (core(0,0)→dst pod) injected.

    Expected: both localize correctly at their own granularity — full RLI
    names the exact hop, RLIR the containing multi-router segment — while
    RLIR uses fewer instances (k+2 per interface pair vs per-hop pairs).
    """
    rows = []

    ft_full = _degraded_fattree()
    full = FullRliDeployment(ft_full, src=(0, 0), dst=(1, 0),
                             policy_factory=lambda: StaticInjection(10))
    full_result = full.run([_granularity_trace(ft_full, n_packets)])
    full_report = localize(full_result.segments(), factor=2.0, floor=5e-6,
                           min_samples=20)
    rows.append(GranularityRow(
        "full RLI", full_result.instance_count(), len(full_result.receivers),
        full_report.culprit,
        pinned_to_single_queue=(full_report.culprit == "C:cores->agg0"),
    ))

    ft_rlir = _degraded_fattree()
    rlir = RlirDeployment(ft_rlir, src=(0, 0), dst=(1, 0),
                          policy_factory=lambda: StaticInjection(10))
    rlir_result = rlir.run([_granularity_trace(ft_rlir, n_packets)])
    rlir_report = localize(rlir_result.segments(), factor=2.0, floor=5e-6,
                           min_samples=20)
    rows.append(GranularityRow(
        "RLIR", instances_tor_pair(4), len(rlir_result.segments()),
        rlir_report.culprit,
        pinned_to_single_queue=False,  # segment granularity by design
    ))
    return rows


def run_memory_ablation(
    cfg: Optional[ExperimentConfig] = None,
    utilization: float = 0.93,
    bounds: Sequence[Optional[int]] = (None, 4096, 1024, 256),
) -> List[Tuple[Optional[int], int, int, float]]:
    """(max_flows, flows retained, samples evicted, median RE of survivors)
    per flow-table bound."""
    from ..sim.pipeline import TwoSwitchPipeline

    cfg = cfg or ExperimentConfig()
    workload = PipelineWorkload(cfg)
    rows = []
    for bound in bounds:
        sender = workload.make_sender("static")
        receiver = RliReceiver(
            demux=workload.make_receiver().demux,
            max_flows=bound,
        )
        pipeline = TwoSwitchPipeline(workload.pipeline_config)
        pipeline.run(
            regular=workload.regular.clone_packets(),
            cross=workload.cross_arrivals("random", utilization),
            sender=sender,
            receiver=receiver,
            duration=cfg.duration,
        )
        receiver.finalize()
        join = flow_mean_errors(receiver.flow_estimated, receiver.flow_true)
        evicted = getattr(receiver.flow_estimated, "evicted_samples", 0)
        median = Ecdf(join.errors).median if join.errors else float("nan")
        rows.append((bound, len(receiver.flow_true), evicted, median))
    return rows


def run_ptp_study(
    jitters: Sequence[float] = (0.0, 1e-6, 10e-6, 100e-6),
    true_offset: float = 250e-6,
    rounds: int = 32,
    seeds: int = 5,
) -> List[Tuple[float, float]]:
    """(path queue jitter, mean |residual sync error|) per jitter level.

    Residual error is the bias every RLI delay sample inherits; compare
    against the delay scales in the Figure-4 benches to judge whether a
    software-PTP deployment suffices or hardware timestamping is needed.
    """
    rows = []
    for jitter in jitters:
        total = 0.0
        for seed in range(seeds):
            session = PtpSession(true_offset=true_offset, queue_jitter=jitter,
                                 seed=seed)
            total += abs(session.synchronize(rounds=rounds).residual_error)
        rows.append((jitter, total / seeds))
    return rows


def run_tail_accuracy(
    cfg: Optional[ExperimentConfig] = None,
    utilization: float = 0.93,
    quantiles: Sequence[float] = (0.5, 0.95, 0.99),
    min_packets: int = 20,
) -> Dict[float, Ecdf]:
    """Per-flow tail-quantile accuracy: quantile → Ecdf of relative errors.

    Runs the standard 93%-utilization pipeline with a quantile-enabled
    receiver (streaming P² estimators on both the estimated and true delay
    streams) and scores per-flow p50/p95/p99 estimates against per-flow
    true quantiles, restricted to flows with at least *min_packets* packets
    (tails of tiny flows are not meaningful).
    """
    from ..sim.pipeline import TwoSwitchPipeline

    cfg = cfg or ExperimentConfig()
    workload = PipelineWorkload(cfg)
    sender = workload.make_sender("adaptive")
    receiver = RliReceiver(
        demux=workload.make_receiver().demux,
        quantiles=quantiles,
    )
    pipeline = TwoSwitchPipeline(workload.pipeline_config)
    pipeline.run(
        regular=workload.regular.clone_packets(),
        cross=workload.cross_arrivals("random", utilization),
        sender=sender,
        receiver=receiver,
        duration=cfg.duration,
    )
    receiver.finalize()

    errors: Dict[float, List[float]] = {q: [] for q in quantiles}
    for key, estimated in receiver.flow_estimated_quantiles.items():
        truth_stats = receiver.flow_true.get(key)
        if truth_stats is None or truth_stats.count < min_packets:
            continue
        truth = receiver.flow_true_quantiles.get(key)
        for q in quantiles:
            if truth[q] > 0:
                errors[q].append(abs(estimated[q] - truth[q]) / truth[q])
    return {q: Ecdf(err) for q, err in errors.items() if err}


def run_mesh_study(
    n_packets_per_pair: int = 8000,
    pairs: Sequence[Tuple[Tuple[int, int], Tuple[int, int]]] = (
        ((0, 0), (1, 0)),
        ((0, 1), (2, 1)),
        ((3, 0), (1, 1)),
    ),
) -> List[Tuple[str, int, float, float]]:
    """Multi-pair mesh on one fabric: (pair, flows, seg2 median RE,
    e2e median RE) per measured ToR pair.

    All pairs share the fabric and the core measurement instances, so each
    pair's traffic is cross traffic for the others — the across-routers
    regime with realistic interference.
    """
    from ..core.mesh import RlirMesh

    ft = FatTree(4, LinkParams(rate_bps=40e6, buffer_bytes=256 * 1024,
                               proc_delay=1e-6, prop_delay=0.5e-6))
    mesh = RlirMesh(ft, list(pairs), policy_factory=lambda: StaticInjection(20))
    traces = []
    for i, (src, dst) in enumerate(pairs):
        host_pairs = [(ft.host_address(*src, h), ft.host_address(*dst, g))
                      for h in range(2) for g in range(2)]
        traces.append(generate_fattree_trace(
            TraceConfig(duration=1.0, n_packets=n_packets_per_pair,
                        mean_flow_pkts=12.0),
            host_pairs, seed=30 + i, name=f"{src}->{dst}"))
    result = mesh.run(traces)

    rows = []
    for src, dst in pairs:
        view = result.pair(src, dst)
        j2 = flow_mean_errors(view.segment2_estimated(), view.segment2_true())
        e2e = view.end_to_end()
        e2e_errors = [abs(e - t) / t for _, e, t in e2e if t > 0]
        rows.append((
            f"{src}->{dst}",
            len(j2.errors),
            Ecdf(j2.errors).median if j2.errors else float("nan"),
            Ecdf(e2e_errors).median if e2e_errors else float("nan"),
        ))
    return rows


def run_aqm_comparison(
    cfg: Optional[ExperimentConfig] = None,
    utilization: float = 0.95,
) -> List[Tuple[str, float, float, int]]:
    """(queue discipline, regular loss rate, median flow-mean RE, refs lost)
    under tail-drop vs RED bottleneck queues on the identical workload.

    Drop *placement* matters to the measurement plane: RED kills reference
    packets probabilistically in proportion to load (widening interpolation
    intervals smoothly), while tail-drop loses them in full-buffer bursts.
    """
    from functools import partial

    from ..net.packet import PacketKind
    from ..sim.pipeline import PipelineConfig, TwoSwitchPipeline
    from ..sim.red import RedQueue

    cfg = cfg or ExperimentConfig()
    workload = PipelineWorkload(cfg)

    def red_factory(rate, buffer_bytes, proc, name):
        return RedQueue(rate, buffer_bytes, proc, name,
                        min_th_bytes=buffer_bytes // 8,
                        max_th_bytes=buffer_bytes // 2,
                        max_p=0.2, seed=5)

    rows = []
    for discipline, factory in (("tail-drop", None), ("RED", red_factory)):
        pipe_cfg = PipelineConfig(
            rate1_bps=workload.rate_bps,
            rate2_bps=workload.rate_bps,
            buffer1_bytes=cfg.buffer_bytes,
            buffer2_bytes=cfg.buffer_bytes,
            proc_delay=cfg.proc_delay,
            queue_factory=factory,
        )
        sender = workload.make_sender("static")
        receiver = workload.make_receiver()
        result = TwoSwitchPipeline(pipe_cfg).run(
            regular=workload.regular.clone_packets(),
            cross=workload.cross_arrivals("random", utilization),
            sender=sender,
            receiver=receiver,
            duration=cfg.duration,
        )
        receiver.finalize()
        join = flow_mean_errors(receiver.flow_estimated, receiver.flow_true)
        rows.append((
            discipline,
            result.loss_rate(PacketKind.REGULAR),
            Ecdf(join.errors).median,
            result.drops2[PacketKind.REFERENCE],
        ))
    return rows
