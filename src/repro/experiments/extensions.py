"""Extension studies beyond the paper's figures.

These exercise the parts of the design space the paper names but does not
quantify, each with a bench:

* :func:`run_multihop_ablation` — accuracy of one RLI pair measuring across
  a growing chain of queues ("across multiple hops", Section 4), with
  cross traffic at every hop;
* :func:`run_granularity_comparison` — full RLI vs RLIR on the same
  degraded fabric: instance cost vs localization granularity, the paper's
  central trade-off, measured;
* :func:`run_memory_ablation` — estimation coverage when receivers bound
  their flow-table memory (hardware reality for 1.45 M-flow traces);
* :func:`run_ptp_study` — how path noise during IEEE 1588 sync propagates
  into per-flow estimation bias (the paper's sync prerequisite, quantified);
* :func:`run_tail_accuracy`, :func:`run_mesh_study`,
  :func:`run_aqm_comparison` — tail quantiles, the shared-core mesh, and
  RED-vs-tail-drop bottlenecks;
* :func:`run_localization_study` — the operator-facing incast localization
  scenario (the ``repro-rlir localize`` subcommand).

Every driver enumerates its conditions as declarative job descriptors
(:class:`~repro.runner.spec.JobSpec` for pipeline conditions,
:mod:`~repro.experiments.extension_jobs` for the fat-tree/chain studies)
executed through a :class:`~repro.runner.runner.ParallelRunner`: pass
``runner=`` to fan conditions out over worker processes — or over a
distributed broker/worker cluster
(:class:`~repro.distrib.runner.DistributedRunner`); every backend is
byte-identical — and memoize them on disk.  The multihop, granularity,
and localization studies additionally
accept ``shards=N``: the condition's simulation runs once and its per-flow
estimation is partitioned over N flow shards
(:mod:`repro.core.replay`), with results **bitwise identical** for every
(jobs, shards) combination — asserted by the determinism suite.

The simulation-backed studies also take ``batch=True`` — the columnar
fast path (chain scans / the layered fat-tree driver) with bitwise-
identical rows — which composes freely with ``runner`` backends and
``shards``; see ``docs/internals-batch.md`` for the exactness rules and
fallback matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.cdf import Ecdf
from ..analysis.metrics import flow_mean_errors
from ..core.localization import LocalizationReport, localize
from ..core.replay import merge_shard_tables, pooled_stats
from ..runner.runner import ParallelRunner
from ..runner.spec import JobSpec
from .config import ExperimentConfig
from .extension_jobs import (
    GranularityShardJob,
    LocalizationShardJob,
    MeshJob,
    MultihopShardJob,
    PtpJob,
    ShardedSegments,
)

__all__ = [
    "run_multihop_ablation",
    "run_granularity_comparison",
    "run_memory_ablation",
    "run_ptp_study",
    "run_tail_accuracy",
    "run_mesh_study",
    "run_aqm_comparison",
    "run_localization_study",
    "GranularityRow",
]


def _merge_condition(shard_results: Sequence[ShardedSegments]):
    """Merge one condition's shard results: (name, estimated, true) rows."""
    merged = []
    for index, (name, _) in enumerate(shard_results[0].segments):
        merged.append((
            name,
            merge_shard_tables(r.segments[index][1].estimated for r in shard_results),
            merge_shard_tables(r.segments[index][1].true for r in shard_results),
        ))
    return merged


def run_multihop_ablation(
    cfg: Optional[ExperimentConfig] = None,
    hops: Sequence[int] = (1, 2, 4, 8),
    utilization: float = 0.80,
    runner: Optional[ParallelRunner] = None,
    shards: int = 1,
    run_seed: int = 0,
    batch: bool = False,
) -> List[Tuple[int, float, float]]:
    """(n_hops, median flow-mean RE, mean true latency) per chain length.

    Cross traffic is injected independently at *every* hop (each hop's
    selection stream gets its own derived seed), calibrated so each hop
    runs at *utilization* — the hardest case for delay locality across a
    multi-router segment, since the segment delay is a sum of independent
    queues.  ``batch=True`` runs each chain condition on the columnar
    fast path (bitwise-identical rows, several times the throughput);
    it composes with ``shards`` and any runner backend.
    """
    from ..runner.spec import config_items

    cfg = cfg or ExperimentConfig()
    runner = runner or ParallelRunner()
    frozen = config_items(cfg)
    jobs = [
        MultihopShardJob(frozen, n_hops, utilization, run_seed, shard, shards,
                         batch)
        for n_hops in hops
        for shard in range(shards)
    ]
    results = runner.run(jobs)
    rows = []
    for i, n_hops in enumerate(hops):
        ((_, est, true),) = _merge_condition(results[i * shards:(i + 1) * shards])
        join = flow_mean_errors(est, true)
        rows.append((n_hops, Ecdf(join.errors).median, pooled_stats(true).mean))
    return rows


@dataclass(frozen=True)
class GranularityRow:
    """One deployment's cost and localization outcome (plain data)."""

    name: str
    instances: int
    n_segments: int
    culprit: Optional[str]
    pinned_to_single_queue: bool


def run_granularity_comparison(
    n_packets: int = 10_000,
    runner: Optional[ParallelRunner] = None,
    shards: int = 1,
    trace_seed: int = 21,
    slow_factor: float = 4.0,
    batch: bool = False,
) -> List[GranularityRow]:
    """Full RLI vs RLIR, one slow queue (core(0,0)→dst pod) injected.

    Expected: both localize correctly at their own granularity — full RLI
    names the exact hop, RLIR the containing multi-router segment — while
    RLIR uses fewer instances (k+2 per interface pair vs per-hop pairs).
    Both deployments measure the same *trace_seed* by design (one workload,
    two architectures); the seed is part of every job's cache identity.
    ``batch`` is accepted for driver-interface uniformity but is inert
    here: this study's marking-demux RLIR receivers and full RLI's
    per-hop wiring both stay on the event engine by design (see
    ``_granularity_sim``), so the knob changes neither results nor cache
    identity.
    """
    runner = runner or ParallelRunner()
    deployments = ("full", "rlir")
    jobs = [
        GranularityShardJob(deployment, n_packets, trace_seed, slow_factor,
                            shard, shards)
        for deployment in deployments
        for shard in range(shards)
    ]
    results = runner.run(jobs)
    rows = []
    for i, deployment in enumerate(deployments):
        shard_results = results[i * shards:(i + 1) * shards]
        merged = _merge_condition(shard_results)
        report = localize([(name, est) for name, est, _ in merged],
                          factor=2.0, floor=5e-6, min_samples=20)
        meta = shard_results[0].meta
        if deployment == "full":
            rows.append(GranularityRow(
                "full RLI", meta["instances"], meta["n_segments"],
                report.culprit,
                pinned_to_single_queue=(report.culprit == "C:cores->agg0"),
            ))
        else:
            rows.append(GranularityRow(
                "RLIR", meta["instances"], meta["n_segments"], report.culprit,
                pinned_to_single_queue=False,  # segment granularity by design
            ))
    return rows


def run_memory_ablation(
    cfg: Optional[ExperimentConfig] = None,
    utilization: float = 0.93,
    bounds: Sequence[Optional[int]] = (None, 4096, 1024, 256),
    runner: Optional[ParallelRunner] = None,
    run_seed: int = 0,
    batch: bool = False,
) -> List[Tuple[Optional[int], int, int, float]]:
    """(max_flows, flows retained, samples evicted, median RE of survivors)
    per flow-table bound.

    Eviction order depends on the global packet arrival order, so each
    bound is one unsharded condition; bounds fan out across workers.
    """
    cfg = cfg or ExperimentConfig()
    runner = runner or ParallelRunner()
    jobs = [
        JobSpec.from_config(cfg, "static", "random", utilization,
                            run_seed=run_seed, max_flows=bound, batch=batch)
        for bound in bounds
    ]
    rows = []
    for bound, summary in zip(bounds, runner.run(jobs)):
        errors = summary.mean_join.errors
        median = Ecdf(errors).median if errors else float("nan")
        rows.append((bound, len(summary.flow_true), summary.evicted_samples,
                     median))
    return rows


def run_ptp_study(
    jitters: Sequence[float] = (0.0, 1e-6, 10e-6, 100e-6),
    true_offset: float = 250e-6,
    rounds: int = 32,
    seeds: int = 5,
    runner: Optional[ParallelRunner] = None,
    run_seed: int = 0,
) -> List[Tuple[float, float]]:
    """(path queue jitter, mean |residual sync error|) per jitter level.

    Residual error is the bias every RLI delay sample inherits; compare
    against the delay scales in the Figure-4 benches to judge whether a
    software-PTP deployment suffices or hardware timestamping is needed.
    Every (jitter, repetition) cell is its own job with its own derived
    noise seed.
    """
    runner = runner or ParallelRunner()
    jobs = [
        PtpJob(jitter, true_offset, rounds, seed_index, run_seed)
        for jitter in jitters
        for seed_index in range(seeds)
    ]
    residuals = runner.run(jobs)
    rows = []
    for i, jitter in enumerate(jitters):
        cell = residuals[i * seeds:(i + 1) * seeds]
        rows.append((jitter, sum(cell) / seeds))
    return rows


def run_tail_accuracy(
    cfg: Optional[ExperimentConfig] = None,
    utilization: float = 0.93,
    quantiles: Sequence[float] = (0.5, 0.95, 0.99),
    min_packets: int = 20,
    runner: Optional[ParallelRunner] = None,
    run_seed: int = 0,
    batch: bool = False,
) -> Dict[float, Ecdf]:
    """Per-flow tail-quantile accuracy: quantile → Ecdf of relative errors.

    Runs the standard 93%-utilization pipeline with a quantile-enabled
    receiver (streaming P² estimators on both the estimated and true delay
    streams) and scores per-flow p50/p95/p99 estimates against per-flow
    true quantiles, restricted to flows with at least *min_packets* packets
    (tails of tiny flows are not meaningful).
    """
    cfg = cfg or ExperimentConfig()
    runner = runner or ParallelRunner()
    job = JobSpec.from_config(cfg, "adaptive", "random", utilization,
                              run_seed=run_seed, quantiles=tuple(quantiles),
                              batch=batch)
    summary = runner.run_one(job)

    errors: Dict[float, List[float]] = {q: [] for q in quantiles}
    for key, estimated in summary.flow_estimated_quantiles.items():
        truth_row = summary.flow_true.get(key)
        if truth_row is None or truth_row[0] < min_packets:
            continue
        truth = summary.flow_true_quantiles.get(key)
        for q in quantiles:
            if truth[q] > 0:
                errors[q].append(abs(estimated[q] - truth[q]) / truth[q])
    return {q: Ecdf(err) for q, err in errors.items() if err}


def run_mesh_study(
    n_packets_per_pair: int = 8000,
    pairs: Sequence[Tuple[Tuple[int, int], Tuple[int, int]]] = (
        ((0, 0), (1, 0)),
        ((0, 1), (2, 1)),
        ((3, 0), (1, 1)),
    ),
    runner: Optional[ParallelRunner] = None,
    run_seed: int = 0,
    batch: bool = False,
) -> List[Tuple[str, int, float, float]]:
    """Multi-pair mesh on one fabric: (pair, flows, seg2 median RE,
    e2e median RE) per measured ToR pair.

    All pairs share the fabric and the core measurement instances, so each
    pair's traffic is cross traffic for the others — the across-routers
    regime with realistic interference, and one irreducible simulation.
    ``batch=True`` replaces the event calendar with the layered columnar
    fat-tree driver (bitwise-identical rows).
    """
    runner = runner or ParallelRunner()
    return runner.run_one(MeshJob(tuple(pairs), n_packets_per_pair, run_seed,
                                  batch))


def run_aqm_comparison(
    cfg: Optional[ExperimentConfig] = None,
    utilization: float = 0.95,
    runner: Optional[ParallelRunner] = None,
    run_seed: int = 0,
    batch: bool = False,
) -> List[Tuple[str, float, float, int]]:
    """(queue discipline, regular loss rate, median flow-mean RE, refs lost)
    under tail-drop vs RED bottleneck queues on the identical workload.

    Drop *placement* matters to the measurement plane: RED kills reference
    packets probabilistically in proportion to load (widening interpolation
    intervals smoothly), while tail-drop loses them in full-buffer bursts.
    RED's drop-decision stream is seeded from ``run_seed`` inside the job.
    """
    from ..net.packet import PacketKind

    cfg = cfg or ExperimentConfig()
    runner = runner or ParallelRunner()
    disciplines = (("tail-drop", None), ("RED", "red"))
    jobs = [
        JobSpec.from_config(cfg, "static", "random", utilization,
                            run_seed=run_seed, aqm=aqm, batch=batch)
        for _, aqm in disciplines
    ]
    rows = []
    for (name, _), summary in zip(disciplines, runner.run(jobs)):
        rows.append((
            name,
            summary.loss_rate(PacketKind.REGULAR),
            Ecdf(summary.mean_join.errors).median,
            summary.drops2.get(PacketKind.REFERENCE.name, 0),
        ))
    return rows


def run_localization_study(
    n_packets: int = 20_000,
    demux_method: str = "reverse-ecmp",
    factor: float = 3.0,
    floor: float = 5e-6,
    min_samples: int = 20,
    runner: Optional[ParallelRunner] = None,
    shards: int = 1,
    run_seed: int = 0,
    batch: bool = False,
) -> LocalizationReport:
    """The operator scenario behind ``repro-rlir localize``.

    An RLIR ToR-pair deployment measures its traffic while two other pods
    incast into the destination pod; the destination-side segment inflates
    and :func:`~repro.core.localization.localize` must name it.  The
    simulation runs once (per cache identity); per-flow estimation fans out
    over *shards* × the runner's workers.  ``batch=True`` runs the
    simulation on the layered columnar driver (the ``marking`` demux falls
    back to the engine — its classifier reads per-packet ToS state).
    """
    runner = runner or ParallelRunner()
    jobs = [
        LocalizationShardJob(n_packets, demux_method, run_seed, shard, shards,
                             batch)
        for shard in range(shards)
    ]
    merged = _merge_condition(runner.run(jobs))
    return localize([(name, est) for name, est, _ in merged],
                    factor=factor, floor=floor, min_samples=min_samples)
