"""repro — RLIR: flow-level latency measurements across routers.

A faithful, fully self-contained reproduction of

    P. Singh, M. Lee, S. Kumar, R. R. Kompella,
    "Enabling Flow-level Latency Measurements across Routers in Data
    Centers", USENIX HotICE 2011.

Layers (see DESIGN.md for the full inventory):

* :mod:`repro.net`      — packets, flows, prefixes, ToS marks
* :mod:`repro.sim`      — queues, switches, ECMP, fat-trees, event engine
* :mod:`repro.traffic`  — synthetic traces, cross-traffic models, flow meter
* :mod:`repro.core`     — RLI senders/receivers and the RLIR architecture
* :mod:`repro.baselines`— LDA, Multiflow, trajectory sampling
* :mod:`repro.analysis` — relative errors, CDFs, reports
* :mod:`repro.experiments` — drivers for every figure/table

Quickstart::

    from repro.experiments import ExperimentConfig, PipelineWorkload, run_condition
    from repro.analysis import flow_mean_errors, Ecdf

    workload = PipelineWorkload(ExperimentConfig(scale=0.05))
    run = run_condition(workload, scheme="static", model="random", target_util=0.93)
    join = flow_mean_errors(run.receiver.flow_estimated, run.receiver.flow_true)
    print("median per-flow relative error:", Ecdf(join.errors).median)
"""

from . import analysis, baselines, core, net, sim, traffic
from .core import (
    AdaptiveInjection,
    FlowStatsTable,
    InterpolationBuffer,
    RliReceiver,
    RliSender,
    RlirDeployment,
    StaticInjection,
)
from .sim import FatTree, TwoSwitchPipeline
from .traffic import Trace, TraceConfig, generate_trace

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "baselines",
    "core",
    "net",
    "sim",
    "traffic",
    "AdaptiveInjection",
    "FlowStatsTable",
    "InterpolationBuffer",
    "RliReceiver",
    "RliSender",
    "RlirDeployment",
    "StaticInjection",
    "FatTree",
    "TwoSwitchPipeline",
    "Trace",
    "TraceConfig",
    "generate_trace",
    "__version__",
]
