"""Stateless sweep worker: connect, verify code version, pull, execute.

``python -m repro worker --connect HOST:PORT`` runs :func:`worker_main`:
it joins a :class:`~repro.distrib.broker.Broker`, proves its code
fingerprint matches (a mismatched checkout is rejected with a clear error
— a worker running different simulator code would poison the sweep's
byte-identical guarantee), then loops pulling job chunks and returning
results.  A background thread heartbeats so the broker can tell a slow
worker from a dead one.

Workers keep no sweep state.  Killing one mid-job loses nothing: the
broker requeues its chunk on another worker, and because every job is a
pure function of its descriptor the retried result is byte-identical to
what the dead worker would have produced.

With ``--cache-dir`` pointing at a cache shared with the driver (same
host, NFS, …) the worker answers repeat jobs from the content-addressed
:class:`~repro.runner.cache.ResultCache` and publishes fresh results into
it; the cache's O_EXCL publish makes concurrent writers from many hosts
safe (first writer wins, everyone else's identical entry is discarded).

Fault-injection hooks (used by the test suite, harmless otherwise):

* ``REPRO_WORKER_FINGERPRINT`` — claim this fingerprint in the hello.
* ``REPRO_WORKER_DIE_AFTER_CHUNKS=N`` — hard-exit (``os._exit``) upon
  receiving the Nth chunk, before executing it: a mid-job crash.
* ``REPRO_WORKER_FREEZE_AFTER_CHUNKS=N`` — on the Nth chunk, stop
  heartbeating and hang without executing: a partitioned/hung worker.
* ``REPRO_WORKER_FORCE_HEARTBEAT=SECONDS`` — pin the heartbeat interval,
  bypassing the broker-advertised derivation below: a worker that beats
  slowly enough to look *suspect* but never dead.
* ``REPRO_WORKER_SLOW_CHUNK_SECONDS=SECONDS`` — sleep this long before
  executing each chunk (abortable by a broker ``cancel``): a degraded
  worker whose chunks linger until hedging rescues them.

Heartbeat cadence is *derived*, not guessed: the broker's welcome
advertises its ``heartbeat_timeout`` (protocol 3) and the worker beats at
least four times per timeout, so a broker constructed with a short
timeout for tests can never race its own workers' heartbeat cadence.
A broker ``cancel`` for the chunk being executed aborts it between jobs
and returns the completed prefix as a normal partial result.
"""

from __future__ import annotations

import os
import socket
import sys
import threading
import time
import traceback
from multiprocessing.connection import Client, Connection
from typing import Any, Callable, List, Optional, Tuple

from .. import obs
from ..runner.cache import ResultCache, code_fingerprint
from .protocol import authkey_from_env, parse_address

__all__ = ["worker_main", "execute_chunk"]


def execute_chunk(entries: List[tuple], cache: Optional[ResultCache] = None,
                  should_abort: Optional[Callable[[], bool]] = None) -> List[tuple]:
    """Run one ``[(tag, job), …]`` chunk; returns ``[(tag, value), …]``.

    Jobs sharing a prepared artifact execute through their type's
    ``run_chunk`` (one artifact build, one replay pass) when the whole
    chunk missed the cache; otherwise each job runs individually.  Cache
    hits skip execution, fresh results are published back.

    *should_abort* is polled between jobs (a broker ``cancel``: the chunk
    settled elsewhere).  On abort only the *completed* ``(tag, value)``
    pairs are returned — never a placeholder for an unexecuted job, which
    would settle as a real value and break byte-identity.  Per-job
    settlement is idempotent, so a partial result is always safe to send.
    """
    jobs = [job for _tag, job in entries]
    values: List[object] = [None] * len(jobs)
    completed: set = set()
    pending = list(range(len(jobs)))
    keys: List[Optional[str]] = [None] * len(jobs)
    if cache is not None:
        still = []
        for i in pending:
            token = getattr(jobs[i], "cache_token", None)
            if token is None:
                still.append(i)
                continue
            cache_key = cache.key(token())
            keys[i] = cache_key
            hit, value = cache.get(cache_key)
            if hit:
                values[i] = value
                completed.add(i)
            else:
                still.append(i)
        pending = still
    if pending and not (should_abort is not None and should_abort()):
        first = type(jobs[pending[0]])
        run_chunk = getattr(first, "run_chunk", None)
        chunkable = (
            run_chunk is not None
            and len(pending) > 1
            and all(type(jobs[i]) is first for i in pending)
        )
        if chunkable:
            # one shared artifact, one replay pass: all-or-nothing, so the
            # abort check above is the last one before the work happens
            fresh = jobs[pending[0]].run_chunk([jobs[i] for i in pending])
            for i, value in zip(pending, fresh):
                values[i] = value
                completed.add(i)
        else:
            for i in pending:
                if should_abort is not None and should_abort():
                    break
                values[i] = jobs[i].run()
                completed.add(i)
        if cache is not None:
            for i in pending:
                cache_key = keys[i]
                if cache_key is not None and i in completed:
                    cache.put(cache_key, values[i])
    return [(tag, values[i])
            for i, (tag, _job) in enumerate(entries) if i in completed]


def worker_main(
    connect: str,
    cache_dir: Optional[str] = None,
    heartbeat: float = 2.0,
    authkey: Optional[str] = None,
    quiet: bool = False,
    reconnects: int = 5,
) -> int:
    """Run one worker until the broker goes away for good; exit code.

    A lost broker connection (bounce, partition, send failure mid-result)
    is not fatal: the worker reconnects with exponential backoff, up to
    *reconnects* consecutive failed attempts, and rejoins as a fresh peer
    — workers are stateless, so the new identity costs nothing.  A result
    in flight when the connection died is simply dropped; the broker's
    fault handling requeues the chunk (or, after a bounce, re-dispatches
    it from the journal), and purity makes the recomputed result
    byte-identical.  The failure counter resets on every successful join,
    so a broker that bounces daily never exhausts the budget.

    The *first* connect gets the same retry budget: on a degraded link —
    SYN losses, a broker a second away through a shaping proxy, a race
    with the broker's own startup — the initial attempt failing once says
    nothing, so bailing out immediately (as this used to) misclassified a
    slow join as an unreachable broker.  A *rejection* (fingerprint
    mismatch) still exits immediately: that is a verdict, not an outage.

    Exit codes: ``0`` broker gone after the reconnect budget (or asked us
    to shut down), ``2`` never managed any connect within the budget,
    ``3`` rejected (fingerprint mismatch).
    """
    address: Tuple[str, int] = parse_address(connect)
    # embedded workers get an empty prefix: the driver's stderr relay
    # labels every line "[worker N]" itself (see DistributedRunner.
    # spawn_worker); standalone workers keep the default label
    prefix = os.environ.get("REPRO_WORKER_LOG_PREFIX", "[worker]")
    say: Callable[..., None] = (lambda *a: None) if quiet else (
        lambda *a: print(*((prefix,) if prefix else ()) + a,
                         file=sys.stderr, flush=True)
    )
    key = authkey_from_env(authkey)
    fingerprint = os.environ.get("REPRO_WORKER_FINGERPRINT") or code_fingerprint()
    cache = ResultCache(cache_dir) if cache_dir else None
    die_after = int(os.environ.get("REPRO_WORKER_DIE_AFTER_CHUNKS", "0") or 0)
    freeze_after = int(os.environ.get("REPRO_WORKER_FREEZE_AFTER_CHUNKS", "0") or 0)
    chunks_seen = 0  # injection counters span reconnects: the Nth chunk
    # of this *process*, not of the current connection

    joined_once = False
    failures = 0
    while True:
        try:
            conn = Client(address, authkey=key)
            conn.send(("hello", "worker", fingerprint,
                       {"pid": os.getpid(), "host": socket.gethostname()}))
            reply = conn.recv()
        except Exception as exc:
            failures += 1
            if failures > reconnects:
                if not joined_once:
                    say(f"cannot connect to broker at {connect} after "
                        f"{reconnects} attempt(s): {exc}")
                    return 2
                say(f"broker at {connect} still gone after {reconnects} "
                    f"reconnect attempt(s); exiting")
                return 0
            delay = min(5.0, 0.25 * (2 ** (failures - 1)))
            say(f"broker {'away' if joined_once else 'not reachable yet'} "
                f"({type(exc).__name__}); "
                f"attempt {failures}/{reconnects} in {delay:.2g}s")
            time.sleep(delay)
            continue
        if reply[0] == "reject":
            say(f"rejected by broker at {connect}: {reply[1]}")
            return 3
        worker_id = reply[1]
        meta = reply[3] if len(reply) > 3 and isinstance(reply[3], dict) else {}
        interval = _heartbeat_interval(heartbeat, meta)
        if obs.enabled() and not os.environ.get("REPRO_OBS_PROCESS"):
            # standalone workers label their obs buffers by broker-assigned
            # id; embedded workers get a stable label via the environment
            obs.set_process_label(f"worker-{worker_id}")
        joined_once = True
        failures = 0
        say(f"joined broker at {connect} as worker {worker_id}")

        send_lock = threading.Lock()
        stop_beating = threading.Event()

        def beat(conn: Connection = conn, send_lock: Any = send_lock,
                 stop: threading.Event = stop_beating,
                 interval: float = interval) -> None:
            while not stop.wait(interval):
                try:
                    with send_lock:
                        conn.send(("heartbeat",))
                except (OSError, ValueError):
                    return

        threading.Thread(target=beat, daemon=True,
                         name="repro-worker-beat").start()
        try:
            chunks_seen, done = _serve_connection(
                conn, send_lock, stop_beating, say, cache,
                chunks_seen, die_after, freeze_after,
            )
        finally:
            stop_beating.set()
            try:
                conn.close()
            except OSError:
                pass
        if done:
            return 0
        say("broker connection lost; attempting to reconnect")


def _heartbeat_interval(requested: float, meta: dict) -> float:
    """The effective heartbeat send interval for one connection.

    Derived from the broker's advertised ``heartbeat_timeout`` (protocol
    3 welcome metadata): beat at least four times per timeout, so a
    broker constructed with a short timeout — tests, aggressive
    deployments — can never race its own workers' cadence.  The CLI's
    ``--heartbeat`` still lowers it further.  ``REPRO_WORKER_FORCE_HEARTBEAT``
    (fault injection) overrides everything; the suite uses it to build a
    worker that is deliberately slow-but-alive.
    """
    forced = os.environ.get("REPRO_WORKER_FORCE_HEARTBEAT")
    if forced:
        return max(0.05, float(forced))
    interval = float(requested)
    advertised = float(meta.get("heartbeat_timeout") or 0.0)
    if advertised > 0.0:
        interval = min(interval, advertised / 4.0)
    return max(0.05, interval)


def _serve_connection(conn: Connection, send_lock: Any,
                      stop_beating: threading.Event,
                      say: Callable[..., None],
                      cache: Optional[ResultCache], chunks_seen: int,
                      die_after: int, freeze_after: int) -> Tuple[int, bool]:
    """Pull and execute chunks until this connection dies.

    Returns ``(chunks_seen, done)`` — *done* is True only for a clean
    shutdown request; a dead connection returns False so the caller's
    reconnect loop takes over.

    A broker ``cancel`` naming the chunk currently executing aborts it
    between jobs; the completed prefix goes back as a normal (partial)
    result.  The abort poll drains the connection without blocking, so
    any other message that arrives mid-chunk — a stale cancel, a
    shutdown — is queued in *inbox* and handled by the main loop.
    """
    slow_chunk = float(
        os.environ.get("REPRO_WORKER_SLOW_CHUNK_SECONDS", "0") or 0)
    try:
        with send_lock:
            conn.send(("ready",))
    except (OSError, ValueError):
        return chunks_seen, False
    inbox: List[tuple] = []
    while True:
        if inbox:
            message = inbox.pop(0)
        else:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return chunks_seen, False
        tag = message[0]
        if tag == "shutdown":
            say("broker asked us to shut down")
            return chunks_seen, True
        if tag != "jobs":
            continue  # cancels for chunks we no longer hold land here
        _, chunk_id, entries = message
        chunks_seen += 1
        if die_after and chunks_seen >= die_after:
            os._exit(86)  # fault injection: crash mid-job, no goodbyes
        if freeze_after and chunks_seen >= freeze_after:
            stop_beating.set()  # fault injection: go silent, hang forever
            while True:
                time.sleep(60)
        cancelled = False

        def should_abort(chunk_id: int = chunk_id) -> bool:
            """Between-jobs poll for a broker cancel; cheap, non-blocking."""
            nonlocal cancelled
            try:
                while not cancelled and conn.poll(0):
                    peeked = conn.recv()
                    if peeked[0] == "cancel":
                        if peeked[1] == chunk_id:
                            cancelled = True
                        # a cancel for some other chunk is stale: drop it
                    else:
                        inbox.append(peeked)
            except (EOFError, OSError):
                cancelled = True  # connection gone: stop burning cycles
            return cancelled

        if slow_chunk > 0:
            # fault injection: a degraded worker — alive and heartbeating,
            # but taking forever per chunk; abortable so a cancel frees it
            deadline = time.monotonic() + slow_chunk
            while time.monotonic() < deadline and not should_abort():
                time.sleep(0.05)
        try:
            with obs.span("worker.chunk"):
                results = execute_chunk(entries, cache, should_abort)
        except BaseException:
            trace = traceback.format_exc()
            say(f"chunk {chunk_id} raised:\n{trace}")
            try:
                with send_lock:
                    conn.send(("error", chunk_id, trace))
            except (OSError, ValueError):
                return chunks_seen, False
        else:
            if cancelled and len(results) < len(entries):
                say(f"chunk {chunk_id} cancelled by broker "
                    f"({len(results)}/{len(entries)} jobs already done)")
            try:
                with send_lock:
                    # a large result can hold the send lock past several
                    # beat intervals; the leading heartbeat resets the
                    # broker's liveness clock so the full timeout budget
                    # covers the transfer itself
                    conn.send(("heartbeat",))
                    if obs.enabled():
                        # protocol 4: drained span/metric buffers ride the
                        # result message; the broker relays them to the
                        # sweep's driver for the merged run artifact
                        conn.send(("result", chunk_id, results,
                                   obs.drain_payload()))
                    else:
                        conn.send(("result", chunk_id, results))
            except (OSError, ValueError):
                say("broker went away while returning results; "
                    "the chunk will be re-dispatched")
                return chunks_seen, False
