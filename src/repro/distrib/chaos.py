"""Deterministic interleaving harness for the broker's state machine.

Every broker transition (peer join, chunk dispatch, result, error, death,
monitor reap, driver submit/detach) is a small locked step; the threads in
a live :class:`~repro.distrib.broker.Broker` only decide *when* each step
fires.  :class:`BrokerHarness` exploits that: it wraps a **real** broker —
the production transition code, not a reimplementation — whose threads are
never started and whose peers are :class:`ScriptedConnection` stubs, so a
test can fire the exact transitions of a pathological ordering one call at
a time, single-threaded, with an injectable clock for the monitor.

Orderings that take a thousand chaos-soak runs to hit by luck — a stale
``error`` arriving after its chunk was requeued, a result racing the
monitor's death verdict, a resubmit racing the final settlement — become
three-line deterministic regression tests.  :func:`run_random_schedule`
complements them: it drives a seeded random walk over the same step
vocabulary (including worker churn, freezes, driver partitions, suspicion
stepping — partial heartbeats plus small monitor ticks, which exercises
the adaptive-liveness and hedging paths — and, with a journal directory,
full broker bounces), checks the broker's structural invariants after
every step, then drains the sweep and asserts exactly-once delivery.  Any
assertion failure is replayable from just the seed.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple, cast

from multiprocessing.connection import Connection

from .broker import Broker, _Chunk, _Driver, _Worker

__all__ = ["ScriptedConnection", "BrokerHarness", "run_random_schedule",
           "check_invariants"]


class ScriptedConnection:
    """A Connection stand-in that records sends and can be partitioned."""

    def __init__(self, name: str = "scripted") -> None:
        self.name = name
        self.sent: List[tuple] = []
        self.closed = False
        self.partitioned = False

    def send(self, message: object) -> None:
        if self.closed:
            raise OSError(f"{self.name}: connection closed")
        if self.partitioned:
            raise OSError(f"{self.name}: network partition")
        self.sent.append(message)

    def close(self) -> None:
        self.closed = True

    def tagged(self, tag: str) -> List[tuple]:
        """Every recorded message with the given tag, in send order."""
        return [m for m in self.sent if m and m[0] == tag]


class BrokerHarness:
    """Drive a real broker's transitions single-threaded from a script.

    The wrapped broker is fully constructed (including journal recovery
    when ``journal_dir`` is set) but ``start()`` is never called: no
    accept, receiver, dispatch, or monitor thread exists.  Peers are
    installed directly and every transition is a method call, so the test
    controls the complete interleaving.  The monitor's clock is the
    harness's ``now`` attribute, advanced by :meth:`tick`.
    """

    def __init__(self, heartbeat_timeout: float = 10.0, max_retries: int = 2,
                 journal_dir: Optional[str] = None,
                 max_hedges_per_chunk: int = 1,
                 hedge_factor: float = 3.0) -> None:
        self.broker = Broker(
            address=("127.0.0.1", 0),
            heartbeat_timeout=heartbeat_timeout,
            max_retries=max_retries,
            journal_dir=journal_dir,
            max_hedges_per_chunk=max_hedges_per_chunk,
            hedge_factor=hedge_factor,
        )
        self.broker._listener.close()  # no accept thread will ever run
        self.now = 0.0
        # dispatch/completion timestamps come from the scripted clock too,
        # so chunk-duration EWMAs (the hedge trigger) are test-controlled
        self.broker._clock = lambda: self.now

    # -- peers ---------------------------------------------------------

    def add_worker(self, ready: bool = True) -> _Worker:
        """Join a worker (handshake already done) and optionally idle it."""
        peer_id = next(self.broker._ids)
        conn = cast(Connection, ScriptedConnection(f"worker-{peer_id}"))
        worker = _Worker(peer_id, conn, {})
        worker.last_seen = self.now
        with self.broker._wake:
            self.broker._workers[worker.id] = worker
            if ready:
                self.broker._idle.add(worker.id)
        return worker

    def add_driver(self, hint: int = 1) -> _Driver:
        peer_id = next(self.broker._ids)
        conn = cast(Connection, ScriptedConnection(f"driver-{peer_id}"))
        driver = _Driver(peer_id, conn, {"workers_hint": hint})
        with self.broker._lock:
            self.broker._drivers[driver.id] = driver
        return driver

    # -- driver-side transitions ---------------------------------------

    def submit(self, driver: _Driver, sweep_id: str,
               entries: List[tuple]) -> None:
        """A ``("submit", sweep_id, [(seq, key, job), …])`` message."""
        self.broker._submit(driver, sweep_id, entries)

    def driver_bye(self, driver: _Driver) -> None:
        self.broker._driver_lost(driver, clean=True)

    def driver_eof(self, driver: _Driver) -> None:
        """The driver's socket died without a ``bye`` (crash/partition)."""
        self.broker._driver_lost(driver, clean=False)

    # -- worker-side transitions ---------------------------------------

    def worker_ready(self, worker: _Worker) -> None:
        worker.observe(self.now)
        with self.broker._wake:
            if worker.alive and worker.id not in self.broker._assignments:
                self.broker._idle.add(worker.id)

    def worker_result(self, worker: _Worker, chunk_id: int,
                      results: List[tuple]) -> None:
        worker.observe(self.now)
        self.broker._complete_chunk(worker, chunk_id, results)

    def worker_error(self, worker: _Worker, chunk_id: int,
                     trace: str) -> None:
        worker.observe(self.now)
        self.broker._chunk_error(worker, chunk_id, trace)

    def worker_eof(self, worker: _Worker) -> None:
        self.broker._worker_lost(worker)

    def heartbeat(self, worker: _Worker) -> None:
        worker.observe(self.now)

    # -- broker-side steps ---------------------------------------------

    def dispatch(self) -> Optional[Tuple[_Worker, _Chunk]]:
        """One dispatch step; the chunk assigned by it, if any."""
        before = dict(self.broker._assignments)
        if not self.broker._dispatch_once():
            return None
        for worker_id, chunk in self.broker._assignments.items():
            if before.get(worker_id) is not chunk:
                return self.broker._workers[worker_id], chunk
        return None  # the step consumed a dead/settled chunk

    def dispatch_all(self) -> List[tuple]:
        assigned = []
        while True:
            before = dict(self.broker._assignments)
            if not self.broker._dispatch_once():
                return assigned
            for worker_id, chunk in self.broker._assignments.items():
                if before.get(worker_id) is not chunk:
                    assigned.append((self.broker._workers[worker_id], chunk))

    def tick(self, dt: float) -> list:
        """Advance the scripted clock and run one monitor pass."""
        self.now += dt
        return self.broker._reap_stale(self.now)

    # -- convenience ----------------------------------------------------

    def assignment(self, worker: _Worker) -> Optional[_Chunk]:
        return self.broker._assignments.get(worker.id)

    def idle(self) -> set:
        return set(self.broker._idle)

    def suspects(self) -> set:
        with self.broker._lock:
            return set(self.broker._suspects)

    def pending(self) -> list:
        return list(self.broker._pending)

    def finish_assignment(self, worker: _Worker, compute: Callable) -> None:
        """Complete the worker's assigned chunk with computed results."""
        chunk = self.broker._assignments[worker.id]
        results = [((chunk.sweep_id, seq), compute(job))
                   for seq, job in chunk.entries]
        self.worker_result(worker, chunk.id, results)

    def results_to(self, driver: _Driver) -> Dict[int, object]:
        """seq → value over every ``result`` message sent to *driver*."""
        received: Dict[int, object] = {}
        conn = cast(ScriptedConnection, driver.conn)
        for _tag, pairs in conn.tagged("result"):
            for seq, value in pairs:
                received[seq] = value
        return received

    def failures_to(self, driver: _Driver) -> Dict[int, tuple]:
        failed: Dict[int, tuple] = {}
        conn = cast(ScriptedConnection, driver.conn)
        for _tag, pairs in conn.tagged("failed"):
            for seq, attempts, reason in pairs:
                failed[seq] = (attempts, reason)
        return failed

    def done_count(self, driver: _Driver) -> int:
        return len(cast(ScriptedConnection, driver.conn).tagged("done"))

    def close(self) -> None:
        self.broker.close()


def check_invariants(harness: BrokerHarness) -> None:
    """Structural invariants that must hold after *every* transition."""
    broker = harness.broker
    with broker._lock:
        idle = set(broker._idle)
        assigned = dict(broker._assignments)
        workers = set(broker._workers)
        suspects = set(broker._suspects)
        # an idle worker holds no chunk, and only live workers are idle
        overlap = idle & set(assigned)
        assert not overlap, f"workers both idle and assigned: {overlap}"
        assert idle <= workers, f"dead workers in idle set: {idle - workers}"
        # suspicion is a state of live workers; the dead are just dead
        assert suspects <= workers, (
            f"dead workers still suspected: {suspects - workers}"
        )
        # every unsettled job of every sweep is reachable via some chunk
        reachable: Dict[str, set] = {}
        for chunk in list(broker._pending) + list(assigned.values()):
            reachable.setdefault(chunk.sweep_id, set()).update(
                seq for seq, _job in chunk.entries
            )
        for sweep in broker._sweeps.values():
            lost = sweep.remaining - reachable.get(sweep.id, set())
            assert not lost, (
                f"sweep {sweep.id}: seqs {sorted(lost)} unsettled but in no "
                f"pending or assigned chunk — they can never complete"
            )
            both = sweep.remaining & set(sweep.settled)
            assert not both, f"sweep {sweep.id}: settled AND remaining: {both}"
            n_results = sum(1 for out in sweep.settled.values()
                            if out[0] == "result")
            assert sweep.done == n_results, (
                f"sweep {sweep.id}: done={sweep.done} but "
                f"{n_results} settled results"
            )
            # the hedge budget is a hard cap, including across bounces
            over = {seq: n for seq, n in sweep.hedged.items()
                    if n > broker.max_hedges_per_chunk}
            assert not over, (
                f"sweep {sweep.id}: hedge cap "
                f"{broker.max_hedges_per_chunk} exceeded: {over}"
            )


def run_random_schedule(
    seed: int,
    steps: int = 200,
    n_workers: int = 3,
    n_jobs: int = 12,
    max_retries: int = 6,
    journal_dir: Optional[str] = None,
) -> Dict[int, object]:
    """Random-walk the broker through *steps* transitions, then drain.

    Jobs are small ints; the scripted "computation" is a pure function of
    the job, so — exactly like the real sweep — any interleaving must
    deliver identical values.  Each step randomly fires one transition
    (dispatch, complete, error, stale duplicate, worker kill/spawn,
    freeze + monitor reap, driver partition + reattach, and — when
    *journal_dir* is set — a full broker bounce with journal recovery),
    re-checking :func:`check_invariants` afterwards.  Returns the final
    seq → value map delivered to the driver, after asserting exactly-once
    delivery and completion.

    ``max_retries`` is deliberately generous: the walk injects errors and
    deaths far more often than any sane deployment, and a job failed past
    the budget is a *legal* outcome, not an interesting one.
    """
    rng = random.Random(seed)
    compute = lambda job: ("value-of", job)  # noqa: E731
    sweep_id = f"chaos-{seed}"
    entries = [(seq, f"key-{seq % 3}", seq) for seq in range(n_jobs)]
    received: Dict[int, object] = {}
    failed: Dict[int, tuple] = {}

    harness = BrokerHarness(heartbeat_timeout=10.0, max_retries=max_retries,
                            journal_dir=journal_dir)
    driver = harness.add_driver(hint=n_workers)
    harness.submit(driver, sweep_id, entries)
    workers = [harness.add_worker() for _ in range(n_workers)]
    frozen: set = set()
    history: List[tuple] = []  # (worker, chunk) of every past assignment

    def harvest() -> None:
        """Fold everything the driver connection received into the tally."""
        nonlocal received, failed
        new = harness.results_to(driver)
        for seq, value in new.items():
            if seq in received:
                assert received[seq] == value, (
                    f"seq {seq} delivered twice with different values"
                )
        received.update(new)
        failed.update(harness.failures_to(driver))

    def reattach() -> None:
        """Reconnect the driver and resubmit what it has not received."""
        nonlocal driver
        harvest()
        driver = harness.add_driver(hint=n_workers)
        missing = [e for e in entries
                   if e[0] not in received and e[0] not in failed]
        harness.submit(driver, sweep_id, missing)

    for _step in range(steps):
        live = [w for w in workers if w.alive]
        assigned = [w for w in live if harness.assignment(w) is not None]
        op = rng.randrange(14)
        if op <= 2:
            result = harness.dispatch()
            if result is not None:
                history.append(result)
        elif op <= 4 and assigned:
            harness.finish_assignment(rng.choice(assigned), compute)
        elif op == 5 and assigned:
            trace = rng.choice(["Traceback\nValueError: boom", "\n", "", "x"])
            worker = rng.choice(assigned)
            chunk = harness.assignment(worker)
            assert chunk is not None  # `assigned` filtered on exactly this
            harness.worker_error(worker, chunk.id, trace)
        elif op == 6 and history:
            # stale duplicate: replay an old message for a past assignment
            worker, chunk = rng.choice(history)
            if rng.random() < 0.5:
                harness.worker_error(worker, chunk.id, "stale\nerror")
            else:
                harness.worker_result(worker, chunk.id, [
                    ((chunk.sweep_id, seq), compute(job))
                    for seq, job in chunk.entries
                ])
        elif op == 7 and len(live) > 1:
            worker = rng.choice(live)
            frozen.discard(worker.id)
            harness.worker_eof(worker)
        elif op == 8:
            workers.append(harness.add_worker())
        elif op == 9 and live:
            frozen.add(rng.choice(live).id)  # stops heartbeating
        elif op == 10:
            for worker in live:
                if worker.id not in frozen:
                    harness.heartbeat(worker)
            harness.tick(rng.choice([0.5, 3.0, 11.0]))
        elif op == 11:
            harness.driver_eof(driver)
            reattach()
        elif op == 13 and live:
            # suspicion stepping: only some workers beat, then a short
            # monitor pass — walks workers in and out of the suspect set
            # and gives tail hedging a chance to fire
            for worker in live:
                if worker.id not in frozen and rng.random() < 0.5:
                    harness.heartbeat(worker)
            harness.tick(rng.choice([0.5, 1.5, 2.5]))
        elif op == 12 and journal_dir is not None:
            # broker bounce: everything in memory dies, the journal does not
            harvest()
            harness.close()
            harness = BrokerHarness(heartbeat_timeout=10.0,
                                    max_retries=max_retries,
                                    journal_dir=journal_dir)
            workers = [harness.add_worker() for _ in range(n_workers)]
            frozen.clear()
            history.clear()
            driver = harness.add_driver(hint=n_workers)
            missing = [e for e in entries
                       if e[0] not in received and e[0] not in failed]
            harness.submit(driver, sweep_id, missing)
        # else: no-op step (an op whose precondition did not hold)
        check_invariants(harness)

    # drain: honest workers finish whatever is left
    for _round in range(10 * n_jobs + 10):
        harvest()
        if harness.done_count(driver) > 0:
            break
        if not any(w.alive for w in workers):
            workers.append(harness.add_worker())
        for worker in [w for w in workers if w.alive]:
            harness.heartbeat(worker)
            if harness.assignment(worker) is not None:
                harness.finish_assignment(worker, compute)
            else:
                harness.worker_ready(worker)
        harness.dispatch_all()
        check_invariants(harness)
    else:
        raise AssertionError(
            f"seed {seed}: sweep failed to drain: received {len(received)} "
            f"+ failed {len(failed)} of {n_jobs}; broker {harness.broker!r}"
        )

    harvest()
    delivered = set(received) | set(failed)
    assert delivered == {seq for seq, _key, _job in entries}, (
        f"seed {seed}: outcome missing for {set(range(n_jobs)) - delivered}"
    )
    assert not (set(received) & set(failed)), "seq both delivered and failed"
    for seq, value in received.items():
        assert value == compute(seq), f"seq {seq}: wrong value {value!r}"
    harness.close()
    return received
