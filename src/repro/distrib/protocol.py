"""Wire protocol of the distributed sweep backend.

Transport is :mod:`multiprocessing.connection` over TCP — stdlib message
framing, pickle serialization, and an HMAC authkey handshake for free.
Every message is a plain tuple whose first element is a string tag:

============ ========================================================= ====
direction    message                                                   why
============ ========================================================= ====
client→broker ``("hello", role, fingerprint, info)``                   join
broker→client ``("welcome", client_id, broker_fingerprint, meta)``     ack
broker→client ``("reject", reason)``                                   refuse
driver→broker ``("submit", sweep_id, [(seq, chunk_key, job), …])``     jobs in
driver→broker ``("stats",)``                                           metrics?
driver→broker ``("bye",)``                                             detach
broker→worker ``("jobs", chunk_id, [(tag, job), …])``                  assign
broker→worker ``("cancel", chunk_id)``                                 stop chunk
worker→broker ``("ready",)`` / ``("heartbeat",)``                      liveness
worker→broker ``("result", chunk_id, [(tag, value), …][, obs])``       jobs out
worker→broker ``("error", chunk_id, traceback_text)``                  job raised
broker→driver ``("result", [(seq, value), …])``                        forward
broker→driver ``("failed", [(seq, attempts, reason), …])``             gave up
broker→driver ``("progress", snapshot_dict)``                          live view
broker→driver ``("obs", payload_dict)``                                telemetry
broker→driver ``("stats", snapshot_dict)``                             metrics
broker→driver ``("done", stats_dict)``                                 sweep over
============ ========================================================= ====

``sweep_id`` is a driver-chosen opaque string naming the sweep *across
connections*: a driver that lost its TCP connection (broker bounce,
partition) reconnects and resubmits its still-missing jobs under the same
id, and the broker — which tracks sweeps independently of connections —
replays outcomes that settled while the driver was away instead of
recomputing them.  The job ``tag`` a worker echoes back is
``(sweep_id, seq)``.  A ``bye`` is the clean goodbye: it tells the broker
the driver is leaving *on purpose*, so unfinished sweeps are abandoned
rather than kept waiting for a reattach.

The ``welcome`` *meta* dict (protocol 3) carries broker configuration a
peer should adapt to — today ``protocol`` and ``heartbeat_timeout``, from
which workers derive their heartbeat send interval instead of using a
hardcoded cadence.  A ``cancel`` (protocol 3) tells a worker the named
chunk settled elsewhere (a hedge lost its race): the worker aborts
between jobs and replies with a normal ``result`` carrying whatever
prefix it finished — settlement is per-job and idempotent, so a partial
result is always safe.

Protocol 4 adds the observability surface, all of it optional and
backwards-compatible: an obs-enabled worker appends its drained
span/metric buffers as a 4th ``result`` element (a broker reading a
3-tuple still works — the payload slot just reads as absent); the broker
relays such payloads to the sweep's driver as ``("obs", payload)``; and
a driver may ask ``("stats",)`` at any time to receive ``("stats",
snapshot)`` — the broker's lifetime counters (dispatches, requeues,
hedges, suspect flips, heartbeat-interarrival stats) plus live occupancy
gauges.  None of these messages affect settlement: they are telemetry,
dropped harmlessly when a peer predates them.

``role`` is ``"worker"`` or ``"driver"``; both are rejected when their code
fingerprint (:func:`repro.runner.cache.code_fingerprint`) differs from the
broker's, so a stale checkout can never silently contribute results
computed by different simulator code.

Chunking
--------
:func:`chunk_jobs` packs a driver's job list into dispatch units.  Jobs
that share an expensive prepared artifact (``chunk_key`` — the runner's
``prepare_key``, e.g. all flow shards of one recorded condition) are
grouped and split into at most ``2 × workers`` contiguous chunks: large
enough that a worker amortizes the shared simulation over several shard
replays, small enough that an idle worker can steal the tail of a slow
condition instead of watching one peer grind through it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

__all__ = [
    "DEFAULT_AUTHKEY",
    "PROTOCOL_VERSION",
    "JobFailure",
    "BrokerUnavailableError",
    "DistributedSweepError",
    "authkey_from_env",
    "parse_address",
    "format_address",
    "chunk_jobs",
]

PROTOCOL_VERSION = 4

# Shared secret for the connection-level HMAC handshake.  This
# authenticates peers (a stray process cannot join the pool by accident);
# it is not transport encryption.  Deployments on untrusted networks
# should set REPRO_DISTRIB_AUTHKEY to a private value on every host.
DEFAULT_AUTHKEY = b"repro-distrib-v1"


def authkey_from_env(explicit: Optional[str] = None) -> bytes:
    """The cluster authkey: explicit value, env override, or the default."""
    if explicit:
        return explicit.encode()
    env = os.environ.get("REPRO_DISTRIB_AUTHKEY")
    return env.encode() if env else DEFAULT_AUTHKEY


def parse_address(spec: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    """``"host:port"`` → ``(host, port)``; bare ``":port"`` binds localhost."""
    if isinstance(spec, tuple):
        host, port = spec
        return (host or "127.0.0.1", int(port))
    host, sep, port = str(spec).rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"address must look like HOST:PORT: {spec!r}")
    return (host or "127.0.0.1", int(port))


def format_address(address: Tuple[str, int]) -> str:
    return f"{address[0]}:{address[1]}"


@dataclass(frozen=True)
class JobFailure:
    """One job the broker gave up on after exhausting its retries."""

    seq: int  # the job's index in the driver's submitted list
    attempts: int
    reason: str

    def __str__(self) -> str:
        return f"job #{self.seq} failed after {self.attempts} attempt(s): {self.reason}"


class BrokerUnavailableError(RuntimeError):
    """The driver exhausted its reconnect budget without reaching a broker.

    Raised by :class:`~repro.distrib.runner.DistributedRunner` after
    ``reconnect_attempts`` consecutive failed connection attempts.  Results
    received before the outage were already persisted to the cache, so a
    rerun against a recovered broker resumes from them.
    """


class DistributedSweepError(RuntimeError):
    """Raised by the driver when any job exhausted its retry budget.

    Carries the structured :class:`JobFailure` list; results of jobs that
    *did* complete were already persisted to the driver's cache, so a
    retried sweep resumes from the survivors.
    """

    def __init__(self, failures: Sequence[JobFailure]) -> None:
        self.failures = list(failures)
        lines = "\n  ".join(str(f) for f in self.failures)
        super().__init__(
            f"{len(self.failures)} sweep job(s) permanently failed:\n  {lines}"
        )


def chunk_jobs(entries: Sequence[tuple], n_workers: int) -> List[list]:
    """Pack ``(seq, chunk_key, job)`` entries into dispatch chunks.

    Entries with ``chunk_key=None`` become singleton chunks.  Entries
    sharing a key are grouped (wherever they sit in the submission) and
    split into at most ``2 * n_workers`` contiguous, balanced chunks of
    ``(seq, job)`` pairs; chunk order follows first appearance, so
    dispatch order is deterministic for a given submission.
    """
    if n_workers < 1:
        n_workers = 1
    groups: List[list] = []
    by_key: dict = {}
    for seq, key, job in entries:
        if key is None:
            groups.append([(seq, job)])
            continue
        group = by_key.get(key)
        if group is None:
            group = by_key[key] = []
            groups.append(group)
        group.append((seq, job))
    chunks: List[list] = []
    for group in groups:
        if len(group) == 1:
            chunks.append(group)
            continue
        n_chunks = min(len(group), 2 * n_workers)
        base, extra = divmod(len(group), n_chunks)
        start = 0
        for c in range(n_chunks):
            size = base + (1 if c < extra else 0)
            chunks.append(group[start:start + size])
            start += size
    return chunks
