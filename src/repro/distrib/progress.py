"""Live progress reporting for distributed sweeps.

The broker pushes a :class:`ProgressSnapshot`-shaped dict to the driver on
every state transition (submit, dispatch, completion, failure, worker
churn); the driver hands it to whatever callback it was built with.
:class:`ProgressPrinter` is the default CLI sink — one line to *stderr*
per distinct state, never stdout, so experiment output stays byte-
comparable with the serial backend's.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, fields
from typing import Optional, TextIO

__all__ = ["ProgressSnapshot", "ProgressPrinter"]


@dataclass(frozen=True)
class ProgressSnapshot:
    """One driver's sweep state as the broker sees it."""

    total: int = 0
    queued: int = 0
    running: int = 0
    done: int = 0
    failed: int = 0
    workers: int = 0
    retries: int = 0

    @classmethod
    def from_dict(cls, raw: dict) -> "ProgressSnapshot":
        names = {f.name for f in fields(cls)}
        return cls(**{k: int(v) for k, v in raw.items() if k in names})

    def format(self) -> str:
        line = (
            f"done {self.done}/{self.total} · running {self.running} "
            f"· queued {self.queued} · workers {self.workers}"
        )
        if self.failed:
            line += f" · FAILED {self.failed}"
        if self.retries:
            line += f" · retries {self.retries}"
        return line


class ProgressPrinter:
    """Callback printing each distinct snapshot as one stderr line."""

    def __init__(self, stream: Optional[TextIO] = None,
                 prefix: str = "[distrib] ") -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.prefix = prefix
        self._last: Optional[str] = None

    def __call__(self, snapshot: ProgressSnapshot) -> None:
        line = snapshot.format()
        if line == self._last:
            return
        self._last = line
        try:
            self.stream.write(f"{self.prefix}{line}\n")
            self.stream.flush()
        except (OSError, ValueError):  # closed stream: progress is best-effort
            pass
