"""Live progress reporting for distributed sweeps.

The broker pushes a :class:`ProgressSnapshot`-shaped dict to the driver on
every state transition (submit, dispatch, completion, failure, worker
churn, suspicion flips, hedge dispatches); the driver hands it to whatever
callback it was built with.  :class:`ProgressPrinter` is the default CLI
sink — one line to *stderr* per distinct state, never stdout, so
experiment output stays byte-comparable with the serial backend's.
"""

from __future__ import annotations

import shutil
import sys
from dataclasses import dataclass, fields
from typing import Optional, TextIO, Tuple

__all__ = ["ProgressSnapshot", "ProgressPrinter"]


@dataclass(frozen=True)
class ProgressSnapshot:
    """One driver's sweep state as the broker sees it.

    ``worker_health`` is ``((worker_id, state), …)`` where *state* is
    ``"ok"``, ``"slow"`` (past its adaptive suspicion threshold but not
    the death cliff), or ``"dead"`` (recently reaped).  ``hedges`` counts
    duplicate dispatches of tail chunks stuck on slow workers.
    """

    total: int = 0
    queued: int = 0
    running: int = 0
    done: int = 0
    failed: int = 0
    workers: int = 0
    retries: int = 0
    hedges: int = 0
    worker_health: Tuple[Tuple[int, str], ...] = ()

    @classmethod
    def from_dict(cls, raw: dict) -> "ProgressSnapshot":
        names = {f.name for f in fields(cls)}
        values: dict = {}
        for key, value in raw.items():
            if key not in names:
                continue  # snapshots from newer brokers stay readable
            if key == "worker_health":
                values[key] = tuple(
                    (int(wid), str(state)) for wid, state in value)
            else:
                values[key] = int(value)
        return cls(**values)

    def format(self) -> str:
        line = (
            f"done {self.done}/{self.total} · running {self.running} "
            f"· queued {self.queued} · workers {self.workers}"
        )
        if self.failed:
            line += f" · FAILED {self.failed}"
        if self.retries:
            line += f" · retries {self.retries}"
        if self.hedges:
            line += f" · hedges {self.hedges}"
        unhealthy = [(wid, state) for wid, state in self.worker_health
                     if state != "ok"]
        if unhealthy:
            # all-ok is the common case and stays silent; only trouble
            # costs line width
            flags = " ".join(f"w{wid}:{state}" for wid, state in unhealthy)
            line += f" · [{flags}]"
        return line


class ProgressPrinter:
    """Callback printing each distinct snapshot as one stderr line.

    Overlong lines are *truncated* to the terminal width, never wrapped:
    a busy cluster state (many workers, health flags, hedge counts) must
    cost one line, not scroll the log.  *width* pins the limit for tests;
    by default it is looked up per call (terminals resize) and applies
    only when the stream is a TTY — redirected logs keep full lines.
    """

    def __init__(self, stream: Optional[TextIO] = None,
                 prefix: str = "[distrib] ",
                 width: Optional[int] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.prefix = prefix
        self.width = width
        self._last: Optional[str] = None

    def _limit(self) -> int:
        """Columns available, or 0 for unlimited."""
        if self.width is not None:
            return max(0, int(self.width))
        try:
            if not self.stream.isatty():
                return 0
        except (AttributeError, OSError, ValueError):
            return 0
        return shutil.get_terminal_size().columns

    def __call__(self, snapshot: ProgressSnapshot) -> None:
        line = f"{self.prefix}{snapshot.format()}"
        limit = self._limit()
        if limit > 0 and len(line) > limit:
            line = line[:max(1, limit - 1)] + "…"
        if line == self._last:
            return
        self._last = line
        try:
            self.stream.write(f"{line}\n")
            self.stream.flush()
        except (OSError, ValueError):  # closed stream: progress is best-effort
            pass
