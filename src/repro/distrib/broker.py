"""The sweep broker: a small fault-tolerant job queue over TCP.

One broker serves any number of *workers* (stateless executors started
with ``python -m repro worker --connect HOST:PORT``) and *drivers*
(:class:`~repro.distrib.runner.DistributedRunner` instances submitting job
lists).  Design follows the classic batch-farming shape: the broker owns
only queue state — jobs are pure functions of their descriptors, results
flow straight back to the submitting driver, and the content-addressed
:class:`~repro.runner.cache.ResultCache` (driver-side, optionally also
worker-side on a shared filesystem) is the only persistence.

Fault model
-----------
* **Crashed worker** — its socket EOFs; the receiver thread requeues the
  worker's in-flight chunk immediately.
* **Hung / partitioned worker** — heartbeats stop; the monitor thread
  declares it dead after ``heartbeat_timeout`` and requeues the same way.
* **Job raised** — counted like a worker loss for that chunk (the failure
  is usually deterministic, so the retry budget bounds the damage).

A chunk that fails more than ``max_retries`` times is not retried again:
every job still outstanding in it is surfaced to its driver as a
structured :class:`~repro.distrib.protocol.JobFailure`.  A worker declared
dead that later reports its result anyway is harmless — per-job delivery
is idempotent (first result wins; a job's result is a pure function of the
job, so "first" is also "only", byte for byte).

Determinism
-----------
The broker never merges results: it forwards ``(seq, value)`` pairs and
the driver places them by submission index, so completion order — which
workers raced which chunks — cannot influence the assembled sweep output.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from multiprocessing import AuthenticationError
from multiprocessing.connection import (
    Connection,
    Listener,
    answer_challenge,
    deliver_challenge,
)
from typing import Dict, List, Optional, Tuple

from ..runner.cache import code_fingerprint
from .protocol import DEFAULT_AUTHKEY, chunk_jobs

__all__ = ["Broker"]


class _Peer:
    """Connection-level state shared by workers and drivers."""

    def __init__(self, peer_id: int, conn: Connection, info: dict):
        self.id = peer_id
        self.conn = conn
        self.info = info or {}
        self.alive = True
        self.last_seen = time.monotonic()
        self.send_lock = threading.Lock()

    def send(self, message) -> None:
        with self.send_lock:
            self.conn.send(message)


class _Worker(_Peer):
    pass


class _Driver(_Peer):
    def __init__(self, peer_id: int, conn: Connection, info: dict):
        super().__init__(peer_id, conn, info)
        self.total = 0
        self.done = 0
        self.retries = 0
        self.finished = False  # "done" already sent
        self.remaining: set = set()  # seqs not yet completed or failed
        self.failures: List[tuple] = []  # (seq, attempts, reason)


def _record_done(driver: "_Driver", live: List[tuple]) -> None:
    driver.done += len(live)


def _record_failed(driver: "_Driver", live: List[tuple]) -> None:
    driver.failures.extend(live)


class _Chunk:
    """One dispatch unit: a slice of a driver's jobs plus its retry state."""

    __slots__ = ("id", "driver_id", "entries", "failures", "last_error")

    def __init__(self, chunk_id: int, driver_id: int, entries: List[tuple]):
        self.id = chunk_id
        self.driver_id = driver_id
        self.entries = entries  # [(seq, job), ...]
        self.failures = 0
        self.last_error: Optional[str] = None


class Broker:
    """Accepts workers and drivers; queues, dispatches, retries, reports.

    Parameters
    ----------
    address:
        ``(host, port)`` to listen on; port ``0`` picks an ephemeral port
        (read the bound one back from :attr:`address`).
    authkey:
        Shared HMAC secret; peers with a different key cannot connect.
    heartbeat_timeout:
        Seconds of worker silence (no heartbeat, result, or ready) before
        the monitor declares it dead and requeues its chunk.  Workers beat
        immediately before starting a result transfer, so this must only
        exceed the worst-case time to *ship* one chunk's results (not to
        compute them); raise it for very slow links or huge results.
    max_retries:
        How many times a chunk may fail (worker death or job exception)
        before its jobs are surfaced as structured failures.
    fingerprint:
        Code fingerprint to enforce on joining peers; defaults to this
        process's :func:`~repro.runner.cache.code_fingerprint`.
    """

    def __init__(
        self,
        address: Tuple[str, int] = ("127.0.0.1", 0),
        authkey: bytes = DEFAULT_AUTHKEY,
        heartbeat_timeout: float = 10.0,
        max_retries: int = 2,
        fingerprint: Optional[str] = None,
    ):
        # No authkey on the Listener: with one, accept() would run the HMAC
        # challenge inline in the accept loop, where a silent TCP peer (port
        # scanner, health check, half-open connection) would wedge admission
        # for everyone, forever.  We run the identical challenge ourselves
        # in the per-peer thread instead, under a watchdog.
        self._authkey = bytes(authkey)
        self._listener = Listener(tuple(address))
        self.address: Tuple[str, int] = self._listener.address
        self.heartbeat_timeout = heartbeat_timeout
        self.max_retries = max_retries
        self.fingerprint = fingerprint or code_fingerprint()
        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)
        self._closed = False
        self._ids = itertools.count(1)
        self._chunk_ids = itertools.count(1)
        self._workers: Dict[int, _Worker] = {}
        self._drivers: Dict[int, _Driver] = {}
        self._idle: set = set()
        self._pending: deque = deque()
        self._assignments: Dict[int, _Chunk] = {}  # worker id -> chunk
        self._threads: List[threading.Thread] = []
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> "Broker":
        if self._started:
            return self
        self._started = True
        for target, name in (
            (self._accept_loop, "accept"),
            (self._dispatch_loop, "dispatch"),
            (self._monitor_loop, "monitor"),
        ):
            thread = threading.Thread(
                target=target, name=f"repro-broker-{name}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return self

    def close(self) -> None:
        with self._wake:
            if self._closed:
                return
            self._closed = True
            peers = list(self._workers.values()) + list(self._drivers.values())
            self._wake.notify_all()
        try:
            self._listener.close()
        except OSError:
            pass
        for peer in peers:
            try:
                peer.conn.close()
            except OSError:
                pass

    def __enter__(self) -> "Broker":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def serve_forever(self) -> None:
        """Block until interrupted (the standalone ``broker`` subcommand)."""
        self.start()
        try:
            while not self._closed:
                time.sleep(0.5)
        finally:
            self.close()

    # ------------------------------------------------------------------
    # introspection (used by the runner and tests)

    def worker_count(self) -> int:
        with self._lock:
            return len(self._workers)

    def wait_for_workers(self, count: int, timeout: float = 30.0) -> bool:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.worker_count() >= count:
                return True
            time.sleep(0.05)
        return self.worker_count() >= count

    # ------------------------------------------------------------------
    # connection handling

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn = self._listener.accept()
            except (OSError, EOFError):
                if self._closed:
                    return
                continue
            threading.Thread(
                target=self._serve_peer, args=(conn,), daemon=True,
                name="repro-broker-peer",
            ).start()

    def _serve_peer(self, conn: Connection) -> None:
        # watchdog: a peer that stalls mid-handshake (silent socket, wrong
        # protocol) gets its connection closed, which pops the blocking
        # recv below; only this peer's thread is ever at stake
        handshake_done = threading.Event()

        def _expire() -> None:
            if not handshake_done.is_set():
                try:
                    conn.close()
                except OSError:
                    pass

        watchdog = threading.Timer(10.0, _expire)
        watchdog.daemon = True
        watchdog.start()
        try:
            # the exact mutual challenge Client(address, authkey=…) expects
            deliver_challenge(conn, self._authkey)
            answer_challenge(conn, self._authkey)
        except (AuthenticationError, EOFError, OSError):
            try:
                conn.close()
            except OSError:
                pass
            return
        finally:
            handshake_done.set()
            watchdog.cancel()
        try:
            if not conn.poll(10.0):
                conn.close()
                return
            hello = conn.recv()
            if not (isinstance(hello, tuple) and len(hello) == 4
                    and hello[0] == "hello"):
                conn.send(("reject", f"malformed hello: {hello!r}"))
                conn.close()
                return
            _, role, fingerprint, info = hello
            if role not in ("worker", "driver"):
                conn.send(("reject", f"unknown role: {role!r}"))
                conn.close()
                return
            if fingerprint != self.fingerprint:
                conn.send((
                    "reject",
                    f"code fingerprint mismatch: broker runs "
                    f"{self.fingerprint[:12]}… but this {role} runs "
                    f"{str(fingerprint)[:12]}… — update the {role}'s checkout "
                    f"so every peer executes identical simulator code",
                ))
                conn.close()
                return
        except (EOFError, OSError):
            return
        peer_id = next(self._ids)
        if role == "worker":
            worker = _Worker(peer_id, conn, info)
            with self._wake:
                if self._closed:
                    conn.close()
                    return
                self._workers[peer_id] = worker
            try:
                worker.send(("welcome", peer_id, self.fingerprint))
            except (OSError, ValueError):
                self._worker_lost(worker)
                return
            self._broadcast_progress()
            self._worker_loop(worker)
        else:
            driver = _Driver(peer_id, conn, info)
            with self._lock:
                if self._closed:
                    conn.close()
                    return
                self._drivers[peer_id] = driver
            try:
                driver.send(("welcome", peer_id, self.fingerprint))
            except (OSError, ValueError):
                self._driver_lost(driver)
                return
            self._driver_loop(driver)

    # ------------------------------------------------------------------
    # worker side

    def _worker_loop(self, worker: _Worker) -> None:
        try:
            while not self._closed:
                try:
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    break
                worker.last_seen = time.monotonic()
                tag = message[0]
                if tag == "heartbeat":
                    continue
                if tag == "ready":
                    with self._wake:
                        if worker.alive:
                            self._idle.add(worker.id)
                            self._wake.notify_all()
                elif tag == "result":
                    self._complete_chunk(worker, message[1], message[2])
                elif tag == "error":
                    self._chunk_error(worker, message[1], message[2])
        finally:
            self._worker_lost(worker)

    def _complete_chunk(self, worker: _Worker, chunk_id: int,
                        results: List[tuple]) -> None:
        with self._wake:
            chunk = self._assignments.get(worker.id)
            if chunk is not None and chunk.id == chunk_id:
                del self._assignments[worker.id]
            else:
                # late result from a worker we already declared dead for
                # this chunk; results are pure so delivery stays idempotent
                chunk = None
            if worker.alive:
                self._idle.add(worker.id)
                self._wake.notify_all()
        self._deliver(results)

    def _chunk_error(self, worker: _Worker, chunk_id: int, trace: str) -> None:
        with self._wake:
            chunk = self._assignments.pop(worker.id, None)
            if worker.alive:
                self._idle.add(worker.id)
                self._wake.notify_all()
        if chunk is not None and chunk.id == chunk_id:
            chunk.last_error = trace.strip().splitlines()[-1] if trace else "job raised"
            self._requeue(chunk)

    def _worker_lost(self, worker: _Worker) -> None:
        with self._wake:
            if not worker.alive:
                return
            worker.alive = False
            self._workers.pop(worker.id, None)
            self._idle.discard(worker.id)
            chunk = self._assignments.pop(worker.id, None)
            self._wake.notify_all()
        try:
            worker.conn.close()
        except OSError:
            pass
        if chunk is not None:
            chunk.last_error = f"worker {worker.id} died mid-chunk"
            self._requeue(chunk)
        else:
            self._broadcast_progress()

    def _requeue(self, chunk: _Chunk) -> None:
        """Retry a failed chunk, or surface its jobs as permanent failures."""
        with self._lock:
            driver = self._drivers.get(chunk.driver_id)
            if driver is None:
                return
            chunk.failures += 1
            driver.retries += 1
            chunk.entries = [e for e in chunk.entries if e[0] in driver.remaining]
            if not chunk.entries:
                return
        if chunk.failures <= self.max_retries:
            with self._wake:
                self._pending.appendleft(chunk)  # retries jump the queue
                self._wake.notify_all()
            self._send_progress(driver)
            return
        reason = chunk.last_error or "unknown failure"
        # every recorded failure was one dispatch attempt
        failed = [(seq, chunk.failures, reason) for seq, _job in chunk.entries]
        self._fail_entries(driver, failed)

    def _monitor_loop(self) -> None:
        interval = max(0.2, min(self.heartbeat_timeout / 4.0, 2.0))
        while not self._closed:
            time.sleep(interval)
            now = time.monotonic()
            with self._lock:
                stale = [
                    w for w in self._workers.values()
                    if now - w.last_seen > self.heartbeat_timeout
                ]
            for worker in stale:
                # declare it dead *here* — a close() alone would not wake a
                # receiver thread blocked in recv() on a silent-but-open
                # socket, and the chunk must requeue now.  _worker_lost is
                # idempotent, so the receiver thread's own exit (whenever
                # the socket finally errors) is harmless, and a result the
                # "dead" worker still manages to send is deduplicated at
                # delivery (first result per job wins).
                self._worker_lost(worker)

    # ------------------------------------------------------------------
    # driver side

    def _driver_loop(self, driver: _Driver) -> None:
        try:
            while not self._closed:
                try:
                    message = driver.conn.recv()
                except (EOFError, OSError):
                    break
                tag = message[0]
                if tag == "submit":
                    self._submit(driver, message[1])
                elif tag == "bye":
                    break
        finally:
            self._driver_lost(driver)

    def _submit(self, driver: _Driver, entries: List[tuple]) -> None:
        with self._wake:
            hint = max(len(self._workers),
                       int(driver.info.get("workers_hint") or 0), 1)
            chunks = [
                _Chunk(next(self._chunk_ids), driver.id, chunk)
                for chunk in chunk_jobs(entries, hint)
            ]
            driver.total += len(entries)
            driver.finished = False
            driver.remaining.update(seq for seq, _key, _job in entries)
            self._pending.extend(chunks)
            self._wake.notify_all()
        self._send_progress(driver)
        if not entries:
            self._complete_entries(driver, [])  # nothing to wait for

    def _driver_lost(self, driver: _Driver) -> None:
        with self._wake:
            self._drivers.pop(driver.id, None)
            driver.alive = False
            driver.remaining.clear()
            # orphaned pending chunks are skipped at dispatch time
        try:
            driver.conn.close()
        except OSError:
            pass

    def _deliver(self, results: List[tuple]) -> None:
        """Route completed ``(tagged seq, value)`` pairs to their drivers."""
        by_driver: Dict[int, List[tuple]] = {}
        for (driver_id, seq), value in results:
            by_driver.setdefault(driver_id, []).append((seq, value))
        for driver_id, pairs in by_driver.items():
            with self._lock:
                driver = self._drivers.get(driver_id)
            if driver is not None:
                self._complete_entries(driver, pairs)

    def _complete_entries(self, driver: _Driver, pairs: List[tuple]) -> None:
        """Deliver ``(seq, value)`` results (and maybe the done signal)."""
        self._conclude_entries(driver, "result", pairs, _record_done)

    def _fail_entries(self, driver: _Driver, failed: List[tuple]) -> None:
        """Surface ``(seq, attempts, reason)`` permanent failures."""
        self._conclude_entries(driver, "failed", failed, _record_failed)

    def _conclude_entries(self, driver: _Driver, tag: str,
                          items: List[tuple], record) -> None:
        """Settle jobs terminally and — atomically with that — signal done.

        Every *item* leads with the job's seq; *record* books the live ones
        onto the driver (done counter or failure list).  State update and
        socket write happen together under the driver's send lock, so two
        worker threads finishing simultaneously cannot interleave into
        "done" overtaking an outcome still waiting to be written (the
        driver stops reading at "done").  Duplicate outcomes (a worker
        declared dead that answered anyway) are dropped here: settlement is
        keyed by the ``remaining`` set, first outcome per job wins.
        """
        with driver.send_lock:
            with self._lock:
                live = [item for item in items if item[0] in driver.remaining]
                for item in live:
                    driver.remaining.discard(item[0])
                record(driver, live)
                finish = (driver.alive and not driver.finished
                          and not driver.remaining)
                if finish:
                    driver.finished = True
                    stats = {
                        "total": driver.total,
                        "done": driver.done,
                        "failed": len(driver.failures),
                        "retries": driver.retries,
                    }
            try:
                if live:
                    driver.conn.send((tag, live))
                if finish:
                    driver.conn.send(("progress", self._progress_snapshot(driver)))
                    driver.conn.send(("done", stats))
            except (OSError, ValueError):
                pass  # the driver's receive loop will notice and clean up
        if not finish:
            self._send_progress(driver)

    # ------------------------------------------------------------------
    # dispatch

    def _dispatch_loop(self) -> None:
        while True:
            with self._wake:
                while not self._closed and not (self._pending and self._idle):
                    self._wake.wait(0.5)
                if self._closed:
                    return
                chunk = self._pending.popleft()
                driver = self._drivers.get(chunk.driver_id)
                if driver is None:
                    continue  # submitting driver disconnected
                chunk.entries = [
                    e for e in chunk.entries if e[0] in driver.remaining
                ]
                if not chunk.entries:
                    continue  # everything already delivered or failed
                worker_id = min(self._idle)
                self._idle.discard(worker_id)
                worker = self._workers[worker_id]
                self._assignments[worker_id] = chunk
                payload = (
                    "jobs",
                    chunk.id,
                    [((chunk.driver_id, seq), job) for seq, job in chunk.entries],
                )
            try:
                worker.send(payload)
            except (OSError, ValueError):
                self._worker_lost(worker)  # requeues the chunk
                continue
            self._send_progress(driver)

    # ------------------------------------------------------------------
    # progress

    def _progress_snapshot(self, driver: _Driver) -> dict:
        with self._lock:
            running = sum(
                len(c.entries) for c in self._assignments.values()
                if c.driver_id == driver.id
            )
            failed = len(driver.failures)
            done = driver.done
            total = driver.total
            return {
                "total": total,
                "done": done,
                "failed": failed,
                "running": running,
                "queued": max(0, total - done - failed - running),
                "workers": len(self._workers),
                "retries": driver.retries,
            }

    def _send_progress(self, driver: _Driver) -> None:
        if driver.alive:
            self._safe_send(driver, ("progress", self._progress_snapshot(driver)))

    def _broadcast_progress(self) -> None:
        with self._lock:
            drivers = list(self._drivers.values())
        for driver in drivers:
            self._send_progress(driver)

    def _safe_send(self, peer: _Peer, message) -> None:
        try:
            peer.send(message)
        except (OSError, ValueError):
            pass  # the peer's receive loop will notice and clean up

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"Broker(address={self.address!r}, "
                f"workers={len(self._workers)}, drivers={len(self._drivers)}, "
                f"pending={len(self._pending)})"
            )
