"""The sweep broker: a small fault-tolerant job queue over TCP.

One broker serves any number of *workers* (stateless executors started
with ``python -m repro worker --connect HOST:PORT``) and *drivers*
(:class:`~repro.distrib.runner.DistributedRunner` instances submitting job
lists).  Design follows the classic batch-farming shape: the broker owns
only queue state — jobs are pure functions of their descriptors, results
flow straight back to the submitting driver, and the content-addressed
:class:`~repro.runner.cache.ResultCache` (driver-side, optionally also
worker-side on a shared filesystem) is the only result persistence.  The
queue state itself can additionally be mirrored to an on-disk
:class:`~repro.distrib.journal.SweepJournal` so a bounced broker resumes
mid-sweep instead of starting from scratch.

Fault model
-----------
* **Crashed worker** — its socket EOFs; the receiver thread requeues the
  worker's in-flight chunk immediately.
* **Hung / partitioned worker** — heartbeats stop; the monitor thread
  declares it dead after ``heartbeat_timeout`` and requeues the same way.
* **Degraded worker** — heartbeats still arrive, but late.  The monitor
  tracks each worker's heartbeat-interarrival EWMA and variance
  (phi-accrual style) and marks a worker *suspect* well before the death
  cliff: suspects are deprioritized for new dispatch, shown as ``slow``
  in the progress line, and — when the sweep is down to its tail — their
  in-flight chunk is *hedged*: a duplicate is dispatched to an idle
  worker, first result wins, the loser is cancelled.  Hedges are
  journaled (the per-chunk cap survives a broker bounce) and never count
  toward ``max_retries``.  Suspicion is advisory and reversible: a
  suspect that speaks again is simply healthy, nothing was requeued.
* **Job raised** — counted like a worker loss for that chunk (the failure
  is usually deterministic, so the retry budget bounds the damage).
* **Partitioned driver** — its connection EOFs without a ``bye``; the
  sweep is *orphaned*, not abandoned: chunks keep dispatching and
  settling, and when the driver reconnects and resubmits under the same
  sweep id it receives everything that settled while it was away.
* **Broker crash** — with a journal, unsettled jobs re-enter the queue at
  the next startup and settled outcomes replay on driver reattach; see
  :mod:`repro.distrib.journal`.

A chunk that fails more than ``max_retries`` times is not retried again:
every job still outstanding in it is surfaced to its driver as a
structured :class:`~repro.distrib.protocol.JobFailure`.  A worker declared
dead that later reports its result anyway is harmless — per-job settlement
is idempotent (first outcome wins; a job's result is a pure function of
the job, so "first" is also "only", byte for byte).

State machine
-------------
Every transition below runs under the broker lock; the threads (accept,
per-peer receive, dispatch, monitor) only decide *when* a transition
fires, never what it does — which is what lets the deterministic
interleaving harness (:mod:`repro.distrib.chaos`) drive the identical
transitions single-threaded.  ``docs/architecture.md`` draws the full
peer/chunk/sweep diagram; the invariants the suite replays orderings
against:

* a worker id is never in ``_idle`` while it has an assignment — a
  worker's result or error re-idles it *only* when the message's chunk id
  matches its current assignment (a stale message for a previously
  requeued or foreign chunk must neither free the worker nor discard its
  live assignment);
* every unsettled seq of a live sweep is reachable: it sits in a pending
  chunk, an assigned chunk, or (post-crash) the journal;
* settlement is keyed by the sweep's ``remaining`` set — first outcome
  per job wins, duplicates are dropped, and the ``done`` signal is sent
  atomically with the last outcome under the driver's send lock so it can
  never overtake one.

Determinism
-----------
The broker never merges results: it forwards ``(seq, value)`` pairs and
the driver places them by submission index, so completion order — which
workers raced which chunks — cannot influence the assembled sweep output.
"""

from __future__ import annotations

import itertools
import math
import threading
import time
from collections import deque
from multiprocessing import AuthenticationError
from multiprocessing.connection import (
    Connection,
    Listener,
    answer_challenge,
    deliver_challenge,
)
from typing import Callable, Dict, List, Optional, Tuple

from ..obs.metrics import MetricsRegistry
from ..runner.cache import code_fingerprint
from .journal import SweepJournal, load_journals
from .protocol import DEFAULT_AUTHKEY, PROTOCOL_VERSION, chunk_jobs

__all__ = ["Broker"]


class _Peer:
    """Connection-level state shared by workers and drivers."""

    def __init__(self, peer_id: int, conn: Connection, info: dict) -> None:
        self.id = peer_id
        self.conn = conn
        self.info = info or {}
        self.alive = True
        self.last_seen = time.monotonic()
        self.send_lock = threading.Lock()

    def send(self, message: object) -> None:
        with self.send_lock:
            self.conn.send(message)


# Suspicion model constants (see _Worker.observe / suspect_after).
_HB_ALPHA = 0.25       # EWMA weight for interarrival mean/variance
_HB_MIN_SAMPLES = 3    # intervals before the adaptive threshold is trusted
_HB_PHI = 4.0          # deviations of silence that make a worker suspect
_SUSPECT_FLOOR = 0.25  # x heartbeat_timeout: adaptive threshold floor
_SUSPECT_CEIL = 0.5    # x heartbeat_timeout: silence is suspicious here even
                       # for a worker whose learned cadence is slower — the
                       # model must not adapt its way past the death cliff


class _Worker(_Peer):
    """A worker peer plus its learned heartbeat cadence.

    The cadence fields are, like ``last_seen``, written only by this
    worker's receiver thread (or the scripted harness) and read by the
    monitor without the broker lock — deliberately: a torn read can only
    make the worker suspect one monitor pass early or late, and suspicion
    is advisory (dispatch preference, hedge trigger), never terminal.
    """

    def __init__(self, peer_id: int, conn: Connection, info: dict) -> None:
        super().__init__(peer_id, conn, info)
        self.hb_mean = 0.0
        self.hb_var = 0.0
        self.hb_samples = 0

    def observe(self, now: float) -> None:
        """Fold one message arrival into the interarrival EWMA."""
        interval = now - self.last_seen
        self.last_seen = now
        if interval <= 0.0:
            return
        if self.hb_samples == 0:
            self.hb_mean = interval
        else:
            delta = interval - self.hb_mean
            self.hb_mean += _HB_ALPHA * delta
            self.hb_var += _HB_ALPHA * (delta * delta - self.hb_var)
        self.hb_samples += 1

    def suspect_after(self, timeout: float) -> float:
        """Seconds of silence after which this worker counts as *suspect*.

        Phi-accrual flavored: mean interarrival plus ``_HB_PHI``
        deviations of it, clamped to ``[timeout/4, timeout/2]`` so the
        constructor argument still bounds behavior — a jittery-but-fine
        link is never suspected before ``timeout/4``, a consistently slow
        cadence cannot learn its way past ``timeout/2``, and death stays
        exactly where it always was, at the full timeout.
        """
        ceiling = timeout * _SUSPECT_CEIL
        if self.hb_samples < _HB_MIN_SAMPLES:
            return ceiling
        deviation = math.sqrt(self.hb_var) if self.hb_var > 0.0 else 0.0
        adaptive = self.hb_mean + _HB_PHI * max(deviation, 0.1 * self.hb_mean)
        return min(max(adaptive, timeout * _SUSPECT_FLOOR), ceiling)


class _Driver(_Peer):
    def __init__(self, peer_id: int, conn: Connection, info: dict) -> None:
        super().__init__(peer_id, conn, info)
        self.sweeps: set = set()  # sweep ids attached to this connection


class _Sweep:
    """One submitted job list, tracked independently of any connection.

    A sweep outlives the TCP connection that submitted it: a partitioned
    driver reattaches by resubmitting under the same sweep id (settled
    outcomes it missed are replayed, in-flight jobs keep running), and
    with a journal the sweep even outlives the broker process.
    """

    __slots__ = ("id", "driver_id", "total", "done", "retries", "finished",
                 "remaining", "settled", "failures", "journal",
                 "chunk_ewma", "hedged", "hedges")

    def __init__(self, sweep_id: str) -> None:
        self.id = sweep_id
        self.driver_id: Optional[int] = None  # attached driver, or orphaned
        self.total = 0
        self.done = 0
        self.retries = 0
        self.finished = False  # "done" sent to the currently attached conn
        self.remaining: set = set()  # seqs with no terminal outcome yet
        self.settled: Dict[int, tuple] = {}  # seq -> outcome, kept for reattach
        self.failures: List[tuple] = []  # (seq, attempts, reason)
        self.journal: Optional[SweepJournal] = None
        self.chunk_ewma = 0.0  # observed per-chunk completion time, EWMA
        self.hedged: Dict[int, int] = {}  # seq -> hedge count (journaled cap)
        self.hedges = 0  # hedge dispatches, for the progress line


def _split_outcomes(outcomes: List[tuple]) -> Tuple[List[tuple], List[tuple]]:
    """Partition ``(seq, outcome)`` pairs into wire-shaped result/failed."""
    results = [(seq, out[1]) for seq, out in outcomes if out[0] == "result"]
    failed = [(seq, out[1], out[2]) for seq, out in outcomes
              if out[0] == "failed"]
    return results, failed


def _last_error_line(trace: Optional[str]) -> str:
    """The last non-blank traceback line, or a placeholder.

    A whitespace-only trace (e.g. ``"\\n"``) used to crash the receiver
    thread with IndexError on ``splitlines()[-1]``.
    """
    lines = trace.strip().splitlines() if trace else []
    return lines[-1] if lines else "job raised"


class _Chunk:
    """One dispatch unit: a slice of a sweep's jobs plus its retry state."""

    __slots__ = ("id", "sweep_id", "entries", "failures", "last_error",
                 "dispatched_at")

    def __init__(self, chunk_id: int, sweep_id: str,
                 entries: List[tuple]) -> None:
        self.id = chunk_id
        self.sweep_id = sweep_id
        self.entries = entries  # [(seq, job), ...]
        self.failures = 0
        self.last_error: Optional[str] = None
        self.dispatched_at: Optional[float] = None  # broker clock at dispatch


class Broker:
    """Accepts workers and drivers; queues, dispatches, retries, reports.

    Parameters
    ----------
    address:
        ``(host, port)`` to listen on; port ``0`` picks an ephemeral port
        (read the bound one back from :attr:`address`).
    authkey:
        Shared HMAC secret; peers with a different key cannot connect.
    heartbeat_timeout:
        Seconds of worker silence (no heartbeat, result, or ready) before
        the monitor declares it dead and requeues its chunk.  Workers beat
        immediately before starting a result transfer, so this must only
        exceed the worst-case time to *ship* one chunk's results (not to
        compute them); raise it for very slow links or huge results.
        This value also bounds the adaptive *suspicion* band: a worker is
        marked suspect after between a quarter and half of it, per its
        own learned heartbeat cadence (see ``_Worker.suspect_after``).
    max_retries:
        How many times a chunk may fail (worker death or job exception)
        before its jobs are surfaced as structured failures.
    max_hedges_per_chunk:
        How many duplicate (hedge) dispatches any one job may receive
        when its chunk lingers on a suspect worker; ``0`` disables
        hedging.  Hedges never count toward ``max_retries``.
    hedge_factor:
        A suspect worker's chunk is hedged once it has been running for
        at least this multiple of the sweep's per-chunk completion EWMA
        (and the queue is otherwise drained — hedging is a tail
        optimization, not a scheduler).
    handshake_timeout:
        Seconds a connecting peer may take to finish the HMAC challenge
        and send its hello.  Defaults to ``max(10, 3 x
        heartbeat_timeout)`` so a high-latency but healthy link (e.g.
        through a shaping proxy) is not cut off mid-join.
    fingerprint:
        Code fingerprint to enforce on joining peers; defaults to this
        process's :func:`~repro.runner.cache.code_fingerprint`.
    journal_dir:
        Directory for per-sweep :class:`SweepJournal` files; ``None``
        (default) keeps queue state in memory only.  With a journal, this
        broker resumes every unconcluded sweep found at startup: unsettled
        jobs re-enter the dispatch queue at once and settled outcomes are
        replayed when their driver reattaches.
    """

    def __init__(
        self,
        address: Tuple[str, int] = ("127.0.0.1", 0),
        authkey: bytes = DEFAULT_AUTHKEY,
        heartbeat_timeout: float = 10.0,
        max_retries: int = 2,
        fingerprint: Optional[str] = None,
        journal_dir: Optional[str] = None,
        max_hedges_per_chunk: int = 1,
        hedge_factor: float = 3.0,
        handshake_timeout: Optional[float] = None,
    ) -> None:
        # No authkey on the Listener: with one, accept() would run the HMAC
        # challenge inline in the accept loop, where a silent TCP peer (port
        # scanner, health check, half-open connection) would wedge admission
        # for everyone, forever.  We run the identical challenge ourselves
        # in the per-peer thread instead, under a watchdog.
        self._authkey = bytes(authkey)
        self._listener = Listener(tuple(address))
        self.address: Tuple[str, int] = self._listener.address
        self.heartbeat_timeout = heartbeat_timeout
        self.max_retries = max_retries
        self.fingerprint = fingerprint or code_fingerprint()
        self.journal_dir = str(journal_dir) if journal_dir else None
        self.max_hedges_per_chunk = max(0, int(max_hedges_per_chunk))
        self.hedge_factor = max(1.0, float(hedge_factor))
        self.handshake_timeout = (
            float(handshake_timeout) if handshake_timeout is not None
            else max(10.0, 3.0 * heartbeat_timeout))
        # injectable for the deterministic harness (chaos.py scripts time)
        self._clock: Callable[[], float] = time.monotonic
        # Always-on instance registry (its own lock, never the broker's):
        # dispatch/requeue/hedge/suspect counters and the heartbeat
        # interarrival histogram, served to drivers via ("stats",)
        self.metrics = MetricsRegistry()
        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)
        self._closed = False
        self._ids = itertools.count(1)
        self._chunk_ids = itertools.count(1)
        self._workers: Dict[int, _Worker] = {}
        self._drivers: Dict[int, _Driver] = {}
        self._sweeps: Dict[str, _Sweep] = {}
        self._idle: set = set()
        self._pending: deque = deque()
        self._assignments: Dict[int, _Chunk] = {}  # worker id -> chunk
        self._suspects: set = set()  # worker ids past their suspicion point
        self._dead: deque = deque(maxlen=8)  # recently reaped worker ids
        self._threads: List[threading.Thread] = []
        self._started = False
        self._recover()

    def _recover(self) -> None:
        """Reload unconcluded sweeps from the journal directory (if any).

        Runs from ``__init__`` before any thread exists, but takes the
        lock anyway: it mutates guarded state, and holding the lock keeps
        it safe if a future caller ever re-runs recovery on a live broker.
        """
        with self._lock:
            for rec in load_journals(self.journal_dir):
                sweep = _Sweep(rec.sweep_id)
                sweep.total = len(rec.entries)
                sweep.settled = dict(rec.settled)
                sweep.done = sum(1 for out in sweep.settled.values()
                                 if out[0] == "result")
                sweep.failures = [(seq, out[1], out[2])
                                  for seq, out in sorted(sweep.settled.items())
                                  if out[0] == "failed"]
                unsettled = rec.unsettled()
                sweep.remaining = {seq for seq, _key, _job in unsettled}
                # hedge bookkeeping survives the bounce: the per-chunk
                # hedge cap keeps holding across a broker restart
                sweep.hedged = dict(rec.hedged)
                sweep.hedges = rec.hedge_records
                sweep.journal = rec.reopen()
                self._sweeps[sweep.id] = sweep
                # back on the queue immediately: workers resume the sweep
                # before its driver has even reconnected
                self._pending.extend(
                    _Chunk(next(self._chunk_ids), sweep.id, chunk)
                    for chunk in chunk_jobs(unsettled, rec.workers_hint)
                )

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> "Broker":
        if self._started:
            return self
        self._started = True
        for target, name in (
            (self._accept_loop, "accept"),
            (self._dispatch_loop, "dispatch"),
            (self._monitor_loop, "monitor"),
        ):
            thread = threading.Thread(
                target=target, name=f"repro-broker-{name}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return self

    def close(self) -> None:
        with self._wake:
            if self._closed:
                return
            self._closed = True
            peers = list(self._workers.values()) + list(self._drivers.values())
            # journals of unconcluded sweeps stay on disk — they are what
            # the next broker on this journal dir resumes from
            for sweep in self._sweeps.values():
                if sweep.journal is not None:
                    sweep.journal.close()
            self._wake.notify_all()
        try:
            self._listener.close()
        except OSError:
            pass
        for peer in peers:
            try:
                peer.conn.close()
            except OSError:
                pass

    def __enter__(self) -> "Broker":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()

    def serve_forever(self) -> None:
        """Block until interrupted (the standalone ``broker`` subcommand)."""
        self.start()
        try:
            while not self._closed:
                time.sleep(0.5)
        finally:
            self.close()

    # ------------------------------------------------------------------
    # introspection (used by the runner and tests)

    def worker_count(self) -> int:
        with self._lock:
            return len(self._workers)

    def sweep_count(self) -> int:
        with self._lock:
            return len(self._sweeps)

    def wait_for_workers(self, count: int, timeout: float = 30.0) -> bool:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.worker_count() >= count:
                return True
            time.sleep(0.05)
        return self.worker_count() >= count

    # ------------------------------------------------------------------
    # connection handling

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn = self._listener.accept()
            except (OSError, EOFError):
                if self._closed:
                    return
                continue
            threading.Thread(
                target=self._serve_peer, args=(conn,), daemon=True,
                name="repro-broker-peer",
            ).start()

    def _serve_peer(self, conn: Connection) -> None:
        # watchdog: a peer that stalls mid-handshake (silent socket, wrong
        # protocol) gets its connection closed, which pops the blocking
        # recv below; only this peer's thread is ever at stake
        handshake_done = threading.Event()

        def _expire() -> None:
            if not handshake_done.is_set():
                try:
                    conn.close()
                except OSError:
                    pass

        watchdog = threading.Timer(self.handshake_timeout, _expire)
        watchdog.daemon = True
        watchdog.start()
        try:
            # the exact mutual challenge Client(address, authkey=…) expects
            deliver_challenge(conn, self._authkey)
            answer_challenge(conn, self._authkey)
        except (AuthenticationError, EOFError, OSError):
            try:
                conn.close()
            except OSError:
                pass
            return
        finally:
            handshake_done.set()
            watchdog.cancel()
        try:
            if not conn.poll(self.handshake_timeout):
                conn.close()
                return
            hello = conn.recv()
            if not (isinstance(hello, tuple) and len(hello) == 4
                    and hello[0] == "hello"):
                conn.send(("reject", f"malformed hello: {hello!r}"))
                conn.close()
                return
            _, role, fingerprint, info = hello
            if role not in ("worker", "driver"):
                conn.send(("reject", f"unknown role: {role!r}"))
                conn.close()
                return
            if fingerprint != self.fingerprint:
                conn.send((
                    "reject",
                    f"code fingerprint mismatch: broker runs "
                    f"{self.fingerprint[:12]}… but this {role} runs "
                    f"{str(fingerprint)[:12]}… — update the {role}'s checkout "
                    f"so every peer executes identical simulator code",
                ))
                conn.close()
                return
        except (EOFError, OSError):
            return
        peer_id = next(self._ids)
        # protocol v3: the welcome carries broker metadata — workers derive
        # their heartbeat cadence from the advertised timeout instead of
        # guessing, so a short-timeout broker cannot race its own workers
        meta = {
            "protocol": PROTOCOL_VERSION,
            "heartbeat_timeout": self.heartbeat_timeout,
        }
        if role == "worker":
            worker = _Worker(peer_id, conn, info)
            with self._wake:
                if self._closed:
                    conn.close()
                    return
                self._workers[peer_id] = worker
            try:
                worker.send(("welcome", peer_id, self.fingerprint, meta))
            except (OSError, ValueError):
                self._worker_lost(worker)
                return
            self._broadcast_progress()
            self._worker_loop(worker)
        else:
            driver = _Driver(peer_id, conn, info)
            with self._lock:
                if self._closed:
                    conn.close()
                    return
                self._drivers[peer_id] = driver
            try:
                driver.send(("welcome", peer_id, self.fingerprint, meta))
            except (OSError, ValueError):
                self._driver_lost(driver)
                return
            self._driver_loop(driver)

    # ------------------------------------------------------------------
    # worker side

    def _worker_loop(self, worker: _Worker) -> None:
        try:
            while not self._closed:
                try:
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    break
                except TypeError:
                    # Connection.close() from another thread (broker
                    # shutdown, monitor verdict) nulls the handle under a
                    # blocked recv, which then raises TypeError rather
                    # than OSError — same meaning: connection gone
                    break
                now = self._clock()
                interarrival = now - worker.last_seen
                if interarrival > 0.0:
                    self.metrics.observe(
                        "distrib.heartbeat_interarrival", interarrival)
                worker.observe(now)
                tag = message[0]
                if tag == "heartbeat":
                    continue
                if tag == "ready":
                    with self._wake:
                        if worker.alive and worker.id not in self._assignments:
                            self._idle.add(worker.id)
                            self._wake.notify_all()
                elif tag == "result":
                    # protocol 4: an obs-enabled worker appends its drained
                    # span/metric buffers as a 4th element
                    self._complete_chunk(
                        worker, message[1], message[2],
                        message[3] if len(message) > 3 else None)
                elif tag == "error":
                    self._chunk_error(worker, message[1], message[2])
        finally:
            self._worker_lost(worker)

    def _complete_chunk(self, worker: _Worker, chunk_id: int,
                        results: List[tuple],
                        obs_payload: Optional[dict] = None) -> None:
        self.metrics.count("distrib.chunk_complete")
        with self._wake:
            chunk = self._assignments.get(worker.id)
            if chunk is not None and chunk.id == chunk_id:
                # the worker finished the chunk it was actually assigned:
                # settle the assignment and free it for the next dispatch
                del self._assignments[worker.id]
                if worker.alive:
                    self._idle.add(worker.id)
                    self._wake.notify_all()
                sweep = self._sweeps.get(chunk.sweep_id)
                if sweep is not None and chunk.dispatched_at is not None:
                    # completion-time EWMA feeds the hedge trigger; a
                    # cancelled loser or a slow straggler inflating the
                    # estimate only delays hedging, never settlement
                    elapsed = max(0.0, self._clock() - chunk.dispatched_at)
                    if sweep.chunk_ewma <= 0.0:
                        sweep.chunk_ewma = elapsed
                    else:
                        sweep.chunk_ewma += _HB_ALPHA * (elapsed
                                                         - sweep.chunk_ewma)
            # else: a result for a chunk this worker does NOT hold — a late
            # duplicate, or a reply from a worker already declared dead for
            # it.  Deliver anyway (settlement is idempotent, first outcome
            # wins) but do not touch the live assignment and do NOT mark
            # the worker idle: re-idling a worker that still holds a chunk
            # would let dispatch overwrite — and silently lose — that chunk.
        self._deliver(results)
        if obs_payload is not None:
            self._forward_obs(results, obs_payload)

    def _forward_obs(self, results: List[tuple],
                     obs_payload: dict) -> None:
        """Relay a worker's drained obs buffers to the sweep's driver.

        Best-effort telemetry: an orphaned sweep or dead driver simply
        drops the payload (spans are diagnostics, not outcomes).
        """
        sweep_ids = {sweep_id for (sweep_id, _seq), _value in results}
        with self._lock:
            drivers = {}
            for sweep_id in sweep_ids:
                sweep = self._sweeps.get(sweep_id)
                if sweep is not None and sweep.driver_id is not None:
                    driver = self._drivers.get(sweep.driver_id)
                    if driver is not None:
                        drivers[driver.id] = driver
        for driver in drivers.values():
            self._safe_send(driver, ("obs", obs_payload))

    def _chunk_error(self, worker: _Worker, chunk_id: int, trace: str) -> None:
        with self._wake:
            chunk = self._assignments.get(worker.id)
            if chunk is not None and chunk.id == chunk_id:
                del self._assignments[worker.id]
                if worker.alive:
                    self._idle.add(worker.id)
                    self._wake.notify_all()
            else:
                # stale error for a chunk this worker no longer (or never)
                # holds — e.g. a duplicate error arriving after the chunk
                # was already requeued.  Popping the assignment here used
                # to discard the worker's *live* chunk: with no owner and
                # no requeue, its jobs could never settle and the driver
                # hung forever.  Leave the assignment alone.
                chunk = None
        if chunk is not None:
            chunk.last_error = _last_error_line(trace)
            self._requeue(chunk)

    def _worker_lost(self, worker: _Worker) -> None:
        with self._wake:
            if not worker.alive:
                return
            worker.alive = False
            self._workers.pop(worker.id, None)
            self._idle.discard(worker.id)
            self._suspects.discard(worker.id)
            self._dead.append(worker.id)  # for the progress health line
            chunk = self._assignments.pop(worker.id, None)
            self._wake.notify_all()
        try:
            worker.conn.close()
        except OSError:
            pass
        self.metrics.count("distrib.worker_dead")
        if chunk is not None:
            chunk.last_error = f"worker {worker.id} died mid-chunk"
            self._requeue(chunk)
        else:
            self._broadcast_progress()

    def _requeue(self, chunk: _Chunk) -> None:
        """Retry a failed chunk, or surface its jobs as permanent failures."""
        with self._lock:
            sweep = self._sweeps.get(chunk.sweep_id)
            if sweep is None:
                return
            chunk.failures += 1
            sweep.retries += 1
            chunk.entries = [e for e in chunk.entries
                             if e[0] in sweep.remaining]
            if not chunk.entries:
                return
            # snapshot under the lock: `failures` also names guarded
            # per-sweep state, so reads stay uniformly lock-covered even
            # though this chunk is exclusively ours here
            attempts = chunk.failures
        if attempts <= self.max_retries:
            self.metrics.count("distrib.requeue")
            with self._wake:
                self._pending.appendleft(chunk)  # retries jump the queue
                self._wake.notify_all()
            self._progress_for(sweep)
            return
        reason = chunk.last_error or "unknown failure"
        self.metrics.count("distrib.gave_up_jobs", len(chunk.entries))
        # every recorded failure was one dispatch attempt
        self._settle(sweep, [(seq, ("failed", attempts, reason))
                             for seq, _job in chunk.entries])

    def _monitor_loop(self) -> None:
        interval = max(0.2, min(self.heartbeat_timeout / 8.0, 2.0))
        while not self._closed:
            time.sleep(interval)
            self._reap_stale(self._clock())

    def _reap_stale(self, now: float) -> List[_Worker]:
        """One monitor pass: suspicion, hedging, then the death verdicts.

        Extracted from the loop (and fed an explicit clock) so the
        interleaving harness can fire monitor ticks at scripted instants.
        Three sub-passes under one lock hold: (1) workers silent past the
        hard timeout are collected as stale, (2) the suspect set is
        refreshed against each survivor's adaptive silence threshold —
        recovery needs no requeue, the worker simply spoke again and its
        assignment was never touched — and (3) tail chunks lingering on
        suspect workers are hedged onto idle ones.  Sends happen after
        the lock is released, mirroring ``_dispatch_once``.
        """
        hedges: List[Tuple[_Worker, _Sweep, tuple]] = []
        suspects_changed = False
        with self._lock:
            stale = [
                w for w in self._workers.values()
                if now - w.last_seen > self.heartbeat_timeout
            ]
            stale_ids = {w.id for w in stale}
            for w in self._workers.values():
                overdue = now - w.last_seen
                if overdue > w.suspect_after(self.heartbeat_timeout):
                    if w.id not in self._suspects:
                        self._suspects.add(w.id)
                        self.metrics.count("distrib.suspect")
                        suspects_changed = True
                elif w.id in self._suspects:
                    self._suspects.discard(w.id)
                    self.metrics.count("distrib.unsuspect")
                    suspects_changed = True
            hedges = self._plan_hedges(now, stale_ids)
        for worker in stale:
            # declare it dead *here* — a close() alone would not wake a
            # receiver thread blocked in recv() on a silent-but-open
            # socket, and the chunk must requeue now.  _worker_lost is
            # idempotent, so the receiver thread's own exit (whenever
            # the socket finally errors) is harmless, and a result the
            # "dead" worker still manages to send is deduplicated at
            # settlement (first outcome per job wins).
            self._worker_lost(worker)
        for target, sweep, payload in hedges:
            try:
                target.send(payload)
            except (OSError, ValueError):
                self._worker_lost(target)  # requeues the hedge chunk
            else:
                self._progress_for(sweep)
        if (suspects_changed or hedges) and not stale:
            self._broadcast_progress()
        return stale

    def _plan_hedges(self, now: float,
                     stale_ids: set) -> List[Tuple[_Worker, _Sweep, tuple]]:  # reprolint: holds=_lock
        """Plan duplicate dispatches for tail chunks stuck on suspects.

        A hedge fires only when the queue is drained (this is a tail
        optimization: with pending work, an idle worker should take new
        jobs, not duplicates), the sweep has a completion-time baseline,
        the chunk has been running at least ``hedge_factor`` times that
        baseline, and the per-seq hedge budget (``max_hedges_per_chunk``,
        journaled so a bounced broker keeps honouring it) is not spent.
        The duplicate is a fresh chunk — own id, remaining-filtered
        entries — so first-result-wins settlement dedups it for free;
        the original assignment stays live and nothing counts as a retry.
        """
        plans: List[Tuple[_Worker, _Sweep, tuple]] = []
        if self._closed or self._pending or self.max_hedges_per_chunk <= 0:
            return plans
        for worker_id, chunk in sorted(self._assignments.items()):
            if worker_id not in self._suspects or worker_id in stale_ids:
                continue
            sweep = self._sweeps.get(chunk.sweep_id)
            if sweep is None or sweep.chunk_ewma <= 0.0:
                continue  # no completed chunk yet: no baseline to hedge on
            if chunk.dispatched_at is None:
                continue
            if now - chunk.dispatched_at < self.hedge_factor * sweep.chunk_ewma:
                continue
            entries = [e for e in chunk.entries if e[0] in sweep.remaining]
            if not entries:
                continue
            if max(sweep.hedged.get(seq, 0)
                   for seq, _job in entries) >= self.max_hedges_per_chunk:
                continue
            targets = [wid for wid in self._idle
                       if wid not in self._suspects and wid not in stale_ids]
            if not targets:
                break  # no healthy idle capacity for any further hedge
            target_id = min(targets)
            self._idle.discard(target_id)
            target = self._workers[target_id]
            hedge = _Chunk(next(self._chunk_ids), chunk.sweep_id, entries)
            hedge.dispatched_at = now
            self._assignments[target_id] = hedge
            seqs = [seq for seq, _job in entries]
            for seq in seqs:
                sweep.hedged[seq] = sweep.hedged.get(seq, 0) + 1
            sweep.hedges += 1
            self.metrics.count("distrib.hedge")
            if sweep.journal is not None:
                sweep.journal.record_hedge(seqs)
            plans.append((target, sweep, (
                "jobs",
                hedge.id,
                [((hedge.sweep_id, seq), job) for seq, job in entries],
            )))
        return plans

    # ------------------------------------------------------------------
    # driver side

    def _driver_loop(self, driver: _Driver) -> None:
        clean = False
        try:
            while not self._closed:
                try:
                    message = driver.conn.recv()
                except (EOFError, OSError):
                    break
                except TypeError:
                    break  # cross-thread close mid-recv; see _worker_loop
                tag = message[0]
                if tag == "submit":
                    self._submit(driver, message[1], message[2])
                elif tag == "stats":
                    self._safe_send(driver, ("stats", self.stats_snapshot()))
                elif tag == "bye":
                    clean = True
                    break
        finally:
            self._driver_lost(driver, clean=clean)

    def _submit(self, driver: _Driver, sweep_id: str,
                entries: List[tuple]) -> None:
        """Attach *driver* to a sweep and queue whatever jobs are new.

        The same message serves first submission, reconnection after a
        driver-side partition, and reattachment after a broker bounce:
        seqs the sweep already settled are replayed immediately from
        memory (or the journal's recovery of it), seqs still in flight
        keep running, and only genuinely new seqs are chunked and queued.

        Attach, replay, and (when nothing is left outstanding) the done
        signal all happen under the driver's send lock: a worker thread
        settling the last in-flight seq mid-resubmit must not slip its
        "done" out ahead of the replayed outcomes.
        """
        finish = False
        with driver.send_lock:
            with self._wake:
                if self._closed:
                    return
                sweep = self._sweeps.get(sweep_id)
                if sweep is None:
                    sweep = self._sweeps[sweep_id] = _Sweep(sweep_id)
                    if self.journal_dir:
                        sweep.journal = SweepJournal.create(self.journal_dir,
                                                            sweep_id)
                sweep.driver_id = driver.id
                driver.sweeps.add(sweep_id)
                # this connection has not received the sweep's "done",
                # whatever a previous (partitioned) connection was sent
                sweep.finished = False
                fresh = [
                    (seq, key, job) for seq, key, job in entries
                    if seq not in sweep.remaining and seq not in sweep.settled
                ]
                replay = [(seq, sweep.settled[seq])
                          for seq, _key, _job in entries
                          if seq in sweep.settled]
                if fresh:
                    hint = max(len(self._workers),
                               int(driver.info.get("workers_hint") or 0), 1)
                    sweep.total += len(fresh)
                    sweep.remaining.update(seq for seq, _key, _job in fresh)
                    if sweep.journal is not None:
                        sweep.journal.record_submit(fresh, hint)
                    self._pending.extend(
                        _Chunk(next(self._chunk_ids), sweep_id, chunk)
                        for chunk in chunk_jobs(fresh, hint)
                    )
                    self._wake.notify_all()
                finish = not sweep.remaining
                if finish:
                    sweep.finished = True
                    stats = {
                        "total": sweep.total,
                        "done": sweep.done,
                        "failed": len(sweep.failures),
                        "retries": sweep.retries,
                    }
            results, failed = _split_outcomes(replay)
            try:
                if results:
                    driver.conn.send(("result", results))
                if failed:
                    driver.conn.send(("failed", failed))
                if finish:
                    driver.conn.send(
                        ("progress", self._progress_snapshot(driver)))
                    driver.conn.send(("done", stats))
            except (OSError, ValueError):
                # the connection died mid-replay: whatever was undelivered
                # (possibly the done signal) must survive for the next
                # reattach, so the sweep may not count as finished
                if finish:
                    with self._lock:
                        sweep.finished = False
        if not finish:
            self._send_progress(driver)

    def _driver_lost(self, driver: _Driver, clean: bool = False) -> None:
        """Detach a driver; conclude its finished sweeps, orphan the rest.

        *clean* (an explicit ``bye``) abandons unfinished sweeps outright —
        the driver walked away on purpose.  An unclean EOF (crash,
        partition) leaves them orphaned and still executing, waiting for
        the driver to reconnect and resubmit under the same sweep id.
        """
        with self._wake:
            if not driver.alive:
                return
            driver.alive = False
            self._drivers.pop(driver.id, None)
            for sweep_id in driver.sweeps:
                sweep = self._sweeps.get(sweep_id)
                if sweep is None or sweep.driver_id != driver.id:
                    continue
                sweep.driver_id = None
                if clean or sweep.finished:
                    if sweep.journal is not None:
                        sweep.journal.conclude()
                    del self._sweeps[sweep_id]
                    # pending chunks of a dropped sweep are skipped at
                    # dispatch time; assigned ones settle into nothing
            driver.sweeps.clear()
        try:
            driver.conn.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # settlement

    def _deliver(self, results: List[tuple]) -> None:
        """Route completed ``(tagged seq, value)`` pairs to their sweeps."""
        by_sweep: Dict[str, List[tuple]] = {}
        for (sweep_id, seq), value in results:
            by_sweep.setdefault(sweep_id, []).append((seq, ("result", value)))
        for sweep_id, outcomes in by_sweep.items():
            with self._lock:
                sweep = self._sweeps.get(sweep_id)
            if sweep is not None:
                self._settle(sweep, outcomes)

    def _book(self, sweep: _Sweep, outcomes: List[tuple]) -> List[tuple]:  # reprolint: holds=_lock
        """Move outcomes to terminal state; caller holds the broker lock.

        Settlement is keyed by ``remaining``: the first outcome per seq
        wins, duplicates (a worker declared dead that answered anyway, a
        redundant retry) are dropped here.  Returns the live subset.
        """
        live = [(seq, out) for seq, out in outcomes if seq in sweep.remaining]
        for seq, out in live:
            sweep.remaining.discard(seq)
            sweep.settled[seq] = out
            if out[0] == "result":
                sweep.done += 1
            else:
                sweep.failures.append((seq, out[1], out[2]))
        if live:
            self.metrics.count("distrib.settle", len(live))
        if live and sweep.journal is not None:
            # write-ahead: journal the outcome before the driver sees it
            sweep.journal.record_settled(live)
        return live

    def _settle(self, sweep: _Sweep, outcomes: List[tuple]) -> None:
        """Settle outcomes and — atomically with that — push them out.

        *outcomes* is ``[(seq, outcome), …]``.  State update and socket
        write happen together under the driver's send lock, so two worker
        threads finishing simultaneously cannot interleave into "done"
        overtaking an outcome still waiting to be written (the driver
        stops reading at "done").  Orphaned sweeps settle state-only;
        their outcomes wait in ``sweep.settled`` for the next reattach.

        Settling can make chunks still assigned elsewhere — hedge losers,
        duplicates requeued by the monitor — pure dead work; those
        workers are sent a best-effort ``cancel`` after every lock is
        released (a lost cancel merely wastes the loser's cycles).
        """
        cancels: List[Tuple[_Worker, int]] = []
        driver: Optional[_Driver] = None
        finish = False
        while True:
            with self._lock:
                driver = (self._drivers.get(sweep.driver_id)
                          if sweep.driver_id is not None else None)
                if driver is None:
                    self._book(sweep, outcomes)
                    cancels = self._collect_cancels(sweep)
                    break
            finish = False
            with driver.send_lock:
                with self._lock:
                    current = (self._drivers.get(sweep.driver_id)
                               if sweep.driver_id is not None else None)
                    if current is not driver:
                        continue  # reattached elsewhere: redo the lookup
                    live = self._book(sweep, outcomes)
                    cancels = self._collect_cancels(sweep)
                    finish = (driver.alive and not sweep.finished
                              and not sweep.remaining)
                    if finish:
                        sweep.finished = True
                        stats = {
                            "total": sweep.total,
                            "done": sweep.done,
                            "failed": len(sweep.failures),
                            "retries": sweep.retries,
                        }
                results, failed = _split_outcomes(live)
                try:
                    if results:
                        driver.conn.send(("result", results))
                    if failed:
                        driver.conn.send(("failed", failed))
                    if finish:
                        driver.conn.send(
                            ("progress", self._progress_snapshot(driver)))
                        driver.conn.send(("done", stats))
                except (OSError, ValueError):
                    # dead connection: the outcomes are safely settled, but
                    # an unfinished "finished" would make _driver_lost
                    # conclude the sweep with deliveries still owed — keep
                    # it reattachable instead
                    if finish:
                        with self._lock:
                            sweep.finished = False
            break
        for worker, chunk_id in cancels:
            self._safe_send(worker, ("cancel", chunk_id))
        if driver is not None and not finish:
            self._send_progress(driver)

    def _collect_cancels(self, sweep: _Sweep) -> List[Tuple[_Worker, int]]:  # reprolint: holds=_lock
        """Assigned chunks of *sweep* with nothing left to settle.

        After a settlement, any other worker still computing those seqs —
        a hedge loser, a requeued duplicate — is burning cycles for
        outcomes that can only be dropped.  The assignment is *not* freed
        here: the worker's own (possibly partial) result or error frees
        it through the normal ``_complete_chunk`` path, keeping the
        one-owner-per-worker invariant intact.
        """
        cancels: List[Tuple[_Worker, int]] = []
        for worker_id, chunk in self._assignments.items():
            if chunk.sweep_id != sweep.id:
                continue
            if any(seq in sweep.remaining for seq, _job in chunk.entries):
                continue
            worker = self._workers.get(worker_id)
            if worker is not None:
                cancels.append((worker, chunk.id))
        return cancels

    # ------------------------------------------------------------------
    # dispatch

    def _dispatch_once(self) -> bool:
        """Hand at most one pending chunk to an idle worker.

        Returns True when a pending chunk was consumed (dispatched or
        dropped as already settled/abandoned) — i.e. whether another call
        might make progress.  The dispatch thread loops this; the
        interleaving harness calls it directly, one scripted step at a
        time.
        """
        with self._wake:
            if self._closed or not self._pending or not self._idle:
                return False
            chunk = self._pending.popleft()
            sweep = self._sweeps.get(chunk.sweep_id)
            if sweep is None:
                return True  # submitting sweep was abandoned
            chunk.entries = [
                e for e in chunk.entries if e[0] in sweep.remaining
            ]
            if not chunk.entries:
                return True  # everything already settled elsewhere
            # suspects (slow-but-alive workers) are a last resort: prefer
            # any worker whose heartbeat cadence looks healthy
            preferred = [wid for wid in self._idle
                         if wid not in self._suspects]
            worker_id = min(preferred) if preferred else min(self._idle)
            self._idle.discard(worker_id)
            worker = self._workers[worker_id]
            chunk.dispatched_at = self._clock()
            self._assignments[worker_id] = chunk
            payload = (
                "jobs",
                chunk.id,
                [((chunk.sweep_id, seq), job) for seq, job in chunk.entries],
            )
        try:
            worker.send(payload)
        except (OSError, ValueError):
            self._worker_lost(worker)  # requeues the chunk
            return True
        self.metrics.count("distrib.dispatch")
        self._progress_for(sweep)
        return True

    def _dispatch_loop(self) -> None:
        while True:
            with self._wake:
                while not self._closed and not (self._pending and self._idle):
                    self._wake.wait(0.5)
                if self._closed:
                    return
            self._dispatch_once()

    # ------------------------------------------------------------------
    # progress

    def _progress_snapshot(self, driver: _Driver) -> dict:
        with self._lock:
            sweeps = [
                self._sweeps[sid] for sid in driver.sweeps
                if sid in self._sweeps
                and self._sweeps[sid].driver_id == driver.id
            ]
            ids = {s.id for s in sweeps}
            running = sum(
                len(c.entries) for c in self._assignments.values()
                if c.sweep_id in ids
            )
            total = sum(s.total for s in sweeps)
            done = sum(s.done for s in sweeps)
            failed = sum(len(s.failures) for s in sweeps)
            health = [(wid, "slow" if wid in self._suspects else "ok")
                      for wid in sorted(self._workers)]
            health.extend((wid, "dead") for wid in self._dead
                          if wid not in self._workers)
            return {
                "total": total,
                "done": done,
                "failed": failed,
                "running": running,
                "queued": max(0, total - done - failed - running),
                "workers": len(self._workers),
                "retries": sum(s.retries for s in sweeps),
                "hedges": sum(s.hedges for s in sweeps),
                "worker_health": tuple(health),
            }

    def _progress_for(self, sweep: _Sweep) -> None:
        with self._lock:
            driver = (self._drivers.get(sweep.driver_id)
                      if sweep.driver_id is not None else None)
        if driver is not None:
            self._send_progress(driver)

    def _send_progress(self, driver: _Driver) -> None:
        if driver.alive:
            self._safe_send(driver, ("progress", self._progress_snapshot(driver)))

    def _broadcast_progress(self) -> None:
        with self._lock:
            drivers = list(self._drivers.values())
        for driver in drivers:
            self._send_progress(driver)

    def stats_snapshot(self) -> dict:
        """Lifetime metrics plus live occupancy gauges, JSON-ready.

        Served to drivers over the ``("stats",)`` protocol query and by
        ``repro-rlir broker-stats``.  Counters come from the broker's
        always-on registry (guarded by its own lock); the occupancy
        gauges are read under the broker lock so they are mutually
        consistent with each other.
        """
        snap = self.metrics.snapshot()
        gauges = snap.setdefault("gauges", {})
        with self._lock:
            gauges["distrib.workers"] = float(len(self._workers))
            gauges["distrib.pending_chunks"] = float(len(self._pending))
            gauges["distrib.assigned_chunks"] = float(len(self._assignments))
            gauges["distrib.suspects"] = float(len(self._suspects))
            gauges["distrib.sweeps"] = float(len(self._sweeps))
        return snap

    def _safe_send(self, peer: _Peer, message: object) -> None:
        try:
            peer.send(message)
        except (OSError, ValueError):
            pass  # the peer's receive loop will notice and clean up

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"Broker(address={self.address!r}, "
                f"workers={len(self._workers)}, drivers={len(self._drivers)}, "
                f"sweeps={len(self._sweeps)}, pending={len(self._pending)})"
            )
