"""Broker-side sweep journal: queue state that survives a broker crash.

The broker keeps no results — they flow straight to the submitting driver
— so a broker that dies mid-sweep used to take the whole queue with it.
The journal fixes that: every sweep a :class:`~repro.distrib.broker.Broker`
accepts is mirrored to an append-only file under the journal directory
(by default inside the result-cache dir), and a bounced broker
(``python -m repro broker`` restarted on the same port with the same
``--journal-dir``) reloads it on startup: still-unsettled jobs go back on
the dispatch queue immediately — workers resume computing before the
driver has even noticed the bounce — and already-settled outcomes are
replayed to the driver the moment it reconnects and resubmits, instead of
being recomputed.

Format
------
One file per sweep, ``sweep-<id>.journal``, holding a sequence of pickled
records, each written with a single buffered ``write()`` + ``flush()``:

* ``("submit", [(seq, chunk_key, job), …], workers_hint)`` — jobs joined
  the sweep (one record per driver submission);
* ``("settled", [(seq, outcome), …])`` — jobs reached a terminal state,
  where *outcome* is ``("result", value)`` or
  ``("failed", attempts, reason)``;
* ``("hedge", [seq, …])`` — those jobs received one duplicate (hedge)
  dispatch because their chunk lingered on a suspect worker.  Replaying
  the counts keeps the per-chunk hedge cap (``max_hedges_per_chunk``)
  holding across a broker bounce with hedges in flight.

Settlements are journaled *before* the outcome is sent to the driver
(write-ahead), so a crash between the two replays the outcome on
reattach rather than losing it; a crash the other way round merely makes
the driver not re-ask.  Because records are appended sequentially by a
single writer, a SIGKILL can only tear the *tail* of the file —
:func:`load_journals` stops at the first truncated or unreadable record
and everything before it is intact.

The journal is deleted when its sweep concludes (the driver received
``done`` and detached), so the directory holds exactly the sweeps a
bounced broker must resume.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from typing import BinaryIO, Dict, List, Optional

__all__ = ["SweepJournal", "RecoveredSweep", "load_journals"]

_PREFIX = "sweep-"
_SUFFIX = ".journal"


class SweepJournal:
    """Append-only on-disk record of one sweep's jobs and settlements.

    Writers call :meth:`record_submit` / :meth:`record_settled` under the
    broker lock (the broker is the only writer, so records never
    interleave); any I/O error permanently disables the journal rather
    than failing the sweep — persistence is best-effort, correctness of
    the live sweep never depends on it.
    """

    def __init__(self, path: str, handle: Optional[BinaryIO]) -> None:
        self.path = path
        self._handle = handle

    @classmethod
    def create(cls, directory: str, sweep_id: str) -> "SweepJournal":
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{_PREFIX}{sweep_id}{_SUFFIX}")
        return cls(path, open(path, "ab"))

    def _append(self, record: tuple) -> None:
        if self._handle is None:
            return
        try:
            # one pickled blob per write(): a crash tears at most the tail
            self._handle.write(pickle.dumps(record))
            self._handle.flush()
        except (OSError, ValueError, pickle.PicklingError):
            self.close()

    def record_submit(self, entries: List[tuple], workers_hint: int) -> None:
        """Journal ``(seq, chunk_key, job)`` entries newly submitted."""
        self._append(("submit", list(entries), int(workers_hint)))

    def record_settled(self, outcomes: List[tuple]) -> None:
        """Journal ``(seq, outcome)`` terminal states (write-ahead)."""
        self._append(("settled", list(outcomes)))

    def record_hedge(self, seqs: List[int]) -> None:
        """Journal one hedge dispatch covering *seqs* (budget accounting)."""
        self._append(("hedge", list(seqs)))

    def close(self) -> None:
        handle, self._handle = self._handle, None
        if handle is not None:
            try:
                handle.close()
            except OSError:
                pass

    def conclude(self) -> None:
        """The sweep is fully delivered: drop the journal file."""
        self.close()
        try:
            os.unlink(self.path)
        except OSError:
            pass


@dataclass
class RecoveredSweep:
    """One sweep reconstructed from its journal at broker startup."""

    sweep_id: str
    path: str
    entries: List[tuple] = field(default_factory=list)  # (seq, key, job)
    settled: Dict[int, tuple] = field(default_factory=dict)  # seq -> outcome
    workers_hint: int = 1
    hedged: Dict[int, int] = field(default_factory=dict)  # seq -> hedge count
    hedge_records: int = 0  # hedge dispatches journaled (progress counter)

    def unsettled(self) -> List[tuple]:
        return [e for e in self.entries if e[0] not in self.settled]

    def reopen(self) -> SweepJournal:
        """Reopen the journal for appending further settlements."""
        return SweepJournal(self.path, open(self.path, "ab"))


def load_journals(directory: str) -> List[RecoveredSweep]:
    """Read every sweep journal under *directory*, tolerating torn tails."""
    recovered: List[RecoveredSweep] = []
    if not directory or not os.path.isdir(directory):
        return recovered
    for name in sorted(os.listdir(directory)):
        if not (name.startswith(_PREFIX) and name.endswith(_SUFFIX)):
            continue
        path = os.path.join(directory, name)
        sweep = RecoveredSweep(name[len(_PREFIX):-len(_SUFFIX)], path)
        seen: set = set()
        try:
            handle = open(path, "rb")
        except OSError:
            continue
        with handle:
            while True:
                record = _read_record(handle)
                if record is None:
                    break
                if record[0] == "submit":
                    for seq, key, job in record[1]:
                        if seq not in seen:
                            seen.add(seq)
                            sweep.entries.append((seq, key, job))
                    sweep.workers_hint = max(sweep.workers_hint,
                                             int(record[2]))
                elif record[0] == "settled":
                    for seq, outcome in record[1]:
                        sweep.settled.setdefault(seq, outcome)
                elif record[0] == "hedge":
                    sweep.hedge_records += 1
                    for seq in record[1]:
                        sweep.hedged[seq] = sweep.hedged.get(seq, 0) + 1
        if sweep.entries:
            recovered.append(sweep)
    return recovered


def _read_record(handle: BinaryIO) -> Optional[tuple]:
    """Next pickled record, or None at EOF / the first torn record."""
    try:
        record = pickle.load(handle)
    except EOFError:
        return None
    except Exception:
        # truncated or corrupt tail (crash mid-write): stop here — every
        # record before it was written whole
        return None
    if not (isinstance(record, tuple) and record
            and record[0] in ("submit", "settled", "hedge")):
        return None
    return record
