"""`DistributedRunner`: the ParallelRunner interface over a broker.

Drop-in for :class:`~repro.runner.runner.ParallelRunner` — same ``run`` /
``run_one`` contract, same cache integration, same job-order result list —
with execution fanned out over a :class:`~repro.distrib.broker.Broker` and
its workers instead of a local ``multiprocessing`` pool.  Every experiment
driver that takes ``runner=`` therefore gains a distributed backend
without changing a line.

Two deployment shapes:

* **Embedded** (default): the runner starts a broker inside the driver
  process on an ephemeral localhost port and spawns ``workers`` local
  worker subprocesses (``python -m repro worker``).  Zero setup; this is
  what ``--backend distributed --jobs N`` does.
* **External** (``broker="host:port"``): the runner connects to a broker
  you started with ``python -m repro broker``, whose workers may live on
  any number of machines.  The runner spawns nothing.

Determinism
-----------
Results are placed by submission index (the inherited
:meth:`ParallelRunner.run` fills ``results[i]``), and sweep drivers merge
shard tables in sorted-key order — never arrival order — so the assembled
output is byte-identical to the serial backend's no matter how workers
race, die, or retry.  The fault-injection suite asserts exactly that.
"""

from __future__ import annotations

import atexit
import os
import subprocess
import sys
import threading
import time
import uuid
from multiprocessing.connection import Client, Connection
from pathlib import Path
from typing import (Any, Callable, Iterator, List, Optional, Sequence,
                    TextIO, Tuple)

from .. import obs
from ..runner.cache import ResultCache, code_fingerprint
from ..runner.runner import ParallelRunner, _prepare_key
from .broker import Broker
from .progress import ProgressSnapshot
from .protocol import (
    BrokerUnavailableError,
    DistributedSweepError,
    JobFailure,
    authkey_from_env,
    format_address,
    parse_address,
)

__all__ = ["DistributedRunner"]


def _relay_stderr(pipe: TextIO, label: str,
                  stream: Optional[TextIO] = None) -> None:
    """Re-emit one worker's stderr line-atomically, each line labeled.

    Embedded workers used to inherit the driver's stderr fd directly, so a
    worker writing mid-progress-update (join notices, tracebacks) could
    tear a :class:`~repro.distrib.progress.ProgressPrinter` line in half —
    two processes, one fd, no write coordination.  Routing the pipe
    through this relay makes every worker line a *single* ``write()`` of
    one whole ``label``-prefixed line, which is as atomic as the progress
    printer's own writes, so lines can interleave but never intersperse.
    """
    out = stream if stream is not None else sys.stderr
    try:
        for line in pipe:
            if not line.endswith("\n"):
                line += "\n"
            try:
                out.write(label + line)
                out.flush()
            except (OSError, ValueError):  # closed stream: best-effort
                break
    finally:
        try:
            pipe.close()
        except OSError:
            pass


class DistributedRunner(ParallelRunner):
    """Run sweep jobs on a broker/worker cluster with result caching.

    Parameters
    ----------
    workers:
        Worker subprocesses to spawn against the embedded broker (ignored
        when *broker* points at an external one).
    cache:
        Driver-side :class:`ResultCache`, exactly as on ParallelRunner:
        hits skip submission entirely, fresh results are persisted as they
        arrive, so an interrupted sweep resumes where it stopped.
    broker:
        ``"host:port"`` of an external broker; ``None`` embeds one.
    progress:
        Callback receiving :class:`ProgressSnapshot` updates (e.g. a
        :class:`~repro.distrib.progress.ProgressPrinter`); ``None`` is
        silent.
    max_retries:
        Chunk retry budget before jobs surface as structured failures
        (embedded broker only; an external broker keeps its own).
    max_hedges_per_chunk:
        Duplicate-dispatch budget per job for the embedded broker's
        hedging of tail chunks stuck on slow workers; ``0`` disables.
    heartbeat_interval / heartbeat_timeout:
        Worker liveness cadence.  The timeout defaults to 5× the interval.
        Spawned workers additionally derive their own cadence from the
        broker's advertised timeout at join time, so these two can no
        longer be configured into a self-reaping cluster.
    join_timeout:
        Seconds :meth:`_ensure_cluster` waits for the full spawned-worker
        complement before failing the run; raise it when workers join
        through slow links (e.g. a shaping proxy).
    worker_cache_dir:
        Passed to spawned workers as ``--cache-dir`` so they short-circuit
        repeats through a shared on-disk cache.
    poll_timeout:
        Driver-side watchdog: seconds without *any* broker message before
        giving up (``None`` waits forever).
    reconnect_attempts / reconnect_delay:
        Broker-outage tolerance: on a lost or refused connection the
        driver retries up to *reconnect_attempts* consecutive times,
        sleeping *reconnect_delay* seconds doubled per attempt (capped at
        5s), resubmitting its still-missing jobs under the same sweep id
        each time — against a journaled broker that means resuming, not
        restarting.  The counter resets whenever a connection delivers.
        Exhausting it raises :class:`BrokerUnavailableError`.
    journal_dir:
        Passed to the embedded broker so its queue survives the broker
        object (mostly useful in tests; an *external* broker configures
        its own journal via ``python -m repro broker --journal-dir``).
    """

    def __init__(
        self,
        workers: int = 2,
        cache: Optional[ResultCache] = None,
        broker: Optional[str] = None,
        progress: Optional[Callable[[ProgressSnapshot], None]] = None,
        authkey: Optional[str] = None,
        max_retries: int = 2,
        max_hedges_per_chunk: int = 1,
        heartbeat_interval: float = 2.0,
        heartbeat_timeout: Optional[float] = None,
        worker_cache_dir: Optional[str] = None,
        poll_timeout: Optional[float] = None,
        reconnect_attempts: int = 8,
        reconnect_delay: float = 0.5,
        journal_dir: Optional[str] = None,
        join_timeout: float = 60.0,
    ) -> None:
        super().__init__(jobs=max(1, int(workers)), cache=cache)
        self.workers = max(1, int(workers))
        self.progress = progress
        self.max_retries = max_retries
        self.max_hedges_per_chunk = max(0, int(max_hedges_per_chunk))
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = (
            heartbeat_timeout
            if heartbeat_timeout is not None
            else 5.0 * heartbeat_interval
        )
        self.worker_cache_dir = worker_cache_dir
        self.poll_timeout = poll_timeout
        self.reconnect_attempts = max(0, int(reconnect_attempts))
        self.reconnect_delay = reconnect_delay
        self.journal_dir = journal_dir
        self.join_timeout = float(join_timeout)
        self._authkey = authkey_from_env(authkey)
        self._external = parse_address(broker) if broker else None
        self._broker: Optional[Broker] = None
        self._procs: List[subprocess.Popen] = []
        self._relays: List[threading.Thread] = []
        self._atexit_registered = False
        self.retries_observed = 0
        self.hedges_observed = 0

    # ------------------------------------------------------------------
    # cluster lifecycle

    @property
    def backend(self) -> str:
        return "distributed"

    @property
    def address(self) -> Tuple[str, int]:
        """The broker address this runner talks to."""
        if self._external is not None:
            return self._external
        return self._embedded_broker().address

    def _embedded_broker(self) -> Broker:
        """The embedded broker, created on first use (``broker=None``)."""
        self._ensure_broker()
        broker = self._broker
        assert broker is not None, "embedded broker requires broker=None"
        return broker

    def _ensure_broker(self) -> None:
        if self._external is not None or self._broker is not None:
            return
        self._broker = Broker(
            address=("127.0.0.1", 0),
            authkey=self._authkey,
            heartbeat_timeout=self.heartbeat_timeout,
            max_retries=self.max_retries,
            journal_dir=self.journal_dir,
            max_hedges_per_chunk=self.max_hedges_per_chunk,
        ).start()
        if not self._atexit_registered:
            atexit.register(self.close)
            self._atexit_registered = True

    def spawn_worker(self, extra_env: Optional[dict] = None) -> subprocess.Popen:
        """Start one local worker subprocess against this runner's broker."""
        self._ensure_broker()
        package_root = str(Path(__file__).resolve().parent.parent.parent)
        env = os.environ.copy()
        env["PYTHONPATH"] = (
            package_root + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else package_root
        )
        # the worker must present the same cluster secret as the broker
        env["REPRO_DISTRIB_AUTHKEY"] = self._authkey.decode()
        # the stderr relay below labels every line; the worker's own
        # "[worker]" prefix would be redundant noise on top
        env.setdefault("REPRO_WORKER_LOG_PREFIX", "")
        if obs.enabled():
            # REPRO_OBS itself rides the environ copy (enable() exports
            # it); the label must NOT — the driver's own exported label
            # would masquerade as the worker's.  A stable per-spawn label
            # keeps the artifact's process names deterministic across
            # reconnect-assigned worker ids.
            env["REPRO_OBS_PROCESS"] = f"worker-{len(self._procs)}"
        if extra_env:
            env.update(extra_env)
        command = [
            sys.executable, "-m", "repro", "worker",
            "--connect", format_address(self.address),
            "--heartbeat", str(self.heartbeat_interval),
        ]
        if self.worker_cache_dir:
            command += ["--cache-dir", str(self.worker_cache_dir)]
        index = len(self._procs)
        proc = subprocess.Popen(command, env=env, stderr=subprocess.PIPE,
                                text=True, errors="replace")
        relay = threading.Thread(
            target=_relay_stderr, args=(proc.stderr, f"[worker {index}] "),
            daemon=True, name=f"repro-worker-stderr-{index}",
        )
        relay.start()
        self._procs.append(proc)
        self._relays.append(relay)
        return proc

    def _ensure_cluster(self) -> None:
        if self._external is not None:
            return
        broker = self._embedded_broker()
        alive = sum(1 for p in self._procs if p.poll() is None)
        spawned = [self.spawn_worker()
                   for _ in range(max(0, self.workers - alive))]
        # wait for the *full* complement, not just one: a worker that
        # crashes on spawn must fail the run loudly, not silently run the
        # sweep at a fraction of the requested parallelism.  The deadline
        # is generous and configurable (join_timeout) because a slow join
        # is not a failed join — workers connecting through a high-latency
        # path (shaping proxy, WAN) retry the handshake within their own
        # budget, and only a worker that *exited* is proof of failure.
        deadline = time.monotonic() + self.join_timeout
        while time.monotonic() < deadline:
            if broker.worker_count() >= self.workers:
                return
            if any(p.poll() is not None for p in spawned):
                break  # a fresh worker already exited: fail fast
            time.sleep(0.05)
        joined = broker.worker_count()
        if joined >= self.workers:
            return
        exits = [p.poll() for p in self._procs]
        raise RuntimeError(
            f"only {joined} of {self.workers} workers joined the embedded "
            f"broker (spawned {len(self._procs)}, exit codes {exits}); "
            f"check the workers' stderr — a fingerprint or authkey "
            f"mismatch exits with a reason there"
        )

    def wait_for_workers(self, count: int, timeout: float = 30.0) -> bool:
        """Block until *count* workers joined the embedded broker."""
        if self._external is not None:
            raise RuntimeError(
                "wait_for_workers needs the embedded broker; an external "
                "broker tracks its own workers"
            )
        return self._embedded_broker().wait_for_workers(count, timeout)

    def close(self) -> None:
        """Tear the embedded cluster down (idempotent)."""
        for proc in self._procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self._procs:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5)
        for relay in self._relays:
            relay.join(timeout=5)
        self._procs.clear()
        self._relays.clear()
        if self._broker is not None:
            self._broker.close()
            self._broker = None

    def __enter__(self) -> "DistributedRunner":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # execution (the ParallelRunner hook)

    def _iter_execute(self, jobs: Sequence) -> Iterator[Tuple[int, Any]]:
        """Yield ``(index, result)`` as the cluster completes jobs.

        Completion order is whatever the workers' race produces; the
        caller (:meth:`ParallelRunner.run`) places every pair by index,
        which is what keeps distributed output byte-identical to serial.
        Jobs that exhaust the broker's retry budget raise
        :class:`DistributedSweepError` *after* all completions were
        yielded (and therefore cached).

        A broker outage mid-sweep (bounce, partition) is survived, not
        fatal: the driver reconnects with exponential backoff and
        resubmits its still-missing jobs under the same sweep id.  A
        journaled broker replays outcomes that settled during the outage
        and resumes the rest; a fresh broker simply recomputes.  Results
        are deduplicated by seq, so a replay can never double-yield.
        """
        if not jobs:
            return
        self._ensure_cluster()
        sweep_id = uuid.uuid4().hex
        remaining = {
            seq: (_prepare_key(job), job) for seq, job in enumerate(jobs)
        }
        failures: List[JobFailure] = []
        attempts = 0
        done = False
        while not done and remaining:
            try:
                conn = Client(self.address, authkey=self._authkey)
            except (OSError, EOFError) as exc:
                attempts += 1
                self._backoff(attempts, exc)
                continue
            try:
                conn.send(("hello", "driver", code_fingerprint(),
                           {"pid": os.getpid(),
                            "workers_hint": self.workers}))
                reply = conn.recv()
                if reply[0] == "reject":
                    raise RuntimeError(
                        f"broker rejected this driver: {reply[1]}")
                entries = [(seq, key, job)
                           for seq, (key, job) in sorted(remaining.items())]
                conn.send(("submit", sweep_id, entries))
                while True:
                    if (self.poll_timeout is not None
                            and not conn.poll(self.poll_timeout)):
                        raise TimeoutError(
                            f"no broker message for {self.poll_timeout}s "
                            f"({format_address(self.address)})"
                        )
                    message = conn.recv()
                    tag = message[0]
                    if tag == "result":
                        for seq, value in message[1]:
                            if seq in remaining:
                                del remaining[seq]
                                attempts = 0
                                yield seq, value
                    elif tag == "failed":
                        for seq, tries, reason in message[1]:
                            if seq in remaining:
                                del remaining[seq]
                                attempts = 0
                                failures.append(
                                    JobFailure(seq, tries, reason))
                    elif tag == "progress":
                        snapshot = ProgressSnapshot.from_dict(message[1])
                        self.retries_observed = max(
                            self.retries_observed, snapshot.retries
                        )
                        self.hedges_observed = max(
                            self.hedges_observed, snapshot.hedges
                        )
                        if self.progress is not None:
                            self.progress(snapshot)
                    elif tag == "obs":
                        # a worker's drained span/metric buffers, relayed
                        # by the broker; folded for the run artifact
                        obs.fold_payload(message[1])
                    elif tag == "done":
                        if remaining:
                            # a broker may only say "done" after every
                            # submitted job's outcome went out; getting
                            # one early means this connection is not to
                            # be trusted — resubmit on a fresh one
                            attempts += 1
                            self._backoff(attempts, RuntimeError(
                                f"broker signalled done with "
                                f"{len(remaining)} outcome(s) missing"))
                            break
                        done = True
                        break
                if done:
                    if obs.enabled():
                        self._collect_broker_stats(conn)
                    try:
                        conn.send(("bye",))
                    except (OSError, ValueError):
                        pass
            except (EOFError, ConnectionError, OSError) as exc:
                attempts += 1
                self._backoff(attempts, exc)
            finally:
                conn.close()
        if failures:
            raise DistributedSweepError(sorted(failures, key=lambda f: f.seq))

    def _collect_broker_stats(self, conn: Connection) -> None:
        """Best-effort ``("stats",)`` query folded into the run artifact.

        The broker's lifetime counters (dispatches, requeues, hedges,
        suspect flips, heartbeat interarrivals) live broker-side; with
        obs on, the driver pulls one snapshot after the sweep settles
        and folds it under the ``broker.`` key prefix.  Telemetry only:
        any failure or timeout is swallowed — the sweep's results are
        already in hand and must not be risked for a diagnostic.
        """
        try:
            conn.send(("stats",))
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if not conn.poll(0.2):
                    continue
                message = conn.recv()
                tag = message[0]
                if tag == "stats":
                    obs.fold_metrics(message[1], prefix="broker.")
                    return
                if tag == "obs":
                    obs.fold_payload(message[1])
                # anything else (late progress) is drained and dropped
        except (EOFError, ConnectionError, OSError, ValueError):
            pass

    def _backoff(self, attempts: int, exc: Exception) -> None:
        """Sleep before reconnect attempt *attempts*, or give up."""
        if attempts > self.reconnect_attempts:
            raise BrokerUnavailableError(
                f"broker at {format_address(self.address)} unreachable "
                f"after {self.reconnect_attempts} reconnect attempt(s); "
                f"last error: {exc}"
            ) from exc
        delay = min(5.0, self.reconnect_delay * (2 ** (attempts - 1)))
        time.sleep(delay)

    def __repr__(self) -> str:
        where = (
            format_address(self._external)
            if self._external is not None
            else f"embedded×{self.workers}"
        )
        return (
            f"DistributedRunner(broker={where}, cache={self.cache!r}, "
            f"executed={self.executed}, cache_hits={self.cache_hits})"
        )
