"""Distributed sweep execution: broker, workers, and a drop-in runner.

The sweeps are embarrassingly parallel per condition and per flow shard,
but :class:`~repro.runner.runner.ParallelRunner` tops out at one machine's
``multiprocessing`` pool.  This package scales the same job model across
machines with nothing but the stdlib:

* :class:`~repro.distrib.broker.Broker` — a small TCP job queue with
  heartbeats, dead-worker requeue (bounded retries, then structured
  failures), shard-chunk dispatch, and live progress push;
* :func:`~repro.distrib.worker.worker_main` — the stateless executor
  behind ``python -m repro worker --connect HOST:PORT``, fingerprint-
  verified so every peer runs identical simulator code;
* :class:`~repro.distrib.runner.DistributedRunner` — the
  :class:`ParallelRunner` interface over a cluster (embedded or external
  broker), byte-identical results to the serial backend;
* :class:`~repro.distrib.shaping.ShapingProxy` — a deterministic
  degraded-link relay (latency, jitter, throttling, reordering, stutter)
  for rehearsing the cluster's behaviour on bad networks, also available
  as ``python -m repro shape``.

Typical use::

    from repro.distrib import DistributedRunner
    from repro.experiments import ExperimentConfig, run_fig4ab

    with DistributedRunner(workers=4) as runner:   # embedded broker
        curves = run_fig4ab(ExperimentConfig(), runner=runner)

or, against a standing cluster::

    # on the coordinator:   python -m repro broker --listen 0.0.0.0:7077
    # on each machine:      python -m repro worker --connect coord:7077
    runner = DistributedRunner(broker="coord:7077")
"""

from .broker import Broker
from .journal import SweepJournal, load_journals
from .progress import ProgressPrinter, ProgressSnapshot
from .protocol import BrokerUnavailableError, DistributedSweepError, JobFailure
from .runner import DistributedRunner
from .shaping import LinkShape, ShapingProxy
from .worker import worker_main

__all__ = [
    "Broker",
    "BrokerUnavailableError",
    "DistributedRunner",
    "DistributedSweepError",
    "JobFailure",
    "LinkShape",
    "ProgressPrinter",
    "ProgressSnapshot",
    "ShapingProxy",
    "SweepJournal",
    "load_journals",
    "worker_main",
]
