"""Deterministic link shaping: a frame-aware TCP relay for degraded links.

The distributed backend survives *severed* links (worker death, broker
bounce, partitions — see ``broker.py``).  This module supplies the other
half of the fault model: links that are merely *bad*.  ``ShapingProxy``
sits between any two peers — typically in front of the broker, so every
worker connecting through it sees a degraded path — and applies a
per-direction :class:`LinkShape`:

* fixed **latency** plus seeded uniform **jitter** per message,
* a **bandwidth** throttle (bytes/second, serialized per direction),
* a bounded **reordering window** (whole messages swap places, never
  byte streams),
* **stutter windows**: with probability ``stutter_rate`` per message the
  link freezes for ``stutter_duration`` — and because stalls advance a
  shared busy-watermark, everything behind the stutter queues up instead
  of pipelining past it, which is what creates the realistic heartbeat
  gaps the suspicion machinery must tolerate.

Every random draw comes from a ``random.Random`` seeded from the proxy
seed and the connection index, so a shaped run is exactly reproducible:
same seed, same traffic, same delivery order.

The relay is *frame-aware*: it parses whole ``multiprocessing.connection``
messages (4-byte ``!i`` big-endian length header; ``-1`` sentinel plus an
8-byte ``!Q`` for large payloads) and delays/reorders only complete
frames.  TCP cannot reorder bytes, so reordering raw stream slices would
just corrupt the pickle stream; reordering whole messages models what a
lossy-link retransmission schedule actually does to message arrival
order.  The HMAC handshake is safe under reordering because it is a
strict request-response exchange — at most one frame is ever in flight,
so the reorder buffer never holds two handshake messages at once.

Used as a pytest fixture (``tests/test_distrib_shaping.py``,
``tests/test_distrib_chaos.py``) and from the CLI::

    python -m repro shape --listen 127.0.0.1:7070 \
        --upstream 127.0.0.1:7077 --latency-ms 500 --jitter-ms 200 \
        --stutter-rate 0.05 --stutter-ms 250 --seed 1

Everything here is stdlib-only, like the rest of ``repro.distrib``.
"""

from __future__ import annotations

import random
import select
import socket
import struct
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Union

__all__ = ["LinkShape", "LinkScheduler", "ReorderBuffer", "ShapingProxy"]


@dataclass(frozen=True)
class LinkShape:
    """One direction's degradation profile.  Times in seconds.

    ``bandwidth`` is bytes/second (``None`` = unthrottled);
    ``reorder_window`` bounds how far any message may be displaced from
    its send order, in either direction; ``stutter_rate`` is the
    per-message probability that the link freezes for
    ``stutter_duration`` before that message (and everything queued
    behind it) moves.
    """

    latency: float = 0.0
    jitter: float = 0.0
    bandwidth: Optional[float] = None
    reorder_window: int = 0
    stutter_rate: float = 0.0
    stutter_duration: float = 0.0


class LinkScheduler:
    """Turns a :class:`LinkShape` into per-message delays, deterministically.

    Pure given ``(shape, seed)`` and the call sequence: no wall-clock
    reads, no global randomness — the unit tests drive it with synthetic
    ``now`` values and assert exact arithmetic.

    Bandwidth and stutter share one ``_busy_until`` watermark: each
    message occupies the link for its transmit time plus any stutter it
    triggered, and later messages cannot start before the watermark.
    That serialization is the point — a frozen link must gap *all*
    subsequent arrivals (heartbeats included), not just the message that
    hit the stutter.
    """

    def __init__(self, shape: LinkShape, seed: int) -> None:
        self.shape = shape
        self._rng = random.Random(seed)
        self._busy_until = 0.0

    def delay(self, now: float, nbytes: int) -> float:
        """Seconds to hold a message of *nbytes* handed to the link at *now*."""
        shape = self.shape
        wait = shape.latency
        if shape.jitter > 0.0:
            wait += self._rng.uniform(-shape.jitter, shape.jitter)
        wait = max(0.0, wait)
        start = max(now, self._busy_until)
        transmit = nbytes / shape.bandwidth if shape.bandwidth else 0.0
        stall = 0.0
        if shape.stutter_rate > 0.0 and self._rng.random() < shape.stutter_rate:
            stall = shape.stutter_duration
        self._busy_until = start + transmit + stall
        return wait + (start - now) + transmit + stall


class ReorderBuffer:
    """A bounded-displacement reordering queue over whole messages.

    ``pop`` picks a seeded-random element from the first ``window + 1``
    held messages, except that a message already passed over ``window``
    times is forced out next — so no message is displaced more than
    ``window`` positions from its push order, in either direction.
    ``window == 0`` degenerates to exact FIFO (no RNG draws at all), so
    an unshaped direction stays bit-for-bit transparent.
    """

    def __init__(self, window: int, seed: int) -> None:
        self.window = max(0, int(window))
        self._rng = random.Random(seed)
        self._held: List[bytes] = []
        self._passes: List[int] = []

    def __len__(self) -> int:
        return len(self._held)

    def push(self, frame: bytes) -> None:
        self._held.append(frame)
        self._passes.append(0)

    def pop(self) -> bytes:
        if not self._held:
            raise IndexError("pop from an empty ReorderBuffer")
        index = 0
        eligible = min(len(self._held), self.window + 1)
        if self.window > 0 and eligible > 1 and self._passes[0] < self.window:
            index = self._rng.randrange(eligible)
        frame = self._held.pop(index)
        del self._passes[index]
        for i in range(index):
            self._passes[i] += 1
        return frame


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Exactly *count* bytes from *sock*, or ``None`` on EOF/error."""
    chunks: List[bytes] = []
    got = 0
    while got < count:
        try:
            piece = sock.recv(count - got)
        except OSError:
            return None
        if not piece:
            return None
        chunks.append(piece)
        got += len(piece)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> Optional[bytes]:
    """One complete ``multiprocessing.connection`` frame, header included.

    Returns the raw header+payload bytes (ready to forward verbatim), or
    ``None`` on clean EOF, a socket error, or an unrecognized header —
    all of which the relay treats as end-of-direction.
    """
    header = _recv_exact(sock, 4)
    if header is None:
        return None
    (size,) = struct.unpack("!i", header)
    if size == -1:
        long_header = _recv_exact(sock, 8)
        if long_header is None:
            return None
        (big,) = struct.unpack("!Q", long_header)
        payload = _recv_exact(sock, big)
        return None if payload is None else header + long_header + payload
    if size < 0:
        return None
    if size == 0:
        return header
    payload = _recv_exact(sock, size)
    return None if payload is None else header + payload


def _readable(sock: socket.socket) -> bool:
    try:
        ready, _, _ = select.select([sock], [], [], 0)
    except (OSError, ValueError):
        return False
    return bool(ready)


class ShapingProxy:
    """A TCP relay applying a :class:`LinkShape` between two endpoints.

    Listens on *listen* (default: an ephemeral local port, read it back
    from ``.address``) and forwards every accepted connection to
    *upstream*.  *shape* applies client→upstream; *downstream_shape*
    (default: the same shape) applies upstream→client.  Per-connection
    RNG seeds are derived from ``(seed, connection index)``, so a test
    that connects in a fixed order gets a fixed shaped schedule.

    ``_clock`` and ``_sleep`` are injectable for unit tests that want to
    exercise scheduling without real waiting.
    """

    def __init__(
        self,
        upstream: Union[Tuple[str, int], str],
        shape: LinkShape = LinkShape(),
        downstream_shape: Optional[LinkShape] = None,
        listen: Union[Tuple[str, int], str] = ("127.0.0.1", 0),
        seed: int = 0,
    ) -> None:
        self.upstream = _as_address(upstream)
        self.shape = shape
        self.downstream_shape = downstream_shape if downstream_shape is not None else shape
        self.seed = int(seed)
        self._clock: Callable[[], float] = time.monotonic
        self._sleep: Callable[[float], None] = time.sleep
        self._lock = threading.Lock()
        self._conns: List[socket.socket] = []
        self._threads: List[threading.Thread] = []
        self._closed = False
        self._accepted = 0
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind(_as_address(listen))
        server.listen(16)
        self._server = server
        self.address: Tuple[str, int] = server.getsockname()[:2]

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ShapingProxy":
        thread = threading.Thread(
            target=self._accept_loop, name="repro-shape-accept", daemon=True)
        thread.start()
        with self._lock:
            self._threads.append(thread)
        return self

    def serve_forever(self) -> None:
        """Run until ``close()`` (or KeyboardInterrupt in the CLI)."""
        self.start()
        while not self._closed:
            time.sleep(0.2)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            conns = list(self._conns)
            self._conns.clear()
            threads = list(self._threads)
        try:
            self._server.close()
        except OSError:
            pass
        for sock in conns:
            try:
                sock.close()
            except OSError:
                pass
        for thread in threads:
            thread.join(timeout=2.0)

    def __enter__(self) -> "ShapingProxy":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- internals ---------------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                client, _addr = self._server.accept()
            except OSError:
                return
            index = self._accepted
            self._accepted += 1
            thread = threading.Thread(
                target=self._serve, args=(client, index),
                name=f"repro-shape-conn-{index}", daemon=True)
            thread.start()
            with self._lock:
                self._threads.append(thread)

    def _lanes(self, index: int) -> Tuple[LinkScheduler, ReorderBuffer,
                                          LinkScheduler, ReorderBuffer]:
        """Deterministic per-connection schedulers: 4 independent lanes."""
        base = self.seed * 1_000_003 + index * 31
        return (
            LinkScheduler(self.shape, base + 0),
            ReorderBuffer(self.shape.reorder_window, base + 1),
            LinkScheduler(self.downstream_shape, base + 2),
            ReorderBuffer(self.downstream_shape.reorder_window, base + 3),
        )

    def _serve(self, client: socket.socket, index: int) -> None:
        try:
            up = socket.create_connection(self.upstream, timeout=30.0)
        except OSError:
            try:
                client.close()
            except OSError:
                pass
            return
        up.settimeout(None)
        with self._lock:
            if self._closed:
                for sock in (client, up):
                    try:
                        sock.close()
                    except OSError:
                        pass
                return
            self._conns.extend((client, up))
        up_sched, up_buf, down_sched, down_buf = self._lanes(index)
        pumps = [
            threading.Thread(target=self._relay, args=(client, up, up_sched, up_buf),
                             name=f"repro-shape-up-{index}", daemon=True),
            threading.Thread(target=self._relay, args=(up, client, down_sched, down_buf),
                             name=f"repro-shape-down-{index}", daemon=True),
        ]
        for pump in pumps:
            pump.start()
        for pump in pumps:
            pump.join()
        for sock in (client, up):
            try:
                sock.close()
            except OSError:
                pass

    def _relay(self, src: socket.socket, dst: socket.socket,
               scheduler: LinkScheduler, buffered: ReorderBuffer) -> None:
        """Pump whole frames src→dst through the shaped schedule.

        Keeps at most ``window + 1`` frames buffered: enough for the
        reorder draw, small enough that backpressure still reaches the
        sender.  On EOF the buffer drains (late frames still delivered),
        then both sockets are shut down so the peer sees a clean
        disconnect rather than a half-open link.
        """
        window = buffered.window
        eof = False
        try:
            while True:
                if not eof and len(buffered) == 0:
                    frame = read_frame(src)
                    if frame is None:
                        eof = True
                    else:
                        buffered.push(frame)
                while not eof and len(buffered) <= window and _readable(src):
                    frame = read_frame(src)
                    if frame is None:
                        eof = True
                    else:
                        buffered.push(frame)
                if len(buffered) == 0:
                    return
                frame = buffered.pop()
                wait = scheduler.delay(self._clock(), len(frame))
                if wait > 0.0:
                    self._sleep(wait)
                dst.sendall(frame)
        except OSError:
            pass
        finally:
            for sock in (src, dst):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass


def _as_address(value: Union[Tuple[str, int], str]) -> Tuple[str, int]:
    """Accept ``(host, port)`` or ``"host:port"`` uniformly."""
    if isinstance(value, str):
        from .protocol import parse_address
        return parse_address(value)
    host, port = value
    return str(host), int(port)
