"""CLI: ``PYTHONPATH=tools python -m reprolint [paths...]``.

Exit status 0 when the tree is clean, 1 when any finding is reported,
2 on usage errors.  ``--list-rules`` prints the rule catalogue.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .engine import run_paths
from .rules import ALL_RULES, RULES_BY_ID


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="repo-specific invariant linter "
                    "(see docs/invariants.md)")
    parser.add_argument("paths", nargs="*", default=["src", "tools"],
                        help="files or directories to lint "
                             "(default: src tools)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  [{rule.severity}]  {rule.description}")
        return 0

    rules = ALL_RULES
    if args.select:
        wanted = [r.strip() for r in args.select.split(",") if r.strip()]
        unknown = [r for r in wanted if r not in RULES_BY_ID]
        if unknown:
            print(f"reprolint: unknown rule ids: {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
        rules = [RULES_BY_ID[r] for r in wanted]

    findings, n_files = run_paths(args.paths or ["src", "tools"], rules)
    for finding in findings:
        print(finding.format())
    noun = "file" if n_files == 1 else "files"
    if findings:
        print(f"reprolint: {len(findings)} finding(s) in {n_files} {noun}")
        return 1
    print(f"reprolint: clean ({n_files} {noun})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
