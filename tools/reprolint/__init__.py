"""reprolint — repo-specific static analysis for reproduction invariants.

The byte-identical-output guarantee of this reproduction rests on a
handful of invariants that used to be enforced only by one-off audits:
no wall-clock or global-RNG calls in simulation code, cache keys that
cover every result-affecting job field, broker state touched only under
its lock, and batch fast paths that mirror the object path bit for bit.
``reprolint`` turns those audits into a permanent AST-level check.

Usage::

    PYTHONPATH=tools python -m reprolint src tools

or from tests::

    from reprolint import run_paths
    findings, n_files = run_paths(["src", "tools"])

See ``docs/invariants.md`` for the rule catalogue and the suppression
syntax (``# reprolint: disable=RULE -- justification``).
"""

from .engine import Finding, FileContext, Rule, run_paths, lint_file
from .rules import ALL_RULES

__all__ = ["Finding", "FileContext", "Rule", "run_paths", "lint_file",
           "ALL_RULES"]
