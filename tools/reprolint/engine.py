"""The reprolint engine: file walking, suppressions, and the rule API.

A *rule* is a plain object with an ``id``, a ``severity``, a one-line
``description``, and a ``check(ctx)`` callable that yields
``(line, message)`` pairs for one parsed file.  The engine handles
everything else: discovering ``.py`` files, parsing them once into a
:class:`FileContext`, applying inline suppressions, and aggregating
:class:`Finding` objects.

Suppression grammar (same line as the finding)::

    x = arr.sum()  # reprolint: disable=BATCH003 -- int64 counters, exact

The justification after ``--`` is mandatory; a ``disable`` without one
is itself reported (META001) so suppressions stay auditable.  A second
annotation form marks a function as running with a lock already held::

    def _book(self, sweep, seq, outcome):  # reprolint: holds=_lock

which the lock-discipline rules treat as "body is lock-held, and every
call site must itself hold the lock".
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Sequence, Tuple

__all__ = ["Finding", "FileContext", "Rule", "lint_file", "run_paths"]

SEVERITIES = ("error", "warning")

_ANNOTATION_RE = re.compile(
    r"#\s*reprolint:\s*(disable|holds)\s*=\s*([A-Za-z0-9_,\s]+?)"
    r"\s*(?:--\s*(.*\S))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific file and line."""

    rule: str
    severity: str
    path: str
    line: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.severity}: " \
               f"{self.rule}: {self.message}"


@dataclass(frozen=True)
class Rule:
    """A single named check run against every in-scope file."""

    id: str
    severity: str
    description: str
    check: Callable[["FileContext"], Iterable[Tuple[int, str]]]


@dataclass
class FileContext:
    """Everything a rule needs about one parsed source file."""

    path: str                      # path as given on the command line
    posix_path: str                # normalized, forward slashes
    source: str
    tree: ast.Module
    # line -> {rule_id: justification} for `disable=` annotations
    suppressions: Dict[int, Dict[str, str]] = field(default_factory=dict)
    # line -> lock names for `holds=` annotations
    holds: Dict[int, List[str]] = field(default_factory=dict)
    # META findings produced while parsing annotations
    meta_findings: List[Finding] = field(default_factory=list)

    def in_scope(self, fragments: Sequence[str]) -> bool:
        """True if any posix path *fragment* occurs in this file's path."""
        return any(f in self.posix_path for f in fragments)

    def holds_for_def(self, func: ast.AST) -> List[str]:
        """Lock names from a ``holds=`` annotation on *func*'s signature.

        The comment may sit on any line of the (possibly multi-line)
        ``def`` signature, i.e. between ``func.lineno`` and the first
        body statement.
        """
        body = getattr(func, "body", None)
        last = body[0].lineno if body else getattr(func, "lineno", 0) + 1
        locks: List[str] = []
        for line in range(func.lineno, last + 1):
            locks.extend(self.holds.get(line, ()))
        return locks


def _parse_annotations(path: str, source: str) -> Tuple[
        Dict[int, Dict[str, str]], Dict[int, List[str]], List[Finding]]:
    """Extract ``disable=``/``holds=`` comments via the token stream."""
    suppressions: Dict[int, Dict[str, str]] = {}
    holds: Dict[int, List[str]] = {}
    meta: List[Finding] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [t for t in tokens if t.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressions, holds, meta
    for tok in comments:
        match = _ANNOTATION_RE.search(tok.string)
        if match is None:
            if "reprolint:" in tok.string:
                meta.append(Finding(
                    "META001", "error", path, tok.start[0],
                    f"unparseable reprolint annotation: {tok.string!r}"))
            continue
        kind, names_raw, justification = match.groups()
        names = [n.strip() for n in names_raw.split(",") if n.strip()]
        line = tok.start[0]
        if kind == "holds":
            holds.setdefault(line, []).extend(names)
            continue
        if not justification:
            meta.append(Finding(
                "META001", "error", path, line,
                "suppression without a justification — write "
                "'# reprolint: disable=RULE -- why this is safe'"))
            continue
        for name in names:
            suppressions.setdefault(line, {})[name] = justification
    return suppressions, holds, meta


def lint_file(path: str, rules: Sequence[Rule],
              source: "str | None" = None) -> List[Finding]:
    """Run *rules* over one file, honouring inline suppressions."""
    path = os.fspath(path)
    if source is None:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    posix = path.replace(os.sep, "/")
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding("META002", "error", path, exc.lineno or 1,
                        f"file does not parse: {exc.msg}")]
    suppressions, holds, meta = _parse_annotations(path, source)
    ctx = FileContext(path=path, posix_path=posix, source=source,
                      tree=tree, suppressions=suppressions, holds=holds,
                      meta_findings=meta)
    findings: List[Finding] = list(meta)
    for rule in rules:
        for line, message in rule.check(ctx):
            if rule.id in suppressions.get(line, {}):
                continue
            findings.append(Finding(rule.id, rule.severity, path, line,
                                    message))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Yield every ``.py`` file under *paths* in sorted order."""
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs
                             if not d.startswith(".") and d != "__pycache__")
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def run_paths(paths: Sequence[str],
              rules: "Sequence[Rule] | None" = None
              ) -> Tuple[List[Finding], int]:
    """Lint every python file under *paths*; (findings, files scanned)."""
    if rules is None:
        from .rules import ALL_RULES
        rules = ALL_RULES
    findings: List[Finding] = []
    n_files = 0
    for file_path in iter_python_files(paths):
        n_files += 1
        findings.extend(lint_file(file_path, rules))
    return findings, n_files


# -- shared AST helpers used by more than one rule module ---------------

def dotted_chain(node: ast.AST) -> Tuple[str, ...]:
    """The dotted-name components of an attribute chain, outermost last.

    ``time.time`` -> ("time", "time"); ``self.clock.now`` ->
    ("self", "clock", "now"); anything non-name-rooted contributes "?"
    for its root so callers can still match trailing components.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        parts.append("?")
    return tuple(reversed(parts))


def walk_functions(tree: ast.Module) -> Iterator[ast.AST]:
    """Every function/async-function definition in the module."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
