"""Repo-specific configuration for the reprolint rule families.

Scopes are posix-path *fragments* matched by substring, so the same
rules fire both on the real tree (``src/repro/sim/...``) and on the
checked-in bad fixtures under ``tests/fixtures/reprolint/src/repro/...``
that keep the rules honest.
"""

from __future__ import annotations

# -- determinism (DET) --------------------------------------------------

# Simulation, estimation, traffic, and experiment-driver code must be a
# pure function of (config, seeds).  Runner/distrib code may consult the
# wall clock for timeouts and heartbeats; these paths may not.
DETERMINISM_SCOPE = (
    "repro/sim/",
    "repro/core/",
    "repro/traffic/",
    "repro/experiments/",
)

# Banned call targets, matched against the last two dotted components of
# the callee (so `self.clock.now()` does not false-positive on
# `datetime.now`).  Wall clocks and OS entropy both make output depend
# on when/where the run happened.
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
    "os.urandom", "os.getrandbits", "uuid.uuid1", "uuid.uuid4",
})

# `random.X(...)` / `np.random.X(...)` calls hit interpreter-global RNG
# state, which parallel/sharded execution orders differently run to run.
# Constructing an explicitly seeded generator is the sanctioned idiom.
RANDOM_MODULE_ALLOWED = frozenset({"Random"})
NP_RANDOM_ALLOWED = frozenset({
    "default_rng", "Generator", "RandomState", "SeedSequence", "PCG64",
})

# -- cache keys (KEY) ---------------------------------------------------

CACHEKEY_SCOPE = (
    "runner/spec.py",
    "experiments/extension_jobs.py",
)

# Module-level allowlist names a job module may define to exempt fields:
#   CACHE_KEY_EXEMPT = {"ClassName.field": "why it cannot change results"}
#   PREPARE_KEY_EXEMPT = {"ClassName.field": "why the prepared artifact
#                          is shared across values of this field"}
CACHE_EXEMPT_NAME = "CACHE_KEY_EXEMPT"
PREPARE_EXEMPT_NAME = "PREPARE_KEY_EXEMPT"

# -- lock discipline (LOCK) ---------------------------------------------

LOCK_SCOPE = ("distrib/broker.py", "distrib/shaping.py")

# Broker attributes guarded by `self._lock` (PR 6's hand audit, now
# mechanical).  `_wake` is a Condition built on `_lock`, so holding
# either name holds the same lock.
BROKER_LOCK_NAMES = frozenset({"_lock", "_wake"})
BROKER_GUARDED_SELF = frozenset({
    "_workers", "_drivers", "_sweeps", "_idle", "_pending", "_assignments",
    "_suspects", "_dead", "_conns",
})
# Attributes of the _Sweep/_Driver value objects that the same lock
# guards.  (Worker liveness fields — `alive`, `last_seen` — are
# deliberately absent: they are monotonic flags with benign races,
# documented in broker.py.)
BROKER_GUARDED_VALUE = frozenset({
    "remaining", "settled", "finished", "driver_id", "journal",
    "total", "done", "retries", "failures", "sweeps",
    "hedged", "hedges", "chunk_ewma",
})
SEND_LOCK_NAME = "send_lock"

# -- batch parity (BATCH) -----------------------------------------------

BATCH_SCOPE = ("repro/sim/", "repro/core/")

# Public `*_batch` entry points whose object-path sibling does not follow
# the `strip _batch` naming convention.
BATCH_SIBLING_MAP = {
    "extend_batch": "append",     # columnar bulk append vs scalar append
    "classify_batch": "__call__", # vectorized classifier vs callable
}

# `*_batch` names that are not fast-path entry points at all.
BATCH_EXEMPT_NAMES = frozenset({
    "from_batch", "to_batch", "has_batch",
})

# Float reductions whose operation order differs from the sequential
# object path (np.sum is pairwise; see docs/internals-batch.md).  The
# sanctioned spellings are np.add.reduce / np.add.accumulate.
BANNED_REDUCERS = frozenset({"sum", "nansum", "cumsum", "prod", "cumprod",
                             "dot", "matmul", "einsum"})
NUMPY_NAMES = frozenset({"np", "numpy"})

# Only sim-layer modules orchestrate foreign batch objects; they must
# gate on `batch_capable` before calling another object's `*_batch`.
BATCH_GATE_SCOPE = ("repro/sim/",)

# -- observability (OBS) ------------------------------------------------

# Kernel scope (everything the DET rules keep pure) may reach the obs
# layer only through its clock-free counter surface: importing
# `repro.obs.metrics` is allowed, the package itself / trace / export
# are not — they read `time.perf_counter`, which DET001 deliberately
# exempts inside `repro/obs/` (outside DETERMINISM_SCOPE) and which
# must therefore never be re-imported back into kernel scope.
OBS_KERNEL_SCOPE = DETERMINISM_SCOPE

# The one importable repro.obs submodule in kernel scope.
OBS_ALLOWED_SUBMODULE = "metrics"

# Clock-bearing obs entry points, matched at call sites (OBS001).
OBS_CLOCK_CALLS = frozenset({
    "span", "spans_snapshot", "drain_spans", "reset_spans",
    "drain_payload", "merged_spans", "build_artifact", "write_artifact",
    "write_chrome_trace", "span_summary",
})

# Public metrics functions; all return None, so kernel-scope call sites
# must be bare statements (OBS003) — a used return value would mean
# telemetry feeding back into simulation control flow.
OBS_METRIC_CALLS = frozenset({
    "count", "gauge", "observe", "taken", "fallback", "reset_notes",
})
