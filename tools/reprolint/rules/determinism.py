"""DET rules: simulation code must be a pure function of (config, seed).

DET001  wall-clock / OS-entropy call (time.time, datetime.now, os.urandom…)
DET002  interpreter-global RNG (random.*, np.random.* without a seeded
        generator object)
DET003  iteration over an unordered set where order can reach output
        (the PR 5 receiver class of bug) — wrap in sorted()
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Tuple

from ..engine import FileContext, Rule, dotted_chain
from .. import config

Findings = Iterator[Tuple[int, str]]


def _check_wall_clock(ctx: FileContext) -> Findings:
    if not ctx.in_scope(config.DETERMINISM_SCOPE):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = dotted_chain(node.func)
        if len(chain) < 2:
            continue
        tail = ".".join(chain[-2:])
        if tail in config.WALL_CLOCK_CALLS:
            yield node.lineno, (
                f"call to {tail}() makes output depend on wall clock / OS "
                f"entropy; thread a value from the experiment config instead"
            )


def _check_global_random(ctx: FileContext) -> Findings:
    if not ctx.in_scope(config.DETERMINISM_SCOPE):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = dotted_chain(node.func)
        if chain[0] == "random" and len(chain) == 2:
            if chain[1] not in config.RANDOM_MODULE_ALLOWED:
                yield node.lineno, (
                    f"random.{chain[1]}() uses the interpreter-global RNG; "
                    f"use an explicitly seeded random.Random(seed) instance"
                )
        elif (len(chain) >= 3 and chain[0] in config.NUMPY_NAMES
                and chain[1] == "random"
                and chain[2] not in config.NP_RANDOM_ALLOWED):
            yield node.lineno, (
                f"{chain[0]}.random.{chain[2]}() uses numpy's global RNG "
                f"state; construct np.random.default_rng(seed) or a seeded "
                f"RandomState"
            )


def _is_unordered_set_expr(node: ast.AST) -> bool:
    """Syntactically, does *node* evaluate to an unordered set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in (
                "set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "union", "intersection", "difference",
                "symmetric_difference"):
            # set-algebra methods; only flag when an operand is itself
            # syntactically a set, else `str.union`-style false positives
            operands = [node.func.value, *node.args]
            return any(_is_unordered_set_expr(op) or _is_keys_view(op)
                       for op in operands)
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        # dict .keys() views combined with | & - ^ produce sets
        sides = (node.left, node.right)
        return any(_is_unordered_set_expr(s) or _is_keys_view(s)
                   for s in sides)
    return False


def _is_keys_view(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "keys")


def _iter_targets(tree: ast.Module) -> Iterable[ast.AST]:
    """Every expression something iterates over: for-loops and
    comprehension generators."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, ast.comprehension):
            yield node.iter


def _check_set_iteration(ctx: FileContext) -> Findings:
    if not ctx.in_scope(config.DETERMINISM_SCOPE):
        return
    for target in _iter_targets(ctx.tree):
        if _is_unordered_set_expr(target):
            yield target.lineno, (
                "iterating an unordered set: element order is hash-seed "
                "and insertion-history dependent and can leak into "
                "emission/serialization order; iterate sorted(...) instead"
            )


RULES = [
    Rule("DET001", "error",
         "wall-clock or OS-entropy call in deterministic scope",
         _check_wall_clock),
    Rule("DET002", "error",
         "interpreter-global RNG use in deterministic scope",
         _check_global_random),
    Rule("DET003", "error",
         "iteration over an unordered set in deterministic scope",
         _check_set_iteration),
]
