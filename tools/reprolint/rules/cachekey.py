"""KEY rules: every result-affecting job field must reach the cache key.

PR 2 fixed seed/cache-key aliasing (two different conditions hashing to
one cache entry); PR 5 had to remember to thread ``batch`` through both
``prepare_key`` and ``cache_token``.  These rules make that audit
mechanical: for every class that defines ``cache_token`` (and, where
present, ``prepare_key``), the declared dataclass fields are compared
against the ``self.<field>`` reads reachable from that method.

KEY001  field absent from cache_token (and not in CACHE_KEY_EXEMPT)
KEY002  field absent from prepare_key (and not in PREPARE_KEY_EXEMPT)
KEY003  malformed exempt allowlist (non-literal dict, or an entry with
        no justification string)

Allowlist format, at module level in the job module itself::

    PREPARE_KEY_EXEMPT = {
        "MultihopShardJob.shard": "replay parameter; the prepared "
                                  "artifact is shared across shards",
    }

Keys are ``ClassName.field`` (preferred) or a bare ``field`` applying to
every class in the module; values are the human justification.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..engine import FileContext, Rule
from .. import config

Findings = Iterator[Tuple[int, str]]


def _exempt_dict(tree: ast.Module, name: str
                 ) -> Tuple[Dict[str, str], List[Tuple[int, str]]]:
    """Parse a module-level ``NAME = {literal dict}`` allowlist."""
    problems: List[Tuple[int, str]] = []
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if name not in targets:
            continue
        try:
            value = ast.literal_eval(node.value)
        except (ValueError, SyntaxError):
            problems.append((node.lineno,
                             f"{name} must be a literal dict"))
            return {}, problems
        if not isinstance(value, dict):
            problems.append((node.lineno, f"{name} must be a dict"))
            return {}, problems
        for key, justification in value.items():
            if not (isinstance(justification, str)
                    and justification.strip()):
                problems.append((
                    node.lineno,
                    f"{name}[{key!r}] needs a non-empty justification "
                    f"string"))
        return {str(k): str(v) for k, v in value.items()}, problems
    return {}, problems


def _class_fields(cls: ast.ClassDef,
                  classes: Dict[str, ast.ClassDef]) -> Dict[str, int]:
    """Declared dataclass fields (name -> line), bases included."""
    fields: Dict[str, int] = {}
    for base in cls.bases:
        if isinstance(base, ast.Name) and base.id in classes:
            fields.update(_class_fields(classes[base.id], classes))
    for node in cls.body:
        if (isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.simple):
            annotation = ast.unparse(node.annotation)
            if "ClassVar" in annotation:
                continue
            fields[node.target.id] = node.lineno
    return fields


def _class_methods(cls: ast.ClassDef, classes: Dict[str, ast.ClassDef]
                   ) -> Dict[str, ast.FunctionDef]:
    """name -> def, following module-local single inheritance."""
    methods: Dict[str, ast.FunctionDef] = {}
    for base in cls.bases:
        if isinstance(base, ast.Name) and base.id in classes:
            methods.update(_class_methods(classes[base.id], classes))
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods[node.name] = node
    return methods


def _reachable_reads(start: str, methods: Dict[str, ast.FunctionDef]
                     ) -> Set[str]:
    """Every ``self.<name>`` reachable from *start*, recursing through
    same-class method/property references (incl. ``super().m()``)."""
    reads: Set[str] = set()
    visited: Set[str] = set()
    queue = [start]
    while queue:
        name = queue.pop()
        if name in visited or name not in methods:
            continue
        visited.add(name)
        for node in ast.walk(methods[name]):
            attr: Optional[str] = None
            if isinstance(node, ast.Attribute):
                if (isinstance(node.value, ast.Name)
                        and node.value.id == "self"):
                    attr = node.attr
                elif (isinstance(node.value, ast.Call)
                      and isinstance(node.value.func, ast.Name)
                      and node.value.func.id == "super"):
                    attr = node.attr
            if attr is None:
                continue
            if attr in methods:
                queue.append(attr)
            else:
                reads.add(attr)
    return reads


def _is_exempt(cls_name: str, field: str, exempt: Dict[str, str]) -> bool:
    return f"{cls_name}.{field}" in exempt or field in exempt


def _check_keys(ctx: FileContext, method: str, exempt_name: str,
                what: str) -> Findings:
    exempt, problems = _exempt_dict(ctx.tree, exempt_name)
    classes = {node.name: node for node in ctx.tree.body
               if isinstance(node, ast.ClassDef)}
    for cls in classes.values():
        methods = _class_methods(cls, classes)
        own_names = {n.name for n in cls.body
                     if isinstance(n, (ast.FunctionDef,
                                       ast.AsyncFunctionDef))}
        # only classes that define (not merely inherit) the key method
        if method not in own_names:
            continue
        fields = _class_fields(cls, classes)
        reads = _reachable_reads(method, methods)
        for field, line in sorted(fields.items()):
            if field in reads or _is_exempt(cls.name, field, exempt):
                continue
            yield methods[method].lineno, (
                f"{cls.name}.{field} is a declared field but is never "
                f"folded into {method}(); a value change would alias "
                f"{what} — add it to the key or to {exempt_name} with a "
                f"justification"
            )


def _check_cache_token(ctx: FileContext) -> Findings:
    if not ctx.in_scope(config.CACHEKEY_SCOPE):
        return
    yield from _check_keys(ctx, "cache_token", config.CACHE_EXEMPT_NAME,
                           "two distinct results to one cache entry")


def _check_prepare_key(ctx: FileContext) -> Findings:
    if not ctx.in_scope(config.CACHEKEY_SCOPE):
        return
    yield from _check_keys(ctx, "prepare_key", config.PREPARE_EXEMPT_NAME,
                           "two distinct prewarmed artifacts")


def _check_exempt_wellformed(ctx: FileContext) -> Findings:
    if not ctx.in_scope(config.CACHEKEY_SCOPE):
        return
    for name in (config.CACHE_EXEMPT_NAME, config.PREPARE_EXEMPT_NAME):
        _, problems = _exempt_dict(ctx.tree, name)
        yield from problems


RULES = [
    Rule("KEY001", "error",
         "dataclass field missing from cache_token",
         _check_cache_token),
    Rule("KEY002", "error",
         "dataclass field missing from prepare_key",
         _check_prepare_key),
    Rule("KEY003", "error",
         "malformed CACHE_KEY_EXEMPT / PREPARE_KEY_EXEMPT allowlist",
         _check_exempt_wellformed),
]
