"""BATCH rules: the columnar fast path must mirror the object path.

The repo's contract (docs/internals-batch.md): every batch entry point
has an object-path sibling producing bitwise-identical results, callers
gate on ``batch_capable`` with a fallback, and batch kernels perform
float operations in the exact order of the sequential path — which
bans reassociating numpy reductions like ``np.sum`` (pairwise) where
the object path accumulated left-to-right.

BATCH001  public `*_batch` method/function without an object-path
          sibling (same class/module; see BATCH_SIBLING_MAP for
          non-obvious pairs)
BATCH002  sim module calls a foreign `*_batch` method but never
          consults `batch_capable` — no fallback gate
BATCH003  float-reassociating reduction (np.sum / .sum() / np.dot /
          cumsum / prod / einsum) in batch-kernel scope; spell it
          np.add.reduce / np.add.accumulate, or suppress with a
          justification when the dtype makes it exact (integers)
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Tuple

from ..engine import FileContext, Rule, dotted_chain
from .. import config

Findings = Iterator[Tuple[int, str]]


def _check_siblings(ctx: FileContext) -> Findings:
    if not ctx.in_scope(config.BATCH_SCOPE):
        return
    module_defs = {n.name for n in ctx.tree.body
                   if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))}
    containers = [("module", ctx.tree, module_defs)]
    for node in ctx.tree.body:
        if isinstance(node, ast.ClassDef):
            names = {m.name for m in node.body
                     if isinstance(m, (ast.FunctionDef,
                                       ast.AsyncFunctionDef))}
            containers.append((f"class {node.name}", node, names))
    for where, container, names in containers:
        for member in container.body:
            if not isinstance(member, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            name = member.name
            if (not name.endswith("_batch") or name.startswith("_")
                    or name in config.BATCH_EXEMPT_NAMES):
                continue
            sibling = config.BATCH_SIBLING_MAP.get(
                name, name[: -len("_batch")])
            if sibling not in names:
                yield member.lineno, (
                    f"{where}: public fast path {name}() has no "
                    f"object-path sibling {sibling}() — every batch "
                    f"entry point needs a bitwise-identical scalar "
                    f"twin (see docs/internals-batch.md)"
                )


def _check_gate(ctx: FileContext) -> Findings:
    if not ctx.in_scope(config.BATCH_GATE_SCOPE):
        return
    gated = any(
        (isinstance(node, ast.Attribute) and node.attr == "batch_capable")
        or (isinstance(node, ast.Name) and node.id == "batch_capable")
        # getattr(obj, "batch_capable", False)-style duck-typed gates
        or (isinstance(node, ast.Constant) and node.value == "batch_capable")
        for node in ast.walk(ctx.tree)
    )
    if gated:
        return
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)):
            continue
        name = node.func.attr
        if (not name.endswith("_batch") or name.startswith("_")
                or name in config.BATCH_EXEMPT_NAMES):
            continue
        if (isinstance(node.func.value, ast.Name)
                and node.func.value.id in ("self", "cls")):
            continue  # own fast path, not a foreign object's
        yield node.lineno, (
            f"module calls {name}() on a collaborator but never checks "
            f"batch_capable — add the capability gate and object-path "
            f"fallback (docs/internals-batch.md)"
        )
        return  # one finding per module is enough


def _check_reducers(ctx: FileContext) -> Findings:
    if not ctx.in_scope(config.BATCH_SCOPE):
        return
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)):
            continue
        attr = node.func.attr
        if attr not in config.BANNED_REDUCERS:
            continue
        chain = dotted_chain(node.func)
        if len(chain) == 2 and chain[0] in config.NUMPY_NAMES:
            spelled = f"{chain[0]}.{attr}"
        else:
            spelled = f".{attr}()"
        yield node.lineno, (
            f"{spelled} reassociates float additions (pairwise order) "
            f"and breaks bitwise parity with the sequential object "
            f"path; use np.add.reduce / np.add.accumulate, or suppress "
            f"with a justification if the dtype makes order immaterial"
        )


RULES = [
    Rule("BATCH001", "error",
         "public *_batch entry point without an object-path sibling",
         _check_siblings),
    Rule("BATCH002", "error",
         "foreign *_batch call without a batch_capable gate",
         _check_gate),
    Rule("BATCH003", "error",
         "float-reassociating numpy reduction in batch-kernel scope",
         _check_reducers),
]
