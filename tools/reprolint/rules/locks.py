"""LOCK rules: broker state may only be touched while holding its lock.

PR 6's chaos hardening ended with a hand audit of every guarded-field
access in ``distrib/broker.py``; these rules re-run that audit on every
lint.  The model is lexical: an access is lock-held if it sits inside a
``with self._lock:`` / ``with self._wake:`` block (the Condition wraps
the same RLock), inside a ``with <peer>.send_lock:`` block for the send
lock, or inside a function annotated ``# reprolint: holds=_lock`` —
whose call sites must then themselves be lock-held (LOCK003).

``__init__`` bodies are exempt: constructors run before the object is
shared with any thread.

LOCK001  guarded broker attribute (self._workers, self._pending, …)
         accessed outside the broker lock
LOCK002  guarded sweep/driver attribute (remaining, settled, journal, …)
         accessed outside the broker lock
LOCK003  a `holds=`-annotated function called without the lock held
LOCK004  `.conn.send(...)` outside `with <peer>.send_lock:`, or a
         `.journal.<method>(...)` call outside the broker lock
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

from ..engine import FileContext, Rule, dotted_chain
from .. import config

Findings = Iterator[Tuple[int, str]]

BROKER = "broker_lock"
SEND = "send_lock"

_LOCK_TOKEN = {**{name: BROKER for name in config.BROKER_LOCK_NAMES},
               config.SEND_LOCK_NAME: SEND}

Violation = Tuple[str, int, str]  # (rule id, line, message)


def _holds_functions(ctx: FileContext) -> Dict[str, FrozenSet[str]]:
    """Functions annotated `# reprolint: holds=...` -> locks they assume."""
    assumed: Dict[str, FrozenSet[str]] = {}
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        locks = frozenset(_LOCK_TOKEN[name]
                          for name in ctx.holds_for_def(node)
                          if name in _LOCK_TOKEN)
        if locks:
            assumed[node.name] = locks
    return assumed


def _with_locks(node: ast.With) -> Set[str]:
    """Lock tokens acquired by one ``with`` statement."""
    acquired: Set[str] = set()
    for item in node.items:
        chain = dotted_chain(item.context_expr)
        token = _LOCK_TOKEN.get(chain[-1])
        if token is not None:
            acquired.add(token)
    return acquired


def _analyze(ctx: FileContext) -> List[Violation]:
    holds_map = _holds_functions(ctx)
    out: List[Violation] = []

    def visit(node: ast.AST, held: FrozenSet[str], in_init: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            held = holds_map.get(node.name, frozenset())
            in_init = node.name == "__init__"
        elif isinstance(node, ast.With):
            held = held | frozenset(_with_locks(node))
        elif isinstance(node, ast.Attribute) and not in_init:
            if (isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in config.BROKER_GUARDED_SELF
                    and BROKER not in held):
                out.append((
                    "LOCK001", node.lineno,
                    f"self.{node.attr} accessed outside `with self._lock`"
                    f" — broker collections are guarded state"))
            elif (node.attr in config.BROKER_GUARDED_VALUE
                    and BROKER not in held):
                out.append((
                    "LOCK002", node.lineno,
                    f".{node.attr} accessed outside `with self._lock` — "
                    f"sweep/driver bookkeeping is guarded by the broker "
                    f"lock"))
        if isinstance(node, ast.Call) and not in_init:
            chain = dotted_chain(node.func)
            if (len(chain) == 2 and chain[0] == "self"
                    and chain[1] in holds_map
                    and not holds_map[chain[1]] <= held):
                out.append((
                    "LOCK003", node.lineno,
                    f"self.{chain[1]}() is annotated `holds=` but the "
                    f"call site does not hold the lock"))
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "send"
                    and isinstance(node.func.value, ast.Attribute)
                    and node.func.value.attr == "conn"
                    and SEND not in held):
                out.append((
                    "LOCK004", node.lineno,
                    "conn.send() outside `with <peer>.send_lock` — "
                    "concurrent sends interleave pickled frames"))
            if (isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Attribute)
                    and node.func.value.attr == "journal"
                    and BROKER not in held):
                out.append((
                    "LOCK004", node.lineno,
                    f"journal.{node.func.attr}() outside the broker lock "
                    f"— journal writers must serialize under self._lock"))
        for child in ast.iter_child_nodes(node):
            visit(child, held, in_init)

    visit(ctx.tree, frozenset(), False)
    return out


def _make_check(rule_id: str):
    def check(ctx: FileContext) -> Findings:
        if not ctx.in_scope(config.LOCK_SCOPE):
            return
        for found_id, line, message in _analyze(ctx):
            if found_id == rule_id:
                yield line, message
    return check


RULES = [
    Rule("LOCK001", "error",
         "guarded broker collection accessed outside the broker lock",
         _make_check("LOCK001")),
    Rule("LOCK002", "error",
         "guarded sweep/driver attribute accessed outside the broker lock",
         _make_check("LOCK002")),
    Rule("LOCK003", "error",
         "holds=-annotated function called without the lock",
         _make_check("LOCK003")),
    Rule("LOCK004", "error",
         "conn.send / journal write outside its lock",
         _make_check("LOCK004")),
]
