"""Rule registry: every rule family reprolint ships."""

from __future__ import annotations

from typing import List

from ..engine import Rule
from . import batchparity, cachekey, determinism, locks, obs

ALL_RULES: List[Rule] = [
    *determinism.RULES,
    *cachekey.RULES,
    *locks.RULES,
    *batchparity.RULES,
    *obs.RULES,
]

RULES_BY_ID = {rule.id: rule for rule in ALL_RULES}

__all__ = ["ALL_RULES", "RULES_BY_ID"]
