"""OBS rules: telemetry may observe kernel scope, never perturb it.

OBS001  clock-bearing obs API (span, drain_payload, artifact builders)
        called in kernel scope — spans read ``time.perf_counter``, which
        kernel code must never see
OBS002  kernel scope imports anything from ``repro.obs`` other than the
        counter surface ``repro.obs.metrics`` (the package root re-exports
        the span API, so even ``from repro import obs`` is banned)
OBS003  a metrics call in kernel scope whose return value is used — every
        public metrics function returns ``None``; a consumed result means
        telemetry feeding back into simulation control flow

The rules are deliberately redundant with each other: OBS002 fires at
the import, OBS001 at the call site, so a file that smuggles the span
API in through an unusual spelling still trips at least one of them.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from ..engine import FileContext, Rule, dotted_chain
from .. import config

Findings = Iterator[Tuple[int, str]]


def _obs_segments(module: str) -> List[str]:
    """Dotted components of an import's module text, empty-safe."""
    return [seg for seg in (module or "").split(".") if seg]


class _ObsImports:
    """Names a file binds to pieces of the observability layer.

    Resolution is textual: any import whose module path contains an
    ``obs`` segment is treated as the repro observability package —
    matching both the real tree (``repro.obs.metrics``, relative
    ``..obs``) and the lint fixtures.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.package_aliases: Set[str] = set()   # bound to repro.obs itself
        self.clock_aliases: Set[str] = set()     # bound to trace/export
        self.metrics_aliases: Set[str] = set()   # bound to repro.obs.metrics
        self.clock_names: Set[str] = set()       # span etc. imported directly
        self.metric_names: Set[str] = set()      # count etc. imported directly
        self.bad_imports: List[Tuple[int, str]] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self._plain_import(node, alias)
            elif isinstance(node, ast.ImportFrom):
                self._from_import(node)

    def _plain_import(self, node: ast.Import, alias: ast.alias) -> None:
        segments = _obs_segments(alias.name)
        if "obs" not in segments:
            return
        after = segments[segments.index("obs") + 1:]
        bound = alias.asname or segments[0]
        if after == [config.OBS_ALLOWED_SUBMODULE]:
            if alias.asname:
                self.metrics_aliases.add(bound)
            return
        self.bad_imports.append((node.lineno, alias.name))
        if not after:
            self.package_aliases.add(alias.asname or "obs")
        else:
            self.clock_aliases.add(bound)

    def _from_import(self, node: ast.ImportFrom) -> None:
        segments = _obs_segments(node.module)
        if "obs" in segments:
            after = segments[segments.index("obs") + 1:]
            if not after:
                # from ...obs import X — X is a submodule or re-export
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if alias.name == config.OBS_ALLOWED_SUBMODULE:
                        self.metrics_aliases.add(bound)
                        continue
                    self.bad_imports.append(
                        (node.lineno, f"{node.module}.{alias.name}"))
                    if alias.name in config.OBS_CLOCK_CALLS:
                        self.clock_names.add(bound)
                    elif alias.name in config.OBS_METRIC_CALLS:
                        self.metric_names.add(bound)
                    else:
                        self.clock_aliases.add(bound)
                return
            if after == [config.OBS_ALLOWED_SUBMODULE]:
                for alias in node.names:
                    self.metric_names.add(alias.asname or alias.name)
                return
            self.bad_imports.append((node.lineno, node.module or "?"))
            for alias in node.names:
                self.clock_names.add(alias.asname or alias.name)
            return
        # from ... import obs  (package root via its parent)
        for alias in node.names:
            if alias.name == "obs":
                self.bad_imports.append(
                    (node.lineno, f"{node.module or '.'} -> obs"))
                self.package_aliases.add(alias.asname or "obs")


def _expression_statement_calls(tree: ast.Module) -> Set[int]:
    """``id()`` of every Call that is the whole of an ``ast.Expr``."""
    return {
        id(node.value)
        for node in ast.walk(tree)
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)
    }


def _check_clock_calls(ctx: FileContext) -> Findings:
    if not ctx.in_scope(config.OBS_KERNEL_SCOPE):
        return
    imports = _ObsImports(ctx.tree)
    roots = imports.package_aliases | imports.clock_aliases
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = dotted_chain(node.func)
        if (len(chain) >= 2 and chain[0] in roots
                and chain[-1] in config.OBS_CLOCK_CALLS):
            yield node.lineno, (
                f"{'.'.join(chain)}() reads the telemetry clock inside "
                f"kernel scope; only the counter surface "
                f"(repro.obs.metrics) is allowed here"
            )
        elif len(chain) == 1 and chain[0] in imports.clock_names:
            yield node.lineno, (
                f"{chain[0]}() is a clock-bearing repro.obs API; kernel "
                f"scope may only call repro.obs.metrics counters"
            )


def _check_imports(ctx: FileContext) -> Findings:
    if not ctx.in_scope(config.OBS_KERNEL_SCOPE):
        return
    imports = _ObsImports(ctx.tree)
    for line, what in imports.bad_imports:
        yield line, (
            f"kernel scope imports {what!r} from the obs layer; import "
            f"the counter surface only — e.g. "
            f"'from ..obs import metrics as obs_metrics'"
        )


def _check_statement_calls(ctx: FileContext) -> Findings:
    if not ctx.in_scope(config.OBS_KERNEL_SCOPE):
        return
    imports = _ObsImports(ctx.tree)
    statements = _expression_statement_calls(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or id(node) in statements:
            continue
        chain = dotted_chain(node.func)
        used = None
        if (len(chain) == 2 and chain[0] in imports.metrics_aliases
                and chain[1] in config.OBS_METRIC_CALLS):
            used = ".".join(chain)
        elif len(chain) == 1 and chain[0] in imports.metric_names:
            used = chain[0]
        if used is not None:
            yield node.lineno, (
                f"return value of {used}() is consumed in kernel scope; "
                f"metrics functions return None — telemetry must stay a "
                f"bare statement that cannot steer simulation control flow"
            )


RULES = [
    Rule("OBS001", "error",
         "clock-bearing obs API called in kernel scope",
         _check_clock_calls),
    Rule("OBS002", "error",
         "kernel scope may import only repro.obs.metrics",
         _check_imports),
    Rule("OBS003", "error",
         "metrics call in kernel scope must be a bare statement",
         _check_statement_calls),
]
