"""Extension bench: the paper's central trade-off, measured.

"By only upgrading a few routers ... we can considerably reduce the
deployment costs, but the disadvantage is that there will be an increase in
the localization granularity."  One slow queue is injected into a k=4
fabric; full RLI and RLIR both localize it — at hop vs segment granularity —
with their respective instance budgets.
"""

from conftest import print_banner

from repro.analysis.report import format_table
from repro.experiments.config import default_scale
from repro.experiments.extensions import run_granularity_comparison


def test_ext_granularity(benchmark, bench_runner, bench_shards):
    n_packets = max(4000, int(20_000 * default_scale()))
    rows = benchmark.pedantic(
        run_granularity_comparison,
        kwargs={"n_packets": n_packets, "runner": bench_runner,
                "shards": bench_shards},
        rounds=1, iterations=1)

    print_banner("Extension: full RLI vs RLIR — cost vs localization granularity")
    print(format_table(
        ["deployment", "instances", "segments", "culprit named", "granularity"],
        [[r.name, r.instances, r.n_segments, r.culprit,
          "single queue" if r.pinned_to_single_queue else "multi-router segment"]
         for r in rows],
    ))

    full, rlir = rows
    # both localize the fault...
    assert full.culprit == "C:cores->agg0"  # the exact degraded hop
    assert rlir.culprit == "seg2:to-dst-tor"  # the containing segment
    # ...but RLIR does it with fewer instances and coarser granularity
    assert rlir.instances < full.instances
    assert full.pinned_to_single_queue and not rlir.pinned_to_single_queue
