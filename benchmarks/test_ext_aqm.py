"""Extension bench: AQM (RED) vs tail-drop bottleneck under RLI.

Drop placement interacts with the measurement plane: RED sheds load early
and probabilistically, tail-drop in full-buffer bursts.  Same workload, same
95% offered utilization, both disciplines.
"""

from conftest import print_banner

from repro.analysis.report import format_table
from repro.experiments.extensions import run_aqm_comparison


def test_ext_aqm(benchmark, bench_config, bench_runner):
    rows = benchmark.pedantic(run_aqm_comparison, args=(bench_config,),
                              kwargs={"runner": bench_runner},
                              rounds=1, iterations=1)

    print_banner("Extension: tail-drop vs RED bottleneck (95% offered util)")
    print(format_table(
        ["discipline", "regular loss", "median RE(mean)", "reference drops"],
        [[name, f"{loss:.5f}", f"{median:.4f}", ref_drops]
         for name, loss, median, ref_drops in rows],
    ))

    (tail_name, tail_loss, tail_re, _), (red_name, red_loss, red_re, _) = rows
    assert tail_name == "tail-drop" and red_name == "RED"
    # RED sheds more packets (early drops) at the same offered load...
    assert red_loss >= tail_loss
    # ...while per-flow estimation keeps working under either discipline
    assert tail_re < 0.5 and red_re < 0.5
