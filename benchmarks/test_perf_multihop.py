"""Packets/sec throughput benches for the multihop/mesh columnar drivers.

PR 3's fast path stopped at the two-switch pipeline; these benches track
the paths this PR vectorizes beyond it, recorded into the same
``BENCH_pipeline.json`` history:

* the **cold multihop sweep** (``repro-rlir extensions multihop --batch``):
  every chain length of the ablation, simulation + replay, with all
  in-process caches cleared per timed run — the headline entry, gated at
  **3×** at full scale;
* the **mesh study** (``repro-rlir extensions mesh --batch``): one shared
  fat-tree, three measured ToR pairs, event calendar vs the layered
  columnar driver.

As in ``test_perf_throughput.py``, each comparison first asserts the two
paths produce identical results, the paths are timed in back-to-back
pairs so machine drift hits both sides alike, and the recorded speedup is
the best pair.
"""

import gc
import json
import pathlib
import platform
import time

import numpy as np
import pytest

from conftest import print_banner

from repro.experiments.extensions import run_mesh_study, run_multihop_ablation
from repro.experiments.workloads import workload_for
from repro.runner.runner import ParallelRunner
from repro.runner.spec import config_items

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_pipeline.json"

_RESULTS = {}

MULTIHOP_HOPS = (1, 2, 4, 8)
MULTIHOP_UTILIZATION = 0.80


def _clear_sim_caches():
    """Cold-start every in-process memo the studies consult."""
    from repro.experiments import extension_jobs as EJ
    from repro.experiments import workloads as W

    W._workload_cache.clear()
    W._trace_cache.clear()
    EJ._SIM_CACHE.clear()
    EJ._SIM_PINNED.clear()


def _timed(fn):
    gc.collect()
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def _best_pair(run, checks, rounds):
    """Best (batch_s, object_s) over back-to-back timed pairs."""
    pairs = []
    for _ in range(rounds):
        batch_s, batch_out = _timed(lambda: run(True))
        object_s, object_out = _timed(lambda: run(False))
        checks(batch_out, object_out)
        pairs.append((batch_s, object_s))
    best = max(pairs, key=lambda p: p[1] / p[0])
    return best, [o / b for b, o in pairs]


def _record(name, packets, object_s, batch_s):
    entry = {
        "packets": int(packets),
        "object_pps": packets / object_s,
        "batch_pps": packets / batch_s,
        "object_seconds": object_s,
        "batch_seconds": batch_s,
        "speedup": object_s / batch_s,
    }
    _RESULTS[name] = entry
    return entry


@pytest.fixture(scope="module", autouse=True)
def write_bench_file(bench_config):
    """Append this module's numbers to the tracked perf trajectory."""
    yield
    if not _RESULTS:
        return
    from bench_history import (git_sha, make_entry, merge_bench_history,
                               obs_summary, utc_timestamp)

    payload = {}
    if BENCH_FILE.exists():
        try:
            payload = json.loads(BENCH_FILE.read_text())
        except ValueError:
            pass
    entry = make_entry(
        _RESULTS,
        sha=git_sha(REPO_ROOT),
        timestamp=utc_timestamp(),
        scale=bench_config.scale,
        python=platform.python_version(),
        numpy=np.__version__,
        obs=obs_summary(),
    )
    payload = merge_bench_history(payload, entry)
    BENCH_FILE.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {BENCH_FILE} ({len(payload['history'])} history entries)")


def test_multihop_sweep_throughput(bench_config):
    """The headline number: the cold multihop ablation sweep.

    Both paths pay exactly what a fresh ``repro-rlir extensions multihop``
    process pays — trace synthesis, every chain simulation (1+2+4+8 hops
    of queue scans with per-hop cross traffic), observation-log recording,
    and the per-flow replay.  At full scale the best pair must clear the
    acceptance bar of **3×**.
    """
    def run(batch):
        _clear_sim_caches()
        return run_multihop_ablation(
            bench_config, hops=MULTIHOP_HOPS, utilization=MULTIHOP_UTILIZATION,
            runner=ParallelRunner(), run_seed=0, batch=batch)

    run(True)  # warm the code paths once (imports, numpy dispatch)

    def checks(batch_rows, object_rows):
        assert batch_rows == object_rows  # bitwise row equality

    (batch_s, object_s), ratios = _best_pair(run, checks, rounds=3)
    # regular queue offers across the sweep (cross traffic and references
    # add more on top; this fixed denominator keeps pps comparable)
    regulars = len(workload_for(config_items(bench_config)).regular)
    packets = regulars * sum(MULTIHOP_HOPS)
    entry = _record("multihop_sweep", packets, object_s, batch_s)
    entry["pair_speedups"] = ratios

    print_banner("Multihop ablation sweep: object vs columnar chain "
                 f"(hops {MULTIHOP_HOPS}, cold caches)")
    print(f"regular offers: {entry['packets']}")
    print(f"object path:    {entry['object_pps'] / 1e3:.0f} k pkts/s "
          f"({object_s:.2f} s)")
    print(f"batch path:     {entry['batch_pps'] / 1e3:.0f} k pkts/s "
          f"({batch_s:.2f} s)")
    print("pairs:          " + "  ".join(f"{r:.2f}x" for r in ratios))
    print(f"speedup:        {entry['speedup']:.2f}x (best pair)")
    if bench_config.scale >= 1.0:
        # the tentpole acceptance bar: >= 3x at full scale
        assert entry["speedup"] >= 3.0
    else:
        # smoke lanes: never slower than the object path
        assert entry["speedup"] >= 1.0


def test_mesh_study_throughput(bench_config):
    """Shared-fabric mesh study: event calendar vs layered columnar driver."""
    n_per_pair = max(5000, int(15_000 * bench_config.scale))

    def run(batch):
        _clear_sim_caches()
        return run_mesh_study(n_packets_per_pair=n_per_pair,
                              runner=ParallelRunner(), run_seed=0,
                              batch=batch)

    run(True)

    def checks(batch_rows, object_rows):
        assert batch_rows == object_rows

    (batch_s, object_s), ratios = _best_pair(run, checks, rounds=3)
    packets = 3 * n_per_pair  # injected regulars; each crosses >= 3 queues
    entry = _record("mesh_study", packets, object_s, batch_s)
    entry["pair_speedups"] = ratios

    print_banner("Mesh study: event engine vs layered columnar fat-tree "
                 f"(3 pairs x {n_per_pair} packets)")
    print(f"regulars:       {entry['packets']}")
    print(f"object path:    {entry['object_pps'] / 1e3:.0f} k pkts/s "
          f"({object_s:.2f} s)")
    print(f"batch path:     {entry['batch_pps'] / 1e3:.0f} k pkts/s "
          f"({batch_s:.2f} s)")
    print("pairs:          " + "  ".join(f"{r:.2f}x" for r in ratios))
    print(f"speedup:        {entry['speedup']:.2f}x (best pair)")
    if bench_config.scale >= 1.0:
        assert entry["speedup"] >= 2.0
    else:
        assert entry["speedup"] >= 1.0
