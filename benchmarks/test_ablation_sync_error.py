"""Ablation: clock-synchronization error sensitivity.

RLI assumes IEEE 1588/GPS sync between instances (paper Section 2).  This
bench quantifies why: a residual receiver offset biases every reference
delay sample and hence every per-flow estimate.
"""

from conftest import print_banner

from repro.analysis.report import format_table
from repro.experiments.ablations import run_sync_error_ablation


def test_ablation_sync_error(benchmark, bench_config, bench_runner):
    rows = benchmark.pedantic(run_sync_error_ablation, args=(bench_config,),
                              kwargs={"runner": bench_runner},
                              rounds=1, iterations=1)

    print_banner("Ablation: receiver clock offset vs estimation accuracy (93% util)")
    print(format_table(
        ["offset (us)", "median RE(mean)"],
        [[f"{off * 1e6:.1f}", f"{median:.4f}"] for off, median in rows],
    ))

    # error grows monotonically once the offset dominates queueing noise
    medians = [m for _, m in rows]
    assert medians[-1] > medians[0]
    # sub-microsecond sync (hardware PTP territory) is essentially free
    assert medians[1] < medians[0] * 2 + 0.05
