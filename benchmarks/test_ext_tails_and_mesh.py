"""Extension benches: per-flow tail quantiles and the multi-pair mesh.

* Tail accuracy — RLI's per-packet estimates aggregated into streaming P²
  per-flow p50/p95/p99, scored against true per-flow quantiles.  Latency
  SLOs are tail SLOs; this is the measurement operators actually page on.
* Mesh — one shared RLIR deployment serving three ToR pairs at once, each
  pair's traffic acting as cross traffic for the others.
"""

from conftest import print_banner

from repro.analysis.report import format_table
from repro.experiments.config import default_scale
from repro.experiments.extensions import run_mesh_study, run_tail_accuracy


def test_ext_tail_quantiles(benchmark, bench_config, bench_runner):
    results = benchmark.pedantic(run_tail_accuracy, args=(bench_config,),
                                 kwargs={"runner": bench_runner},
                                 rounds=1, iterations=1)

    print_banner("Extension: per-flow tail-quantile accuracy (93% util, "
                 "flows with >= 20 packets)")
    print(format_table(
        ["quantile", "flows", "median RE", "flows RE<10%"],
        [[f"p{int(q * 100)}", len(e), f"{e.median:.4f}",
          f"{e.fraction_below(0.10):.0%}"] for q, e in sorted(results.items())],
    ))

    assert 0.5 in results and 0.99 in results
    # the median is the easiest quantile; tails are harder but usable
    assert results[0.5].median < 0.25
    assert results[0.99].median < 0.6


def test_ext_mesh(benchmark, bench_runner):
    n = max(5000, int(15_000 * default_scale()))
    rows = benchmark.pedantic(run_mesh_study,
                              kwargs={"n_packets_per_pair": n,
                                      "runner": bench_runner},
                              rounds=1, iterations=1)

    print_banner("Extension: shared-core RLIR mesh, three ToR pairs at once")
    print(format_table(
        ["pair", "flows (seg2)", "seg2 median RE", "e2e median RE"],
        [[pair, flows, f"{seg2:.4f}", f"{e2e:.4f}"]
         for pair, flows, seg2, e2e in rows],
    ))

    assert len(rows) == 3
    for pair, flows, seg2, e2e in rows:
        assert flows > 50, pair
        assert seg2 < 0.5, pair
        assert e2e < 0.5, pair
