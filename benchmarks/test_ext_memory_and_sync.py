"""Extension benches: flow-table memory bounds and PTP sync quality.

Two deployment realities the paper's testbed assumed away:

* hardware instances keep bounded per-flow state — what does LRU eviction
  cost in coverage and accuracy?
* IEEE 1588 sync runs over the same (possibly congested) network — how much
  residual offset leaks into the delay samples?
"""

from conftest import print_banner

from repro.analysis.report import format_table
from repro.experiments.extensions import run_memory_ablation, run_ptp_study


def test_ext_memory_bound(benchmark, bench_config, bench_runner):
    rows = benchmark.pedantic(run_memory_ablation, args=(bench_config,),
                              kwargs={"runner": bench_runner},
                              rounds=1, iterations=1)

    print_banner("Extension: receiver flow-table memory bound (93% util)")
    print(format_table(
        ["max flows", "flows retained", "samples evicted", "median RE (survivors)"],
        [[bound if bound is not None else "unbounded", kept, evicted, f"{median:.4f}"]
         for bound, kept, evicted, median in rows],
    ))

    unbounded_kept = rows[0][1]
    for bound, kept, evicted, median in rows[1:]:
        assert kept <= bound
        assert evicted > 0 or kept == unbounded_kept
        # survivors remain well-estimated: eviction costs coverage, not bias
        assert median < 2 * rows[0][3] + 0.05


def test_ext_ptp_sync(benchmark, bench_runner):
    rows = benchmark.pedantic(run_ptp_study, kwargs={"runner": bench_runner},
                              rounds=1, iterations=1)

    print_banner("Extension: PTP residual sync error vs path queue jitter")
    print(format_table(
        ["queue jitter (us)", "mean |residual| (us)"],
        [[f"{jitter * 1e6:.1f}", f"{residual * 1e6:.3f}"] for jitter, residual in rows],
    ))

    # a clean path synchronizes essentially perfectly...
    assert rows[0][1] < 1e-9
    # ...and noisier paths leave a larger residual (monotone up to noise)
    assert rows[-1][1] > rows[0][1]
    # min-filtered servo keeps the residual well under the raw jitter
    assert rows[-1][1] < rows[-1][0]
