"""Ablation: static 1-and-n sweep.

Shows the accuracy/overhead trade the paper's scheme choice navigates:
1-and-10 (the adaptive scheme's operating point here) vs 1-and-100 (the
static worst-case choice) vs sparser.
"""

from conftest import print_banner

from repro.analysis.report import format_table
from repro.experiments.ablations import run_injection_sweep


def test_ablation_injection_sweep(benchmark, bench_config, bench_runner):
    rows = benchmark.pedantic(run_injection_sweep, args=(bench_config,),
                              kwargs={"runner": bench_runner},
                              rounds=1, iterations=1)

    print_banner("Ablation: static 1-and-n injection sweep (93% utilization)")
    print(format_table(
        ["n (1-and-n)", "median RE(mean)", "references injected"],
        [[n, f"{median:.4f}", refs] for n, median, refs in rows],
    ))

    # overhead falls monotonically with n
    refs = [r[2] for r in rows]
    assert refs == sorted(refs, reverse=True)
    # the densest schedule is at least as accurate as the sparsest
    assert rows[0][1] <= rows[-1][1] + 1e-9
