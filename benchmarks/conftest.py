"""Benchmark harness configuration.

Every bench regenerates one figure/table of the paper at the scale set by
``REPRO_SCALE`` (default 1.0 ≈ a 1:100 scale model of the paper's traces)
and prints the same rows/series the paper plots.  EXPERIMENTS.md records
paper-vs-measured for each.

The sweep-heavy benches route their condition grids through a shared
:class:`~repro.runner.runner.ParallelRunner`; ``pytest --jobs 4`` fans the
conditions out over 4 worker processes and ``--no-cache`` disables the
on-disk result cache (see the repo-root ``conftest.py`` for the options).
"""

import warnings

import pytest

from repro.experiments.config import ExperimentConfig
from repro.runner import DEFAULT_CACHE_DIR, ParallelRunner, ResultCache


@pytest.fixture(scope="session")
def bench_config():
    """One shared config so the (expensive) traces are generated once."""
    return ExperimentConfig()


@pytest.fixture(scope="session")
def bench_runner(request):
    """Shared sweep runner honoring --jobs/--no-cache/--cache-dir.

    Caching lets interrupted bench sessions resume and lets benches that
    share conditions (fig4a/fig4b) compute them once — but a warm cache
    makes pytest-benchmark's timings measure cache reads, not simulation,
    so any run with cache hits ends with a loud notice.
    """
    jobs = request.config.getoption("--jobs", default=1) or 1
    no_cache = request.config.getoption("--no-cache", default=False)
    cache_dir = request.config.getoption("--cache-dir", default=None)
    cache = None if no_cache else ResultCache(cache_dir or DEFAULT_CACHE_DIR)
    runner = ParallelRunner(jobs=jobs, cache=cache)
    yield runner
    if runner.cache_hits:
        warnings.warn(
            f"{runner.cache_hits} sweep condition(s) were answered from "
            f"{runner.cache.root}/ — benchmark timings do NOT reflect "
            f"regeneration cost; rerun with --no-cache (or `repro-rlir "
            f"cache clear`) for honest numbers.",
            stacklevel=1,
        )


@pytest.fixture(scope="session")
def bench_shards(request):
    """``--shards N``: within-condition flow sharding for the extension
    benches that support it (multihop, granularity, localization)."""
    return request.config.getoption("--shards", default=1) or 1


def print_banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
