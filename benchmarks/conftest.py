"""Benchmark harness configuration.

Every bench regenerates one figure/table of the paper at the scale set by
``REPRO_SCALE`` (default 1.0 ≈ a 1:100 scale model of the paper's traces)
and prints the same rows/series the paper plots.  EXPERIMENTS.md records
paper-vs-measured for each.
"""

import pytest

from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="session")
def bench_config():
    """One shared config so the (expensive) traces are generated once."""
    return ExperimentConfig()


def print_banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
