"""Figure 4(c): mean-estimate accuracy, BURSTY vs RANDOM cross traffic at
34% and 67% bottleneck utilization.

Expected shape: "bursty arrival of cross traffic increases the accuracy of
estimates significantly ... supported by the fact that the true value of
average latency is much higher for bursty model (117us as opposed to 3.0us
for random one) at 67% link utilization".
"""

from conftest import print_banner

from repro.analysis.report import format_cdf_series, format_table
from repro.experiments.fig4 import run_fig4c

HEADERS = ["series", "util", "true mean (us)", "median RE(mean)", "flows RE<10%",
           "median RE(std)", "refs"]


def test_fig4c_bursty_vs_random(benchmark, bench_config, bench_runner):
    curves = benchmark.pedantic(run_fig4c, args=(bench_config,),
                                kwargs={"runner": bench_runner},
                                rounds=1, iterations=1)

    print_banner("Figure 4(c): bursty vs random cross-traffic models")
    print(format_table(HEADERS, [c.summary_row() for c in curves]))
    print()
    for curve in curves:
        print(format_cdf_series(f"CDF[{curve.label}]", curve.mean_ecdf.curve()))

    by_label = {c.label: c for c in curves}
    bursty67 = by_label["bursty, 67%"]
    random67 = by_label["random, 67%"]
    # the bursty model's true average latency is far higher at equal util...
    assert bursty67.summary.mean_true_latency > 2 * random67.summary.mean_true_latency
    # ...and its estimates are more accurate
    assert bursty67.mean_ecdf.median < random67.mean_ecdf.median
