"""Figure 5: regular-packet loss-rate increase caused by reference packets,
vs bottleneck utilization (0.82 - 0.98).

Expected shape: "static scheme introduces extremely small perturbation ...
at most 0.0042% increase in packet loss rate at about 97% link utilization.
In case of adaptive scheme, packet loss rate difference increases up to
0.06%" — the mis-adapted (10x denser) reference stream interferes more, and
interference grows with utilization.
"""

from conftest import print_banner

from repro.analysis.report import format_table
from repro.experiments.fig5 import run_fig5

HEADERS = ["target util", "measured util", "baseline loss",
           "static diff", "adaptive diff", "refs static", "refs adaptive"]


def test_fig5_loss_interference(benchmark, bench_config, bench_runner):
    rows = benchmark.pedantic(run_fig5, args=(bench_config,),
                              kwargs={"n_seeds": 3, "runner": bench_runner},
                              rounds=1, iterations=1)

    print_banner("Figure 5: reference-packet interference (loss-rate difference)")
    print(format_table(HEADERS, [
        [f"{r.target_util:.2f}", f"{r.measured_util:.3f}", f"{r.baseline_loss:.6f}",
         f"{r.static_diff:+.6f}", f"{r.adaptive_diff:+.6f}",
         r.static_refs, r.adaptive_refs]
        for r in rows
    ]))

    # the adaptive sender, blind to the downstream bottleneck, injects ~10x
    # more references than static at every point of the sweep
    for r in rows:
        assert r.adaptive_refs > 5 * r.static_refs
    # interference is bounded: even adaptive stays within ~0.5% absolute
    for r in rows:
        assert abs(r.static_diff) < 5e-3
        assert abs(r.adaptive_diff) < 1e-2
    # aggregate over the sweep, denser injection costs at least as much loss
    total_static = sum(r.static_diff for r in rows)
    total_adaptive = sum(r.adaptive_diff for r in rows)
    assert total_adaptive >= total_static - 1e-3
