"""Section 3.1 (in-text analysis): deployment complexity on k-ary fat-trees.

Regenerates the paper's instance-count analysis as a table and verifies the
closed forms against enumeration on concretely built topologies:

    interface pair   k + 2
    ToR pair         k(k+2)/2
    all ToR pairs    (k/2)^2 (k+1)   [paper formula; see DESIGN.md note]
    full deployment  Theta(k^4)
"""

from conftest import print_banner

from repro.analysis.report import format_table
from repro.experiments.placement import run_placement

HEADERS = ["k", "iface pair (k+2)", "ToR pair k(k+2)/2", "all pairs (paper)",
           "all pairs (enum)", "full deploy", "RLIR/full"]


def test_placement_complexity(benchmark):
    rows = benchmark.pedantic(
        run_placement, kwargs={"ks": (4, 8, 16, 32, 48), "enumerate_up_to": 16},
        rounds=1, iterations=1)

    print_banner("Section 3.1: RLIR deployment complexity on k-ary fat-trees")
    print(format_table(HEADERS, [r.as_list() for r in rows]))

    for r in rows:
        # closed forms match the concrete planner wherever we enumerated
        if r.enum_interface_pair is not None:
            assert r.enum_interface_pair == r.interface_pair
            assert r.enum_tor_pair == r.tor_pair
            assert r.enum_all_pairs == r.all_tor_pairs_enumerated
        # partial deployment is asymptotically cheaper: Theta(k^3) vs k^4
        assert r.savings_vs_full < 0.25
    # savings improve with fabric size
    savings = [r.savings_vs_full for r in rows]
    assert savings == sorted(savings, reverse=True)
