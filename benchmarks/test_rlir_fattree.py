"""RLIR across a fat-tree (the architecture of Figures 1-2, as code).

Runs the full ToR-pair deployment — per-uplink senders with crafted
reference flows, core instances, downstream demux — on a k=4 fat-tree with
background traffic, under both demultiplexing options, and reports
per-segment and end-to-end accuracy.
"""

from conftest import print_banner

from repro.analysis.cdf import Ecdf
from repro.analysis.metrics import flow_mean_errors
from repro.analysis.report import format_table
from repro.core.injection import StaticInjection
from repro.core.rlir import RlirDeployment
from repro.experiments.config import default_scale
from repro.sim.topology import FatTree, LinkParams
from repro.traffic.synthetic import TraceConfig, generate_fattree_trace


def build(demux_method):
    scale = default_scale()
    ft = FatTree(4, LinkParams(rate_bps=100e6, buffer_bytes=256 * 1024,
                               proc_delay=1e-6, prop_delay=0.5e-6))
    measured_pairs = [(ft.host_address(0, 0, h), ft.host_address(1, 0, g))
                      for h in range(2) for g in range(2)]
    bg_pairs = [(ft.host_address(p, e, h), ft.host_address(1, 0, g))
                for p in (2, 3) for e in range(2) for h in range(2) for g in range(2)]
    measured = generate_fattree_trace(
        TraceConfig(duration=1.0, n_packets=max(2000, int(30_000 * scale))),
        measured_pairs, seed=11, name="measured")
    background = generate_fattree_trace(
        TraceConfig(duration=1.0, n_packets=max(3000, int(60_000 * scale))),
        bg_pairs, seed=12, name="background")
    deployment = RlirDeployment(ft, src=(0, 0), dst=(1, 0),
                                policy_factory=lambda: StaticInjection(50),
                                demux_method=demux_method)
    return deployment, [measured, background]


def run_both():
    out = {}
    for method in ("marking", "reverse-ecmp"):
        deployment, traces = build(method)
        out[method] = deployment.run(traces)
    return out


def test_rlir_fattree(benchmark):
    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    print_banner("RLIR ToR-pair deployment on a k=4 fat-tree (w/ background traffic)")
    rows = []
    for method, result in results.items():
        j1 = flow_mean_errors(result.segment1_estimated(), result.segment1_true())
        j2 = flow_mean_errors(result.segment2_estimated(), result.segment2_true())
        e2e = result.end_to_end()
        e2e_errors = [abs(est - true) / true for _, est, true in e2e if true > 0]
        rows.append([
            method,
            len(j1.errors), f"{Ecdf(j1.errors).median:.4f}",
            len(j2.errors), f"{Ecdf(j2.errors).median:.4f}",
            len(e2e), f"{Ecdf(e2e_errors).median:.4f}",
        ])
    print(format_table(
        ["demux", "seg1 flows", "seg1 med RE", "seg2 flows", "seg2 med RE",
         "e2e flows", "e2e med RE"],
        rows,
    ))

    for method, result in results.items():
        j2 = flow_mean_errors(result.segment2_estimated(), result.segment2_true())
        assert Ecdf(j2.errors).median < 0.5, method
    # the two downstream demux options classify packets identically
    mark = results["marking"].seg2_receiver
    recmp = results["reverse-ecmp"].seg2_receiver
    assert {k: s.count for k, s in mark.flow_estimated.items()} == \
           {k: s.count for k, s in recmp.flow_estimated.items()}
