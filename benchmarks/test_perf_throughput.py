"""Packets/sec throughput microbenches for the columnar fast path.

Three hot paths are timed against their per-object reference
implementations on the Figure-4 workload at ``REPRO_SCALE``:

* trace generation (columnar `generate_trace` vs. materializing packets),
* the two-switch pipeline (`run_condition` with ``batch=True`` vs. the
  per-object driver, on the adaptive/random/93 % fig4 condition),
* the interpolation batch flush (`interpolate_batch` vs. an
  `InterpolationBuffer` stream).

Every comparison first asserts the two paths produce identical results —
a benchmark of a wrong answer is worthless — then records packets/sec to
``BENCH_pipeline.json`` at the repo root, the tracked perf trajectory.
At full scale (``REPRO_SCALE >= 1``) the pipeline fast path must clear
**5×**; at smoke scales it must simply not be slower.
"""

import gc
import json
import pathlib
import platform
import time

import numpy as np
import pytest

from conftest import print_banner

from repro.core.interpolation import InterpolationBuffer, interpolate_batch
from repro.experiments.workloads import run_condition, summarize_condition, workload_for
from repro.runner.spec import config_items
from repro.traffic.synthetic import TraceConfig, generate_trace

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_pipeline.json"

_RESULTS = {}


def _best_of(fn, repeats):
    """(best wall-seconds, last result) over *repeats* calls.

    Runs ``gc.collect()`` before each timed call so garbage left by earlier
    bench modules cannot bill a full collection to whichever path happens
    to trigger it.  The collector stays *enabled* during the call itself:
    allocation-driven GC pressure is a real per-packet cost of the
    per-object representation (and one the columnar path exists to avoid),
    so honest packets/sec must include it — exactly what a
    ``repro-rlir fig4a`` run pays.
    """
    best = float("inf")
    result = None
    for _ in range(repeats):
        gc.collect()
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best, result


def _record(name, packets, object_s, batch_s):
    entry = {
        "packets": int(packets),
        "object_pps": packets / object_s,
        "batch_pps": packets / batch_s,
        "object_seconds": object_s,
        "batch_seconds": batch_s,
        "speedup": object_s / batch_s,
    }
    _RESULTS[name] = entry
    return entry


@pytest.fixture(scope="module", autouse=True)
def write_bench_file(bench_config):
    """Persist whatever ran into the tracked BENCH_pipeline.json.

    Each run *appends* a history entry (keyed by git SHA + UTC timestamp)
    and refreshes the latest-wins ``results`` view the CI lanes assert on
    — the tracked file carries the whole per-commit perf trajectory, not
    just the newest numbers (see ``bench_history.py``).
    """
    yield
    if not _RESULTS:
        return
    from bench_history import (git_sha, make_entry, merge_bench_history,
                               obs_summary, utc_timestamp)

    payload = {}
    if BENCH_FILE.exists():
        try:
            payload = json.loads(BENCH_FILE.read_text())
        except ValueError:
            pass
    entry = make_entry(
        _RESULTS,
        sha=git_sha(REPO_ROOT),
        timestamp=utc_timestamp(),
        scale=bench_config.scale,
        python=platform.python_version(),
        numpy=np.__version__,
        obs=obs_summary(),
    )
    payload = merge_bench_history(payload, entry)
    BENCH_FILE.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {BENCH_FILE} ({len(payload['history'])} history entries)")


@pytest.fixture(scope="module")
def repeats(bench_config):
    """Best-of repetitions: fewer at full scale (runs are long)."""
    return 2 if bench_config.scale >= 0.5 else 3


def test_trace_generation_throughput(bench_config, repeats):
    tc = TraceConfig(
        duration=bench_config.duration,
        n_packets=bench_config.n_regular_packets,
        mean_flow_pkts=bench_config.mean_flow_pkts,
    )
    batch_s, trace = _best_of(lambda: generate_trace(tc, seed=1), repeats)

    def materialized():
        t = generate_trace(tc, seed=1)
        t.packets  # force the per-object representation
        return t

    object_s, obj_trace = _best_of(materialized, repeats)
    assert len(obj_trace) == len(trace)
    entry = _record("trace_generation", len(trace), object_s, batch_s)

    print_banner("Trace generation: columnar vs materialized packets")
    print(f"packets:        {entry['packets']}")
    print(f"columnar:       {entry['batch_pps'] / 1e6:.2f} M pkts/s")
    print(f"materialized:   {entry['object_pps'] / 1e6:.2f} M pkts/s")
    print(f"speedup:        {entry['speedup']:.1f}x")
    assert entry["speedup"] >= 1.0


def test_pipeline_throughput_fig4_condition(bench_config, repeats):
    """One steady-state condition: fig4 adaptive/random/93% (recorded;
    the 5x acceptance gate sits on the whole-sweep bench below)."""
    workload = workload_for(config_items(bench_config))

    def run(batch):
        condition = run_condition(workload, "adaptive", "random", 0.93,
                                  batch=batch)
        return summarize_condition(condition)

    batch_s, batch_summary = _best_of(lambda: run(True), repeats)
    object_s, object_summary = _best_of(lambda: run(False), repeats)
    # a throughput claim is only meaningful if the answers agree exactly
    assert batch_summary == object_summary
    # packets pushed through queues: the whole regular trace enters switch
    # 1, and every merged arrival (regular + references + cross) hits
    # switch 2
    packets = len(workload.regular) + object_summary.processed_packets
    entry = _record("pipeline_condition", packets, object_s, batch_s)

    print_banner("Two-switch pipeline: object vs columnar fast path "
                 "(fig4 adaptive/random/93%, steady state)")
    print(f"queue offers:   {entry['packets']}")
    print(f"object path:    {entry['object_pps'] / 1e3:.0f} k pkts/s "
          f"({object_s:.2f} s)")
    print(f"batch path:     {entry['batch_pps'] / 1e3:.0f} k pkts/s "
          f"({batch_s:.2f} s)")
    print(f"speedup:        {entry['speedup']:.1f}x")
    assert entry["speedup"] >= 1.0


def test_pipeline_throughput_fig4_sweep(bench_config):
    """The headline number: the full Figure-4(a,b) sweep, cold-started.

    Each timed run clears the in-process workload/trace caches first, so
    both paths pay exactly what a fresh ``repro-rlir fig4a`` process pays —
    trace synthesis, per-object materialization where the path needs it,
    and all four conditions.

    Measurement protocol: the two paths are timed in back-to-back
    **pairs** (batch, then object) so machine-state drift hits both sides
    alike, and the recorded speedup is the best pair — the throughput
    analogue of best-of-N timing, which is how a ratio survives a noisy
    shared box.  All pairs are recorded alongside for transparency.  At
    full scale the best pair must clear the tentpole bar of **5x**.
    """
    from repro.experiments import workloads as W
    from repro.experiments.fig4 import run_fig4ab

    def run(batch):
        # cold caches: later bench modules rebuild on demand as usual
        W._workload_cache.clear()
        W._trace_cache.clear()
        return run_fig4ab(bench_config, batch=batch)

    run(True)  # warm the code paths once (imports, numpy dispatch)
    pairs = []
    curves = None
    for _ in range(3):
        batch_s, batch_curves = _best_of(lambda: run(True), 1)
        object_s, object_curves = _best_of(lambda: run(False), 1)
        for a, b in zip(batch_curves, object_curves):
            assert a.label == b.label and a.summary == b.summary
        pairs.append((batch_s, object_s))
        curves = object_curves
    batch_s, object_s = max(pairs, key=lambda p: p[1] / p[0])
    packets = sum(
        len(workload_for(config_items(bench_config)).regular)
        + c.summary.processed_packets
        for c in curves
    )
    entry = _record("pipeline_fig4", packets, object_s, batch_s)
    entry["pair_speedups"] = [o / b for b, o in pairs]

    print_banner("Figure-4(a,b) sweep: object vs columnar fast path "
                 "(4 conditions, cold traces)")
    print(f"queue offers:   {entry['packets']}")
    print(f"object path:    {entry['object_pps'] / 1e3:.0f} k pkts/s "
          f"({object_s:.2f} s)")
    print(f"batch path:     {entry['batch_pps'] / 1e3:.0f} k pkts/s "
          f"({batch_s:.2f} s)")
    print("pairs:          "
          + "  ".join(f"{r:.2f}x" for r in entry["pair_speedups"]))
    print(f"speedup:        {entry['speedup']:.2f}x (best pair)")
    if bench_config.scale >= 1.0:
        # the tentpole acceptance bar: >= 5x at full scale
        assert entry["speedup"] >= 5.0
    else:
        # smoke lanes: never slower than the object path
        assert entry["speedup"] >= 1.0


def test_interpolation_flush_throughput(bench_config, repeats):
    rng = np.random.default_rng(7)
    n_regs = max(2000, int(200_000 * bench_config.scale))
    n_refs = max(20, n_regs // 100)
    reg_t = np.sort(rng.uniform(0.0, 2.0, n_regs))
    ref_t = np.sort(rng.uniform(0.0, 2.0, n_refs))
    ref_d = rng.uniform(1e-6, 1e-3, n_refs)
    intervals = np.searchsorted(ref_t, reg_t, side="left")

    def object_path():
        buffer = InterpolationBuffer("linear")
        out = []
        ri = 0
        for t, k in zip(reg_t.tolist(), intervals.tolist()):
            while ri < k:
                out.extend(e.estimated for e in buffer.add_reference(
                    float(ref_t[ri]), float(ref_d[ri])))
                ri += 1
            buffer.add_regular(t, key=(1, 2, 3, 4, 6), true_delay=0.0)
        while ri < n_refs:
            out.extend(e.estimated for e in buffer.add_reference(
                float(ref_t[ri]), float(ref_d[ri])))
            ri += 1
        out.extend(e.estimated for e in buffer.flush())
        return out

    object_s, object_est = _best_of(object_path, repeats)
    batch_s, batch_est = _best_of(
        lambda: interpolate_batch(reg_t, ref_t, ref_d, intervals=intervals),
        repeats)
    assert batch_est.tolist() == object_est  # bitwise
    entry = _record("interpolation_flush", n_regs, object_s, batch_s)

    print_banner("Interpolation flush: buffer stream vs np.searchsorted batch")
    print(f"regulars:       {n_regs} ({n_refs} references)")
    print(f"buffer stream:  {entry['object_pps'] / 1e3:.0f} k pkts/s")
    print(f"batch flush:    {entry['batch_pps'] / 1e3:.0f} k pkts/s")
    print(f"speedup:        {entry['speedup']:.1f}x")
    assert entry["speedup"] >= 1.0
