"""Baseline comparison: RLI vs LDA vs Multiflow vs trajectory sampling.

The paper's related-work positioning, measured: LDA nails the aggregate but
answers no per-flow question; Multiflow covers flows cheaply but crudely
(two samples); trajectory sampling is accurate on sampled packets but
misses most flows; RLI covers (essentially) all flows accurately.
"""

from conftest import print_banner

from repro.analysis.report import format_table
from repro.experiments.ablations import run_baseline_comparison


def fmt(x):
    return "n/a" if x is None else f"{x:.4f}"


def test_baseline_comparison(benchmark, bench_config):
    out = benchmark.pedantic(run_baseline_comparison, args=(bench_config,),
                             rounds=1, iterations=1)

    print_banner("Baselines on one workload (93% utilization)")
    print(format_table(
        ["method", "granularity", "median RE", "flow coverage"],
        [
            ["RLI (this paper's substrate)", "per-flow", fmt(out["rli_median_re"]),
             f"{out['rli_coverage']:.1%}"],
            ["Multiflow (NetFlow 2-sample)", "per-flow", fmt(out["multiflow_median_re"]),
             f"{out['multiflow_coverage']:.1%}"],
            ["Trajectory sampling", "sampled flows", fmt(out["trajectory_median_re"]),
             f"{out['trajectory_coverage']:.1%}"],
            ["LDA", "aggregate only", fmt(out["lda_aggregate_re"]), "-"],
        ],
    ))
    print(f"\ntrue aggregate mean: {out['true_aggregate_mean'] * 1e6:.1f}us; "
          f"LDA estimate: {out['lda_estimate']!r}")

    assert out["rli_coverage"] > 0.95
    assert out["lda_aggregate_re"] < 0.02  # LDA: excellent aggregate
    assert out["rli_median_re"] < out["multiflow_median_re"]  # RLI beats 2-sample
    assert out["trajectory_coverage"] < 0.8  # sampling misses flows
