"""Extension bench: RLI accuracy across a growing multi-router segment.

The RLIR premise is that one sender/receiver pair can measure across
several queues ("implementing RLI across routers").  This bench stresses
that premise: independent cross traffic at every hop of an N-switch chain,
accuracy as a function of segment length.
"""

from conftest import print_banner

from repro.analysis.report import format_table
from repro.experiments.extensions import run_multihop_ablation


def test_ext_multihop(benchmark, bench_config, bench_runner, bench_shards):
    rows = benchmark.pedantic(
        run_multihop_ablation, args=(bench_config,),
        kwargs={"runner": bench_runner, "shards": bench_shards},
        rounds=1, iterations=1)

    print_banner("Extension: accuracy vs measured-segment length (80% util/hop)")
    print(format_table(
        ["hops in segment", "median RE(mean)", "true mean latency (us)"],
        [[hops, f"{median:.4f}", f"{latency * 1e6:.1f}"]
         for hops, median, latency in rows],
    ))

    # latency grows with hops (sum of queues) ...
    latencies = [latency for _, _, latency in rows]
    assert latencies == sorted(latencies)
    # ... and interpolation keeps tracking it: error stays bounded
    for hops, median, _ in rows:
        assert median < 0.6, f"accuracy collapsed at {hops} hops"
