"""Ablation: interpolation vs hold-last vs nearest-reference estimators.

Quantifies the value of RLI's linear interpolation over simpler per-packet
estimators on the identical 93%-utilization workload.
"""

from conftest import print_banner

from repro.analysis.report import format_table
from repro.experiments.ablations import run_estimator_ablation


def test_ablation_estimators(benchmark, bench_config, bench_runner):
    results = benchmark.pedantic(run_estimator_ablation, args=(bench_config,),
                                 kwargs={"runner": bench_runner},
                                 rounds=1, iterations=1)

    print_banner("Ablation: per-packet estimator strategy (93% utilization)")
    print(format_table(
        ["estimator", "median RE(mean)", "p90 RE(mean)"],
        [[name, f"{e.median:.4f}", f"{e.quantile(0.9):.4f}"]
         for name, e in results.items()],
    ))

    # linear interpolation is the best of the three (ties allowed)
    assert results["linear"].median <= results["previous"].median + 1e-9
    assert results["linear"].median <= results["nearest"].median + 1e-9
