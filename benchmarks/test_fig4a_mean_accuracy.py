"""Figure 4(a): CDF of relative error of per-flow MEAN latency estimates.

Paper series: {adaptive, static} x {67%, 93%} bottleneck utilization under
the random (uniform) cross-traffic model.  Expected shape: error falls with
utilization; adaptive beats static at equal utilization (10x the reference
rate); e.g. "in the static scheme, 70% of flows have less than 10% relative
errors at 93% link utilization".
"""

from conftest import print_banner

from repro.analysis.report import format_cdf_series, format_table
from repro.experiments.fig4 import run_fig4ab

HEADERS = ["series", "util", "true mean (us)", "median RE(mean)",
           "flows RE<10%", "median RE(std)", "refs"]


def test_fig4a_mean_accuracy(benchmark, bench_config, bench_runner):
    curves = benchmark.pedantic(run_fig4ab, args=(bench_config,),
                                kwargs={"runner": bench_runner},
                                rounds=1, iterations=1)

    print_banner("Figure 4(a): per-flow MEAN latency estimates, random cross traffic")
    print(format_table(HEADERS, [c.summary_row() for c in curves]))
    print()
    for curve in curves:
        print(format_cdf_series(f"CDF[{curve.label}]", curve.mean_ecdf.curve()))

    by_label = {c.label: c for c in curves}
    hi_ad = by_label["adaptive, 93%"].mean_ecdf
    hi_st = by_label["static, 93%"].mean_ecdf
    lo_ad = by_label["adaptive, 67%"].mean_ecdf
    lo_st = by_label["static, 67%"].mean_ecdf

    # paper shapes: accuracy improves with utilization...
    assert hi_ad.median < lo_ad.median
    assert hi_st.median < lo_st.median
    # ...and the (mis-)adaptive scheme's 10x injection rate beats static
    assert hi_ad.median < hi_st.median
    # headline prose claim: a large majority of flows under 10% RE at 93%
    assert hi_ad.fraction_below(0.10) > 0.6
