"""Per-commit history for the tracked ``BENCH_pipeline.json`` trajectory.

The bench file used to be overwritten on every run, so the repo only ever
recorded the *latest* numbers.  :func:`merge_bench_history` keeps both
views in one document:

* ``results`` — the latest-wins flat view the CI smoke lanes assert on
  (unchanged shape, so existing consumers keep working);
* ``history`` — an append-only list of run entries, each keyed by git SHA
  and UTC timestamp, so the perf trajectory across commits survives in
  the tracked file instead of only in CI artifacts.

The merge is a pure function over plain dicts (unit-tested from the main
suite); the I/O lives in the bench fixture that calls it.
"""

import subprocess
import time

HISTORY_LIMIT = 200  # runs kept; plenty for a per-commit trajectory


def git_sha(repo_root) -> str:
    """The current commit hash, or ``"unknown"`` outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(repo_root), capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


def utc_timestamp() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def obs_summary() -> "dict | None":
    """This process's ``repro.obs`` span summary, or None when quiet.

    Benches run with ``REPRO_OBS=1`` (or after ``repro.obs.enable()``)
    get their per-stage totals persisted alongside the numbers; a run
    without observability — the default, and what honest timings want —
    contributes nothing.
    """
    try:
        from repro import obs
    except ImportError:
        return None
    if not obs.enabled():
        return None
    return obs.span_summary() or None


def make_entry(results: dict, *, sha: str, timestamp: str, scale: float,
               python: str, numpy: str, obs: "dict | None" = None) -> dict:
    """One history entry: this run's provenance plus its results.

    *obs* is an optional ``repro.obs`` span summary (per-stage
    ``{name: {count, total_s, max_s}}`` totals) recorded when the bench
    session ran with observability on; it rides along in the entry so
    the tracked perf trajectory also shows *where* the time went.
    """
    entry = {
        "git_sha": sha,
        "timestamp": timestamp,
        "scale": scale,
        "python": python,
        "numpy": numpy,
        "results": dict(results),
    }
    if obs:
        entry["obs"] = dict(obs)
    return entry


def merge_bench_history(payload, entry: dict, limit: int = HISTORY_LIMIT) -> dict:
    """Append *entry* to *payload*'s history, refreshing the latest view.

    * ``history`` grows by one entry per run (bounded by *limit*, oldest
      dropped first); consecutive runs on one commit each get their own
      entry — the timestamp disambiguates.
    * top-level ``results`` stays latest-wins per bench name: a partial
      run (e.g. ``-k`` selecting one bench) refreshes only the benches it
      ran, exactly as before.
    * top-level provenance (``scale``/``python``/``numpy``/``git_sha``/
      ``timestamp``) describes the newest run.

    A malformed or pre-history *payload* (older format, hand edits) is
    absorbed: its ``results`` seed the latest view and the history simply
    starts at this entry.
    """
    merged = dict(payload) if isinstance(payload, dict) else {}
    history = [h for h in merged.get("history", ()) if isinstance(h, dict)]
    history.append(entry)
    results = dict(merged.get("results") or {})
    results.update(entry["results"])
    merged.update(
        bench="pipeline_throughput",
        scale=entry["scale"],
        python=entry["python"],
        numpy=entry["numpy"],
        git_sha=entry["git_sha"],
        timestamp=entry["timestamp"],
        results=results,
        history=history[-limit:],
    )
    return merged
