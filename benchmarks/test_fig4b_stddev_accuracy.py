"""Figure 4(b): CDF of relative error of per-flow STANDARD DEVIATION
estimates.

Paper series: same four conditions as 4(a).  Expected shape: "a similar
trend with mean estimates ... in adaptive scheme, while less than 10%
relative error is obtained by about 30% flows at 67% link utilization, the
same relative error is obtained by about 90% flows at 93% link utilization"
— i.e. a large accuracy gap between the two utilizations.
"""

from conftest import print_banner

from repro.analysis.report import format_cdf_series, format_table
from repro.experiments.fig4 import run_fig4ab

HEADERS = ["series", "util", "flows(std defined)", "median RE(std)", "flows RE<10%"]


def test_fig4b_stddev_accuracy(benchmark, bench_config, bench_runner):
    curves = benchmark.pedantic(run_fig4ab, args=(bench_config,),
                                kwargs={"runner": bench_runner},
                                rounds=1, iterations=1)

    print_banner("Figure 4(b): per-flow STD-DEV latency estimates, random cross traffic")
    rows = []
    for c in curves:
        ecdf = c.std_ecdf
        rows.append([
            c.label,
            f"{c.summary.measured_util:.0%}",
            c.std_join.joined,
            f"{ecdf.median:.3f}" if ecdf else "n/a",
            f"{ecdf.fraction_below(0.10):.0%}" if ecdf else "n/a",
        ])
    print(format_table(HEADERS, rows))
    print()
    for c in curves:
        if c.std_ecdf:
            print(format_cdf_series(f"CDF[{c.label}]", c.std_ecdf.curve()))

    by_label = {c.label: c for c in curves}
    hi = by_label["adaptive, 93%"].std_ecdf
    lo = by_label["adaptive, 67%"].std_ecdf
    # same trend as the mean estimates: much better at higher utilization
    assert hi.median < lo.median
    assert hi.fraction_below(0.10) > lo.fraction_below(0.10)
