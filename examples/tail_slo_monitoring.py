#!/usr/bin/env python3
"""Tail-latency SLO monitoring with per-flow quantile estimates.

The paper's motivation is latency-critical services ("a search query ...
needs to be processed within a few 100ms"; trading platforms losing
arbitrage to microseconds).  SLOs on such services are *tail* SLOs.  This
example runs the two-switch environment with a quantile-enabled RLI
receiver (streaming P² estimators, O(1) state per flow per quantile) and
produces the report an operator would page on: flows whose estimated p99
latency violates a budget — checked against ground truth to show the
report's precision.

Run:  python examples/tail_slo_monitoring.py
"""

from repro.analysis.report import format_table, us
from repro.core.receiver import RliReceiver
from repro.experiments.config import ExperimentConfig
from repro.experiments.workloads import PipelineWorkload
from repro.net.addressing import int_to_ip
from repro.sim.pipeline import TwoSwitchPipeline


def main():
    config = ExperimentConfig(scale=0.05, seed=9)
    workload = PipelineWorkload(config)
    print(f"workload: {workload.regular}; bottleneck at ~93% utilization\n")

    sender = workload.make_sender("adaptive")
    receiver = RliReceiver(
        demux=workload.make_receiver().demux,
        quantiles=(0.5, 0.95, 0.99),
    )
    TwoSwitchPipeline(workload.pipeline_config).run(
        regular=workload.regular.clone_packets(),
        cross=workload.cross_arrivals("random", 0.93),
        sender=sender,
        receiver=receiver,
        duration=config.duration,
    )
    receiver.finalize()

    # SLO: p99 one-way latency through the measured segment under budget
    budget = 10e-3
    violations = []
    for key, estimated in receiver.flow_estimated_quantiles.items():
        stats = receiver.flow_true.get(key)
        if stats is None or stats.count < 20:
            continue  # tails of tiny flows are not actionable
        if estimated[0.99] > budget:
            truth = receiver.flow_true_quantiles.get(key)
            violations.append((key, stats.count, estimated, truth))

    violations.sort(key=lambda item: -item[2][0.99])
    print(f"flows with >= 20 packets breaching p99 <= {us(budget)}: "
          f"{len(violations)}\n")
    rows = []
    for key, count, est, truth in violations[:12]:
        rows.append([
            f"{int_to_ip(key[0])}:{key[2]}->{int_to_ip(key[1])}:{key[3]}",
            count,
            us(est[0.5]), us(est[0.95]), us(est[0.99]),
            us(truth[0.99]),
            "true breach" if truth[0.99] > budget else "false alarm",
        ])
    print(format_table(
        ["flow", "pkts", "est p50", "est p95", "est p99", "true p99", "verdict"],
        rows,
    ))

    true_breaches = sum(1 for _, _, _, t in violations if t[0.99] > budget)
    if violations:
        print(f"\nreport precision: {true_breaches}/{len(violations)} "
              f"flagged flows truly breach the budget")


if __name__ == "__main__":
    main()
