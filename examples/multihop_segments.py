#!/usr/bin/env python3
"""How long can an RLIR segment get?

RLIR trades localization granularity for deployment cost by letting one
sender/receiver pair measure across several routers.  This example drives
the same workload through chains of 1..8 switches — independent cross
traffic at every hop — and shows that linear interpolation keeps tracking
per-flow latency as the measured segment grows, because the summed queueing
delay gets *larger* (and relative error correspondingly smaller), exactly
the regime the paper observed at high utilization.

It also compares the estimator strategies along the way, and renders the
error CDFs as a terminal plot.

Run:  python examples/multihop_segments.py
"""

from repro.analysis.cdf import Ecdf
from repro.analysis.metrics import flow_mean_errors
from repro.analysis.plot import ascii_cdf
from repro.analysis.report import format_table, us
from repro.core.demux import SingleSenderDemux
from repro.core.injection import StaticInjection
from repro.core.receiver import RliReceiver
from repro.core.sender import RliSender
from repro.experiments.config import ExperimentConfig
from repro.experiments.workloads import PipelineWorkload
from repro.sim.chain import ChainConfig, SwitchChain
from repro.traffic.crosstraffic import UniformModel, calibrate_selection_probability


def main():
    config = ExperimentConfig(scale=0.03, seed=5)
    workload = PipelineWorkload(config)
    utilization = 0.8
    prob = calibrate_selection_probability(
        workload.cross, workload.regular.total_bytes, workload.rate_bps,
        config.duration, utilization)
    print(f"workload: {workload.regular}, each hop at ~{utilization:.0%} "
          f"utilization (cross selection p={prob:.2f})\n")

    rows = []
    cdfs = {}
    for hops in (1, 2, 4, 8):
        sender = RliSender(1, workload.rate_bps, StaticInjection(50))
        receiver = RliReceiver(SingleSenderDemux(1, [workload.regular_prefix]))
        cross = {h: UniformModel(prob, seed=100 + h).arrivals(workload.cross)
                 for h in range(hops)}
        chain = SwitchChain(ChainConfig(
            n_hops=hops, rate_bps=workload.rate_bps,
            buffer_bytes=config.buffer_bytes, proc_delay=config.proc_delay))
        result = chain.run(workload.regular.clone_packets(), cross,
                           sender=sender, receiver=receiver,
                           duration=config.duration)
        receiver.finalize()
        join = flow_mean_errors(receiver.flow_estimated, receiver.flow_true)
        ecdf = Ecdf(join.errors)
        cdfs[f"{hops} hop(s)"] = ecdf

        from repro.core.flowstats import StreamingStats
        pooled = StreamingStats()
        for _, stats in receiver.flow_true.items():
            pooled.merge(stats)
        rows.append([hops, us(pooled.mean), f"{ecdf.median:.1%}",
                     f"{ecdf.fraction_below(0.10):.0%}",
                     f"{result.regular_loss_rate:.2%}"])

    print(format_table(
        ["segment length", "true mean latency", "median RE",
         "flows RE<10%", "loss"],
        rows,
    ))
    print("\nper-flow mean relative-error CDFs:\n")
    print(ascii_cdf(cdfs, width=56, height=12))


if __name__ == "__main__":
    main()
