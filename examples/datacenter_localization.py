#!/usr/bin/env python3
"""Localizing a latency anomaly across routers with RLIR.

The paper's motivating scenario: flows between two ToR switches in a
fat-tree cross five switches; full RLI deployment would instrument all of
them, RLIR instruments only the ToRs and the cores and still localizes the
problem to a segment.

This example creates an incast hot-spot toward the destination ToR (pods 2
and 3 all sending to it), deploys RLIR for the (ToR(0,0) -> ToR(1,0)) pair,
and shows the localization report blaming the downstream segment.

Run:  python examples/datacenter_localization.py
"""

from repro.analysis.cdf import Ecdf
from repro.analysis.metrics import flow_mean_errors
from repro.analysis.report import format_table, us
from repro.core.injection import StaticInjection
from repro.core.localization import flow_breakdown, localize
from repro.core.rlir import RlirDeployment
from repro.sim.topology import FatTree, LinkParams
from repro.traffic.synthetic import TraceConfig, generate_fattree_trace


def main():
    fabric = FatTree(4, LinkParams(rate_bps=100e6, buffer_bytes=256 * 1024,
                                   proc_delay=1e-6, prop_delay=0.5e-6))
    print(f"fabric: {fabric.name} — {len(fabric.switches)} switches")

    # measured traffic: ToR(0,0) hosts -> ToR(1,0) hosts
    measured_pairs = [(fabric.host_address(0, 0, h), fabric.host_address(1, 0, g))
                      for h in range(2) for g in range(2)]
    measured = generate_fattree_trace(
        TraceConfig(duration=1.0, n_packets=20_000), measured_pairs,
        seed=1, name="measured")

    # the anomaly: an incast from pods 2 and 3 into the destination ToR,
    # congesting the core->ToR(1,0) segment
    incast_pairs = [(fabric.host_address(p, e, h), fabric.host_address(1, 0, g))
                    for p in (2, 3) for e in range(2) for h in range(2)
                    for g in range(2)]
    incast = generate_fattree_trace(
        TraceConfig(duration=1.0, n_packets=60_000), incast_pairs,
        seed=2, name="incast")
    print(f"workload: {len(measured)} measured packets + {len(incast)} incast packets\n")

    # RLIR: instances at the source ToR uplinks, the 4 cores, and the dst ToR
    deployment = RlirDeployment(
        fabric, src=(0, 0), dst=(1, 0),
        policy_factory=lambda: StaticInjection(50),
        demux_method="reverse-ecmp",  # no core firmware changes needed
    )
    result = deployment.run([measured, incast])

    refs1 = sum(r.references_accepted for r in result.seg1_receivers.values())
    print(f"references received: {refs1} at cores, "
          f"{result.seg2_receiver.references_accepted} at the destination ToR")

    # measurement quality across routers
    j1 = flow_mean_errors(result.segment1_estimated(), result.segment1_true())
    j2 = flow_mean_errors(result.segment2_estimated(), result.segment2_true())
    print(f"segment 1 (ToR->core):  {len(j1.errors)} flows, "
          f"median RE {Ecdf(j1.errors).median:.1%}")
    print(f"segment 2 (core->ToR):  {len(j2.errors)} flows, "
          f"median RE {Ecdf(j2.errors).median:.1%}\n")

    # the operator's question: WHERE is the latency?
    report = localize(result.segments(), factor=3.0, floor=5e-6, min_samples=20)
    print(format_table(
        ["segment", "mean latency", "flows", "samples", "anomalous?"],
        [[s.name, us(s.mean), s.n_flows, s.samples,
          "<<< YES" if s.name in report.anomalous else ""]
         for s in report.summaries],
    ))
    print(f"\nculprit segment: {report.culprit}")

    # per-flow drill-down (what LDA-style aggregates cannot answer)
    key = next(iter(result.seg2_receiver.flow_estimated.keys()))
    parts = flow_breakdown(key, result.segments())
    print("\nexample flow breakdown:")
    for name, stats in parts.items():
        if stats is not None:
            print(f"  {name}: mean {us(stats.mean)} over {stats.count} packets")


if __name__ == "__main__":
    main()
