#!/usr/bin/env python3
"""Cross-traffic study: how unobservable downstream load affects RLI.

Sweeps the bottleneck utilization (controlled by cross traffic the sender
cannot see) and compares the paper's two injection schemes — static
1-and-100 (worst-case provisioning) and adaptive 1-and-[10..300] (which
mis-adapts to the sender's lightly loaded local link) — on accuracy and
interference, reproducing the trade-off at the heart of Section 3.2.

Run:  python examples/crosstraffic_study.py
"""

from repro.analysis.cdf import Ecdf
from repro.analysis.metrics import flow_mean_errors
from repro.analysis.report import format_table, us
from repro.experiments.config import ExperimentConfig
from repro.experiments.workloads import PipelineWorkload, run_condition
from repro.net.packet import PacketKind


def main():
    config = ExperimentConfig(scale=0.05, seed=3)
    workload = PipelineWorkload(config)
    print(f"workload: {workload.regular}")
    print(f"sender-side utilization is always ~{config.base_utilization:.0%}: "
          f"the adaptive scheme runs at its highest rate (1-and-10) regardless "
          f"of the bottleneck\n")

    rows = []
    for target in (0.34, 0.50, 0.67, 0.80, 0.93):
        cells = [f"{target:.0%}"]
        for scheme in ("static", "adaptive"):
            run = run_condition(workload, scheme, "random", target)
            join = flow_mean_errors(run.receiver.flow_estimated,
                                    run.receiver.flow_true)
            ecdf = Ecdf(join.errors)
            cells.append(f"{ecdf.median:.1%}")
            if scheme == "static":
                cells.insert(1, us(run.mean_true_latency))
            loss = run.pipeline.loss_rate(PacketKind.REGULAR)
            cells.append(f"{loss:.2%}")
        rows.append(cells)

    print(format_table(
        ["bottleneck util", "true mean latency",
         "static med RE", "static loss", "adaptive med RE", "adaptive loss"],
        rows,
    ))
    print("\nreading the table: relative error *falls* as utilization rises "
          "(larger true delays are easier to track), and the adaptive "
          "scheme's 10x reference rate buys accuracy at a small loss cost — "
          "the paper's argument for conservative static injection across "
          "routers.")


if __name__ == "__main__":
    main()
