#!/usr/bin/env python3
"""Quickstart: per-flow latency measurement with RLI on two switches.

Builds the paper's Figure-3 environment — a synthetic backbone-like trace
through two switches, cross traffic congesting the second one — runs an RLI
sender/receiver pair with static 1-and-100 injection, and prints per-flow
latency estimates against ground truth.

Run:  python examples/quickstart.py
"""

from repro.analysis.cdf import Ecdf
from repro.analysis.metrics import flow_mean_errors
from repro.analysis.report import format_table, us
from repro.experiments.config import ExperimentConfig
from repro.experiments.workloads import PipelineWorkload, run_condition
from repro.net.addressing import int_to_ip


def main():
    # a miniature model of the paper's OC-192 workload (fast to run);
    # the benches run the full REPRO_SCALE=1.0 version
    config = ExperimentConfig(scale=0.02, seed=1)
    workload = PipelineWorkload(config)
    print(f"regular trace: {workload.regular}")
    print(f"cross trace:   {workload.cross}")
    print(f"link rate:     {workload.rate_bps / 1e6:.0f} Mb/s "
          f"(regular traffic alone = {config.base_utilization:.0%} utilization)\n")

    # one run: static 1-and-100 injection, random cross traffic at 93%
    run = run_condition(workload, scheme="static", model="random", target_util=0.93)
    receiver = run.receiver

    print(f"bottleneck utilization: {run.measured_util:.1%}")
    print(f"references injected:    {run.pipeline.refs_injected}")
    print(f"flows measured:         {len(receiver.flow_true)}\n")

    # the estimates RLI produces: per-flow mean and std-dev latency
    biggest = sorted(receiver.flow_true.items(), key=lambda kv: -kv[1].count)[:10]
    rows = []
    for key, truth in biggest:
        est = receiver.flow_estimated.get(key)
        rows.append([
            f"{int_to_ip(key[0])}:{key[2]}->{int_to_ip(key[1])}:{key[3]}",
            truth.count,
            us(est.mean), us(truth.mean),
            us(est.std), us(truth.std),
        ])
    print(format_table(
        ["flow", "pkts", "est mean", "true mean", "est std", "true std"], rows))

    join = flow_mean_errors(receiver.flow_estimated, receiver.flow_true)
    ecdf = Ecdf(join.errors)
    print(f"\nper-flow mean-latency relative error: "
          f"median {ecdf.median:.1%}, {ecdf.fraction_below(0.10):.0%} of flows below 10%")


if __name__ == "__main__":
    main()
