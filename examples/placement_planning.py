#!/usr/bin/env python3
"""Planning an RLIR rollout: how many instances, and where.

Reproduces the paper's Section 3.1 complexity analysis as an operator tool:
closed-form instance counts for a sweep of fat-tree arities, plus the
concrete (switch, interface) placement list for one deployment.

Run:  python examples/placement_planning.py
"""

from collections import Counter

from repro.analysis.report import format_table
from repro.core.placement import RlirPlacement
from repro.experiments.placement import run_placement
from repro.sim.topology import FatTree


def main():
    print("Deployment cost on k-ary fat-trees (measurement instances):\n")
    rows = run_placement(ks=(4, 8, 16, 32, 48), enumerate_up_to=8)
    print(format_table(
        ["k", "iface pair", "ToR pair", "all pairs (paper)",
         "all pairs (enum)", "full deploy", "RLIR/full"],
        [r.as_list() for r in rows],
    ))

    print("\nConcrete plan: ToR-pair deployment on k=8, "
          "ToR(0,0) <-> ToR(1,1):\n")
    ft = FatTree(8)
    planner = RlirPlacement(ft)
    instances = planner.tor_pair((0, 0), (1, 1))
    by_role = Counter(i.role for i in instances)
    print(format_table(["role", "instances"], sorted(by_role.items())))
    print()
    print(format_table(
        ["switch", "interface", "role"],
        [[i.switch_name, i.port_index, i.role] for i in instances[:12]],
    ))
    print(f"... {len(instances)} instances total "
          f"(formula k(k+2)/2 = {8 * 10 // 2})")


if __name__ == "__main__":
    main()
