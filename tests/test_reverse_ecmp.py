"""Tests for the reverse-ECMP path classifier against actual forwarding."""

import pytest

from repro.core.reverse_ecmp import ReverseEcmpClassifier
from repro.net.packet import Packet
from repro.sim.routing import trace_route


def classifier_for(ft):
    core_to_sender = {}
    sender_of_core = {}
    for row in ft.cores:
        for core in row:
            core_to_sender[core.node_id] = 2000 + core.node_id
            sender_of_core[core.name] = 2000 + core.node_id
    return ReverseEcmpClassifier(ft, core_to_sender), sender_of_core


class TestReverseEcmp:
    def test_matches_actual_forwarding(self, fattree8):
        """For hundreds of flows, the receiver-side recomputation names
        exactly the core the packet really traversed."""
        ft = fattree8
        classify, sender_of_core = classifier_for(ft)
        src = ft.host_address(0, 0, 1)
        dst = ft.host_address(3, 2, 0)
        for sport in range(300):
            p = Packet(src=src, dst=dst, sport=sport, dport=80)
            actual_core = trace_route(ft.edges[0][0], p)[2]
            assert classify(p) == sender_of_core[actual_core.name]

    def test_intra_pod_flow_unclassified(self, fattree4):
        ft = fattree4
        classify, _ = classifier_for(ft)
        p = Packet(src=ft.host_address(0, 0, 0), dst=ft.host_address(0, 1, 0))
        assert classify(p) is None

    def test_intra_tor_flow_unclassified(self, fattree4):
        ft = fattree4
        classify, _ = classifier_for(ft)
        p = Packet(src=ft.host_address(0, 0, 0), dst=ft.host_address(0, 0, 1))
        assert classify(p) is None

    def test_uninstrumented_core_returns_none(self, fattree4):
        """If only some cores carry instances, flows through others are
        not classified (partial deployment within partial deployment)."""
        ft = fattree4
        instrumented = ft.cores[0][0]
        classify = ReverseEcmpClassifier(ft, {instrumented.node_id: 2000})
        src = ft.host_address(0, 0, 0)
        dst = ft.host_address(2, 0, 0)
        seen = set()
        for sport in range(100):
            p = Packet(src=src, dst=dst, sport=sport, dport=80)
            seen.add(classify(p))
        assert None in seen  # flows through other cores
        assert 2000 in seen  # flows through the instrumented one

    def test_requires_cores(self, fattree4):
        with pytest.raises(ValueError):
            ReverseEcmpClassifier(fattree4, {})
