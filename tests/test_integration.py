"""Cross-driver and determinism integration tests.

The fast two-switch pipeline and the general event engine share the same
queue primitive; these tests prove they implement identical semantics, and
that entire experiments are bit-for-bit reproducible.
"""

import pytest

from repro.net.addressing import Prefix, ip_to_int
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import Engine
from repro.sim.pipeline import PipelineConfig, TwoSwitchPipeline
from repro.sim.switch import LOCAL_DELIVERY
from repro.sim.topology import LinkParams, Topology

RATE = 8e6
BUFFER = 8000
PROC = 1e-6


def build_equivalent_topology():
    """A -> B -> C where A/B egress queues mirror the pipeline's switches."""
    topo = Topology(name="two-switch")
    a = topo.add_switch("A", ip_to_int("10.255.0.1"))
    b = topo.add_switch("B", ip_to_int("10.255.0.2"))
    c = topo.add_switch("C", ip_to_int("10.255.0.3"))
    params = LinkParams(rate_bps=RATE, buffer_bytes=BUFFER,
                        proc_delay=PROC, prop_delay=0.0)
    topo.connect(a, b, params)
    topo.connect(b, c, params)
    everything = Prefix(0, 0)
    a.add_route(everything, topo.port_toward(a, b))
    b.add_route(everything, topo.port_toward(b, c))
    c.add_route(everything, LOCAL_DELIVERY)
    return topo, a, b, c


def workload(n=400, seed_spacing=1.3e-4):
    regs = [Packet(src=ip_to_int("10.1.0.1"), dst=ip_to_int("10.2.0.1"),
                   sport=i % 37, size=400 + (i * 97) % 1100, ts=i * seed_spacing)
            for i in range(n)]
    cross = [Packet(src=ip_to_int("10.9.0.1"), dst=ip_to_int("10.2.0.9"),
                    sport=i % 11, size=1500, ts=i * 4.1e-4,
                    kind=PacketKind.CROSS)
             for i in range(n // 3)]
    return regs, cross


class TestDriverEquivalence:
    def test_pipeline_and_engine_agree_exactly(self):
        regs, cross = workload()

        # pipeline run
        pipe_rx = []

        class Rx:
            def observe(self, p, t):
                pipe_rx.append((p.flow_key, t))

        cfg = PipelineConfig(RATE, RATE, BUFFER, BUFFER, PROC)
        TwoSwitchPipeline(cfg).run(
            [p.clone() for p in regs],
            [(p.ts, p.clone()) for p in cross],
            receiver=Rx(),
        )

        # engine run on the equivalent topology
        topo, a, b, c = build_equivalent_topology()
        engine = Engine()
        for p in regs:
            engine.schedule_arrival(p.ts, a, p.clone())
        for p in cross:
            engine.schedule_arrival(p.ts, b, p.clone())
        engine.run()
        engine_rx = [(p.flow_key, t) for p, t in c.local_sink
                     if p.kind != PacketKind.CROSS]

        pipe_regular = [(k, t) for k, t in pipe_rx]
        assert len(engine_rx) == len(pipe_regular)
        for (k1, t1), (k2, t2) in zip(engine_rx, pipe_regular):
            assert k1 == k2
            assert t1 == pytest.approx(t2, abs=1e-12)

    def test_drop_counts_agree(self):
        regs, cross = workload(n=1200, seed_spacing=0.4e-4)  # overload

        cfg = PipelineConfig(RATE, RATE, BUFFER, BUFFER, PROC)
        result = TwoSwitchPipeline(cfg).run(
            [p.clone() for p in regs],
            [(p.ts, p.clone()) for p in cross],
        )
        pipe_drops = (result.queue1.stats.dropped + result.drops2[PacketKind.REGULAR]
                      + result.drops2[PacketKind.CROSS])

        topo, a, b, c = build_equivalent_topology()
        engine = Engine()
        clones = [p.clone() for p in regs] + [p.clone() for p in cross]
        for p in clones[:len(regs)]:
            engine.schedule_arrival(p.ts, a, p)
        for p in clones[len(regs):]:
            engine.schedule_arrival(p.ts, b, p)
        engine.run()
        engine_drops = sum(p.dropped for p in clones)
        assert engine_drops == pipe_drops
        assert pipe_drops > 0  # the workload actually stressed the buffers


class TestDeterminism:
    def test_experiment_runs_identical(self, tiny_workload):
        """Two runs of the same condition produce identical flow tables."""
        from repro.experiments.workloads import run_condition

        a = run_condition(tiny_workload, "adaptive", "random", 0.93)
        b = run_condition(tiny_workload, "adaptive", "random", 0.93)
        ta = {k: (s.count, s.mean) for k, s in a.receiver.flow_estimated.items()}
        tb = {k: (s.count, s.mean) for k, s in b.receiver.flow_estimated.items()}
        assert ta == tb

    def test_fattree_runs_identical(self):
        from repro.core.injection import StaticInjection
        from repro.core.rlir import RlirDeployment
        from repro.sim.topology import FatTree, LinkParams
        from repro.traffic.synthetic import TraceConfig, generate_fattree_trace

        def once():
            ft = FatTree(4, LinkParams(rate_bps=40e6, buffer_bytes=64 * 1024))
            pairs = [(ft.host_address(0, 0, 0), ft.host_address(1, 0, 0))]
            trace = generate_fattree_trace(
                TraceConfig(duration=0.5, n_packets=3000), pairs, seed=3)
            deployment = RlirDeployment(
                ft, (0, 0), (1, 0), policy_factory=lambda: StaticInjection(20))
            result = deployment.run([trace])
            return {k: (s.count, s.mean)
                    for k, s in result.seg2_receiver.flow_estimated.items()}

        assert once() == once()
