"""Tests for the discrete-event engine over topologies."""

import pytest

from repro.net.packet import Packet
from repro.sim.engine import Engine
from repro.sim.topology import FatTree, LinkParams


def interpod_packet(ft, sport=1000, size=500, ts=0.0):
    return Packet(
        src=ft.host_address(0, 0, 0),
        dst=ft.host_address(1, 0, 0),
        sport=sport,
        dport=80,
        size=size,
        ts=ts,
    )


class TestEngine:
    def test_single_packet_delivered(self, fattree4):
        ft = fattree4
        engine = Engine()
        p = interpod_packet(ft)
        engine.schedule_arrival(0.0, ft.edges[0][0], p)
        engine.run()
        assert engine.delivered == 1
        assert not p.dropped
        assert len(p.path) == 5  # edge, agg, core, agg, edge

    def test_delivery_lands_in_destination_sink(self, fattree4):
        ft = fattree4
        engine = Engine()
        p = interpod_packet(ft)
        engine.schedule_arrival(0.0, ft.edges[0][0], p)
        engine.run()
        dst_edge = ft.edges[1][0]
        assert [pkt for pkt, _ in dst_edge.local_sink] == [p]

    def test_end_to_end_latency_includes_queues_and_wires(self, fattree4):
        ft = fattree4
        engine = Engine()
        p = interpod_packet(ft, size=1000)
        engine.schedule_arrival(0.0, ft.edges[0][0], p)
        engine.run()
        _, arrival = ft.edges[1][0].local_sink[0]
        params = ft.params
        # 4 queue traversals (edge, agg, core, agg egresses) + 4 wires
        per_hop = params.proc_delay + 1000 * 8 / params.rate_bps + params.prop_delay
        assert arrival == pytest.approx(4 * per_hop)

    def test_cannot_schedule_in_past(self):
        engine = Engine()
        engine.now = 5.0
        with pytest.raises(ValueError):
            engine.schedule_arrival(1.0, None, None)

    def test_events_processed_in_time_order(self, fattree4):
        ft = fattree4
        engine = Engine()
        order = []
        ft.edges[0][0].add_arrival_tap(lambda p, t, i: order.append(t))
        for ts in (0.3, 0.1, 0.2):
            engine.schedule_arrival(ts, ft.edges[0][0], interpod_packet(ft, ts=ts))
        engine.run()
        assert order == sorted(order)

    def test_run_until_stops_early(self, fattree4):
        ft = fattree4
        engine = Engine()
        engine.schedule_arrival(0.0, ft.edges[0][0], interpod_packet(ft))
        engine.schedule_arrival(10.0, ft.edges[0][0], interpod_packet(ft, sport=2))
        engine.run(until=1.0)
        assert engine.pending() == 1

    def test_run_until_advances_clock_with_pending_events(self, fattree4):
        """run(until=) must advance the clock to `until` even when the
        calendar isn't drained, so a later schedule_arrival between the
        last processed event and `until` is rejected as in the past
        instead of being processed out of order."""
        ft = fattree4
        engine = Engine()
        engine.schedule_arrival(0.0, ft.edges[0][0], interpod_packet(ft))
        engine.schedule_arrival(10.0, ft.edges[0][0], interpod_packet(ft, sport=2))
        engine.run(until=1.0)
        assert engine.now == 1.0
        with pytest.raises(ValueError):
            engine.schedule_arrival(0.5, ft.edges[0][0], interpod_packet(ft, sport=3))
        # scheduling at or after `until` is still fine
        engine.schedule_arrival(1.0, ft.edges[0][0], interpod_packet(ft, sport=4))

    def test_run_until_advances_clock_when_drained(self, fattree4):
        ft = fattree4
        engine = Engine()
        engine.schedule_arrival(0.0, ft.edges[0][0], interpod_packet(ft))
        engine.run(until=2.0)
        assert engine.pending() == 0
        assert engine.now == 2.0
        with pytest.raises(ValueError):
            engine.schedule_arrival(1.5, ft.edges[0][0], interpod_packet(ft, sport=3))

    def test_run_without_until_keeps_last_event_time(self, fattree4):
        ft = fattree4
        engine = Engine()
        engine.schedule_arrival(0.25, ft.edges[0][0], interpod_packet(ft, ts=0.25))
        engine.run()
        # un-bounded run: the clock rests at the last processed event
        assert 0.25 <= engine.now < 2.0

    def test_inject_trace(self, fattree4):
        ft = fattree4
        engine = Engine()
        packets = [interpod_packet(ft, sport=s, ts=s * 1e-4) for s in range(10)]
        count = engine.inject_trace(packets, lambda p: ft.edge_of(p.src))
        engine.run()
        assert count == 10
        assert engine.delivered == 10

    def test_many_flows_all_delivered(self, fattree8):
        """No drops on an uncongested fabric; every inter-pod packet
        arrives at its destination ToR."""
        ft = fattree8
        engine = Engine()
        packets = []
        for s in range(200):
            p = Packet(
                src=ft.host_address(s % 8 // 2, s % 2, 0),
                dst=ft.host_address(4 + s % 4, (s + 1) % 4, 1),
                sport=s,
                dport=80,
                size=200,
                ts=s * 1e-5,
            )
            packets.append(p)
        engine.inject_trace(packets, lambda p: ft.edge_of(p.src))
        engine.run()
        assert engine.delivered == len(packets)
        assert all(not p.dropped for p in packets)

    def test_congestion_drops_counted(self):
        """A tiny-buffer fabric under a burst drops some packets."""
        ft = FatTree(4, LinkParams(rate_bps=1e6, buffer_bytes=1000))
        engine = Engine()
        packets = [interpod_packet(ft, sport=s, size=900, ts=0.0) for s in range(50)]
        engine.inject_trace(packets, lambda p: ft.edge_of(p.src))
        engine.run()
        dropped = sum(p.dropped for p in packets)
        assert dropped > 0
        assert engine.delivered == len(packets) - dropped
