"""Sanity tests for the extension experiment drivers (tiny scale)."""

import math

import pytest

from repro.experiments.extensions import (
    run_granularity_comparison,
    run_memory_ablation,
    run_multihop_ablation,
    run_ptp_study,
)
from repro.runner import ParallelRunner, ResultCache


class TestMultihop:
    def test_latency_grows_with_hops(self, tiny_config):
        rows = run_multihop_ablation(tiny_config, hops=(1, 3))
        assert rows[1][2] > rows[0][2]

    def test_rows_shape(self, tiny_config):
        rows = run_multihop_ablation(tiny_config, hops=(2,))
        ((hops, median, latency),) = rows
        assert hops == 2
        assert 0 <= median < 2.0
        assert latency > 0


class TestGranularity:
    def test_both_deployments_localize(self):
        full, rlir = run_granularity_comparison(n_packets=6000)
        assert full.culprit == "C:cores->agg0"
        assert rlir.culprit == "seg2:to-dst-tor"
        assert full.pinned_to_single_queue
        assert not rlir.pinned_to_single_queue
        assert rlir.instances < full.instances


class TestMemoryAblation:
    def test_bounds_respected(self, tiny_config):
        rows = run_memory_ablation(tiny_config, bounds=(None, 64))
        unbounded, bounded = rows
        assert unbounded[0] is None and unbounded[2] == 0
        assert bounded[1] <= 64
        assert bounded[2] > 0  # evictions happened at this tight bound

    def test_survivor_accuracy_defined(self, tiny_config):
        rows = run_memory_ablation(tiny_config, bounds=(128,))
        assert not math.isnan(rows[0][3])


class TestPtpStudy:
    def test_clean_path_perfect(self):
        rows = run_ptp_study(jitters=(0.0,))
        assert rows[0][1] == pytest.approx(0.0, abs=1e-12)

    def test_jitter_hurts(self):
        rows = run_ptp_study(jitters=(0.0, 100e-6), seeds=3)
        assert rows[1][1] > rows[0][1]

    def test_residual_below_jitter(self):
        rows = run_ptp_study(jitters=(50e-6,), rounds=64, seeds=3)
        assert rows[0][1] < 50e-6


class TestTailAccuracy:
    def test_quantile_keys_present(self, tiny_config):
        from repro.experiments.extensions import run_tail_accuracy

        results = run_tail_accuracy(tiny_config, quantiles=(0.5, 0.95),
                                    min_packets=10)
        assert set(results) <= {0.5, 0.95}
        assert 0.5 in results
        assert results[0.5].median < 1.0

    def test_min_packets_filter(self, tiny_config):
        from repro.experiments.extensions import run_tail_accuracy

        strict = run_tail_accuracy(tiny_config, quantiles=(0.5,),
                                   min_packets=50)
        loose = run_tail_accuracy(tiny_config, quantiles=(0.5,),
                                  min_packets=5)
        if 0.5 in strict and 0.5 in loose:
            assert len(strict[0.5]) <= len(loose[0.5])


class TestMeshStudy:
    def test_three_pairs_measured(self):
        from repro.experiments.extensions import run_mesh_study

        rows = run_mesh_study(n_packets_per_pair=3000)
        assert len(rows) == 3
        for pair, flows, seg2, e2e in rows:
            assert flows > 20, pair
            assert seg2 == seg2 and seg2 < 1.0  # not NaN, sane


class TestAqmComparison:
    def test_disciplines_compared(self, tiny_config):
        from repro.experiments.extensions import run_aqm_comparison

        rows = run_aqm_comparison(tiny_config)
        names = [r[0] for r in rows]
        assert names == ["tail-drop", "RED"]
        for name, loss, median, ref_drops in rows:
            assert 0.0 <= loss < 0.5
            assert median < 2.0


class TestRunnerRouting:
    """Every extension driver goes through ParallelRunner + ResultCache."""

    def test_all_drivers_execute_through_the_runner(self, tiny_config):
        from repro.experiments.extensions import (
            run_aqm_comparison, run_localization_study, run_mesh_study,
            run_tail_accuracy)

        runner = ParallelRunner(jobs=1)
        run_multihop_ablation(tiny_config, hops=(1,), runner=runner)
        run_granularity_comparison(n_packets=2000, runner=runner)
        run_memory_ablation(tiny_config, bounds=(64,), runner=runner)
        run_ptp_study(jitters=(0.0,), seeds=1, runner=runner)
        run_tail_accuracy(tiny_config, quantiles=(0.5,), runner=runner)
        run_mesh_study(n_packets_per_pair=1500, runner=runner)
        run_aqm_comparison(tiny_config, runner=runner)
        run_localization_study(n_packets=1500, runner=runner)
        # multihop 1 + granularity 2 + memory 1 + ptp 1 + tail 1 + mesh 1
        # + aqm 2 + localize 1 jobs, all executed (no cache configured)
        assert runner.executed == 10
        assert runner.cache_hits == 0

    def test_rerun_answers_from_cache(self, tiny_config, tmp_path):
        cache = ResultCache(root=tmp_path / "cache", fingerprint="test")
        cold = ParallelRunner(jobs=1, cache=cache)
        first = run_multihop_ablation(tiny_config, hops=(1, 2), runner=cold,
                                      shards=2)
        assert cold.executed == 4  # 2 hops x 2 shards
        warm = ParallelRunner(jobs=1, cache=cache)
        second = run_multihop_ablation(tiny_config, hops=(1, 2), runner=warm,
                                       shards=2)
        assert warm.executed == 0
        assert warm.cache_hits == 4
        assert first == second

    def test_seeds_reach_cache_keys(self, tiny_config, tmp_path):
        """Two run_seeds must never share a cache entry (the old hard-coded
        seeds made every sweep condition alias one key)."""
        cache = ResultCache(root=tmp_path / "cache", fingerprint="test")
        runner = ParallelRunner(jobs=1, cache=cache)
        run_multihop_ablation(tiny_config, hops=(1,), runner=runner, run_seed=0)
        run_multihop_ablation(tiny_config, hops=(1,), runner=runner, run_seed=1)
        assert runner.executed == 2
        assert runner.cache_hits == 0

    def test_run_seed_changes_the_numbers(self, tiny_config):
        """The threaded seed actually reaches the random streams."""
        a = run_multihop_ablation(tiny_config, hops=(1,), run_seed=0)
        b = run_multihop_ablation(tiny_config, hops=(1,), run_seed=1)
        assert a != b

    def test_granularity_trace_seed_is_threaded(self, tmp_path):
        cache = ResultCache(root=tmp_path / "cache", fingerprint="test")
        runner = ParallelRunner(jobs=1, cache=cache)
        run_granularity_comparison(n_packets=2000, runner=runner, trace_seed=21)
        run_granularity_comparison(n_packets=2000, runner=runner, trace_seed=22)
        assert runner.executed == 4
        assert runner.cache_hits == 0


class TestLocalizationStudy:
    def test_incast_culprit_is_destination_segment(self):
        from repro.experiments.extensions import run_localization_study

        report = run_localization_study(n_packets=6000)
        assert report.culprit == "seg2:to-dst-tor"
        assert len(report.summaries) == 5  # 4 seg1 cores + seg2
