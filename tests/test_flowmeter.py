"""Tests for the YAF-like flow meter."""

import pytest

from repro.net.addressing import ip_to_int
from repro.net.packet import Packet
from repro.traffic.divider import TrafficDivider
from repro.net.addressing import Prefix
from repro.traffic.flowmeter import FlowMeter
from repro.traffic.trace import Trace


def pkt(ts, sport=1, size=100, src="10.1.0.1"):
    return Packet(src=ip_to_int(src), dst=ip_to_int("10.2.0.1"),
                  sport=sport, size=size, ts=ts)


class TestFlowMeter:
    def test_single_flow_record(self):
        m = FlowMeter()
        m.observe_all([pkt(0.0), pkt(0.5), pkt(1.0)])
        (record,) = list(m.records())
        assert record.first_ts == 0.0
        assert record.last_ts == 1.0
        assert record.packets == 3
        assert record.bytes == 300
        assert record.duration == 1.0

    def test_multiple_flows(self):
        m = FlowMeter()
        m.observe_all([pkt(0.0, sport=1), pkt(0.1, sport=2), pkt(0.2, sport=1)])
        assert len(m) == 2
        table = m.table()
        assert table[pkt(0, sport=1).flow_key].packets == 2

    def test_observe_at_explicit_time(self):
        m = FlowMeter()
        p = pkt(0.0)
        m.observe(p, ts=5.0)
        (record,) = list(m.records())
        assert record.first_ts == 5.0

    def test_idle_timeout_splits(self):
        m = FlowMeter(idle_timeout=1.0)
        m.observe_all([pkt(0.0), pkt(0.5), pkt(3.0)])
        records = list(m.records())
        assert len(records) == 2
        assert records[0].packets == 2  # expired record first
        assert records[1].packets == 1

    def test_out_of_order_rejected(self):
        m = FlowMeter()
        m.observe(pkt(1.0))
        with pytest.raises(ValueError):
            m.observe(pkt(0.5))

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            FlowMeter(idle_timeout=0.0)


class TestTrafficDivider:
    def test_split_by_source_prefix(self):
        divider = TrafficDivider([Prefix.parse("10.1.0.0/16")])
        trace = Trace([pkt(0.0, src="10.1.0.5"), pkt(0.1, src="10.9.0.5")],
                      check_sorted=False)
        regular, cross = divider.split(trace)
        assert len(regular) == 1 and len(cross) == 1
        assert cross[0].is_cross
        assert regular[0].is_regular

    def test_is_regular(self):
        divider = TrafficDivider([Prefix.parse("10.1.0.0/16")])
        assert divider.is_regular(ip_to_int("10.1.2.3"))
        assert not divider.is_regular(ip_to_int("10.2.2.3"))

    def test_requires_prefixes(self):
        with pytest.raises(ValueError):
            TrafficDivider([])

    def test_split_clones(self):
        divider = TrafficDivider([Prefix.parse("10.1.0.0/16")])
        trace = Trace([pkt(0.0)], check_sorted=False)
        regular, _ = divider.split(trace)
        regular[0].dropped = True
        assert not trace[0].dropped


class TestActiveTimeout:
    def test_active_timeout_splits_long_flow(self):
        m = FlowMeter(active_timeout=1.0)
        m.observe_all([pkt(0.0), pkt(0.5), pkt(0.9), pkt(1.5), pkt(2.6)])
        records = list(m.records())
        assert len(records) == 3  # [0,0.9], [1.5], [2.6]
        assert records[0].packets == 3

    def test_active_and_idle_combined(self):
        m = FlowMeter(idle_timeout=0.4, active_timeout=2.0)
        m.observe_all([pkt(0.0), pkt(0.2), pkt(1.0)])  # idle gap splits
        assert len(m) == 2

    def test_invalid_active_timeout(self):
        with pytest.raises(ValueError):
            FlowMeter(active_timeout=0.0)
