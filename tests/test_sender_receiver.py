"""Tests for RLI sender and receiver instances."""

import pytest

from repro.core.demux import SingleSenderDemux
from repro.core.injection import StaticInjection
from repro.core.interpolation import InterpolationBuffer
from repro.core.receiver import RliReceiver
from repro.core.sender import RefTemplate, RliSender
from repro.net.addressing import Prefix, ip_to_int
from repro.net.packet import Packet, PacketKind
from repro.sim.clock import OffsetClock


def regular(ts=0.0, sport=1, size=500, src="10.1.0.1"):
    return Packet(src=ip_to_int(src), dst=ip_to_int("10.2.0.1"),
                  sport=sport, size=size, ts=ts)


def make_sender(n=3, **kw):
    return RliSender(sender_id=1, link_rate_bps=1e9,
                     policy=StaticInjection(n), **kw)


class TestSender:
    def test_one_and_n(self):
        sender = make_sender(n=3)
        refs = [sender.on_regular(regular(t * 1e-3, sport=t), t * 1e-3)
                for t in range(9)]
        injected = [r for r in refs if r]
        assert len(injected) == 3  # after packets 3, 6, 9
        assert refs[2] and refs[5] and refs[8]
        assert sender.refs_injected == 3

    def test_reference_fields(self):
        template = RefTemplate(src=111, dst=222, sport=5, dport=6)
        sender = make_sender(n=1, templates={0: template})
        (ref,) = sender.on_regular(regular(), 1.5)
        assert ref.kind == PacketKind.REFERENCE
        assert ref.sender_id == 1
        assert (ref.src, ref.dst, ref.sport, ref.dport) == (111, 222, 5, 6)
        assert ref.ref_timestamp == 1.5  # perfect clock
        assert ref.tap_time == 1.5
        assert ref.size == 64

    def test_clock_used_for_timestamp(self):
        sender = make_sender(n=1, clock=OffsetClock(2e-6))
        (ref,) = sender.on_regular(regular(), 1.0)
        assert ref.ref_timestamp == pytest.approx(1.0 + 2e-6)

    def test_per_class_counters(self):
        """Each path class runs its own 1-and-n counter (RLIR multipath)."""
        templates = {0: RefTemplate(1, 2), 1: RefTemplate(1, 3)}
        sender = make_sender(n=2, templates=templates,
                             classify=lambda p: p.sport % 2)
        refs = []
        for i in range(8):
            out = sender.on_regular(regular(sport=i), i * 1e-3)
            if out:
                refs.extend(out)
        # 4 packets per class, n=2 -> 2 refs per class
        assert len(refs) == 4
        assert {r.dst for r in refs} == {2, 3}

    def test_unclassified_packets_not_counted(self):
        sender = make_sender(n=1, classify=lambda p: None)
        assert sender.on_regular(regular(), 0.0) is None
        assert sender.regulars_seen == 0

    def test_needs_templates(self):
        with pytest.raises(ValueError):
            RliSender(1, 1e9, templates={})

    def test_current_gap_tracks_policy(self):
        sender = make_sender(n=42)
        assert sender.current_gap == 42


def feed(receiver, events):
    """events: ('reg', t, key_sport, truth) or ('ref', t, delay)."""
    for event in events:
        if event[0] == "reg":
            _, t, sport, truth = event
            p = regular(sport=sport)
            p.tap_time = t - truth
            receiver.observe(p, t)
        else:
            _, t, delay = event
            ref = Packet(src=0, dst=0, kind=PacketKind.REFERENCE,
                         sender_id=1, ref_timestamp=t - delay)
            receiver.observe(ref, t)


def make_receiver(**kw):
    demux = SingleSenderDemux(1, regular_prefixes=[Prefix.parse("10.1.0.0/16")])
    return RliReceiver(demux=demux, **kw)


class TestReceiver:
    def test_linear_delay_recovered_exactly(self):
        rx = make_receiver()
        feed(rx, [("ref", 0.0, 0.010),
                  ("reg", 0.5, 1, 0.015),
                  ("ref", 1.0, 0.020)])
        rx.finalize()
        key = regular(sport=1).flow_key
        assert rx.flow_estimated.get(key).mean == pytest.approx(0.015)
        assert rx.flow_true.get(key).mean == pytest.approx(0.015)

    def test_per_flow_aggregation(self):
        rx = make_receiver()
        feed(rx, [("ref", 0.0, 0.010),
                  ("reg", 0.25, 1, 0.01),
                  ("reg", 0.75, 1, 0.01),
                  ("ref", 1.0, 0.010)])
        rx.finalize()
        key = regular(sport=1).flow_key
        stats = rx.flow_estimated.get(key)
        assert stats.count == 2
        assert stats.mean == pytest.approx(0.010)

    def test_cross_prefix_ignored(self):
        rx = make_receiver()
        p = regular(src="10.9.0.1")
        p.tap_time = 0.0
        rx.observe(p, 1.0)
        assert rx.regulars_ignored == 1
        assert rx.regulars_measured == 0

    def test_foreign_reference_ignored(self):
        rx = make_receiver()
        ref = Packet(src=0, dst=0, kind=PacketKind.REFERENCE,
                     sender_id=99, ref_timestamp=0.0)
        rx.observe(ref, 1.0)
        assert rx.references_ignored == 1
        assert rx.references_accepted == 0

    def test_missing_tap_time_not_measured(self):
        rx = make_receiver()
        rx.observe(regular(), 1.0)  # tap_time is None
        assert rx.missing_tap == 1
        assert rx.regulars_measured == 0

    def test_receiver_clock_offset_biases_estimates(self):
        rx = make_receiver(clock=OffsetClock(1e-3))
        feed(rx, [("ref", 0.0, 0.010),
                  ("reg", 0.5, 1, 0.015),
                  ("ref", 1.0, 0.020)])
        rx.finalize()
        key = regular(sport=1).flow_key
        # every reference delay sample reads 1 ms high
        assert rx.flow_estimated.get(key).mean == pytest.approx(0.016)

    def test_finalize_flushes_tail(self):
        rx = make_receiver()
        feed(rx, [("ref", 0.0, 0.010), ("reg", 0.5, 1, 0.02)])
        rx.finalize()
        key = regular(sport=1).flow_key
        assert rx.flow_estimated.get(key).mean == pytest.approx(0.010)

    def test_finalize_idempotent_and_blocks_observe(self):
        rx = make_receiver()
        rx.finalize()
        rx.finalize()
        with pytest.raises(RuntimeError):
            rx.observe(regular(), 0.0)

    def test_unestimated_counted(self):
        rx = make_receiver()
        p = regular(sport=1)
        p.tap_time = 0.0
        rx.observe(p, 1.0)  # no reference ever arrives
        rx.finalize()
        assert rx.unestimated == 1
        assert len(rx.flow_estimated) == 0
        assert len(rx.flow_true) == 1

    def test_collect_estimates_flag(self):
        rx = make_receiver(collect_estimates=True)
        feed(rx, [("ref", 0.0, 0.01), ("reg", 0.5, 1, 0.01), ("ref", 1.0, 0.01)])
        rx.finalize()
        assert len(rx.estimates) == 1
        assert rx.estimates[0].estimated == pytest.approx(0.01)


class TestAdaptiveSenderBehavior:
    def test_gap_widens_when_local_link_fills(self):
        """The adaptive sender reacts to ITS OWN link only: saturating the
        sender-side link pushes n from 10 toward 300."""
        from repro.core.injection import AdaptiveInjection

        sender = RliSender(1, link_rate_bps=8e6,
                           policy=AdaptiveInjection(),
                           util_window=0.01, util_alpha=1.0)
        # light load: 1 small packet per window -> n stays at the minimum
        for i in range(5):
            sender.on_regular(regular(ts=i * 0.01, size=100), i * 0.01)
        assert sender.current_gap == 10
        # saturate: 10 kB per 10 ms window = 100% of a 1 MB/s link
        t = 0.1
        for i in range(100):
            sender.on_regular(regular(ts=t, size=1000, sport=i), t)
            t += 0.001
        assert sender.current_gap == 300

    def test_blindness_to_downstream(self):
        """...and it cannot see a downstream bottleneck at all: the gap is
        identical whether or not cross traffic floods switch 2 (the paper's
        core observation about adaptation across routers)."""
        from repro.core.injection import AdaptiveInjection

        def run_with_cross(n_cross):
            from repro.sim.pipeline import PipelineConfig, TwoSwitchPipeline

            sender = RliSender(1, link_rate_bps=8e6, policy=AdaptiveInjection())
            regs = [regular(ts=i * 1e-3, sport=i) for i in range(200)]
            cross = [(i * 2e-4, Packet(src=9, dst=10, size=1500,
                                       ts=i * 2e-4, kind=PacketKind.CROSS))
                     for i in range(n_cross)]
            TwoSwitchPipeline(PipelineConfig(8e6, 8e6, None, None, 0.0)).run(
                regs, cross, sender=sender)
            return sender.current_gap, sender.refs_injected

        quiet = run_with_cross(0)
        flooded = run_with_cross(900)
        assert quiet == flooded
