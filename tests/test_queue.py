"""Tests for the analytic FIFO queue — the simulator's core primitive."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.packet import Packet
from repro.sim.queue import FifoQueue


def pkt(size=1000, ts=0.0):
    return Packet(src=1, dst=2, size=size, ts=ts)


RATE = 8e6  # 1e6 bytes/s -> 1000-byte packet serializes in 1 ms


class TestBasics:
    def test_idle_packet_gets_transmission_time_only(self):
        q = FifoQueue(RATE)
        dep = q.offer(pkt(1000), 1.0)
        assert dep == pytest.approx(1.0 + 1e-3)

    def test_processing_delay_added(self):
        q = FifoQueue(RATE, proc_delay=5e-4)
        dep = q.offer(pkt(1000), 1.0)
        assert dep == pytest.approx(1.0 + 5e-4 + 1e-3)

    def test_back_to_back_packets_queue(self):
        q = FifoQueue(RATE)
        d1 = q.offer(pkt(1000), 0.0)
        d2 = q.offer(pkt(1000), 0.0)
        assert d1 == pytest.approx(1e-3)
        assert d2 == pytest.approx(2e-3)

    def test_idle_gap_resets_queue(self):
        q = FifoQueue(RATE)
        q.offer(pkt(1000), 0.0)
        dep = q.offer(pkt(1000), 1.0)  # long after the first drained
        assert dep == pytest.approx(1.0 + 1e-3)

    def test_backlog_accounting(self):
        q = FifoQueue(RATE)
        q.offer(pkt(1000), 0.0)
        q.offer(pkt(1000), 0.0)
        # at t=0.5 ms, 0.5 ms of service remains on pkt1 plus all of pkt2
        assert q.backlog_bytes(0.5e-3) == pytest.approx(1500.0)
        assert q.backlog_bytes(10.0) == 0.0

    def test_transmission_time(self):
        q = FifoQueue(RATE)
        assert q.transmission_time(500) == pytest.approx(0.5e-3)


class TestDrops:
    def test_drop_when_buffer_full(self):
        q = FifoQueue(RATE, buffer_bytes=1500)
        assert q.offer(pkt(1000), 0.0) is not None
        p = pkt(1000)
        assert q.offer(p, 0.0) is None  # backlog 1000 + 1000 > 1500
        assert p.dropped
        assert q.stats.dropped == 1

    def test_drop_does_not_consume_capacity(self):
        q = FifoQueue(RATE, buffer_bytes=1500)
        q.offer(pkt(1000), 0.0)
        q.offer(pkt(1000), 0.0)  # dropped
        dep = q.offer(pkt(500), 1e-3)  # first packet done; fits now
        assert dep == pytest.approx(1e-3 + 0.5e-3)

    def test_no_buffer_means_no_drops(self):
        q = FifoQueue(RATE, buffer_bytes=None)
        for _ in range(1000):
            assert q.offer(pkt(1500), 0.0) is not None
        assert q.stats.dropped == 0

    def test_loss_rate(self):
        q = FifoQueue(RATE, buffer_bytes=1000)
        q.offer(pkt(1000), 0.0)
        q.offer(pkt(1000), 0.0)
        assert q.stats.loss_rate == pytest.approx(0.5)


class TestStatsAndValidation:
    def test_utilization(self):
        q = FifoQueue(RATE)
        for i in range(10):
            q.offer(pkt(1000), i * 0.01)
        # 10 kB over 0.1 s at 1 MB/s = 10%
        assert q.utilization(0.1) == pytest.approx(0.1)

    def test_mean_and_max_delay(self):
        q = FifoQueue(RATE)
        q.offer(pkt(1000), 0.0)
        q.offer(pkt(1000), 0.0)
        assert q.stats.mean_delay == pytest.approx(1.5e-3)
        assert q.stats.max_delay == pytest.approx(2e-3)

    def test_reset(self):
        q = FifoQueue(RATE)
        q.offer(pkt(1000), 0.0)
        q.reset()
        assert q.stats.arrivals == 0
        assert q.offer(pkt(1000), 0.0) == pytest.approx(1e-3)

    @pytest.mark.parametrize(
        "kwargs",
        [dict(rate_bps=0), dict(rate_bps=-1), dict(rate_bps=1, buffer_bytes=0),
         dict(rate_bps=1, proc_delay=-1e-9)],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            FifoQueue(**kwargs)

    def test_utilization_requires_positive_duration(self):
        with pytest.raises(ValueError):
            FifoQueue(RATE).utilization(0.0)


class TestFifoProperties:
    @settings(max_examples=50)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=0.01),  # inter-arrival gap
                st.integers(min_value=40, max_value=1500),  # size
            ),
            min_size=1,
            max_size=200,
        )
    )
    def test_invariants(self, arrivals):
        """FIFO order, no negative delays, work conservation, drop rule."""
        q = FifoQueue(RATE, buffer_bytes=8000)
        t = 0.0
        last_dep = 0.0
        accepted_bytes = 0
        for gap, size in arrivals:
            t += gap
            backlog_before = q.backlog_bytes(t)
            dep = q.offer(pkt(size), t)
            if dep is None:
                # tail drop only when the packet would overflow the buffer
                assert backlog_before + size > 8000
                continue
            accepted_bytes += size
            assert dep >= t  # causality
            assert dep >= last_dep  # FIFO: departures non-decreasing
            # service takes at least the transmission time
            assert dep - t >= size / q.rate_Bps - 1e-12
            last_dep = dep
        # work conservation: total busy time equals accepted bytes / rate
        assert q.stats.bytes_accepted == accepted_bytes
