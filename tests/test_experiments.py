"""Sanity tests of the experiment drivers at tiny scale.

These assert the *shapes* the paper reports, on miniature workloads:
accuracy improves with utilization, adaptive beats static, the placement
table matches the planner, and Figure 5's interference ordering holds.
"""

import pytest

from repro.analysis.cdf import Ecdf
from repro.analysis.metrics import flow_mean_errors
from repro.experiments.ablations import (
    run_baseline_comparison,
    run_estimator_ablation,
    run_injection_sweep,
    run_sync_error_ablation,
)
from repro.experiments.config import ExperimentConfig, default_scale
from repro.experiments.fig4 import run_fig4ab, run_fig4c
from repro.experiments.fig5 import run_fig5
from repro.experiments.placement import run_placement
from repro.experiments.workloads import PipelineWorkload, run_condition


class TestConfig:
    def test_default_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        assert default_scale() == 0.25

    def test_bad_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "zero")
        with pytest.raises(ValueError):
            default_scale()
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            default_scale()

    def test_scaled_sizes(self):
        cfg = ExperimentConfig(scale=0.5)
        assert cfg.n_regular_packets == 100_000
        assert cfg.n_cross_packets == 600_000


class TestWorkload:
    def test_regular_trace_hits_base_utilization(self, tiny_workload):
        w = tiny_workload
        util = w.regular.total_bytes * 8 / (w.rate_bps * w.cfg.duration)
        assert util == pytest.approx(w.cfg.base_utilization, rel=1e-6)

    def test_traces_cached(self, tiny_config):
        a = PipelineWorkload(tiny_config)
        b = PipelineWorkload(tiny_config)
        assert a.regular is b.regular

    def test_measured_utilization_close_to_target(self, tiny_workload):
        run = run_condition(tiny_workload, None, "random", 0.67)
        assert run.measured_util == pytest.approx(0.67, abs=0.05)

    def test_unknown_scheme_and_model_rejected(self, tiny_workload):
        with pytest.raises(ValueError):
            tiny_workload.make_policy("turbo")
        with pytest.raises(ValueError):
            tiny_workload.cross_arrivals("fractal", 0.5)

    def test_receiver_knobs_with_scheme_none_rejected(self, tiny_workload):
        """scheme=None runs no receiver; receiver-side knobs must raise
        instead of being silently ignored (regression: estimator= used to
        vanish without a sound)."""
        with pytest.raises(ValueError, match="estimator"):
            run_condition(tiny_workload, None, "random", 0.67,
                          estimator="nearest")
        with pytest.raises(ValueError, match="max_flows"):
            run_condition(tiny_workload, None, "random", 0.67, max_flows=64)
        with pytest.raises(ValueError, match="quantiles"):
            run_condition(tiny_workload, None, "random", 0.67,
                          quantiles=(0.5,))
        # the default estimator with no receiver stays valid (fig5 baselines)
        baseline = run_condition(tiny_workload, None, "random", 0.67)
        assert baseline.receiver is None

    def test_unknown_aqm_rejected(self, tiny_workload):
        with pytest.raises(ValueError, match="AQM"):
            run_condition(tiny_workload, "static", "random", 0.67, aqm="codel")


class TestFig4Shapes:
    def test_accuracy_improves_with_utilization(self, tiny_workload):
        """The paper's headline: relative error falls as the bottleneck
        utilization (and hence true latency) rises."""
        lo = run_condition(tiny_workload, "adaptive", "random", 0.67)
        hi = run_condition(tiny_workload, "adaptive", "random", 0.93)
        e_lo = Ecdf(flow_mean_errors(lo.receiver.flow_estimated, lo.receiver.flow_true).errors)
        e_hi = Ecdf(flow_mean_errors(hi.receiver.flow_estimated, hi.receiver.flow_true).errors)
        assert e_hi.median < e_lo.median
        assert hi.mean_true_latency > lo.mean_true_latency

    def test_adaptive_beats_static(self, tiny_workload):
        st = run_condition(tiny_workload, "static", "random", 0.93)
        ad = run_condition(tiny_workload, "adaptive", "random", 0.93)
        e_st = Ecdf(flow_mean_errors(st.receiver.flow_estimated, st.receiver.flow_true).errors)
        e_ad = Ecdf(flow_mean_errors(ad.receiver.flow_estimated, ad.receiver.flow_true).errors)
        assert e_ad.median < e_st.median
        # ...because the mis-adapted sender injects ~10x more references
        assert ad.pipeline.refs_injected > 5 * st.pipeline.refs_injected

    def test_fig4ab_driver_returns_four_curves(self, tiny_config):
        curves = run_fig4ab(tiny_config)
        assert len(curves) == 4
        assert {c.label for c in curves} == {
            "adaptive, 93%", "static, 93%", "adaptive, 67%", "static, 67%"}
        for c in curves:
            assert len(c.mean_join.errors) > 50
            assert c.std_join.joined > 10

    def test_fig4c_driver_structure(self, tiny_config):
        """Structural check only: at miniature scale the tiny link rate
        saturates both models, washing out the bursty/random latency gap.
        The full-scale bench asserts the paper's >2x latency ratio."""
        curves = run_fig4c(tiny_config)
        assert {c.label for c in curves} == {
            "bursty, 67%", "bursty, 34%", "random, 67%", "random, 34%"}
        for c in curves:
            assert len(c.mean_join.errors) > 50
            assert c.summary.measured_util == pytest.approx(
                c.summary.target_util, abs=0.08)


class TestFig5Shape:
    def test_rows_and_structure(self, tiny_config):
        """At miniature scale single-packet noise dominates the loss-rate
        differences (one packet = 5x10^-4 here), so only structural
        properties are asserted; the full-scale bench checks the ordering."""
        rows = run_fig5(tiny_config, n_seeds=2)
        assert len(rows) == len(tiny_config.fig5_utilizations)
        utils = [r.measured_util for r in rows]
        assert utils == sorted(utils)
        for row, target in zip(rows, tiny_config.fig5_utilizations):
            # drops cap the measured (carried) utilization below the offered
            # target at the top of the sweep
            assert target - 0.15 < row.measured_util < target + 0.05
            assert row.adaptive_refs > 5 * row.static_refs
            assert abs(row.static_diff) < 0.02
            assert abs(row.adaptive_diff) < 0.02

    def test_n_seeds_validated(self, tiny_config):
        with pytest.raises(ValueError):
            run_fig5(tiny_config, n_seeds=0)


class TestPlacementTable:
    def test_enumeration_matches_formulas(self):
        rows = run_placement(ks=(4, 8), enumerate_up_to=8)
        for row in rows:
            assert row.enum_interface_pair == row.interface_pair
            assert row.enum_tor_pair == row.tor_pair
            assert row.enum_all_pairs == row.all_tor_pairs_enumerated

    def test_large_k_skips_enumeration(self):
        (row,) = run_placement(ks=(32,), enumerate_up_to=16)
        assert row.enum_tor_pair is None
        assert row.tor_pair == 32 * 34 // 2

    def test_savings_reported(self):
        (row,) = run_placement(ks=(8,), enumerate_up_to=0)
        assert 0.0 < row.savings_vs_full < 1.0


class TestAblations:
    def test_estimator_ablation_linear_best(self, tiny_config):
        results = run_estimator_ablation(tiny_config)
        assert set(results) == {"linear", "previous", "nearest"}
        assert results["linear"].median <= results["previous"].median

    def test_injection_sweep_monotone_refs(self, tiny_config):
        rows = run_injection_sweep(tiny_config, gaps=(10, 100, 1000))
        refs = [r[2] for r in rows]
        assert refs == sorted(refs, reverse=True)
        # denser references never hurt much: error at n=10 <= error at n=1000
        assert rows[0][1] <= rows[-1][1]

    def test_sync_error_degrades_accuracy(self, tiny_config):
        # offset chosen >> the workload's delay scale so the bias dominates
        rows = run_sync_error_ablation(tiny_config, offsets=(0.0, 0.05))
        assert rows[1][1] > rows[0][1]

    def test_baseline_comparison_fields(self, tiny_config):
        out = run_baseline_comparison(tiny_config)
        assert out["n_flows"] > 100
        assert out["rli_median_re"] is not None
        assert 0.9 <= out["rli_coverage"] <= 1.0
        # trajectory sampling covers a strict subset of flows
        assert out["trajectory_coverage"] < out["rli_coverage"]
        # LDA gets the aggregate right
        assert out["lda_aggregate_re"] < 0.05
